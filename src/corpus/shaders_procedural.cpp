/**
 * @file
 * Procedural/branchy corpus families: arithmetic-only conditionals
 * (toon bands, pattern selectors, quality tiers) that the Hoist pass
 * can flatten, plus shaders with the same subexpressions on both sides
 * of a branch (GVN's habitat), plus integer-arithmetic shaders for the
 * Reassociate flag. These give the rarely-applicable flags of Fig 8
 * their populations.
 */
#include "corpus/corpus.h"

namespace gsopt::corpus {

namespace {

CorpusShader
make(const std::string &family, const std::string &name,
     const char *source, std::map<std::string, std::string> defines = {})
{
    CorpusShader s;
    s.name = family + "/" + name;
    s.family = family;
    s.source = source;
    s.defines = std::move(defines);
    return s;
}

const char *kToon = R"(#version 450
out vec4 fragColor;
in vec3 world_normal;
in vec3 light_dir;
uniform vec4 base_color;
uniform float band_1;
uniform float band_2;
void main() {
    float n_dot_l = max(dot(normalize(world_normal),
                            normalize(light_dir)),
                        0.0);
    float shade = 0.25;
    if (n_dot_l > band_2) {
        shade = 1.0;
    } else {
        if (n_dot_l > band_1) {
            shade = 0.6;
        }
    }
    fragColor = vec4(base_color.rgb * shade, base_color.a);
}
)";

const char *kChecker = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform vec4 color_a;
uniform vec4 color_b;
uniform float tiles;
void main() {
    float fx = floor(uv.x * tiles);
    float fy = floor(uv.y * tiles);
    float parity = mod(fx + fy, 2.0);
    vec4 c = color_a;
    if (parity > 0.5) {
        c = color_b;
    }
    fragColor = c;
}
)";

const char *kStripes = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform vec4 color_a;
uniform vec4 color_b;
uniform float frequency;
uniform float softness;
void main() {
    float wave = sin(uv.x * frequency * 6.2831853);
    float t = smoothstep(-softness, softness, wave);
    vec4 hard = color_a;
    if (wave > 0.0) {
        hard = color_b;
    }
    fragColor = mix(hard, mix(color_a, color_b, t), 0.5);
}
)";

/** Same expensive subexpression in both arms: GVN's bread and butter. */
const char *kDualTier = R"(#version 450
out vec4 fragColor;
in vec2 uv;
in vec3 world_normal;
in vec3 light_dir;
uniform float quality;
uniform vec4 base_color;
void main() {
    vec3 n = normalize(world_normal);
    vec3 l = normalize(light_dir);
    float result = 0.0;
    if (quality > 0.5) {
        float diffuse = max(dot(n, l), 0.0);
        float rim = pow(1.0 - max(dot(n, vec3(0.0, 0.0, 1.0)), 0.0),
                        2.0);
        result = diffuse * 0.8 + rim * 0.4 +
                 uv.x * uv.y * 0.1 + uv.x * uv.y * 0.1;
    } else {
        float diffuse = max(dot(n, l), 0.0);
        result = diffuse * 0.8 + uv.x * uv.y * 0.1 +
                 uv.x * uv.y * 0.1;
    }
    fragColor = vec4(base_color.rgb * result, 1.0);
}
)";

const char *kHeatmap = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D data_tex;
void main() {
    float v = texture(data_tex, uv).r;
    vec3 cold = vec3(0.0, 0.2, 0.8);
    vec3 warm = vec3(0.9, 0.9, 0.1);
    vec3 hot = vec3(0.9, 0.1, 0.05);
    vec3 c = cold;
    if (v > 0.66) {
        c = mix(warm, hot, (v - 0.66) * 3.0);
    } else {
        if (v > 0.33) {
            c = mix(cold, warm, (v - 0.33) * 3.0);
        }
    }
    fragColor = vec4(c, 1.0);
}
)";

const char *kPlasma = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform float time_v;
void main() {
    float v1 = sin(uv.x * 10.0 + time_v);
    float v2 = sin((uv.x * 7.0 + uv.y * 4.0) + time_v * 1.3);
    float v3 = sin(length(uv - vec2(0.5)) * 14.0 - time_v * 0.7);
    float v = (v1 + v2 + v3) / 3.0;
    vec3 c = vec3(sin(v * 3.14159), sin(v * 3.14159 + 2.09),
                  sin(v * 3.14159 + 4.18)) *
                 0.5 +
             vec3(0.5);
    fragColor = vec4(c, 1.0);
}
)";

/** Integer arithmetic for the (rarely applicable) Reassociate flag. */
const char *kDither = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D src;
uniform int pattern_size;
void main() {
    int px = int(uv.x * 512.0);
    int py = int(uv.y * 512.0);
    int cell = (px + pattern_size + 2 + 1) % 4 +
               ((py + 2 + pattern_size + 1) % 4) * 4;
    const float thresholds[16] = float[](
        0.0, 0.5, 0.125, 0.625, 0.75, 0.25, 0.875, 0.375, 0.1875,
        0.6875, 0.0625, 0.5625, 0.9375, 0.4375, 0.8125, 0.3125);
    float threshold = thresholds[cell];
    vec4 c = texture(src, uv);
    float l = dot(c.rgb, vec3(0.299, 0.587, 0.114));
    float bw = l > threshold ? 1.0 : 0.0;
    fragColor = vec4(bw, bw, bw, 1.0);
}
)";

const char *kMosaic = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D src;
uniform int grid;
void main() {
    int gx = int(uv.x * float(grid));
    int gy = int(uv.y * float(grid));
    float cx = (float(gx) + 0.5) / float(grid);
    float cy = (float(gy) + 0.5) / float(grid);
    vec4 c = texture(src, vec2(cx, cy));
    int parity = (gx + gy + 1 + 0) % 2;
    if (parity == 1) {
        c = c * 0.92;
    }
    fragColor = c;
}
)";

const char *kSdfShapes = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform vec2 circle_center;
uniform float circle_radius;
uniform vec2 box_center;
uniform vec2 box_half;
uniform float blend_k;
void main() {
    vec2 p = uv * 2.0 - vec2(1.0);
    float d_circle = length(p - circle_center) - circle_radius;
    vec2 q = abs(p - box_center) - box_half;
    float d_box = length(max(q, vec2(0.0))) +
                  min(max(q.x, q.y), 0.0);
    float h = clamp(0.5 + 0.5 * (d_box - d_circle) / blend_k, 0.0,
                    1.0);
    float d = mix(d_box, d_circle, h) - blend_k * h * (1.0 - h);
    float inside = 1.0 - smoothstep(-0.01, 0.01, d);
    vec3 fill = vec3(0.9, 0.4, 0.2);
    vec3 bg = vec3(0.08, 0.08, 0.1);
    fragColor = vec4(mix(bg, fill, inside), 1.0);
}
)";

const char *kFractalIter = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform vec2 julia_c;
#ifndef ITERS
#define ITERS 12
#endif
void main() {
    vec2 z = uv * 3.0 - vec2(1.5);
    float escape = 0.0;
    for (int i = 0; i < ITERS; i++) {
        vec2 z2 = vec2(z.x * z.x - z.y * z.y, 2.0 * z.x * z.y) +
                  julia_c;
        z = z2;
        float m = dot(z, z);
        escape += m < 4.0 ? 1.0 : 0.0;
    }
    float t = escape / float(ITERS);
    fragColor = vec4(t, t * t, sqrt(t), 1.0);
}
)";

const char *kPosterize = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D src;
uniform float levels;
void main() {
    vec4 c = texture(src, uv);
    vec3 q = floor(c.rgb * levels + vec3(0.5)) / levels;
    float edge_boost = 1.0;
    float l = dot(c.rgb, vec3(0.299, 0.587, 0.114));
    if (l < 0.08) {
        edge_boost = 0.0;
    }
    fragColor = vec4(q * edge_boost, c.a);
}
)";

const char *kSpotlight = R"(#version 450
out vec4 fragColor;
in vec2 uv;
in vec3 world_pos;
in vec3 world_normal;
uniform vec4 spot_pos;
uniform vec4 spot_dir;
uniform float cone_cos;
uniform float penumbra_cos;
uniform vec4 spot_color;
uniform vec4 albedo;
void main() {
    vec3 to_light = spot_pos.xyz - world_pos;
    float dist2 = dot(to_light, to_light);
    vec3 l = to_light * inversesqrt(dist2 + 0.0001);
    float cos_angle = dot(-l, normalize(spot_dir.xyz));
    float falloff = 0.0;
    if (cos_angle > cone_cos) {
        falloff = 1.0;
    } else {
        if (cos_angle > penumbra_cos) {
            falloff = (cos_angle - penumbra_cos) /
                      (cone_cos - penumbra_cos);
        }
    }
    float n_dot_l = max(dot(normalize(world_normal), l), 0.0);
    float atten = falloff * n_dot_l / (1.0 + dist2 * 0.1);
    fragColor = vec4(albedo.rgb * spot_color.rgb * atten, 1.0);
}
)";

const char *kDualHeavy = R"(#version 450
out vec4 fragColor;
in vec2 uv;
in vec3 world_normal;
in vec3 view_dir;
uniform float style;
uniform vec4 tint;
void main() {
    vec3 n = normalize(world_normal);
    vec3 v = normalize(view_dir);
    vec3 color = vec3(0.0);
    if (style > 0.5) {
        float a0 = sin(uv.x * 13.0) * 0.5 + 0.5;
        float a1 = cos(uv.y * 17.0) * 0.5 + 0.5;
        float a2 = sin((uv.x + uv.y) * 23.0) * 0.5 + 0.5;
        float a3 = cos((uv.x - uv.y) * 29.0) * 0.5 + 0.5;
        float a4 = sin(uv.x * uv.y * 151.0) * 0.5 + 0.5;
        float a5 = fract(uv.x * 7.77 + a0);
        float a6 = fract(uv.y * 9.99 + a1);
        float a7 = pow(a2, 2.2);
        float a8 = pow(a3, 1.4);
        float a9 = a4 * a5 + a6 * a7 + a8 * a0;
        vec3 c0 = vec3(a0, a1, a2);
        vec3 c1 = vec3(a3, a4, a5);
        vec3 c2 = vec3(a6, a7, a8);
        vec3 c3 = normalize(c0 + c1 * a9 + c2);
        float fres = pow(1.0 - max(dot(n, v), 0.0), 3.0);
        color = mix(c0 * c1, c2 * c3, fres) +
                vec3(a9 * 0.1) + c3 * a7 + c1 * a8 + c0 * a6;
    } else {
        float b0 = fract(uv.x * 3.33);
        float b1 = fract(uv.y * 4.44);
        float b2 = b0 * b1;
        float b3 = max(dot(n, v), 0.0);
        float b4 = b3 * b3;
        float b5 = b2 + b4;
        vec3 d0 = vec3(b0, b1, b2);
        vec3 d1 = vec3(b3, b4, b5);
        vec3 d2 = d0 * b5 + d1 * b2;
        vec3 d3 = d1 * b0 + d0 * b3;
        color = d2 * 0.6 + d3 * 0.4 + vec3(b5 * 0.05);
    }
    fragColor = vec4(color * tint.rgb, 1.0);
}
)";

} // namespace

void
addProceduralFamilies(std::vector<CorpusShader> &out)
{
    out.push_back(make("toon", "bands3", kToon));
    out.push_back(make("pattern", "checker", kChecker));
    out.push_back(make("pattern", "stripes", kStripes));
    out.push_back(make("pattern", "plasma", kPlasma));
    out.push_back(make("pattern", "sdf_shapes", kSdfShapes));
    out.push_back(make("tier", "dual_quality", kDualTier));
    out.push_back(make("tier", "heatmap", kHeatmap));
    out.push_back(make("tier", "posterize", kPosterize));
    out.push_back(make("tier", "spotlight", kSpotlight));
    out.push_back(make("intmath", "dither4x4", kDither));
    out.push_back(make("intmath", "mosaic", kMosaic));
    out.push_back(
        make("fractal", "julia12", kFractalIter, {{"ITERS", "12"}}));
    out.push_back(
        make("fractal", "julia24", kFractalIter, {{"ITERS", "24"}}));
    out.push_back(make("tier", "dual_heavy", kDualHeavy));
}

} // namespace gsopt::corpus
