/**
 * @file
 * Scene-rendering corpus families: the PBR übershader (the corpus's
 * "Car Chase"-class heavyweight, specialised into many variants by
 * feature defines), deferred light loops, SSAO, PCF shadows, water,
 * terrain splatting, skybox, car paint, hair, particles, UI widgets,
 * and colour grading.
 */
#include "corpus/corpus.h"

namespace gsopt::corpus {

namespace {

CorpusShader
make(const std::string &family, const std::string &name,
     const char *source, std::map<std::string, std::string> defines = {})
{
    CorpusShader s;
    s.name = family + "/" + name;
    s.family = family;
    s.source = source;
    s.defines = std::move(defines);
    return s;
}

/**
 * The übershader: every feature block sits behind a define, so family
 * members share most of their code — the structure the paper describes
 * for GFXBench (Section IV-A).
 */
const char *kPbrUber = R"(#version 450
out vec4 fragColor;
in vec2 uv;
in vec3 world_normal;
in vec3 world_tangent;
in vec3 view_dir;
in vec3 light_dir;
in vec4 vertex_color;
in float fog_depth;
uniform sampler2D albedo_map;
uniform sampler2D normal_map;
uniform sampler2D spec_map;
uniform sampler2D emissive_map;
uniform sampler2D shadow_map;
uniform vec4 base_color;
uniform vec4 light_color;
uniform vec4 ambient_color;
uniform vec4 fog_color;
uniform float fog_density;
uniform float alpha_cutoff;
uniform float roughness_scale;
uniform vec2 shadow_uv_base;

float distribution_ggx(float n_dot_h, float roughness) {
    float a = roughness * roughness;
    float a2 = a * a;
    float d = n_dot_h * n_dot_h * (a2 - 1.0) + 1.0;
    return a2 / (3.14159265 * d * d);
}

float geometry_term(float n_dot_v, float n_dot_l, float roughness) {
    float k = (roughness + 1.0) * (roughness + 1.0) / 8.0;
    float gv = n_dot_v / (n_dot_v * (1.0 - k) + k);
    float gl = n_dot_l / (n_dot_l * (1.0 - k) + k);
    return gv * gl;
}

vec3 fresnel_schlick(float cos_theta, vec3 f0) {
    float f = pow(1.0 - cos_theta, 5.0);
    return f0 + (vec3(1.0) - f0) * f;
}

void main() {
    vec4 albedo = texture(albedo_map, uv) * base_color;
#ifdef VERTEX_COLOR
    albedo = albedo * vertex_color;
#endif
#ifdef ALPHA_TEST
    if (albedo.a < alpha_cutoff) {
        discard;
    }
#endif

    vec3 n = normalize(world_normal);
#ifdef NORMAL_MAP
    vec3 t = normalize(world_tangent);
    vec3 b = cross(n, t);
    vec3 tn = texture(normal_map, uv).xyz * 2.0 - vec3(1.0);
    n = normalize(t * tn.x + b * tn.y + n * tn.z);
#endif

    vec3 v = normalize(view_dir);
    vec3 l = normalize(light_dir);
    vec3 h = normalize(v + l);
    float n_dot_l = max(dot(n, l), 0.0);
    float n_dot_v = max(dot(n, v), 0.001);
    float n_dot_h = max(dot(n, h), 0.0);
    float h_dot_v = max(dot(h, v), 0.0);

#ifdef SPEC_MAP
    vec4 spec_sample = texture(spec_map, uv);
    float roughness = clamp(spec_sample.g * roughness_scale,
                            0.03, 1.0);
    float metallic = spec_sample.b;
#else
    float roughness = clamp(roughness_scale, 0.03, 1.0);
    float metallic = 0.0;
#endif

    vec3 f0 = mix(vec3(0.04), albedo.rgb, metallic);
    float ndf = distribution_ggx(n_dot_h, roughness);
    float geo = geometry_term(n_dot_v, n_dot_l, roughness);
    vec3 fresnel = fresnel_schlick(h_dot_v, f0);
    vec3 specular = (ndf * geo) * fresnel /
                    (4.0 * n_dot_v * n_dot_l + 0.001);
    vec3 k_d = (vec3(1.0) - fresnel) * (1.0 - metallic);
    vec3 diffuse = k_d * albedo.rgb / 3.14159265;

    float shadow = 1.0;
#ifdef SHADOW
    vec2 shadow_uv = shadow_uv_base + uv * 0.5;
    float shadow_depth = texture(shadow_map, shadow_uv).r;
    float current_depth = fog_depth * 0.01;
    shadow = current_depth - 0.005 > shadow_depth ? 0.35 : 1.0;
#endif

    vec3 direct = (diffuse + specular) * light_color.rgb * n_dot_l *
                  shadow;
    vec3 ambient = ambient_color.rgb * albedo.rgb;
    vec3 color = direct + ambient;

#ifdef EMISSIVE
    vec3 emissive = texture(emissive_map, uv).rgb;
    color = color + emissive * 2.0;
#endif

#ifdef FOG
    float fog_f = 1.0 - exp(-fog_density * fog_depth);
    color = mix(color, fog_color.rgb, clamp(fog_f, 0.0, 1.0));
#endif

    fragColor = vec4(color, albedo.a);
}
)";

const char *kDeferredLights = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D g_albedo;
uniform sampler2D g_normal;
uniform sampler2D g_position;
uniform vec4 ambient_color;
#ifndef NUM_LIGHTS
#define NUM_LIGHTS 4
#endif
uniform vec4 light_positions[NUM_LIGHTS];
uniform vec4 light_colors[NUM_LIGHTS];
void main() {
    vec3 albedo = texture(g_albedo, uv).rgb;
    vec3 normal = normalize(texture(g_normal, uv).xyz * 2.0 -
                            vec3(1.0));
    vec3 position = texture(g_position, uv).xyz;
    vec3 color = ambient_color.rgb * albedo;
    for (int i = 0; i < NUM_LIGHTS; i++) {
        vec3 to_light = light_positions[i].xyz - position;
        float dist2 = dot(to_light, to_light);
        vec3 l = to_light * inversesqrt(dist2 + 0.0001);
        float atten = 1.0 / (1.0 + dist2 * light_positions[i].w);
        float n_dot_l = max(dot(normal, l), 0.0);
        color += albedo * light_colors[i].rgb * n_dot_l * atten;
    }
    fragColor = vec4(color, 1.0);
}
)";

const char *kSsao = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D depth_tex;
uniform sampler2D noise_tex;
uniform float radius;
uniform float bias_v;
#ifndef KERNEL
#define KERNEL 8
#endif
void main() {
    float center_depth = texture(depth_tex, uv).r;
    vec2 noise = texture(noise_tex, uv * 32.0).rg * 2.0 - vec2(1.0);
    float occlusion = 0.0;
    for (int i = 0; i < KERNEL; i++) {
        float angle = float(i) * (6.2831853 / float(KERNEL));
        vec2 dir = vec2(cos(angle), sin(angle));
        vec2 rotated = vec2(dir.x * noise.x - dir.y * noise.y,
                            dir.x * noise.y + dir.y * noise.x);
        float scale = (float(i) + 1.0) / float(KERNEL);
        vec2 offset = rotated * radius * scale;
        float sample_depth = texture(depth_tex, uv + offset).r;
        float range_check =
            smoothstep(0.0, 1.0,
                       radius / (abs(center_depth - sample_depth) +
                                 0.0001));
        occlusion += (sample_depth < center_depth - bias_v ? 1.0
                                                           : 0.0) *
                     range_check;
    }
    float ao = 1.0 - occlusion / float(KERNEL);
    fragColor = vec4(ao, ao, ao, 1.0);
}
)";

const char *kShadowPcf = R"(#version 450
out vec4 fragColor;
in vec2 uv;
in float receiver_depth;
uniform sampler2D shadow_map;
uniform vec2 texel;
uniform float bias_v;
#ifndef PCF_TAPS
#define PCF_TAPS 3
#endif
void main() {
    float lit = 0.0;
    const int half_w = PCF_TAPS / 2;
    for (int y = 0; y < PCF_TAPS; y++) {
        for (int x = 0; x < PCF_TAPS; x++) {
            vec2 offset = vec2(float(x - half_w), float(y - half_w)) *
                          texel;
            float d = texture(shadow_map, uv + offset).r;
            lit += receiver_depth - bias_v > d ? 0.0 : 1.0;
        }
    }
    lit /= float(PCF_TAPS * PCF_TAPS);
    fragColor = vec4(lit, lit, lit, 1.0);
}
)";

const char *kWater = R"(#version 450
out vec4 fragColor;
in vec2 uv;
in vec3 view_dir;
uniform sampler2D normal_map;
uniform sampler2D reflection;
uniform sampler2D refraction;
uniform float time_v;
uniform float wave_scale;
void main() {
    vec2 w1 = uv * 4.0 + vec2(time_v * 0.03, time_v * 0.01);
    vec2 w2 = uv * 7.0 - vec2(time_v * 0.02, time_v * 0.04);
    vec3 n1 = texture(normal_map, w1).xyz * 2.0 - vec3(1.0);
    vec3 n2 = texture(normal_map, w2).xyz * 2.0 - vec3(1.0);
    vec3 n = normalize(n1 + n2 * 0.5 + vec3(0.0, 0.0, 2.0));
#ifdef STORMY
    float chop = sin(uv.x * 40.0 + time_v) *
                 cos(uv.y * 37.0 - time_v * 1.3);
    n = normalize(n + vec3(chop * wave_scale, chop * wave_scale, 0.0));
#endif
    vec3 v = normalize(view_dir);
    float fresnel = pow(1.0 - max(dot(n, v), 0.0), 3.0);
    vec2 distortion = n.xy * 0.04;
    vec3 refl = texture(reflection, uv + distortion).rgb;
    vec3 refr = texture(refraction, uv - distortion).rgb;
    vec3 water_tint = vec3(0.05, 0.2, 0.25);
    vec3 color = mix(refr * water_tint * 2.0, refl, fresnel);
    float spec = pow(max(dot(n, normalize(v + vec3(0.3, 0.6, 0.5))),
                         0.0),
                     64.0);
    fragColor = vec4(color + vec3(spec), 1.0);
}
)";

const char *kTerrain = R"(#version 450
out vec4 fragColor;
in vec2 uv;
in vec3 world_normal;
in float altitude;
uniform sampler2D grass_map;
uniform sampler2D rock_map;
uniform sampler2D snow_map;
uniform sampler2D splat_map;
uniform float snow_line;
void main() {
    vec4 splat = texture(splat_map, uv * 0.01);
    vec3 grass = texture(grass_map, uv).rgb;
    vec3 rock = texture(rock_map, uv).rgb;
    vec3 snow = texture(snow_map, uv).rgb;
    float slope = 1.0 - normalize(world_normal).y;
    float rockiness = smoothstep(0.3, 0.7, slope);
    vec3 base = mix(grass, rock, max(rockiness, splat.r));
#ifdef SNOW
    float snow_f = smoothstep(snow_line - 5.0, snow_line + 5.0,
                              altitude) *
                   (1.0 - rockiness);
    base = mix(base, snow, snow_f);
#endif
    float light = max(dot(normalize(world_normal),
                          normalize(vec3(0.4, 0.8, 0.3))),
                      0.0);
    fragColor = vec4(base * (0.25 + 0.75 * light), 1.0);
}
)";

const char *kSkybox = R"(#version 450
out vec4 fragColor;
in vec3 view_dir;
uniform vec4 horizon_color;
uniform vec4 zenith_color;
uniform vec4 sun_dir;
uniform float sun_sharpness;
void main() {
    vec3 dir = normalize(view_dir);
    float t = clamp(dir.y * 0.5 + 0.5, 0.0, 1.0);
    vec3 sky = mix(horizon_color.rgb, zenith_color.rgb,
                   pow(t, 0.7));
#ifdef SUN_DISC
    float sun_amount = pow(max(dot(dir, normalize(sun_dir.xyz)), 0.0),
                           sun_sharpness);
    sky += vec3(1.0, 0.9, 0.7) * sun_amount;
#endif
    fragColor = vec4(sky, 1.0);
}
)";

const char *kCarPaint = R"(#version 450
out vec4 fragColor;
in vec2 uv;
in vec3 world_normal;
in vec3 view_dir;
uniform sampler2D flake_map;
uniform sampler2D env_map;
uniform vec4 paint_color;
uniform vec4 flake_color;
uniform float flake_scale;
uniform float clearcoat;
void main() {
    vec3 n = normalize(world_normal);
    vec3 v = normalize(view_dir);
    float n_dot_v = max(dot(n, v), 0.0);

    vec3 flake_n = texture(flake_map, uv * flake_scale).xyz * 2.0 -
                   vec3(1.0);
    vec3 perturbed = normalize(n + flake_n * 0.35);
    float flake_glint = pow(max(dot(perturbed, v), 0.0), 24.0);

    float angle_mix = pow(1.0 - n_dot_v, 2.0);
    vec3 base = mix(paint_color.rgb, paint_color.rgb * 0.35 +
                                         flake_color.rgb * 0.2,
                    angle_mix);

    vec3 r = reflect(-v, n);
    vec2 env_uv = vec2(r.x, r.y) * 0.5 + vec2(0.5);
    vec3 env = texture(env_map, env_uv).rgb;
    float fresnel = 0.04 + 0.96 * pow(1.0 - n_dot_v, 5.0);

    vec3 color = base + flake_color.rgb * flake_glint +
                 env * fresnel * clearcoat;
    fragColor = vec4(color, 1.0);
}
)";

const char *kHair = R"(#version 450
out vec4 fragColor;
in vec2 uv;
in vec3 world_tangent;
in vec3 view_dir;
in vec3 light_dir;
uniform sampler2D strand_map;
uniform vec4 hair_color;
uniform float shift_primary;
uniform float shift_secondary;
void main() {
    vec4 strand = texture(strand_map, uv);
    vec3 t = normalize(world_tangent);
    vec3 v = normalize(view_dir);
    vec3 l = normalize(light_dir);
    vec3 h = normalize(v + l);
    float t_dot_h1 = dot(t, h) + shift_primary * (strand.a - 0.5);
    float t_dot_h2 = dot(t, h) + shift_secondary * (strand.a - 0.5);
    float sin1 = sqrt(max(1.0 - t_dot_h1 * t_dot_h1, 0.0));
    float sin2 = sqrt(max(1.0 - t_dot_h2 * t_dot_h2, 0.0));
    float spec1 = pow(sin1, 80.0);
    float spec2 = pow(sin2, 20.0) * 0.3;
    float wrap = clamp(dot(t, l) * 0.5 + 0.5, 0.0, 1.0);
    vec3 color = hair_color.rgb * strand.rgb * wrap +
                 vec3(spec1) + hair_color.rgb * spec2;
    fragColor = vec4(color, strand.a);
}
)";

const char *kParticle = R"(#version 450
out vec4 fragColor;
in vec2 uv;
in vec4 particle_color;
in float particle_depth;
uniform sampler2D sprite;
uniform sampler2D scene_depth;
uniform float softness;
void main() {
    vec4 tex_c = texture(sprite, uv);
    vec4 color = tex_c * particle_color;
#ifdef SOFT
    float scene_d = texture(scene_depth, uv).r;
    float fade = clamp((scene_d - particle_depth) * softness, 0.0,
                       1.0);
    color.a = color.a * fade;
#endif
    if (color.a < 0.003) {
        discard;
    }
    fragColor = color;
}
)";

const char *kUiSdf = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D sdf_atlas;
uniform vec4 text_color;
uniform float smoothing;
void main() {
    float dist = texture(sdf_atlas, uv).r;
    float alpha = smoothstep(0.5 - smoothing, 0.5 + smoothing, dist);
    fragColor = vec4(text_color.rgb, text_color.a * alpha);
}
)";

const char *kUiRoundedRect = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform vec4 rect_color;
uniform vec4 border_color;
uniform vec2 half_size;
uniform float corner_radius;
uniform float border_width;
void main() {
    vec2 p = (uv - vec2(0.5)) * half_size * 2.0;
    vec2 q = abs(p) - half_size + vec2(corner_radius);
    float dist = length(max(q, vec2(0.0))) - corner_radius;
    float fill = 1.0 - smoothstep(-1.0, 1.0, dist);
    float border = 1.0 - smoothstep(-1.0, 1.0, dist + border_width);
    vec4 color = mix(border_color, rect_color, border);
    fragColor = vec4(color.rgb, color.a * fill);
}
)";

const char *kUiGradient = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform vec4 color_top;
uniform vec4 color_bottom;
uniform float dither_amount;
void main() {
    vec4 c = mix(color_top, color_bottom, uv.y);
    float n = fract(sin(dot(uv, vec2(12.9898, 78.233))) * 43758.5453);
    fragColor = c + vec4((n - 0.5) * dither_amount);
}
)";

const char *kColorGrade = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D scene;
uniform mat4 color_matrix;
uniform vec4 lift;
uniform vec4 gain_v;
uniform float saturation;
void main() {
    vec4 c = texture(scene, uv);
    vec4 graded = color_matrix * vec4(c.rgb, 1.0);
    vec3 balanced = graded.rgb * gain_v.rgb + lift.rgb;
#ifdef SATURATE_PASS
    float l = dot(balanced, vec3(0.2126, 0.7152, 0.0722));
    balanced = mix(vec3(l), balanced, saturation);
#endif
    fragColor = vec4(clamp(balanced, vec3(0.0), vec3(1.0)), c.a);
}
)";

} // namespace

void
addSceneFamilies(std::vector<CorpusShader> &out)
{
    // PBR übershader: feature combinations mirroring real content
    // permutations. "full" enables everything.
    struct PbrVariant
    {
        const char *name;
        std::vector<const char *> features;
    };
    const PbrVariant pbr_variants[] = {
        {"base", {}},
        {"normal", {"NORMAL_MAP"}},
        {"normal_spec", {"NORMAL_MAP", "SPEC_MAP"}},
        {"normal_spec_fog", {"NORMAL_MAP", "SPEC_MAP", "FOG"}},
        {"normal_spec_shadow", {"NORMAL_MAP", "SPEC_MAP", "SHADOW"}},
        {"spec_fog", {"SPEC_MAP", "FOG"}},
        {"alpha_cutout", {"ALPHA_TEST"}},
        {"alpha_normal", {"ALPHA_TEST", "NORMAL_MAP"}},
        {"emissive", {"EMISSIVE"}},
        {"emissive_fog", {"EMISSIVE", "FOG"}},
        {"vertex_tint", {"VERTEX_COLOR"}},
        {"vertex_fog", {"VERTEX_COLOR", "FOG"}},
        {"full",
         {"NORMAL_MAP", "SPEC_MAP", "FOG", "SHADOW", "EMISSIVE",
          "VERTEX_COLOR"}},
        {"full_cutout",
         {"NORMAL_MAP", "SPEC_MAP", "FOG", "SHADOW", "EMISSIVE",
          "VERTEX_COLOR", "ALPHA_TEST"}},
    };
    for (const auto &v : pbr_variants) {
        std::map<std::string, std::string> defines;
        for (const char *f : v.features)
            defines[f] = "";
        out.push_back(make("pbr", v.name, kPbrUber, defines));
    }

    // Deferred lighting loop sizes.
    for (const char *n : {"1", "2", "4", "8"}) {
        out.push_back(make("deferred", std::string("lights") + n,
                           kDeferredLights, {{"NUM_LIGHTS", n}}));
    }

    // SSAO kernel sizes.
    out.push_back(make("ssao", "kernel8", kSsao, {{"KERNEL", "8"}}));
    out.push_back(make("ssao", "kernel16", kSsao, {{"KERNEL", "16"}}));

    // PCF shadow taps (NxN).
    out.push_back(
        make("shadow", "pcf2", kShadowPcf, {{"PCF_TAPS", "2"}}));
    out.push_back(
        make("shadow", "pcf3", kShadowPcf, {{"PCF_TAPS", "3"}}));
    out.push_back(
        make("shadow", "pcf5", kShadowPcf, {{"PCF_TAPS", "5"}}));

    // Water.
    out.push_back(make("water", "calm", kWater));
    out.push_back(make("water", "stormy", kWater, {{"STORMY", ""}}));

    // Terrain.
    out.push_back(make("terrain", "splat", kTerrain));
    out.push_back(make("terrain", "splat_snow", kTerrain,
                       {{"SNOW", ""}}));

    // Skybox.
    out.push_back(make("sky", "gradient", kSkybox));
    out.push_back(make("sky", "sun", kSkybox, {{"SUN_DISC", ""}}));

    // Car paint (the "Car Chase" nod).
    out.push_back(make("carpaint", "flakes", kCarPaint));

    // Hair (Kajiya-Kay style).
    out.push_back(make("hair", "aniso", kHair));

    // Particles.
    out.push_back(make("particle", "basic", kParticle));
    out.push_back(make("particle", "soft", kParticle, {{"SOFT", ""}}));

    // UI widgets.
    out.push_back(make("ui", "sdf_text", kUiSdf));
    out.push_back(make("ui", "rounded_rect", kUiRoundedRect));
    out.push_back(make("ui", "gradient", kUiGradient));

    // Colour grading.
    out.push_back(make("grade", "matrix", kColorGrade));
    out.push_back(make("grade", "matrix_sat", kColorGrade,
                       {{"SATURATE_PASS", ""}}));
}

} // namespace gsopt::corpus
