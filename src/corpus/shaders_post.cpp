/**
 * @file
 * Post-processing corpus families: blur kernels (including the paper's
 * Listing 1 motivating shader), tonemapping übershader, bloom, depth of
 * field, motion blur, FXAA-style edge filtering, and god rays. These
 * are the loop-bearing shaders where unrolling and the unsafe FP passes
 * have their biggest opportunities.
 */
#include "corpus/corpus.h"

namespace gsopt::corpus {

namespace {

CorpusShader
make(const std::string &family, const std::string &name,
     const char *source, std::map<std::string, std::string> defines = {})
{
    CorpusShader s;
    s.name = family + "/" + name;
    s.family = family;
    s.source = source;
    s.defines = std::move(defines);
    return s;
}

/**
 * Paper Listing 1: weighted 9-tap blur with symmetric constant weights,
 * a constant-trip loop, a weight total that becomes compile-time
 * constant after unrolling, and a `3.0 * ambient` common factor that
 * unsafe reassociation can hoist out of the sum.
 */
const char *kWeighted9 = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform vec4 ambient;
void main() {
    const vec4 weights[9] = vec4[](
        vec4(0.01), vec4(0.05), vec4(0.14), vec4(0.21), vec4(0.18),
        vec4(0.21), vec4(0.14), vec4(0.05), vec4(0.01));
    const vec2 offsets[9] = vec2[](
        vec2(-0.0083), vec2(-0.0062), vec2(-0.0042), vec2(-0.0021),
        vec2(0.0), vec2(0.0021), vec2(0.0042), vec2(0.0062),
        vec2(0.0083));
    float weightTotal = 0.0;
    fragColor = vec4(0.0);
    for (int i = 0; i < 9; i++) {
        weightTotal += weights[i][0];
        fragColor += weights[i] * texture(tex, uv + offsets[i]) * 3.0 *
                     ambient;
    }
    fragColor /= weightTotal;
}
)";

const char *kGaussUber = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform vec2 blur_dir;
#ifndef TAPS
#define TAPS 5
#endif
void main() {
#if TAPS == 5
    const float w[5] = float[](0.0614, 0.2448, 0.3877, 0.2448, 0.0614);
    const int half_taps = 2;
#elif TAPS == 9
    const float w[9] = float[](0.0162, 0.0540, 0.1216, 0.1946, 0.2270,
                               0.1946, 0.1216, 0.0540, 0.0162);
    const int half_taps = 4;
#else
    const float w[13] = float[](0.0049, 0.0164, 0.0451, 0.0924, 0.1434,
                                0.1693, 0.1745, 0.1693, 0.1434, 0.0924,
                                0.0451, 0.0164, 0.0049);
    const int half_taps = 6;
#endif
    vec4 acc = vec4(0.0);
    for (int i = 0; i < TAPS; i++) {
        vec2 offset = blur_dir * (float(i) - float(half_taps));
        acc += texture(tex, uv + offset) * w[i];
    }
    fragColor = acc;
}
)";

const char *kBox4 = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform vec2 texel;
void main() {
    vec4 a = texture(tex, uv + texel * vec2(-0.5, -0.5));
    vec4 b = texture(tex, uv + texel * vec2(0.5, -0.5));
    vec4 c = texture(tex, uv + texel * vec2(-0.5, 0.5));
    vec4 d = texture(tex, uv + texel * vec2(0.5, 0.5));
    fragColor = (a + b + c + d) / 4.0;
}
)";

const char *kBilateral = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform vec2 texel;
uniform float sigma_range;
void main() {
    vec4 center = texture(tex, uv);
    vec4 acc = center;
    float total = 1.0;
    for (int i = 0; i < 7; i++) {
        vec2 offset = texel * (float(i) - 3.0);
        vec4 s = texture(tex, uv + offset);
        vec3 diff = s.rgb - center.rgb;
        float range_w = exp(-dot(diff, diff) / sigma_range);
        float spatial_w = 1.0 - abs(float(i) - 3.0) * 0.25;
        float w = range_w * spatial_w;
        acc += s * w;
        total += w;
    }
    fragColor = acc / total;
}
)";

const char *kRadial = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform vec2 center_pt;
uniform float strength;
void main() {
    vec2 dir = uv - center_pt;
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 8; i++) {
        float scale = 1.0 - strength * float(i) * 0.0125;
        acc += texture(tex, center_pt + dir * scale);
    }
    fragColor = acc * 0.125;
}
)";

const char *kTonemapUber = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D hdr;
uniform float exposure;
uniform float white_point;
void main() {
    vec3 c = texture(hdr, uv).rgb * exposure;
#ifdef ACES
    vec3 a_num = c * (2.51 * c + vec3(0.03));
    vec3 a_den = c * (2.43 * c + vec3(0.59)) + vec3(0.14);
    vec3 mapped = clamp(a_num / a_den, vec3(0.0), vec3(1.0));
#elif defined(FILMIC)
    vec3 x = max(vec3(0.0), c - vec3(0.004));
    vec3 mapped = (x * (6.2 * x + vec3(0.5))) /
                  (x * (6.2 * x + vec3(1.7)) + vec3(0.06));
#elif defined(REINHARD_EXT)
    vec3 num = c * (vec3(1.0) + c / vec3(white_point * white_point));
    vec3 mapped = num / (vec3(1.0) + c);
#else
    vec3 mapped = c / (vec3(1.0) + c);
#endif
#ifdef DITHER
    float n = fract(sin(dot(uv, vec2(12.9898, 78.233))) * 43758.5453);
    mapped += vec3((n - 0.5) / 255.0);
#endif
    fragColor = vec4(pow(mapped, vec3(1.0 / 2.2)), 1.0);
}
)";

const char *kBloomExtract = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D hdr;
uniform float threshold;
uniform float knee;
void main() {
    vec4 c = texture(hdr, uv);
    float l = dot(c.rgb, vec3(0.2126, 0.7152, 0.0722));
    float soft = clamp(l - threshold + knee, 0.0, 2.0 * knee);
    soft = soft * soft / (4.0 * knee + 0.0001);
    float contribution = max(soft, l - threshold) / max(l, 0.0001);
    fragColor = vec4(c.rgb * contribution, c.a);
}
)";

const char *kBloomCombine = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D scene;
uniform sampler2D bloom_a;
uniform sampler2D bloom_b;
uniform float intensity;
void main() {
    vec3 base = texture(scene, uv).rgb;
    vec3 glow = texture(bloom_a, uv).rgb * 0.7 +
                texture(bloom_b, uv).rgb * 0.3;
    fragColor = vec4(base + glow * intensity, 1.0);
}
)";

const char *kDofCoc = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D depth_tex;
uniform float focus_depth;
uniform float focus_range;
uniform float max_coc;
void main() {
    float depth = texture(depth_tex, uv).r;
    float signed_dist = (depth - focus_depth) / focus_range;
    float coc = clamp(signed_dist, -1.0, 1.0) * max_coc;
    fragColor = vec4(coc * 0.5 + 0.5, abs(coc), 0.0, 1.0);
}
)";

const char *kDofGather = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D scene;
uniform sampler2D coc_tex;
uniform vec2 texel;
void main() {
    const vec2 taps[8] = vec2[](
        vec2(1.0, 0.0), vec2(0.707, 0.707), vec2(0.0, 1.0),
        vec2(-0.707, 0.707), vec2(-1.0, 0.0), vec2(-0.707, -0.707),
        vec2(0.0, -1.0), vec2(0.707, -0.707));
    float coc = texture(coc_tex, uv).g;
    vec4 acc = texture(scene, uv);
    for (int i = 0; i < 8; i++) {
        vec2 offset = taps[i] * texel * coc;
        acc += texture(scene, uv + offset);
    }
    fragColor = acc / 9.0;
}
)";

const char *kMotionBlur = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D scene;
uniform sampler2D velocity;
uniform float shutter;
void main() {
    vec2 v = (texture(velocity, uv).rg * 2.0 - vec2(1.0)) * shutter;
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 8; i++) {
        float t = (float(i) + 0.5) / 8.0 - 0.5;
        acc += texture(scene, uv + v * t);
    }
    fragColor = acc / 8.0;
}
)";

const char *kFxaaUber = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D scene;
uniform vec2 texel;
uniform float contrast_threshold;
void main() {
    vec3 center = texture(scene, uv).rgb;
    float lum_c = dot(center, vec3(0.299, 0.587, 0.114));
    float lum_n =
        dot(texture(scene, uv + vec2(0.0, texel.y)).rgb,
            vec3(0.299, 0.587, 0.114));
    float lum_s =
        dot(texture(scene, uv - vec2(0.0, texel.y)).rgb,
            vec3(0.299, 0.587, 0.114));
    float lum_e =
        dot(texture(scene, uv + vec2(texel.x, 0.0)).rgb,
            vec3(0.299, 0.587, 0.114));
    float lum_w =
        dot(texture(scene, uv - vec2(texel.x, 0.0)).rgb,
            vec3(0.299, 0.587, 0.114));
    float lum_min = min(lum_c, min(min(lum_n, lum_s), min(lum_e, lum_w)));
    float lum_max = max(lum_c, max(max(lum_n, lum_s), max(lum_e, lum_w)));
    float range = lum_max - lum_min;
    if (range < contrast_threshold) {
        fragColor = vec4(center, 1.0);
    } else {
        float horizontal = abs(lum_n + lum_s - 2.0 * lum_c);
        float vertical = abs(lum_e + lum_w - 2.0 * lum_c);
        vec2 dir = horizontal >= vertical ? vec2(0.0, texel.y)
                                          : vec2(texel.x, 0.0);
#ifdef HIGH_QUALITY
        vec3 blur1 = texture(scene, uv + dir * 0.5).rgb;
        vec3 blur2 = texture(scene, uv - dir * 0.5).rgb;
        vec3 blur3 = texture(scene, uv + dir).rgb;
        vec3 blur4 = texture(scene, uv - dir).rgb;
        vec3 result = (blur1 + blur2) * 0.35 + (blur3 + blur4) * 0.15;
#else
        vec3 blur1 = texture(scene, uv + dir * 0.5).rgb;
        vec3 blur2 = texture(scene, uv - dir * 0.5).rgb;
        vec3 result = (blur1 + blur2) * 0.5;
#endif
        float blend = smoothstep(0.0, 1.0,
                                 range / max(lum_max, 0.001));
        fragColor = vec4(mix(center, result, blend), 1.0);
    }
}
)";

const char *kGodRays = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D occlusion;
uniform vec2 light_pos;
uniform float density;
uniform float decay;
uniform float ray_weight;
#ifndef RAY_STEPS
#define RAY_STEPS 16
#endif
void main() {
    vec2 delta = (uv - light_pos) * (density / float(RAY_STEPS));
    vec2 pos = uv;
    float illumination = 0.0;
    float falloff = 1.0;
    for (int i = 0; i < RAY_STEPS; i++) {
        pos = pos - delta;
        float sample_v = texture(occlusion, pos).r;
        illumination += sample_v * falloff * ray_weight;
        falloff = falloff * decay;
    }
    vec4 base = texture(occlusion, uv);
    fragColor = base + vec4(illumination);
}
)";

// A 64-step march whose per-step scattering weight folds in a heavy
// spectral phase function. Every phase term is loop-invariant but the
// raw body (~160 instructions x 64 trips) blows the offline unroller's
// instruction budget, so in the canonical pipeline order unroll
// declines and the loop survives; hoisting the phase tree first (licm
// *before* unroll — an ordering no flag subset can express) shrinks
// the body enough for a full unroll. The corpus member behind
// bench/micro_order's phase-ordering headline.
const char *kGodRaysSpectral = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D occlusion;
uniform vec2 light_pos;
uniform float density;
uniform float decay;
uniform float ray_weight;
void main() {
    vec2 delta = (uv - light_pos) * (density / 64.0);
    vec2 pos = uv;
    float illumination = 0.0;
    float falloff = 1.0;
    for (int i = 0; i < 64; i++) {
        float p0 = sin(uv.x * 1.31) * 0.021 + cos(uv.y * 1.73) * 0.017;
        float p1 = sin(uv.x * 2.11) * 0.019 + cos(uv.y * 2.41) * 0.016;
        float p2 = sin(uv.x * 3.07) * 0.018 + cos(uv.y * 3.37) * 0.015;
        float p3 = sin(uv.x * 4.13) * 0.017 + cos(uv.y * 4.51) * 0.014;
        float p4 = sin(uv.x * 5.23) * 0.016 + cos(uv.y * 5.87) * 0.013;
        float p5 = sin(uv.x * 6.29) * 0.015 + cos(uv.y * 6.91) * 0.012;
        float p6 = sin(uv.x * 7.19) * 0.014 + cos(uv.y * 7.79) * 0.011;
        float p7 = sin(uv.x * 8.39) * 0.013 + cos(uv.y * 8.93) * 0.010;
        float p8 = sin(uv.x * 9.43) * 0.012 + cos(uv.y * 9.67) * 0.009;
        float p9 = sin(uv.x * 10.9) * 0.011 + cos(uv.y * 10.3) * 0.008;
        float pa = sin(uv.x * 11.3) * 0.010 + cos(uv.y * 11.7) * 0.007;
        float pb = sin(uv.x * 12.7) * 0.009 + cos(uv.y * 12.1) * 0.006;
        float pc = sin(uv.x * 13.1) * 0.008 + cos(uv.y * 13.9) * 0.005;
        float pd = sin(uv.x * 14.9) * 0.007 + cos(uv.y * 14.3) * 0.004;
        float pe = sin(uv.x * 15.2) * 0.006 + cos(uv.y * 15.8) * 0.003;
        float pf = sin(uv.x * 16.4) * 0.005 + cos(uv.y * 16.6) * 0.002;
        float pg = sin(uv.x * 17.5) * 0.004 + cos(uv.y * 17.2) * 0.001;
        float ph = sin(uv.x * 18.6) * 0.003 + cos(uv.y * 18.4) * 0.002;
        float pi = sin(uv.x * 19.8) * 0.002 + cos(uv.y * 19.4) * 0.001;
        float pj = sin(uv.x * 20.2) * 0.001 + cos(uv.y * 20.6) * 0.002;
        float phase = p0 + p1 + p2 + p3 + p4 + p5 + p6 + p7 + p8 +
                      p9 + pa + pb + pc + pd + pe + pf + pg + ph +
                      pi + pj;
        pos = pos - delta;
        float sample_v = texture(occlusion, pos).r;
        illumination += sample_v * falloff * (ray_weight + phase);
        falloff = falloff * decay;
    }
    vec4 base = texture(occlusion, uv);
    fragColor = base + vec4(illumination);
}
)";

const char *kChromatic = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D scene;
uniform float aberration;
void main() {
    vec2 d = (uv - vec2(0.5)) * aberration;
    float r = texture(scene, uv - d).r;
    float g = texture(scene, uv).g;
    float b = texture(scene, uv + d).b;
    fragColor = vec4(r, g, b, 1.0);
}
)";

const char *kFilmGrain = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D scene;
uniform float time_v;
uniform float grain_amount;
void main() {
    vec4 c = texture(scene, uv);
    float n = fract(sin(dot(uv + vec2(time_v),
                            vec2(12.9898, 78.233))) * 43758.5453);
    vec3 grain = vec3(n - 0.5) * grain_amount;
    float lum = dot(c.rgb, vec3(0.299, 0.587, 0.114));
    float response = 1.0 - lum * 0.8;
    fragColor = vec4(c.rgb + grain * response, c.a);
}
)";

const char *kSharpen = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D scene;
uniform vec2 texel;
uniform float amount;
void main() {
    vec3 c = texture(scene, uv).rgb;
    vec3 n = texture(scene, uv + vec2(0.0, texel.y)).rgb;
    vec3 s = texture(scene, uv - vec2(0.0, texel.y)).rgb;
    vec3 e = texture(scene, uv + vec2(texel.x, 0.0)).rgb;
    vec3 w = texture(scene, uv - vec2(texel.x, 0.0)).rgb;
    vec3 edge = 4.0 * c - n - s - e - w;
    fragColor = vec4(c + edge * amount, 1.0);
}
)";

/**
 * The "careless re-fetch" composite übershader: production UI/post
 * stacks routinely sample the same texel again on every branch path
 * instead of threading the first fetch through. Block-local CSE cannot
 * see across the arms, `hoist` refuses arms containing texture ops, so
 * only a dominance-scoped fetch batcher (tex_batch) or full GVN
 * recovers the duplicate issues; the FOG variant re-fetches inside a
 * constant-trip loop, which licm and tex_batch can each lift.
 */
const char *kCompositeUber = R"(#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D scene;
uniform sampler2D overlay;
uniform float blend;
uniform float threshold;
void main() {
    vec3 base = texture(scene, uv).rgb;
    float lum = dot(base, vec3(0.299, 0.587, 0.114));
    vec3 result = base;
    if (lum > threshold) {
        vec3 hot = texture(scene, uv).rgb * (1.0 + blend);
        result = hot + texture(overlay, uv).rgb * 0.25;
    } else {
        vec3 cool = texture(scene, uv).rgb * 0.85;
        result = cool + texture(overlay, uv).rgb * blend;
    }
#ifdef HDR
    vec3 mapped = result / (result + vec3(1.0));
    result = pow(mapped, vec3(2.0));
#endif
#ifdef FOG
    float fog = 0.0;
    for (int i = 0; i < 12; i++) {
        float depth = texture(scene, uv).a;
        fog += depth * 0.04 + float(i) * 0.001;
    }
    result = result * (1.0 - fog * 0.5) + vec3(fog * 0.08);
#endif
    fragColor = vec4(result, 1.0);
}
)";

} // namespace

void
addPostProcessFamilies(std::vector<CorpusShader> &out)
{
    // blur family
    out.push_back(make("blur", "weighted9", kWeighted9));
    out.push_back(make("blur", "gauss5", kGaussUber, {{"TAPS", "5"}}));
    out.push_back(make("blur", "gauss9", kGaussUber, {{"TAPS", "9"}}));
    out.push_back(make("blur", "gauss13", kGaussUber, {{"TAPS", "13"}}));
    out.push_back(make("blur", "box4", kBox4));
    out.push_back(make("blur", "bilateral7", kBilateral));
    out.push_back(make("blur", "radial8", kRadial));

    // tonemap übershader family
    out.push_back(make("tonemap", "reinhard", kTonemapUber));
    out.push_back(make("tonemap", "reinhard_ext", kTonemapUber,
                       {{"REINHARD_EXT", ""}}));
    out.push_back(make("tonemap", "aces", kTonemapUber, {{"ACES", ""}}));
    out.push_back(
        make("tonemap", "filmic", kTonemapUber, {{"FILMIC", ""}}));
    out.push_back(make("tonemap", "aces_dither", kTonemapUber,
                       {{"ACES", ""}, {"DITHER", ""}}));
    out.push_back(make("tonemap", "filmic_dither", kTonemapUber,
                       {{"FILMIC", ""}, {"DITHER", ""}}));

    // bloom
    out.push_back(make("bloom", "extract", kBloomExtract));
    out.push_back(make("bloom", "combine", kBloomCombine));

    // depth of field
    out.push_back(make("dof", "coc", kDofCoc));
    out.push_back(make("dof", "gather8", kDofGather));

    // motion blur
    out.push_back(make("motion", "blur8", kMotionBlur));

    // FXAA-like
    out.push_back(make("fxaa", "low", kFxaaUber));
    out.push_back(
        make("fxaa", "high", kFxaaUber, {{"HIGH_QUALITY", ""}}));

    // god rays
    out.push_back(
        make("godrays", "march16", kGodRays, {{"RAY_STEPS", "16"}}));
    out.push_back(
        make("godrays", "march32", kGodRays, {{"RAY_STEPS", "32"}}));
    out.push_back(
        make("godrays", "march64_spectral", kGodRaysSpectral));

    // small one-offs
    out.push_back(make("post", "chromatic", kChromatic));
    out.push_back(make("post", "film_grain", kFilmGrain));
    out.push_back(make("post", "sharpen", kSharpen));

    // composite übershader family (careless re-fetch pattern)
    out.push_back(make("composite", "ldr", kCompositeUber));
    out.push_back(make("composite", "hdr", kCompositeUber,
                       {{"HDR", ""}}));
    out.push_back(make("composite", "hdr_fog", kCompositeUber,
                       {{"HDR", ""}, {"FOG", ""}}));
}

} // namespace gsopt::corpus
