/**
 * @file
 * The "simple" corpus family: the numerous tiny shaders that give the
 * paper's size distribution its long low-complexity tail (blits,
 * blends, single-effect fragments). These are the shaders where most
 * optimization flags have nothing to do — the near-zero mass in every
 * violin of Fig 9.
 */
#include "corpus/corpus.h"

namespace gsopt::corpus {

namespace {

CorpusShader
make(const char *name, const char *source,
     std::map<std::string, std::string> defines = {})
{
    CorpusShader s;
    s.name = std::string("simple/") + name;
    s.family = "simple";
    s.source = source;
    s.defines = std::move(defines);
    return s;
}

} // namespace

void
addSimpleFamily(std::vector<CorpusShader> &out)
{
    out.push_back(make("color_fill", R"(#version 450
uniform vec4 fill_color;
out vec4 fragColor;
void main() {
    fragColor = fill_color;
}
)"));

    out.push_back(make("texture_copy", R"(#version 450
uniform sampler2D src;
in vec2 uv;
out vec4 fragColor;
void main() {
    fragColor = texture(src, uv);
}
)"));

    out.push_back(make("premultiply", R"(#version 450
uniform sampler2D src;
in vec2 uv;
out vec4 fragColor;
void main() {
    vec4 c = texture(src, uv);
    fragColor = vec4(c.rgb * c.a, c.a);
}
)"));

    out.push_back(make("grayscale", R"(#version 450
uniform sampler2D src;
in vec2 uv;
out vec4 fragColor;
void main() {
    vec4 c = texture(src, uv);
    float l = dot(c.rgb, vec3(0.299, 0.587, 0.114));
    fragColor = vec4(l, l, l, c.a);
}
)"));

    out.push_back(make("invert", R"(#version 450
uniform sampler2D src;
in vec2 uv;
out vec4 fragColor;
void main() {
    vec4 c = texture(src, uv);
    fragColor = vec4(vec3(1.0) - c.rgb, c.a);
}
)"));

    out.push_back(make("vignette", R"(#version 450
uniform sampler2D src;
uniform float strength;
in vec2 uv;
out vec4 fragColor;
void main() {
    vec4 c = texture(src, uv);
    vec2 d = uv - vec2(0.5);
    float v = 1.0 - strength * dot(d, d) * 2.0;
    fragColor = vec4(c.rgb * v, c.a);
}
)"));

    out.push_back(make("gamma", R"(#version 450
uniform sampler2D src;
uniform float gamma_value;
in vec2 uv;
out vec4 fragColor;
void main() {
    vec4 c = texture(src, uv);
    vec3 g = pow(c.rgb, vec3(1.0 / 2.2) * gamma_value);
    fragColor = vec4(g, c.a);
}
)"));

    out.push_back(make("add_blend", R"(#version 450
uniform sampler2D src_a;
uniform sampler2D src_b;
uniform float blend;
in vec2 uv;
out vec4 fragColor;
void main() {
    vec4 a = texture(src_a, uv);
    vec4 b = texture(src_b, uv);
    fragColor = a + b * blend;
}
)"));

    out.push_back(make("mul_blend", R"(#version 450
uniform sampler2D src_a;
uniform sampler2D src_b;
in vec2 uv;
out vec4 fragColor;
void main() {
    fragColor = texture(src_a, uv) * texture(src_b, uv);
}
)"));

    out.push_back(make("lerp_blend", R"(#version 450
uniform sampler2D src_a;
uniform sampler2D src_b;
uniform float t;
in vec2 uv;
out vec4 fragColor;
void main() {
    fragColor = mix(texture(src_a, uv), texture(src_b, uv), t);
}
)"));

    out.push_back(make("alpha_test", R"(#version 450
uniform sampler2D src;
uniform float cutoff;
in vec2 uv;
out vec4 fragColor;
void main() {
    vec4 c = texture(src, uv);
    if (c.a < cutoff) {
        discard;
    }
    fragColor = c;
}
)"));

    out.push_back(make("swizzle_copy", R"(#version 450
uniform sampler2D src;
in vec2 uv;
out vec4 fragColor;
void main() {
    fragColor = texture(src, uv).bgra;
}
)"));

    out.push_back(make("channel_pack", R"(#version 450
uniform sampler2D src;
in vec2 uv;
out vec4 fragColor;
void main() {
    vec4 c = texture(src, uv);
    vec4 o = vec4(0.0);
    o.x = c.r;
    o.y = c.g * 0.5 + 0.5;
    o.z = c.b * c.a;
    o.w = 1.0;
    fragColor = o;
}
)"));

    out.push_back(make("luminance_threshold", R"(#version 450
uniform sampler2D src;
uniform float threshold;
in vec2 uv;
out vec4 fragColor;
void main() {
    vec4 c = texture(src, uv);
    float l = dot(c.rgb, vec3(0.2126, 0.7152, 0.0722));
    fragColor = l > threshold ? c : vec4(0.0, 0.0, 0.0, c.a);
}
)"));

    out.push_back(make("desaturate", R"(#version 450
uniform sampler2D src;
uniform float amount;
in vec2 uv;
out vec4 fragColor;
void main() {
    vec4 c = texture(src, uv);
    float l = dot(c.rgb, vec3(0.299, 0.587, 0.114));
    fragColor = vec4(mix(c.rgb, vec3(l), amount), c.a);
}
)"));

    out.push_back(make("scanline", R"(#version 450
uniform sampler2D src;
uniform float line_count;
in vec2 uv;
out vec4 fragColor;
void main() {
    vec4 c = texture(src, uv);
    float s = 0.9 + 0.1 * sin(uv.y * line_count * 6.2831853);
    fragColor = vec4(c.rgb * s, c.a);
}
)"));
}

} // namespace gsopt::corpus
