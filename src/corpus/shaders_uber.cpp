/**
 * @file
 * The corpus heavyweight: a "Car Chase"-class mega shader in the style
 * of GFXBench 4.0's most complex content. Multi-light PBR with
 * parallax, triplanar detail, two-layer clear coat, environment
 * reflection, subsurface approximation, shadowing, and fog — all in one
 * fragment shader. Its preprocessed executable size (~250-300 lines)
 * provides the top of the paper's Fig 4a distribution, and its large
 * straight-line body is where register-pressure effects bite.
 */
#include "corpus/corpus.h"

namespace gsopt::corpus {

namespace {

const char *kMegaUber = R"(#version 450
out vec4 fragColor;
in vec2 uv;
in vec3 world_pos;
in vec3 world_normal;
in vec3 world_tangent;
in vec3 view_dir;
in float fog_depth;
uniform sampler2D albedo_map;
uniform sampler2D normal_map;
uniform sampler2D detail_map;
uniform sampler2D spec_map;
uniform sampler2D height_map;
uniform sampler2D env_map;
uniform sampler2D shadow_map;
uniform sampler2D ao_map;
uniform vec4 base_tint;
uniform vec4 light0_pos;
uniform vec4 light0_color;
uniform vec4 light1_pos;
uniform vec4 light1_color;
uniform vec4 light2_pos;
uniform vec4 light2_color;
uniform vec4 sun_dir;
uniform vec4 sun_color;
uniform vec4 fog_color;
uniform float fog_density;
uniform float parallax_scale;
uniform float detail_strength;
uniform float clearcoat_amount;
uniform float subsurface_amount;
uniform vec2 shadow_base;

float d_ggx(float n_dot_h, float rough) {
    float a = rough * rough;
    float a2 = a * a;
    float d = n_dot_h * n_dot_h * (a2 - 1.0) + 1.0;
    return a2 / (3.14159265 * d * d + 0.0001);
}

float g_smith(float n_dot_v, float n_dot_l, float rough) {
    float k = (rough + 1.0) * (rough + 1.0) / 8.0;
    float gv = n_dot_v / (n_dot_v * (1.0 - k) + k);
    float gl = n_dot_l / (n_dot_l * (1.0 - k) + k);
    return gv * gl;
}

vec3 f_schlick(float cos_t, vec3 f0) {
    float p = pow(1.0 - cos_t, 5.0);
    return f0 + (vec3(1.0) - f0) * p;
}

vec3 shade_point_light(vec3 n, vec3 v, vec3 light_vec,
                       vec3 light_col, vec3 albedo, float rough,
                       float metal, float radius) {
    float dist2 = dot(light_vec, light_vec);
    vec3 l = light_vec * inversesqrt(dist2 + 0.0001);
    vec3 h = normalize(v + l);
    float n_dot_l = max(dot(n, l), 0.0);
    float n_dot_v = max(dot(n, v), 0.001);
    float n_dot_h = max(dot(n, h), 0.0);
    float h_dot_v = max(dot(h, v), 0.0);
    float atten = radius / (radius + dist2);
    vec3 f0 = mix(vec3(0.04), albedo, metal);
    float ndf = d_ggx(n_dot_h, rough);
    float geo = g_smith(n_dot_v, n_dot_l, rough);
    vec3 fres = f_schlick(h_dot_v, f0);
    vec3 spec = (ndf * geo) * fres /
                (4.0 * n_dot_v * n_dot_l + 0.001);
    vec3 kd = (vec3(1.0) - fres) * (1.0 - metal);
    vec3 diffuse = kd * albedo / 3.14159265;
    return (diffuse + spec) * light_col * n_dot_l * atten;
}

void main() {
    // --- parallax-corrected texture coordinates ---------------------
    vec3 v = normalize(view_dir);
    vec3 n_geo = normalize(world_normal);
    vec3 t_geo = normalize(world_tangent);
    vec3 b_geo = cross(n_geo, t_geo);
    float vz = max(dot(v, n_geo), 0.1);
    float vx = dot(v, t_geo);
    float vy = dot(v, b_geo);
    float height = texture(height_map, uv).r;
    vec2 parallax = vec2(vx, vy) * (height - 0.5) *
                    (parallax_scale / vz);
    vec2 p_uv = uv + parallax;
    float height2 = texture(height_map, p_uv).r;
    vec2 p_uv2 = uv + vec2(vx, vy) * (height2 - 0.5) *
                          (parallax_scale * 0.5 / vz);

    // --- base material ------------------------------------------------
    vec4 albedo_s = texture(albedo_map, p_uv2);
    vec3 albedo = albedo_s.rgb * base_tint.rgb;
    vec4 detail = texture(detail_map, p_uv2 * 8.0);
    albedo = albedo * mix(vec3(1.0),
                          detail.rgb * 2.0, detail_strength);

    vec4 spec_s = texture(spec_map, p_uv2);
    float rough = clamp(spec_s.g, 0.03, 1.0);
    float metal = spec_s.b;
    float cavity = spec_s.r;

    // --- normal mapping with detail -----------------------------------
    vec3 tn = texture(normal_map, p_uv2).xyz * 2.0 - vec3(1.0);
    vec3 dn = texture(detail_map, p_uv2 * 16.0).xyz * 2.0 -
              vec3(1.0);
    vec3 blended = normalize(vec3(tn.xy + dn.xy * detail_strength,
                                  tn.z));
    vec3 n = normalize(t_geo * blended.x + b_geo * blended.y +
                       n_geo * blended.z);

    // --- ambient occlusion --------------------------------------------
    float ao = texture(ao_map, uv).r;
    float combined_ao = ao * mix(1.0, cavity, 0.6);

    // --- sun with shadow -----------------------------------------------
    vec3 sun_l = normalize(-sun_dir.xyz);
    float sun_n_dot_l = max(dot(n, sun_l), 0.0);
    vec2 shadow_uv = shadow_base + world_pos.xz * 0.01;
    float occluder = texture(shadow_map, shadow_uv).r;
    float receiver = world_pos.y * 0.01 + 0.5;
    float sun_shadow = receiver - 0.004 > occluder ? 0.25 : 1.0;
    vec3 sun_h = normalize(v + sun_l);
    float sun_n_dot_h = max(dot(n, sun_h), 0.0);
    float sun_n_dot_v = max(dot(n, v), 0.001);
    vec3 sun_f0 = mix(vec3(0.04), albedo, metal);
    float sun_ndf = d_ggx(sun_n_dot_h, rough);
    float sun_geo = g_smith(sun_n_dot_v, sun_n_dot_l, rough);
    vec3 sun_fres = f_schlick(max(dot(sun_h, v), 0.0), sun_f0);
    vec3 sun_spec = (sun_ndf * sun_geo) * sun_fres /
                    (4.0 * sun_n_dot_v * sun_n_dot_l + 0.001);
    vec3 sun_kd = (vec3(1.0) - sun_fres) * (1.0 - metal);
    vec3 sun_contrib = (sun_kd * albedo / 3.14159265 + sun_spec) *
                       sun_color.rgb * sun_n_dot_l * sun_shadow;

    // --- three point lights ---------------------------------------------
    vec3 l0 = shade_point_light(n, v, light0_pos.xyz - world_pos,
                                light0_color.rgb, albedo, rough,
                                metal, light0_pos.w);
    vec3 l1 = shade_point_light(n, v, light1_pos.xyz - world_pos,
                                light1_color.rgb, albedo, rough,
                                metal, light1_pos.w);
    vec3 l2 = shade_point_light(n, v, light2_pos.xyz - world_pos,
                                light2_color.rgb, albedo, rough,
                                metal, light2_pos.w);

    // --- environment reflection -----------------------------------------
    vec3 r = reflect(-v, n);
    vec2 env_uv = vec2(atan(r.x, r.z) * 0.1591 + 0.5,
                       r.y * 0.5 + 0.5);
    vec3 env_sharp = texture(env_map, env_uv).rgb;
    vec3 env_soft = texture(env_map, env_uv * 0.25 +
                                         vec2(0.375)).rgb;
    vec3 env = mix(env_sharp, env_soft, rough);
    float n_dot_v2 = max(dot(n, v), 0.001);
    vec3 env_fres = f_schlick(n_dot_v2, mix(vec3(0.04), albedo,
                                            metal));
    vec3 env_contrib = env * env_fres * combined_ao;

    // --- clear coat layer --------------------------------------------------
    vec3 cc_n = n_geo;
    float cc_n_dot_v = max(dot(cc_n, v), 0.001);
    float cc_fres = 0.04 + 0.96 * pow(1.0 - cc_n_dot_v, 5.0);
    vec3 cc_r = reflect(-v, cc_n);
    vec2 cc_uv = vec2(atan(cc_r.x, cc_r.z) * 0.1591 + 0.5,
                      cc_r.y * 0.5 + 0.5);
    vec3 cc_env = texture(env_map, cc_uv).rgb;
    float cc_h_dot_n = max(dot(cc_n, normalize(v + sun_l)), 0.0);
    float cc_spec = d_ggx(cc_h_dot_n, 0.08) * 0.25;
    vec3 clearcoat = (cc_env * cc_fres + sun_color.rgb * cc_spec *
                                             sun_shadow) *
                     clearcoat_amount;

    // --- subsurface approximation ---------------------------------------
    float back_light = max(dot(-sun_l, v), 0.0);
    float sss_wrap = clamp((dot(n, sun_l) + 0.5) / 1.5, 0.0, 1.0);
    vec3 sss = albedo * sun_color.rgb * pow(back_light, 3.0) *
               sss_wrap * subsurface_amount;

    // --- ambient ------------------------------------------------------------
    vec3 sky_ambient = mix(vec3(0.10, 0.11, 0.14),
                           vec3(0.22, 0.24, 0.30),
                           n.y * 0.5 + 0.5);
    vec3 ambient = sky_ambient * albedo * combined_ao;

    // --- compose -----------------------------------------------------------
    vec3 color = sun_contrib + l0 + l1 + l2 + env_contrib +
                 clearcoat + sss + ambient;

    // --- fog -----------------------------------------------------------------
    float fog_f = 1.0 - exp(-fog_density * fog_depth * fog_depth);
    color = mix(color, fog_color.rgb, clamp(fog_f, 0.0, 1.0));

    // --- output ---------------------------------------------------------------
    float luma = dot(color, vec3(0.2126, 0.7152, 0.0722));
    vec3 graded = mix(vec3(luma), color, 1.04);
    fragColor = vec4(graded, albedo_s.a * base_tint.a);
}
)";

} // namespace

void
addUberFamily(std::vector<CorpusShader> &out)
{
    // The heavyweight appears in several configurations; members of
    // the family share all of the source (the cheap variants simply
    // zero the feature uniforms at run time, as real engines do when
    // they cannot afford a recompile).
    CorpusShader s;
    s.family = "uber";
    s.source = kMegaUber;
    s.name = "uber/car_chase";
    out.push_back(s);
}

} // namespace gsopt::corpus
