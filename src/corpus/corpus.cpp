#include "corpus/corpus.h"

#include <stdexcept>

namespace gsopt::corpus {

const std::vector<CorpusShader> &
corpus()
{
    static const std::vector<CorpusShader> shaders = [] {
        std::vector<CorpusShader> out;
        addSimpleFamily(out);
        addPostProcessFamilies(out);
        addSceneFamilies(out);
        addProceduralFamilies(out);
        addUberFamily(out);
        return out;
    }();
    return shaders;
}

const CorpusShader *
findShader(const std::string &name)
{
    for (const auto &s : corpus()) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

const CorpusShader &
motivatingExample()
{
    const CorpusShader *s = findShader("blur/weighted9");
    if (!s)
        throw std::logic_error("motivating example missing from corpus");
    return *s;
}

} // namespace gsopt::corpus
