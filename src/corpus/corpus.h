/**
 * @file
 * The synthetic GFXBench-4.0-like shader corpus.
 *
 * GFXBench 4.0 itself is closed source; the paper extracted its GLSL
 * from the Mesa driver at run time. This corpus reproduces the
 * *population properties* the paper reports rather than any specific
 * proprietary shader:
 *
 *  - ~95 fragment shaders in ~25 families;
 *  - übershader families: one base source specialised via `#define`s,
 *    so members share most code (paper Section IV-A);
 *  - power-law size distribution: many trivial shaders, a long tail,
 *    maximum around 300 preprocessed lines (Fig 4a);
 *  - loops are rare and mostly constant-trip (blur kernels, PCF taps,
 *    light loops); control flow is 1-3 branches with large basic
 *    blocks (Section V-A);
 *  - the paper's Listing 1 motivating shader is included verbatim in
 *    spirit as `blur/weighted9`.
 */
#ifndef GSOPT_CORPUS_CORPUS_H
#define GSOPT_CORPUS_CORPUS_H

#include <map>
#include <string>
#include <vector>

namespace gsopt::corpus {

/** One corpus entry: a family member with its specialisation. */
struct CorpusShader
{
    std::string name;   ///< unique, e.g. "pbr/normal_spec_fog"
    std::string family; ///< übershader family, e.g. "pbr"
    std::string source; ///< raw GLSL (may contain directives)
    std::map<std::string, std::string> defines; ///< specialisation

    /** Unique key used for seeds and reports. */
    const std::string &key() const { return name; }
};

/** Build the full corpus (deterministic order and contents). */
const std::vector<CorpusShader> &corpus();

/** Find one entry by name (nullptr if absent). */
const CorpusShader *findShader(const std::string &name);

/** The motivating-example shader of paper Listing 1 / Fig 3. */
const CorpusShader &motivatingExample();

// Family builders (exposed for tests; corpus() assembles them all).
void addSimpleFamily(std::vector<CorpusShader> &out);
void addPostProcessFamilies(std::vector<CorpusShader> &out);
void addSceneFamilies(std::vector<CorpusShader> &out);
void addProceduralFamilies(std::vector<CorpusShader> &out);
void addUberFamily(std::vector<CorpusShader> &out);

} // namespace gsopt::corpus

#endif // GSOPT_CORPUS_CORPUS_H
