#include "support/fault.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "support/governor.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/time.h"

namespace gsopt::fault {

namespace detail {
std::atomic<bool> gActive{false};
} // namespace detail

namespace {

/** Runtime state of one armed site: immutable config + atomic draw
 * counter, so concurrent probes each consume a unique draw index. */
struct SiteState
{
    SiteConfig cfg;
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> fired{0};
};

/** An installed plan. Immutable once installed; swapped wholesale by
 * ScopedFaultPlan / the env bootstrap (install-before-spawn contract,
 * so probes never race an installation). */
struct Installation
{
    std::vector<std::unique_ptr<SiteState>> sites;
};

Installation *gCurrent = nullptr;
std::mutex gInstallMutex;

Installation *
buildInstallation(const FaultPlan &plan)
{
    auto *inst = new Installation;
    for (const SiteConfig &cfg : plan.sites) {
        auto state = std::make_unique<SiteState>();
        state->cfg = cfg;
        inst->sites.push_back(std::move(state));
    }
    return inst;
}

void
install(Installation *inst)
{
    std::lock_guard lock(gInstallMutex);
    gCurrent = inst;
    detail::gActive.store(inst != nullptr && !inst->sites.empty(),
                          std::memory_order_relaxed);
}

SiteState *
findSite(const char *site)
{
    Installation *inst = gCurrent;
    if (!inst)
        return nullptr;
    for (const auto &s : inst->sites) {
        if (s->cfg.site == site)
            return s.get();
    }
    return nullptr;
}

/** One deterministic Bernoulli draw for this site's next call index. */
bool
draw(SiteState &s)
{
    const uint64_t index = s.calls.fetch_add(1, std::memory_order_relaxed);
    if (s.cfg.rate <= 0.0)
        return false;
    Rng rng(hashCombine(s.cfg.seed, index));
    if (rng.uniform() >= s.cfg.rate)
        return false;
    s.fired.fetch_add(1, std::memory_order_relaxed);
    return true;
}

/** Env bootstrap: GSOPT_FAULTS installs a process-wide plan once at
 * start-up. A malformed spec aborts loudly (same policy as a bad
 * GSOPT_EXTRA_PASSES) — a silently dropped fault plan would let a CI
 * fault job pass without injecting anything. */
const bool gEnvInstalled = [] {
    const char *env = std::getenv("GSOPT_FAULTS");
    if (!env || !*env)
        return false;
    try {
        install(buildInstallation(FaultPlan::parse(env)));
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "GSOPT_FAULTS: %s\n", e.what());
        std::abort();
    }
    return true;
}();

} // namespace

const std::vector<std::string> &
knownSites()
{
    static const std::vector<std::string> sites = {
        "driver.compile", "runtime.measure", "shard.write",
        "shard.read",     "worker.item",     "ipc.send",
        "ipc.recv",
    };
    return sites;
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &entry : split(spec, ',')) {
        const std::string_view e = trim(entry);
        if (e.empty())
            continue;
        const std::vector<std::string> fields = split(e, ':');
        if (fields.size() < 3 || fields.size() > 4)
            throw std::invalid_argument(
                "fault entry '" + std::string(e) +
                "' is not site:rate:seed[:mode]");
        SiteConfig cfg;
        cfg.site = std::string(trim(fields[0]));
        bool known = false;
        for (const std::string &s : knownSites())
            known = known || s == cfg.site;
        if (!known)
            throw std::invalid_argument("unknown fault site '" +
                                        cfg.site + "'");
        char *end = nullptr;
        cfg.rate = std::strtod(fields[1].c_str(), &end);
        if (end == fields[1].c_str() || cfg.rate < 0.0 ||
            cfg.rate > 1.0)
            throw std::invalid_argument("fault rate '" + fields[1] +
                                        "' not in [0,1]");
        cfg.seed = std::strtoull(fields[2].c_str(), &end, 10);
        if (end == fields[2].c_str())
            throw std::invalid_argument("fault seed '" + fields[2] +
                                        "' is not an integer");
        // Tearing is the natural failure of a write site; everything
        // else defaults to a thrown transient.
        cfg.mode = cfg.site == "shard.write" ? Mode::Tear : Mode::Throw;
        if (fields.size() == 4) {
            const std::string_view m = trim(fields[3]);
            if (m == "throw")
                cfg.mode = Mode::Throw;
            else if (m == "delay")
                cfg.mode = Mode::Delay;
            else if (m == "tear")
                cfg.mode = Mode::Tear;
            else if (m == "stall")
                cfg.mode = Mode::Stall;
            else
                throw std::invalid_argument("unknown fault mode '" +
                                            std::string(m) + "'");
        }
        plan.sites.push_back(std::move(cfg));
    }
    return plan;
}

namespace detail {

void
pointSlow(const char *site, const std::string &detailMsg)
{
    SiteState *s = findSite(site);
    if (!s || !draw(*s))
        return;
    switch (s->cfg.mode) {
    case Mode::Delay: {
        // Deterministic sub-millisecond stall (scheduler jitter, a
        // slow IO round trip) drawn from the same seed stream.
        Rng rng(hashCombine(s->cfg.seed ^ 0x5157ull,
                            s->calls.load(std::memory_order_relaxed)));
        std::this_thread::sleep_for(
            std::chrono::microseconds(50 + rng.below(450)));
        return;
    }
    case Mode::Stall: {
        // A hang, not an error: sleep until just past the governed
        // deadline and return normally, so only a caller that actually
        // checks its deadline afterwards detects the loss. Sleeps are
        // bounded (2 s) so a stall against a generous-or-absent
        // deadline degrades to a long delay instead of hanging a test.
        constexpr uint64_t kMaxStallNs = 2'000'000'000ull;
        uint64_t stallNs = kMaxStallNs / 4;
        if (governor::Budget *b = governor::current();
            b && b->hasDeadline()) {
            const uint64_t now = nowNs();
            const uint64_t past = b->deadlineNs() + 2'000'000ull;
            stallNs = past > now ? past - now : 0;
        }
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(std::min(stallNs, kMaxStallNs)));
        return;
    }
    case Mode::Throw:
    case Mode::Tear: // a tear mode at a plain point degrades to throw
        throw TransientError(
            "injected fault at " + std::string(site) +
            (detailMsg.empty() ? std::string() : " (" + detailMsg + ")"));
    }
}

size_t
tearPointSlow(const char *site, size_t size)
{
    SiteState *s = findSite(site);
    if (!s || s->cfg.mode != Mode::Tear || size == 0 || !draw(*s))
        return size;
    Rng rng(hashCombine(s->cfg.seed ^ 0x7ea2ull,
                        s->calls.load(std::memory_order_relaxed)));
    return static_cast<size_t>(rng.below(size)); // strictly < size
}

bool
triggeredSlow(const char *site)
{
    SiteState *s = findSite(site);
    return s && draw(*s);
}

} // namespace detail

SiteStats
siteStats(const std::string &site)
{
    SiteStats stats;
    if (SiteState *s = findSite(site.c_str())) {
        stats.evaluations = s->calls.load(std::memory_order_relaxed);
        stats.injected = s->fired.load(std::memory_order_relaxed);
    }
    return stats;
}

ScopedFaultPlan::ScopedFaultPlan(const std::string &spec)
    : ScopedFaultPlan(FaultPlan::parse(spec))
{
}

ScopedFaultPlan::ScopedFaultPlan(FaultPlan plan) : prev_(gCurrent)
{
    install(buildInstallation(plan));
}

ScopedFaultPlan::~ScopedFaultPlan()
{
    Installation *mine = gCurrent;
    install(static_cast<Installation *>(prev_));
    delete mine;
}

} // namespace gsopt::fault
