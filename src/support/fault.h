/**
 * @file
 * Deterministic, seeded fault injection for the campaign runtime.
 *
 * Production-shaped failures — a flaky driver compile, a timing query
 * that errors out, a torn shard write, a worker that dies mid-item —
 * are modelled as named *fault sites* compiled into the real code
 * paths. A site does nothing until a FaultPlan arms it; an armed site
 * draws from a seeded Rng on every evaluation and fires at the
 * configured rate, so a given (plan, call sequence) always injects the
 * same faults. Plans come from the GSOPT_FAULTS environment variable
 * ("site:rate:seed[:mode],...") parsed once at start-up, or from a
 * ScopedFaultPlan RAII in tests (same idiom as ScopedExtraPasses).
 *
 * The hot path stays hot: with no plan installed, every probe is one
 * relaxed atomic load and a predicted-not-taken branch.
 *
 * Registered sites:
 *   driver.compile   the vendor JIT fails a compilation (transient)
 *   runtime.measure  the timing harness fails a measurement (transient)
 *   shard.write      a shard checkpoint write tears mid-body
 *   shard.read       a shard load fails (treated as a cache miss)
 *   worker.item      a campaign (shader x device) work item dies
 *   ipc.send         a distrib frame send fails (tear = die mid-send)
 *   ipc.recv         a distrib frame receive fails
 */
#ifndef GSOPT_SUPPORT_FAULT_H
#define GSOPT_SUPPORT_FAULT_H

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace gsopt::fault {

/**
 * A failure that is expected to succeed on retry (the fault-injection
 * analogue of EAGAIN). support/retry retries exactly this type;
 * anything else propagates as a real error.
 */
class TransientError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** What an armed site does when it fires. */
enum class Mode {
    Throw, ///< throw TransientError
    Delay, ///< sleep a deterministic sub-millisecond duration
    Tear,  ///< truncate the write guarded by tearPoint()
    Stall, ///< sleep past the governed deadline (watchdog proof)
};

/** Configuration of one armed site. */
struct SiteConfig
{
    std::string site;      ///< one of the registered site names
    double rate = 0.0;     ///< firing probability per evaluation [0,1]
    uint64_t seed = 0;     ///< deterministic draw seed
    Mode mode = Mode::Throw;
};

/** A set of armed sites. */
struct FaultPlan
{
    std::vector<SiteConfig> sites;

    /**
     * Parse "site:rate:seed[:mode],..." (mode: throw|delay|tear|stall,
     * default throw except shard.write which defaults to tear). Throws
     * std::invalid_argument on syntax errors or unregistered sites.
     */
    static FaultPlan parse(const std::string &spec);
};

namespace detail {
extern std::atomic<bool> gActive;
void pointSlow(const char *site, const std::string &detail);
size_t tearPointSlow(const char *site, size_t size);
bool triggeredSlow(const char *site);
} // namespace detail

/** Is any fault plan installed? One relaxed load. */
inline bool
active()
{
    return detail::gActive.load(std::memory_order_relaxed);
}

/**
 * Evaluate fault site @p site. No-op without a plan arming it. May
 * throw TransientError (Mode::Throw) or sleep briefly (Mode::Delay);
 * Mode::Tear at a plain point behaves like Throw. Mode::Stall sleeps
 * until just past the ambient governor deadline and returns normally —
 * a hung driver call, proven dead only by the caller's next deadline
 * check (bounded fallback sleep when the thread is ungoverned, so an
 * unarmed test cannot hang). @p detail is folded into the message.
 */
inline void
point(const char *site, const std::string &detail = std::string())
{
    if (active())
        detail::pointSlow(site, detail);
}

/**
 * Evaluate tear site @p site guarding a write of @p size bytes.
 * Returns @p size normally; when a Mode::Tear fault fires, returns a
 * strictly smaller prefix length — the caller must write only that
 * many bytes and then abandon the write, simulating a crash mid-write.
 * Never throws.
 */
inline size_t
tearPoint(const char *site, size_t size)
{
    if (active())
        return detail::tearPointSlow(site, size);
    return size;
}

/**
 * Evaluate @p site and report whether a fault fired, without throwing.
 * For call sites whose failure contract is a boolean (loadShard).
 */
inline bool
triggered(const char *site)
{
    if (active())
        return detail::triggeredSlow(site);
    return false;
}

/** Per-site evaluation/injection counters (for tests and reports). */
struct SiteStats
{
    uint64_t evaluations = 0; ///< probe calls while armed
    uint64_t injected = 0;    ///< faults actually fired
};

/** Counters for @p site under the currently installed plan (zeros when
 * the site is not armed). Counters reset when a plan is installed. */
SiteStats siteStats(const std::string &site);

/** The registered site names (the valid vocabulary of plans). */
const std::vector<std::string> &knownSites();

/**
 * RAII plan installation for tests: installs @p plan on construction
 * (resetting all site counters), restores the previous plan on
 * destruction. Nest in LIFO order; do not install while worker threads
 * are actively probing (install-before-spawn, like pass registration).
 */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(const std::string &spec);
    explicit ScopedFaultPlan(FaultPlan plan);
    ~ScopedFaultPlan();
    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;

  private:
    void *prev_; ///< opaque previous installation
};

} // namespace gsopt::fault

#endif // GSOPT_SUPPORT_FAULT_H
