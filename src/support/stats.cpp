#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace gsopt {

std::string
Summary::str() const
{
    std::ostringstream os;
    os.precision(4);
    os << "n=" << count << " min=" << min << " q1=" << q1
       << " med=" << median << " q3=" << q3 << " max=" << max
       << " mean=" << mean << " sd=" << stddev;
    return os.str();
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values[0];
    const double rank = (p / 100.0) * (values.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary
summarize(const std::vector<double> &values)
{
    Summary s;
    if (values.empty())
        return s;
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    s.count = sorted.size();
    s.min = sorted.front();
    s.max = sorted.back();
    s.q1 = percentile(sorted, 25.0);
    s.median = percentile(sorted, 50.0);
    s.q3 = percentile(sorted, 75.0);
    double sum = 0.0;
    for (double v : sorted)
        sum += v;
    s.mean = sum / static_cast<double>(sorted.size());
    double var = 0.0;
    for (double v : sorted)
        var += (v - s.mean) * (v - s.mean);
    s.stddev = sorted.size() > 1
                   ? std::sqrt(var / static_cast<double>(sorted.size() - 1))
                   : 0.0;
    return s;
}

std::vector<HistogramBin>
histogram(const std::vector<double> &values, int bins, double lo, double hi)
{
    std::vector<HistogramBin> out;
    if (bins <= 0 || hi <= lo)
        return out;
    const double width = (hi - lo) / bins;
    out.resize(static_cast<size_t>(bins));
    for (int i = 0; i < bins; ++i) {
        out[i].lo = lo + width * i;
        out[i].hi = lo + width * (i + 1);
    }
    for (double v : values) {
        int idx = static_cast<int>((v - lo) / width);
        idx = std::clamp(idx, 0, bins - 1);
        ++out[static_cast<size_t>(idx)].count;
    }
    return out;
}

std::vector<HistogramBin>
histogram(const std::vector<double> &values, int bins)
{
    if (values.empty())
        return {};
    const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    double lo = *mn, hi = *mx;
    if (hi <= lo)
        hi = lo + 1.0;
    return histogram(values, bins, lo, hi);
}

std::string
renderHistogram(const std::vector<HistogramBin> &bins, int width)
{
    size_t max_count = 1;
    for (const auto &b : bins)
        max_count = std::max(max_count, b.count);
    std::ostringstream os;
    for (const auto &b : bins) {
        const int bar =
            static_cast<int>(static_cast<double>(b.count) * width /
                             static_cast<double>(max_count));
        os.precision(4);
        os << "[" << b.lo << ", " << b.hi << ")\t";
        for (int i = 0; i < bar; ++i)
            os << '#';
        os << ' ' << b.count << "\n";
    }
    return os.str();
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomeanSpeedup(const std::vector<double> &speedups)
{
    if (speedups.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double s : speedups)
        log_sum += std::log(std::max(1e-9, 1.0 + s));
    return std::exp(log_sum / static_cast<double>(speedups.size())) - 1.0;
}

} // namespace gsopt
