/**
 * @file
 * Diagnostics: source locations, errors, and the diagnostic engine used by
 * every stage of the shader compiler (preprocessor, lexer, parser, sema,
 * lowering, verifier).
 */
#ifndef GSOPT_SUPPORT_DIAG_H
#define GSOPT_SUPPORT_DIAG_H

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace gsopt {

/** A position within a named source buffer (1-based line/column). */
struct SourceLoc
{
    int line = 0;
    int column = 0;

    bool valid() const { return line > 0; }
    std::string str() const;
};

/** Severity of a reported diagnostic. */
enum class Severity { Note, Warning, Error };

/** A single diagnostic message attached to a source location. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    SourceLoc loc;
    std::string message;

    /** Render as "line:col: error: message" (the location prefix is
     * omitted when loc is invalid). */
    std::string str() const;
};

/**
 * Exception thrown when compilation cannot continue. Carries the full
 * diagnostic list accumulated so far.
 */
class CompileError : public std::runtime_error
{
  public:
    explicit CompileError(std::vector<Diagnostic> diags);

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

  private:
    std::vector<Diagnostic> diags_;
};

/**
 * Collects diagnostics during a compilation stage.
 *
 * Stages call error()/warning() as they go; callers check hasErrors() (or
 * let the stage throw via checkpoint()) once a phase completes.
 */
class DiagEngine
{
  public:
    void error(SourceLoc loc, std::string message);
    void warning(SourceLoc loc, std::string message);
    void note(SourceLoc loc, std::string message);

    bool hasErrors() const { return errorCount_ > 0; }
    bool hasWarnings() const { return warningCount_ > 0; }
    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

    /** Throw CompileError if any error has been reported. */
    void checkpoint() const;

    /**
     * Deliver every warning to the process-wide warning sink (see
     * setWarningSink). Entry points whose success contract only checks
     * hasErrors() — compileShader and everything above it — call this
     * so warnings are never silently dropped. No-op without warnings.
     */
    void reportWarnings() const;

    /** Render every diagnostic, one per line. */
    std::string str() const;

  private:
    std::vector<Diagnostic> diags_;
    int errorCount_ = 0;
    int warningCount_ = 0;
};

/**
 * Re-point where DiagEngine::reportWarnings delivers warnings. The
 * default sink prints Diagnostic::str() to stderr; a long-running
 * service (the ROADMAP's tuner daemon) re-points it at its response or
 * log channel. Pass nullptr to restore the default. Thread-safe.
 */
void setWarningSink(std::function<void(const Diagnostic &)> sink);

} // namespace gsopt

#endif // GSOPT_SUPPORT_DIAG_H
