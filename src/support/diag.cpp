#include "support/diag.h"

#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>

namespace gsopt {

namespace {

std::mutex gWarningSinkMutex;
std::shared_ptr<const std::function<void(const Diagnostic &)>>
    gWarningSink;

std::shared_ptr<const std::function<void(const Diagnostic &)>>
currentWarningSink()
{
    std::lock_guard lock(gWarningSinkMutex);
    return gWarningSink;
}

} // namespace

std::string
SourceLoc::str() const
{
    std::ostringstream os;
    os << line << ":" << column;
    return os.str();
}

std::string
Diagnostic::str() const
{
    const char *sev = severity == Severity::Error     ? "error"
                      : severity == Severity::Warning ? "warning"
                                                      : "note";
    std::ostringstream os;
    // Diagnostics without a source position (e.g. the tuner's
    // degenerate-baseline warning) render without the bogus "0:0:".
    if (loc.valid())
        os << loc.str() << ": ";
    os << sev << ": " << message;
    return os.str();
}

CompileError::CompileError(std::vector<Diagnostic> diags)
    : std::runtime_error(diags.empty() ? std::string("compile error")
                                       : diags.front().str()),
      diags_(std::move(diags))
{
}

void
DiagEngine::error(SourceLoc loc, std::string message)
{
    diags_.push_back({Severity::Error, loc, std::move(message)});
    ++errorCount_;
}

void
DiagEngine::warning(SourceLoc loc, std::string message)
{
    diags_.push_back({Severity::Warning, loc, std::move(message)});
    ++warningCount_;
}

void
DiagEngine::note(SourceLoc loc, std::string message)
{
    diags_.push_back({Severity::Note, loc, std::move(message)});
}

void
DiagEngine::checkpoint() const
{
    if (hasErrors())
        throw CompileError(diags_);
}

void
DiagEngine::reportWarnings() const
{
    if (warningCount_ == 0)
        return;
    const auto sink = currentWarningSink();
    for (const Diagnostic &d : diags_) {
        if (d.severity != Severity::Warning)
            continue;
        if (sink && *sink)
            (*sink)(d);
        else
            std::fprintf(stderr, "%s\n", d.str().c_str());
    }
}

void
setWarningSink(std::function<void(const Diagnostic &)> sink)
{
    std::lock_guard lock(gWarningSinkMutex);
    if (sink)
        gWarningSink = std::make_shared<
            const std::function<void(const Diagnostic &)>>(
            std::move(sink));
    else
        gWarningSink = nullptr;
}

std::string
DiagEngine::str() const
{
    std::ostringstream os;
    for (const auto &d : diags_)
        os << d.str() << "\n";
    return os.str();
}

} // namespace gsopt
