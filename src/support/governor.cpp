#include "support/governor.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "support/time.h"

namespace gsopt::governor {

namespace detail {
thread_local Budget *tlBudget = nullptr;
} // namespace detail

namespace {

struct DimInfo
{
    const char *name;   ///< stable name used in ResourceExhausted
    const char *envVar; ///< GSOPT_BUDGET_* suffix owner
};

constexpr DimInfo kDims[kDimCount] = {
    {"preproc-bytes", "GSOPT_BUDGET_PREPROC_BYTES"},
    {"tokens", "GSOPT_BUDGET_TOKENS"},
    {"parse-depth", "GSOPT_BUDGET_PARSE_DEPTH"},
    {"sema-depth", "GSOPT_BUDGET_SEMA_DEPTH"},
    {"ir-instrs", "GSOPT_BUDGET_IR_INSTRS"},
    {"arena-bytes", "GSOPT_BUDGET_ARENA_BYTES"},
    {"pass-steps", "GSOPT_BUDGET_PASS_STEPS"},
    {"interp-steps", "GSOPT_BUDGET_INTERP_STEPS"},
};

/** Parse a non-negative integer env var; malformed values abort loudly
 * (a silently dropped budget would let a governed CI leg prove
 * nothing — same policy as a bad GSOPT_FAULTS). */
uint64_t
envU64(const char *name)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0') {
        std::fprintf(stderr, "%s: '%s' is not a non-negative integer\n",
                     name, env);
        std::abort();
    }
    return static_cast<uint64_t>(v);
}

std::string
exhaustedMessage(const char *dimension, const char *stage, uint64_t limit,
                 uint64_t used)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "resource exhausted: %s cap %" PRIu64
                  " exceeded at %s (used %" PRIu64 ")",
                  dimension, limit, stage, used);
    return buf;
}

/** The ambient request caps: env values, overridable by
 * ScopedAmbientCaps (install-before-spawn, so reads never race). */
const Caps *gAmbientOverride = nullptr;
std::mutex gAmbientMutex;

const Caps &
envCaps()
{
    static const Caps caps = Caps::fromEnv();
    return caps;
}

} // namespace

const char *
dimName(Dim d)
{
    return kDims[static_cast<int>(d)].name;
}

bool
Caps::any() const
{
    if (deadlineMs != 0)
        return true;
    for (uint64_t cap : dim)
        if (cap != 0)
            return true;
    return false;
}

Caps
Caps::fromEnv()
{
    Caps caps;
    caps.deadlineMs = envU64("GSOPT_DEADLINE_MS");
    for (int i = 0; i < kDimCount; ++i)
        caps.dim[i] = envU64(kDims[i].envVar);
    return caps;
}

ResourceExhausted::ResourceExhausted(const char *dimension,
                                     const char *stage, uint64_t limit,
                                     uint64_t used)
    : std::runtime_error(exhaustedMessage(dimension, stage, limit, used)),
      dimension_(dimension), stage_(stage), limit_(limit), used_(used)
{
}

Budget::Budget(const Caps &caps) : caps_(caps)
{
    if (caps_.deadlineMs != 0)
        deadlineNs_ = nowNs() + caps_.deadlineMs * 1'000'000ull;
}

void
Budget::exhausted(Dim d, const char *stage, uint64_t used)
{
    throw ResourceExhausted(dimName(d), stage,
                            caps_[static_cast<Dim>(d)], used);
}

void
Budget::charge(Dim d, uint64_t n, const char *stage)
{
    const int i = static_cast<int>(d);
    const uint64_t total =
        used_[i].fetch_add(n, std::memory_order_relaxed) + n;
    if (caps_.dim[i] != 0 && total > caps_.dim[i])
        exhausted(d, stage, total);
    // Charge-only call sites (lexer tokens, arena chunks) must not
    // outrun the deadline unboundedly; re-check it every ~1k charges.
    if (deadlineNs_ != 0 &&
        sinceDeadlineCheck_.fetch_add(1, std::memory_order_relaxed) >=
            1024) {
        sinceDeadlineCheck_.store(0, std::memory_order_relaxed);
        checkDeadline(stage);
    }
}

void
Budget::chargeNoThrow(Dim d, uint64_t n) noexcept
{
    used_[static_cast<int>(d)].fetch_add(n, std::memory_order_relaxed);
}

void
Budget::checkDepth(Dim d, uint64_t depth, const char *stage)
{
    const int i = static_cast<int>(d);
    // High-water mark, so used() reports the deepest level reached.
    uint64_t seen = used_[i].load(std::memory_order_relaxed);
    while (depth > seen &&
           !used_[i].compare_exchange_weak(seen, depth,
                                           std::memory_order_relaxed)) {
    }
    if (caps_.dim[i] != 0 && depth > caps_.dim[i])
        exhausted(d, stage, depth);
}

void
Budget::checkDeadline(const char *stage)
{
    if (deadlineNs_ == 0)
        return;
    const uint64_t now = nowNs();
    if (now <= deadlineNs_)
        return;
    const uint64_t elapsedMs =
        caps_.deadlineMs + (now - deadlineNs_) / 1'000'000ull;
    throw ResourceExhausted("deadline", stage, caps_.deadlineMs,
                            elapsedMs);
}

ScopedBudget::ScopedBudget(const Caps &caps)
    : budget_(caps), prev_(detail::tlBudget)
{
    detail::tlBudget = &budget_;
}

ScopedBudget::~ScopedBudget()
{
    detail::tlBudget = prev_;
}

Caps
ambientCaps()
{
    if (const Caps *o = gAmbientOverride)
        return *o;
    return envCaps();
}

ScopedAmbientCaps::ScopedAmbientCaps(const Caps &caps)
{
    std::lock_guard lock(gAmbientMutex);
    prev_ = gAmbientOverride;
    gAmbientOverride = new Caps(caps);
}

ScopedAmbientCaps::~ScopedAmbientCaps()
{
    std::lock_guard lock(gAmbientMutex);
    delete gAmbientOverride;
    gAmbientOverride = static_cast<const Caps *>(prev_);
}

ScopedRequestBudget::ScopedRequestBudget()
{
    if (detail::tlBudget != nullptr)
        return; // the outer request's budget keeps authority
    const Caps caps = ambientCaps();
    if (!caps.any())
        return; // ungoverned: keep the fast path fast
    owned_.emplace(caps);
    detail::tlBudget = &*owned_;
}

ScopedRequestBudget::~ScopedRequestBudget()
{
    if (owned_)
        detail::tlBudget = nullptr;
}

} // namespace gsopt::governor
