#include "support/retry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "support/rng.h"

namespace gsopt {

namespace {
std::atomic<uint64_t> gBackoffs{0};
} // namespace

RetryPolicy
defaultRetryPolicy()
{
    static const RetryPolicy policy = [] {
        RetryPolicy p;
        if (const char *env = std::getenv("GSOPT_RETRY_ATTEMPTS")) {
            const long n = std::strtol(env, nullptr, 10);
            if (n >= 1)
                p.maxAttempts = static_cast<int>(n);
        }
        return p;
    }();
    return policy;
}

uint64_t
retryBackoffCount()
{
    return gBackoffs.load(std::memory_order_relaxed);
}

namespace detail {

void
backoff(const RetryPolicy &policy, std::string_view label, int attempt)
{
    gBackoffs.fetch_add(1, std::memory_order_relaxed);
    double delay = policy.baseDelayUs;
    for (int a = 1; a < attempt; ++a)
        delay *= 2.0;
    delay = std::min(delay, policy.maxDelayUs);
    // Full jitter in [delay/2, delay): decorrelates workers retrying
    // the same burst without sacrificing determinism — the draw is a
    // pure function of (label, seed, attempt).
    Rng rng(hashCombine(hashCombine(fnv1a(label), policy.seed),
                        static_cast<uint64_t>(attempt)));
    const double jittered = delay * (0.5 + 0.5 * rng.uniform());
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
        jittered));
}

} // namespace detail

} // namespace gsopt
