/**
 * @file
 * Small string utilities shared across the compiler and harness.
 */
#ifndef GSOPT_SUPPORT_STRINGS_H
#define GSOPT_SUPPORT_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace gsopt {

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split on a delimiter character; keeps empty fields. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split into non-empty whitespace-separated tokens. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** Join with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/** Replace every occurrence of @p from with @p to. */
std::string replaceAll(std::string s, std::string_view from,
                       std::string_view to);

/**
 * Format a double the way GLSL source should carry it: shortest form that
 * still contains a decimal point or exponent (so it re-lexes as a float).
 */
std::string formatGlslFloat(double v);

} // namespace gsopt

#endif // GSOPT_SUPPORT_STRINGS_H
