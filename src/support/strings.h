/**
 * @file
 * Small string utilities shared across the compiler and harness.
 */
#ifndef GSOPT_SUPPORT_STRINGS_H
#define GSOPT_SUPPORT_STRINGS_H

#include <charconv>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace gsopt {

/**
 * Append-only text sink: direct append into one reserved std::string.
 *
 * Drop-in for the `std::ostringstream <<` idiom in the printers, minus
 * the costs that made ostringstream the wrong tool on the exploration
 * hot path: no locale machinery, no virtual streambuf dispatch, no
 * stringbuf-to-string copy on str(). Callers reserve the expected size
 * up front (the GLSL emitter estimates from the instruction count), so
 * a whole shader renders into a single allocation.
 */
class StringBuilder
{
  public:
    explicit StringBuilder(size_t reserveBytes = 0)
    {
        text_.reserve(reserveBytes);
    }

    StringBuilder &operator<<(std::string_view v)
    {
        text_.append(v);
        return *this;
    }
    StringBuilder &operator<<(char c)
    {
        text_.push_back(c);
        return *this;
    }
    template <typename T,
              std::enable_if_t<std::is_integral_v<T> &&
                                   !std::is_same_v<T, char> &&
                                   !std::is_same_v<T, bool>,
                               int> = 0>
    StringBuilder &operator<<(T v)
    {
        char buf[24];
        auto r = std::to_chars(buf, buf + sizeof(buf), v);
        text_.append(buf, static_cast<size_t>(r.ptr - buf));
        return *this;
    }

    /** Append @p n copies of @p c (indentation). */
    StringBuilder &append(size_t n, char c)
    {
        text_.append(n, c);
        return *this;
    }

    bool empty() const { return text_.empty(); }
    size_t size() const { return text_.size(); }
    const std::string &str() const & { return text_; }
    /** Move the built text out (the builder is then empty). */
    std::string take() { return std::move(text_); }

  private:
    std::string text_;
};

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split on a delimiter character; keeps empty fields. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split into non-empty whitespace-separated tokens. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** Join with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/** Replace every occurrence of @p from with @p to. */
std::string replaceAll(std::string s, std::string_view from,
                       std::string_view to);

/**
 * Format a double the way GLSL source should carry it: shortest form that
 * still contains a decimal point or exponent (so it re-lexes as a float).
 */
std::string formatGlslFloat(double v);

} // namespace gsopt

#endif // GSOPT_SUPPORT_STRINGS_H
