#include "support/ipc.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "support/fault.h"
#include "support/rng.h"

namespace gsopt::ipc {

namespace {

/** Header layout on the wire (packed by hand; no struct padding
 * assumptions). */
void
packHeader(char *out, uint32_t type, uint64_t len, uint64_t hash)
{
    uint32_t magic = kMagic;
    std::memcpy(out + 0, &magic, 4);
    std::memcpy(out + 4, &type, 4);
    std::memcpy(out + 8, &len, 8);
    std::memcpy(out + 16, &hash, 8);
}

struct Header
{
    uint32_t magic = 0;
    uint32_t type = 0;
    uint64_t len = 0;
    uint64_t hash = 0;
};

Header
unpackHeader(const char *in)
{
    Header h;
    std::memcpy(&h.magic, in + 0, 4);
    std::memcpy(&h.type, in + 4, 4);
    std::memcpy(&h.len, in + 8, 8);
    std::memcpy(&h.hash, in + 16, 8);
    return h;
}

/** Validate a header prefix; throws ProtocolError on corruption. */
void
checkHeader(const Header &h)
{
    if (h.magic != kMagic)
        throw ProtocolError("ipc: bad frame magic");
    if (h.len > kMaxFramePayload)
        throw ProtocolError(
            "ipc: frame payload length " + std::to_string(h.len) +
            " exceeds cap " + std::to_string(kMaxFramePayload));
}

/** Blocking full write, restarting on EINTR. Throws on failure. */
void
writeAll(int fd, const char *data, size_t n)
{
    size_t off = 0;
    while (off < n) {
        const ssize_t w = ::write(fd, data + off, n - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(std::string("ipc: write failed: ") +
                                std::strerror(errno));
        }
        off += static_cast<size_t>(w);
    }
}

/** Blocking full read. Returns bytes read; < n only on EOF. Throws on
 * read errors. */
size_t
readUpTo(int fd, char *data, size_t n)
{
    size_t off = 0;
    while (off < n) {
        const ssize_t r = ::read(fd, data + off, n - off);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(std::string("ipc: read failed: ") +
                                std::strerror(errno));
        }
        if (r == 0)
            break; // EOF
        off += static_cast<size_t>(r);
    }
    return off;
}

} // namespace

uint64_t
framePayloadHash(uint32_t type, std::string_view payload)
{
    return hashCombine(fnv1a(payload), type);
}

std::string
encodeFrame(uint32_t type, std::string_view payload)
{
    if (payload.size() > kMaxFramePayload)
        throw std::invalid_argument("ipc: payload exceeds frame cap");
    std::string out;
    out.resize(kHeaderBytes);
    packHeader(out.data(), type, payload.size(),
               framePayloadHash(type, payload));
    out.append(payload.data(), payload.size());
    return out;
}

void
writeFrame(int fd, uint32_t type, std::string_view payload)
{
    const std::string wire = encodeFrame(type, payload);
    // Fault site: Mode::Throw fails the send before any byte hits the
    // wire (a clean send failure); Mode::Tear writes a strict prefix
    // and then throws, so the peer observes a short frame — the wire
    // shape of a process dying mid-send.
    const size_t n = fault::tearPoint("ipc.send", wire.size());
    if (n != wire.size()) {
        writeAll(fd, wire.data(), n);
        throw ProtocolError("ipc: injected torn frame send");
    }
    fault::point("ipc.send");
    writeAll(fd, wire.data(), wire.size());
}

bool
readFrame(int fd, Frame &out)
{
    fault::point("ipc.recv");
    char raw[kHeaderBytes];
    const size_t got = readUpTo(fd, raw, sizeof(raw));
    if (got == 0)
        return false; // clean EOF at a frame boundary
    if (got < sizeof(raw))
        throw ProtocolError("ipc: short frame header (peer died "
                            "mid-send?)");
    const Header h = unpackHeader(raw);
    checkHeader(h);
    std::string payload(static_cast<size_t>(h.len), '\0');
    if (readUpTo(fd, payload.data(), payload.size()) != payload.size())
        throw ProtocolError("ipc: short frame payload (peer died "
                            "mid-send?)");
    if (framePayloadHash(h.type, payload) != h.hash)
        throw ProtocolError("ipc: frame checksum mismatch");
    out.type = h.type;
    out.payload = std::move(payload);
    return true;
}

bool
FrameDecoder::next(Frame &out)
{
    if (buf_.size() < kHeaderBytes)
        return false;
    const Header h = unpackHeader(buf_.data());
    checkHeader(h);
    const size_t total = kHeaderBytes + static_cast<size_t>(h.len);
    if (buf_.size() < total)
        return false;
    std::string_view payload(buf_.data() + kHeaderBytes,
                             static_cast<size_t>(h.len));
    if (framePayloadHash(h.type, payload) != h.hash)
        throw ProtocolError("ipc: frame checksum mismatch");
    out.type = h.type;
    out.payload.assign(payload.data(), payload.size());
    buf_.erase(0, total);
    return true;
}

} // namespace gsopt::ipc
