/**
 * @file
 * Length-prefixed frame protocol over POSIX file descriptors — the
 * wire layer of the distributed campaign (tuner/distrib).
 *
 * A frame is a fixed 24-byte header followed by the payload:
 *
 *   [u32 magic "GSFR"][u32 type][u64 payloadLen][u64 payloadHash]
 *   [payloadLen bytes]
 *
 * payloadHash = hashCombine(fnv1a(payload), type), so any single-byte
 * corruption — header or payload — is detected deterministically (the
 * fnv1a step function is injective per byte), and a flipped length
 * byte is bounded by kMaxFramePayload before anything is allocated.
 * Lengths above the cap (including anything that would be negative as
 * a signed 64-bit value) are rejected without reading the payload.
 *
 * Failure vocabulary:
 *  - readFrame returns false on a clean EOF at a frame boundary (the
 *    peer closed its end after the last complete frame);
 *  - everything else — bad magic, oversize length, checksum mismatch,
 *    EOF mid-frame ("short frame"), an I/O error — throws
 *    ProtocolError. A framed stream cannot be resynchronised after a
 *    corrupt prefix, so the caller must treat the peer as dead.
 *
 * Fault injection: `ipc.send` and `ipc.recv` are registered
 * support/fault sites. An armed ipc.send can throw before writing
 * (send failure) or tear the frame — write a strict prefix and then
 * throw, simulating a peer dying mid-send; the reader of that stream
 * later sees a short frame. An armed ipc.recv throws on the read path
 * (a receiver-side I/O failure). Both default to Mode::Throw in plans.
 */
#ifndef GSOPT_SUPPORT_IPC_H
#define GSOPT_SUPPORT_IPC_H

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gsopt::ipc {

/** Frame magic ("GSFR" little-endian). */
inline constexpr uint32_t kMagic = 0x52465347u;

/** Hard payload cap (256 MiB): anything larger — including a flipped
 * high length byte or a "negative" length — is a protocol error, not
 * an allocation. */
inline constexpr uint64_t kMaxFramePayload = 1ull << 28;

/** Header bytes on the wire. */
inline constexpr size_t kHeaderBytes = 24;

/** Unrecoverable framing failure: corrupt header, checksum mismatch,
 * short frame, or an I/O error on the descriptor. The stream is dead;
 * the peer must be reaped. */
class ProtocolError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The checksum stored in a frame header for @p payload of @p type. */
uint64_t framePayloadHash(uint32_t type, std::string_view payload);

/** One decoded frame. */
struct Frame
{
    uint32_t type = 0;
    std::string payload;
};

/** Render a complete frame (header + payload) into a byte string —
 * the exact bytes writeFrame puts on the wire. Exposed for the frame
 * fuzzer and the in-memory decoder tests. */
std::string encodeFrame(uint32_t type, std::string_view payload);

/**
 * Write one frame to @p fd (blocking, restarting on EINTR). Throws
 * ProtocolError on any write failure (EPIPE included — the caller
 * treats the peer as dead) and std::invalid_argument on a payload
 * over kMaxFramePayload. Evaluates the `ipc.send` fault site: Throw
 * fails before any byte is written; Tear writes a strict prefix of
 * the frame and then throws, so the peer observes a short frame.
 */
void writeFrame(int fd, uint32_t type, std::string_view payload);

/**
 * Read one frame from @p fd (blocking). Returns false on clean EOF at
 * a frame boundary; throws ProtocolError on corruption, a short frame,
 * or a read failure. Evaluates the `ipc.recv` fault site before
 * touching the descriptor.
 */
bool readFrame(int fd, Frame &out);

/**
 * Incremental decoder for non-blocking readers: feed() whatever bytes
 * poll(2) surfaced, then drain complete frames with next(). Corruption
 * in the buffered prefix throws ProtocolError from next() — feed()
 * itself never throws, so a poll loop can buffer first and decide
 * later. midFrame() reports buffered-but-incomplete bytes, which at
 * EOF means the peer died mid-frame (a short frame).
 */
class FrameDecoder
{
  public:
    void feed(const char *data, size_t n) { buf_.append(data, n); }

    /** Decode the next complete frame into @p out. Returns false when
     * the buffer holds no complete frame yet. Throws ProtocolError on
     * a corrupt prefix (bad magic, oversize length, bad checksum). */
    bool next(Frame &out);

    /** Any buffered bytes short of a complete frame? */
    bool midFrame() const { return !buf_.empty(); }

  private:
    std::string buf_;
};

// ---- payload packing ----------------------------------------------------
// Minimal byte packing for frame payloads (little-endian PODs +
// length-prefixed strings), mirroring the shard serialisation idiom.

/** Append-only payload builder. */
class Pack
{
  public:
    Pack &u32(uint32_t v) { return pod(v); }
    Pack &u64(uint64_t v) { return pod(v); }
    Pack &str(std::string_view s)
    {
        u64(s.size());
        bytes_.append(s.data(), s.size());
        return *this;
    }
    const std::string &bytes() const & { return bytes_; }
    std::string take() { return std::move(bytes_); }

  private:
    template <typename T> Pack &pod(T v)
    {
        bytes_.append(reinterpret_cast<const char *>(&v), sizeof(v));
        return *this;
    }
    std::string bytes_;
};

/** Cursor-based payload reader; every getter returns false (leaving
 * the output untouched) once the payload is exhausted or a string
 * length overruns the remaining bytes. */
class Unpack
{
  public:
    explicit Unpack(std::string_view bytes) : bytes_(bytes) {}

    bool u32(uint32_t &v) { return pod(v); }
    bool u64(uint64_t &v) { return pod(v); }
    bool str(std::string &s)
    {
        uint64_t n = 0;
        if (!u64(n) || n > bytes_.size() - pos_)
            return false;
        s.assign(bytes_.data() + pos_, n);
        pos_ += n;
        return true;
    }
    /** All bytes consumed? (Trailing garbage is a protocol bug.) */
    bool done() const { return pos_ == bytes_.size(); }

  private:
    template <typename T> bool pod(T &v)
    {
        if (sizeof(T) > bytes_.size() - pos_)
            return false;
        std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return true;
    }
    std::string_view bytes_;
    size_t pos_ = 0;
};

} // namespace gsopt::ipc

#endif // GSOPT_SUPPORT_IPC_H
