/**
 * @file
 * Bounded retry with exponential backoff and deterministic jitter.
 *
 * Wraps the call sites that can fail transiently (driver compiles,
 * shader measurements, campaign work items): a fault::TransientError
 * is retried up to RetryPolicy::maxAttempts times with an
 * exponentially growing, deterministically jittered backoff (seeded
 * from the call label via support/rng, so a retried campaign behaves
 * identically run to run). Any other exception propagates immediately
 * — retrying a real compile error would only hide it.
 */
#ifndef GSOPT_SUPPORT_RETRY_H
#define GSOPT_SUPPORT_RETRY_H

#include <cstdint>
#include <string_view>
#include <utility>

#include "support/fault.h"

namespace gsopt {

/** Retry bounds and backoff shape for one call site. */
struct RetryPolicy
{
    int maxAttempts = 4;       ///< total attempts including the first
    double baseDelayUs = 50;   ///< first backoff, doubled per attempt
    double maxDelayUs = 5000;  ///< backoff cap
    uint64_t seed = 0;         ///< extra jitter seed (0 = label only)
};

/** The process default: RetryPolicy{} with maxAttempts overridable via
 * GSOPT_RETRY_ATTEMPTS (>= 1; 1 disables retries entirely). */
RetryPolicy defaultRetryPolicy();

/** Total backoff sleeps performed process-wide (test/report metric). */
uint64_t retryBackoffCount();

namespace detail {
/** Sleep the deterministic backoff for @p attempt (1-based) of the
 * call labelled @p label. */
void backoff(const RetryPolicy &policy, std::string_view label,
             int attempt);
} // namespace detail

/**
 * Invoke @p fn, retrying on fault::TransientError per @p policy.
 * Returns fn's result; rethrows the last TransientError once attempts
 * are exhausted; propagates every other exception unretried. When
 * @p attemptsOut is non-null it receives the number of attempts made
 * (also on the throwing path).
 */
template <typename F>
auto
retryTransient(const RetryPolicy &policy, std::string_view label,
               F &&fn, int *attemptsOut = nullptr) -> decltype(fn())
{
    const int max_attempts = policy.maxAttempts > 0 ? policy.maxAttempts
                                                    : 1;
    for (int attempt = 1;; ++attempt) {
        if (attemptsOut)
            *attemptsOut = attempt;
        try {
            return fn();
        } catch (const fault::TransientError &) {
            if (attempt >= max_attempts)
                throw;
            detail::backoff(policy, label, attempt);
        }
    }
}

} // namespace gsopt

#endif // GSOPT_SUPPORT_RETRY_H
