/**
 * @file
 * Deterministic random number generation. Every stochastic component of
 * the simulator (timer-query noise, texture pattern generation, corpus
 * parameter jitter) draws from an explicitly seeded Rng so that complete
 * experiment runs are bit-reproducible.
 */
#ifndef GSOPT_SUPPORT_RNG_H
#define GSOPT_SUPPORT_RNG_H

#include <cstdint>
#include <string_view>

namespace gsopt {

/** 64-bit FNV-1a hash, used for seeding and for source dedup keys. */
uint64_t fnv1a(std::string_view data);

/** Mix an extra word into a hash/seed (splitmix64 finalizer). */
uint64_t hashCombine(uint64_t seed, uint64_t value);

/**
 * xoshiro256** PRNG. Small, fast, and good enough for noise modelling;
 * seeded deterministically from strings or integers.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Seed derived from a string label (e.g. "ARM/shader_x/rep3"). */
    explicit Rng(std::string_view label);

    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t below(uint64_t n);

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double sigma);

  private:
    uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace gsopt

#endif // GSOPT_SUPPORT_RNG_H
