#include "support/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace gsopt {

std::string_view
trim(std::string_view s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
replaceAll(std::string s, std::string_view from, std::string_view to)
{
    if (from.empty())
        return s;
    size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
        s.replace(pos, from.size(), to);
        pos += to.size();
    }
    return s;
}

std::string
formatGlslFloat(double v)
{
    if (!std::isfinite(v)) {
        // GLSL has no literal for inf/nan; emit an expression that folds
        // to the same value on re-parse.
        if (std::isnan(v))
            return "(0.0 / 0.0)";
        return v > 0 ? "(1.0 / 0.0)" : "(-1.0 / 0.0)";
    }
    // Try progressively longer precision until the value round-trips.
    char buf[64];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    std::string s = buf;
    // Ensure the token re-lexes as a float literal.
    if (s.find('.') == std::string::npos &&
        s.find('e') == std::string::npos &&
        s.find("inf") == std::string::npos) {
        s += ".0";
    }
    return s;
}

} // namespace gsopt
