#include "support/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace gsopt {

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("GSOPT_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
parallelFor(size_t items, unsigned threads,
            const std::function<void(size_t)> &fn,
            const std::function<void(size_t)> &onItemDone)
{
    if (items == 0)
        return;
    if (threads == 0)
        threads = defaultThreadCount();
    if (threads > items)
        threads = static_cast<unsigned>(items);

    if (threads <= 1) {
        for (size_t i = 0; i < items; ++i) {
            fn(i);
            if (onItemDone)
                onItemDone(i);
        }
        return;
    }

    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&]() {
        // Stop claiming items once any worker failed: in-flight items
        // finish, queued ones are abandoned, and the first exception
        // surfaces without paying for the rest of the queue.
        while (!failed.load(std::memory_order_relaxed)) {
            const size_t i = next.fetch_add(1);
            if (i >= items)
                return;
            try {
                fn(i);
                if (onItemDone)
                    onItemDone(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace gsopt
