/**
 * @file
 * Monotonic wall-clock helpers shared by the phase-timing
 * instrumentation (tuner explore counters, driver cache stats, perf
 * benches).
 */
#ifndef GSOPT_SUPPORT_TIME_H
#define GSOPT_SUPPORT_TIME_H

#include <chrono>
#include <cstdint>

namespace gsopt {

/** Monotonic nanoseconds since an arbitrary epoch. */
inline uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace gsopt

#endif // GSOPT_SUPPORT_TIME_H
