#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace gsopt {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto render_row = [&](const std::vector<std::string> &row) {
        std::ostringstream os;
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            os << "| " << cell
               << std::string(widths[c] - cell.size() + 1, ' ');
        }
        os << "|";
        return os.str();
    };

    std::ostringstream os;
    os << render_row(header_) << "\n";
    for (size_t c = 0; c < widths.size(); ++c)
        os << "|" << std::string(widths[c] + 2, '-');
    os << "|\n";
    for (const auto &row : rows_)
        os << render_row(row) << "\n";
    return os.str();
}

} // namespace gsopt
