/**
 * @file
 * Descriptive statistics used by the measurement harness and the
 * experiment analyses: summaries (the numbers behind the paper's violin
 * plots), histograms (Fig 4), and percentile helpers.
 */
#ifndef GSOPT_SUPPORT_STATS_H
#define GSOPT_SUPPORT_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace gsopt {

/**
 * Five-number summary plus mean/stddev of a sample. This is exactly the
 * information a violin/box plot in the paper conveys.
 */
struct Summary
{
    size_t count = 0;
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;

    /** One-line rendering: "n=5 min=.. q1=.. med=.. q3=.. max=.. mean=..". */
    std::string str() const;
};

/** Compute a Summary over a sample (empty input gives a zero Summary). */
Summary summarize(const std::vector<double> &values);

/** Linear-interpolated percentile, p in [0, 100]. */
double percentile(std::vector<double> values, double p);

/** A histogram bin: [lo, hi) with a count. */
struct HistogramBin
{
    double lo = 0.0;
    double hi = 0.0;
    size_t count = 0;
};

/**
 * Fixed-width histogram over [min, max] of the data with @p bins bins.
 * Used to regenerate the paper's Fig 3 (right) and Fig 4 panels.
 */
std::vector<HistogramBin> histogram(const std::vector<double> &values,
                                    int bins);

/** Histogram with explicit range (values outside are clamped to edges). */
std::vector<HistogramBin> histogram(const std::vector<double> &values,
                                    int bins, double lo, double hi);

/** Render a histogram as ASCII rows "[lo, hi) ####### count". */
std::string renderHistogram(const std::vector<HistogramBin> &bins,
                            int width = 50);

/** Arithmetic mean (0 for empty input). */
double mean(const std::vector<double> &values);

/** Geometric mean of (1 + x) minus 1; robust speed-up aggregation. */
double geomeanSpeedup(const std::vector<double> &speedups);

} // namespace gsopt

#endif // GSOPT_SUPPORT_STATS_H
