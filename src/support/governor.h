/**
 * @file
 * Cooperative resource governance: deadlines and per-dimension budgets
 * for every stage that consumes untrusted input or unbounded work.
 *
 * A Budget is a token carrying a wall-clock deadline plus caps for each
 * metered dimension (macro-expansion bytes, tokens, nesting depths, IR
 * instructions, arena bytes, pass-pipeline steps, interpreter steps).
 * Stages charge the ambient thread-local budget as they work; crossing
 * a cap or the deadline raises ResourceExhausted naming the exhausted
 * dimension and the stage, which unwinds cooperatively (no signals, no
 * thread cancellation) to the nearest admission point. The campaign
 * engine quarantines exhausted items with the structured reason; a
 * daemon request would map it to a 4xx.
 *
 * Defaults are unlimited: with no deadline and all caps zero, no budget
 * is ever installed and every metering probe is one thread-local load
 * and a predicted-not-taken branch — goldens stay byte-identical.
 *
 * Installation layers, outermost first:
 *  - GSOPT_DEADLINE_MS / GSOPT_BUDGET_* parsed once at start-up into
 *    the ambient request caps (ScopedAmbientCaps overrides them in
 *    tests, install-before-spawn like ScopedFaultPlan);
 *  - ScopedRequestBudget at each admission point (compile, explore,
 *    measure, campaign item) installs a fresh Budget from the ambient
 *    caps — per unit of work, not per process — unless an outer budget
 *    already governs the thread;
 *  - ScopedBudget installs an explicit Budget (tests, harnesses).
 */
#ifndef GSOPT_SUPPORT_GOVERNOR_H
#define GSOPT_SUPPORT_GOVERNOR_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace gsopt::governor {

/** The metered dimensions. Each has a cap in Caps::dim[] (0 = off). */
enum class Dim : int {
    PreprocBytes = 0, ///< total macro-expansion output bytes
    Tokens,           ///< tokens produced by the lexer
    ParseDepth,       ///< parser recursion depth (statements + exprs)
    SemaDepth,        ///< sema recursion depth
    IrInstrs,         ///< IR instructions created
    ArenaBytes,       ///< arena chunk bytes allocated
    PassSteps,        ///< pass-pipeline steps walked (runs + memo hits)
    InterpSteps,      ///< interpreter instructions executed
};

inline constexpr int kDimCount = 8;

/** Stable human-readable name ("tokens", "arena-bytes", ...). */
const char *dimName(Dim d);

/** A budget configuration. Zero anywhere means unlimited. */
struct Caps
{
    uint64_t deadlineMs = 0;        ///< wall-clock, from installation
    uint64_t dim[kDimCount] = {};   ///< per-dimension caps, 0 = off

    uint64_t &operator[](Dim d) { return dim[static_cast<int>(d)]; }
    uint64_t operator[](Dim d) const { return dim[static_cast<int>(d)]; }

    bool any() const;

    /** The process environment configuration: GSOPT_DEADLINE_MS plus
     * GSOPT_BUDGET_{PREPROC_BYTES,TOKENS,PARSE_DEPTH,SEMA_DEPTH,
     * IR_INSTRS,ARENA_BYTES,PASS_STEPS,INTERP_STEPS}. Malformed values
     * abort loudly (same policy as GSOPT_FAULTS). */
    static Caps fromEnv();
};

/**
 * Raised when a budget dimension or the deadline is exhausted. Carries
 * the structured reason: which dimension, at which stage, the limit and
 * the amount consumed when it tripped. Deliberately NOT a
 * fault::TransientError — retrying an exhausted input wastes another
 * budget, so retryTransient propagates this immediately and the
 * campaign quarantines the item with this message as the reason.
 */
class ResourceExhausted : public std::runtime_error
{
  public:
    ResourceExhausted(const char *dimension, const char *stage,
                      uint64_t limit, uint64_t used);

    /** dimName() of the tripped dimension, or "deadline". */
    const char *dimension() const { return dimension_; }
    /** The stage label passed by the tripping probe. */
    const char *stage() const { return stage_; }
    uint64_t limit() const { return limit_; }
    uint64_t used() const { return used_; }

  private:
    const char *dimension_;
    const char *stage_;
    uint64_t limit_;
    uint64_t used_;
};

/**
 * A live budget: counters against Caps plus an absolute monotonic
 * deadline stamped at construction. Counters are relaxed atomics so a
 * budget may be observed from helper threads, though the normal shape
 * is one budget per worker thread (thread-local installation).
 */
class Budget
{
  public:
    explicit Budget(const Caps &caps);

    /** Count @p n units of @p d; throws ResourceExhausted when the cap
     * is crossed. Also re-checks the deadline every ~1k charges so
     * charge-only call sites cannot outrun a deadline unboundedly. */
    void charge(Dim d, uint64_t n, const char *stage);

    /** Count without enforcement (error paths, destructors). */
    void chargeNoThrow(Dim d, uint64_t n) noexcept;

    /** Enforce a recursion-depth dimension: @p depth is a level, not a
     * cumulative count. Records the high-water mark in used(). */
    void checkDepth(Dim d, uint64_t depth, const char *stage);

    /** Throw ResourceExhausted("deadline", ...) once past the deadline. */
    void checkDeadline(const char *stage);

    bool hasDeadline() const { return deadlineNs_ != 0; }
    /** Absolute support::nowNs() deadline (0 = none). */
    uint64_t deadlineNs() const { return deadlineNs_; }

    uint64_t used(Dim d) const
    {
        return used_[static_cast<int>(d)].load(std::memory_order_relaxed);
    }
    const Caps &caps() const { return caps_; }

  private:
    [[noreturn]] void exhausted(Dim d, const char *stage, uint64_t used);

    Caps caps_;
    uint64_t deadlineNs_ = 0;
    std::atomic<uint64_t> used_[kDimCount] = {};
    std::atomic<uint64_t> sinceDeadlineCheck_{0};
};

namespace detail {
extern thread_local Budget *tlBudget;
} // namespace detail

/** The budget governing this thread, or nullptr (the common case). */
inline Budget *
current()
{
    return detail::tlBudget;
}

/** Charge the ambient budget; no-op when none is installed. */
inline void
charge(Dim d, uint64_t n, const char *stage)
{
    if (Budget *b = current())
        b->charge(d, n, stage);
}

/** Enforce a depth level against the ambient budget; no-op when none. */
inline void
checkDepth(Dim d, uint64_t depth, const char *stage)
{
    if (Budget *b = current())
        b->checkDepth(d, depth, stage);
}

/** Check the ambient deadline; no-op when no budget is installed. */
inline void
checkDeadline(const char *stage)
{
    if (Budget *b = current())
        b->checkDeadline(stage);
}

/**
 * Amortised hot-loop metering (interpreter instructions). Caches the
 * ambient budget once, accumulates ticks locally, and flushes a charge
 * + deadline check every ~4096 units, so the per-instruction cost is
 * one add and a compare even when governed. Call flush() at natural
 * boundaries (loop back-edges, run end) for prompt enforcement; the
 * destructor settles the remainder without throwing so counters stay
 * exact across error unwinds.
 */
class StepMeter
{
  public:
    StepMeter(Dim d, const char *stage)
        : budget_(current()), dim_(d), stage_(stage)
    {
    }
    ~StepMeter() { settle(); }
    StepMeter(const StepMeter &) = delete;
    StepMeter &operator=(const StepMeter &) = delete;

    void tick(uint64_t n = 1)
    {
        if (!budget_)
            return;
        pending_ += n;
        if (pending_ >= kFlushEvery)
            flush();
    }

    /** Charge the pending units and check the deadline. May throw. */
    void flush()
    {
        if (!budget_ || pending_ == 0)
            return;
        const uint64_t n = pending_;
        pending_ = 0; // counted even if the charge below throws
        budget_->charge(dim_, n, stage_);
        budget_->checkDeadline(stage_);
    }

    /** Fold the remainder into the counters without enforcement. */
    void settle() noexcept
    {
        if (budget_ && pending_ != 0) {
            budget_->chargeNoThrow(dim_, pending_);
            pending_ = 0;
        }
    }

    bool active() const { return budget_ != nullptr; }

  private:
    static constexpr uint64_t kFlushEvery = 4096;
    Budget *budget_;
    Dim dim_;
    const char *stage_;
    uint64_t pending_ = 0;
};

/**
 * RAII installation of an explicit budget (tests, harnesses). Nest in
 * LIFO order; the previous budget is restored on destruction.
 */
class ScopedBudget
{
  public:
    explicit ScopedBudget(const Caps &caps);
    ~ScopedBudget();
    ScopedBudget(const ScopedBudget &) = delete;
    ScopedBudget &operator=(const ScopedBudget &) = delete;

    Budget &budget() { return budget_; }

  private:
    Budget budget_;
    Budget *prev_;
};

/** The caps ScopedRequestBudget installs per request: the env
 * configuration, unless a ScopedAmbientCaps override is active. */
Caps ambientCaps();

/**
 * Test override of the ambient request caps (the programmatic
 * equivalent of setting GSOPT_DEADLINE_MS / GSOPT_BUDGET_* for a
 * scope). Install before spawning worker threads, like ScopedFaultPlan.
 */
class ScopedAmbientCaps
{
  public:
    explicit ScopedAmbientCaps(const Caps &caps);
    ~ScopedAmbientCaps();
    ScopedAmbientCaps(const ScopedAmbientCaps &) = delete;
    ScopedAmbientCaps &operator=(const ScopedAmbientCaps &) = delete;

  private:
    const void *prev_;
};

/**
 * Admission control at a request entry point (compileShader,
 * exploreShader, measureShader, a campaign work item): installs a
 * fresh Budget from ambientCaps() — so an ambient GSOPT_DEADLINE_MS
 * bounds each unit of work, not the whole process — unless the thread
 * is already governed (the outer request's budget keeps authority) or
 * the ambient caps are all unlimited (no budget, zero overhead).
 */
class ScopedRequestBudget
{
  public:
    ScopedRequestBudget();
    ~ScopedRequestBudget();
    ScopedRequestBudget(const ScopedRequestBudget &) = delete;
    ScopedRequestBudget &operator=(const ScopedRequestBudget &) = delete;

    /** The budget this scope installed, or nullptr if it deferred. */
    Budget *installed() { return owned_ ? &*owned_ : nullptr; }

  private:
    std::optional<Budget> owned_;
};

} // namespace gsopt::governor

#endif // GSOPT_SUPPORT_GOVERNOR_H
