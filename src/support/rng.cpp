#include "support/rng.h"

#include <cmath>

namespace gsopt {

uint64_t
fnv1a(std::string_view data)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : data) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

static uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
hashCombine(uint64_t seed, uint64_t value)
{
    uint64_t s = seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) +
                         (seed >> 2));
    return splitmix64(s);
}

Rng::Rng(uint64_t seed)
{
    // Expand the single seed word into the four xoshiro state words.
    for (auto &word : s_)
        word = splitmix64(seed);
}

Rng::Rng(std::string_view label) : Rng(fnv1a(label)) {}

static inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    return next() % n;
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

} // namespace gsopt
