/**
 * @file
 * Fixed-width text table rendering used by the experiment benches to print
 * paper-style tables (e.g. Table I) and figure data series.
 */
#ifndef GSOPT_SUPPORT_TABLE_H
#define GSOPT_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace gsopt {

/**
 * A simple text table: a header row plus data rows, rendered with columns
 * padded to the widest cell.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; it may have fewer cells than the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with fixed precision. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format a percentage like "+4.25%". */
    static std::string pct(double fraction, int precision = 2);

    /** Render with column separators and a rule under the header. */
    std::string str() const;

    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gsopt

#endif // GSOPT_SUPPORT_TABLE_H
