/**
 * @file
 * Minimal work-queue parallelism for the campaign engine and benches:
 * a bounded std::thread pool draining an atomic item counter. Sized
 * from GSOPT_THREADS (default: hardware_concurrency), so serial runs
 * (GSOPT_THREADS=1) and parallel runs are one code path.
 */
#ifndef GSOPT_SUPPORT_THREAD_POOL_H
#define GSOPT_SUPPORT_THREAD_POOL_H

#include <cstddef>
#include <functional>

namespace gsopt {

/**
 * Worker count for parallel sections: GSOPT_THREADS if set to a
 * positive integer, otherwise std::thread::hardware_concurrency()
 * (minimum 1).
 */
unsigned defaultThreadCount();

/**
 * Run @p fn(i) for every i in [0, items) on a pool of @p threads
 * std::threads sharing an atomic work queue. Items are claimed in
 * order but may complete out of order — callers must write results to
 * per-item slots (never append) so the outcome is identical for any
 * thread count. @p threads == 0 means defaultThreadCount(); one item
 * or one thread runs inline with no spawn. If @p fn throws, workers
 * stop claiming new items (in-flight items finish) and the first
 * exception is rethrown after the pool joins.
 *
 * @p onItemDone, when provided, runs on the worker thread immediately
 * after fn(i) returns normally — the per-item completion hook the
 * campaign engine uses for incremental shard checkpointing. It is not
 * called for an item whose fn threw; if the hook itself throws, the
 * item counts as failed under the same first-error semantics.
 */
void parallelFor(size_t items, unsigned threads,
                 const std::function<void(size_t)> &fn,
                 const std::function<void(size_t)> &onItemDone = {});

} // namespace gsopt

#endif // GSOPT_SUPPORT_THREAD_POOL_H
