/**
 * @file
 * Minimal portable-SIMD helpers for the batched interpreter's lane
 * loops.
 *
 * The batched engine keeps every value as a structure-of-arrays lane
 * strip of W doubles (W a compile-time constant), so its hot loops are
 * all of the shape `for (l = 0; l < W; ++l) d[l] = f(a[l], b[l])` over
 * contiguous, non-aliasing strips. This header supplies exactly the
 * scaffolding those loops need to auto-vectorize reliably — a restrict
 * macro, a vectorization pragma, and tiny fixed-width map/copy helpers
 * that take the element functor as a template parameter so it inlines
 * into the loop body (the scalar interpreter's function-pointer
 * dispatch defeats that) — and nothing else. Every helper is plain
 * standard C++: on a compiler with no vector unit the pragmas expand to
 * nothing and the loops compile as scalar code, which is the fallback.
 */
#ifndef GSOPT_SUPPORT_SIMD_H
#define GSOPT_SUPPORT_SIMD_H

#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
#define GSOPT_RESTRICT __restrict__
#else
#define GSOPT_RESTRICT
#endif

/* Ask the compiler to vectorize the following loop (it is always
 * dependence-free by construction: destinations never alias sources).
 * GCC's `ivdep` and clang's loop hint are both accepted as statement
 * pragmas ahead of a for-loop; elsewhere the hint is simply absent. */
#if defined(__clang__)
#define GSOPT_VEC_LOOP _Pragma("clang loop vectorize(enable)")
#elif defined(__GNUC__)
#define GSOPT_VEC_LOOP _Pragma("GCC ivdep")
#else
#define GSOPT_VEC_LOOP
#endif

namespace gsopt::simd {

/** d[l] = v for all W lanes. */
template <size_t W>
inline void
broadcast(double *GSOPT_RESTRICT d, double v)
{
    GSOPT_VEC_LOOP
    for (size_t l = 0; l < W; ++l)
        d[l] = v;
}

/** d[l] = s[l] for all W lanes (strips never overlap). */
template <size_t W>
inline void
copy(double *GSOPT_RESTRICT d, const double *GSOPT_RESTRICT s)
{
    GSOPT_VEC_LOOP
    for (size_t l = 0; l < W; ++l)
        d[l] = s[l];
}

/** d[l] = f(a[l]); f is a functor type so the body inlines. */
template <size_t W, typename F>
inline void
map1(double *GSOPT_RESTRICT d, const double *a, F f)
{
    GSOPT_VEC_LOOP
    for (size_t l = 0; l < W; ++l)
        d[l] = f(a[l]);
}

/** d[l] = f(d[l]) in place (for updates where source IS destination —
 * map1's restrict contract forbids that aliasing). */
template <size_t W, typename F>
inline void
apply(double *d, F f)
{
    GSOPT_VEC_LOOP
    for (size_t l = 0; l < W; ++l)
        d[l] = f(d[l]);
}

/** d[l] = f(a[l], b[l]). */
template <size_t W, typename F>
inline void
map2(double *GSOPT_RESTRICT d, const double *a, const double *b, F f)
{
    GSOPT_VEC_LOOP
    for (size_t l = 0; l < W; ++l)
        d[l] = f(a[l], b[l]);
}

/** d[l] = f(a[l], b[l], c[l]). */
template <size_t W, typename F>
inline void
map3(double *GSOPT_RESTRICT d, const double *a, const double *b,
     const double *c, F f)
{
    GSOPT_VEC_LOOP
    for (size_t l = 0; l < W; ++l)
        d[l] = f(a[l], b[l], c[l]);
}

/** acc[l] += a[l] * b[l] (the dot/length accumulation step; kept as a
 * separate helper so the summation order per lane exactly matches the
 * scalar engine's component-by-component loop). */
template <size_t W>
inline void
mulAccum(double *GSOPT_RESTRICT acc, const double *a, const double *b)
{
    GSOPT_VEC_LOOP
    for (size_t l = 0; l < W; ++l)
        acc[l] += a[l] * b[l];
}

} // namespace gsopt::simd

#endif // GSOPT_SUPPORT_SIMD_H
