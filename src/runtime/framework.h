/**
 * @file
 * The shader measurement framework (paper Section IV-B), reproduced
 * over the simulated devices:
 *
 *  - shaders execute in an *isolated context* (one fragment shader at a
 *    time, nothing else on the queue);
 *  - full-screen triangles clipped to 500x500 quads: 250,000 fragment
 *    invocations per draw against 3 vertex-shader invocations;
 *  - 1000 triangles per frame on desktop, 100 on mobile, drawn
 *    front-to-back; every draw is timed with a GL_TIME_ELAPSED-style
 *    query (noisy, quantised);
 *  - 100 frames per run, 5 runs per shader variant;
 *  - the vertex shader is auto-generated from the fragment shader's
 *    inputs, and uniforms/textures are auto-initialised from the
 *    interface reflection (floats 0.5, ints 1, colourful procedural
 *    texture), exactly as the paper describes.
 */
#ifndef GSOPT_RUNTIME_FRAMEWORK_H
#define GSOPT_RUNTIME_FRAMEWORK_H

#include <string>
#include <vector>

#include "glsl/sema.h"
#include "gpu/device.h"
#include "gpu/driver.h"
#include "ir/interp.h"

namespace gsopt::runtime {

/** Fragments shaded per draw: 500x500 full-screen quad. */
constexpr long kFragmentsPerDraw = 500L * 500L;
/** Frames measured per repetition. */
constexpr int kFramesPerRun = 100;
/** Repetitions per shader variant. */
constexpr int kRepetitions = 5;

/** A timed measurement of one shader variant on one device. */
struct TimingResult
{
    std::vector<double> frameTimesNs; ///< all samples (runs x frames)
    double meanNs = 0;
    double medianNs = 0;
    double stddevNs = 0;
    gpu::ShaderBinary binary;         ///< the driver's compilation
};

/**
 * Generate the matching vertex shader for a fragment shader interface
 * (pass-through varyings + full-screen position with depth uniform).
 */
std::string generateVertexShader(const glsl::ShaderInterface &iface);

/**
 * Auto-initialise an interpreter environment from the interface:
 * floats/vecs to 0.5, ints to 1, matrices to identity-ish, samplers to
 * the default colourful pattern. Used by tests and the examples to run
 * shaders functionally.
 */
ir::InterpEnv defaultEnvironment(const glsl::ShaderInterface &iface);

/**
 * Run the full measurement protocol for one shader on one device.
 *
 * @param glslSource fragment shader text (post- or pre-optimization)
 * @param device     target device model
 * @param label      seed label making the noise deterministic per
 *                   (shader, device, variant) triple
 */
TimingResult measureShader(const std::string &glslSource,
                           const gpu::DeviceModel &device,
                           const std::string &label);

/** Percentage speed-up of variant vs baseline mean times (+ is faster). */
double speedupPercent(const TimingResult &baseline,
                      const TimingResult &variant);

} // namespace gsopt::runtime

#endif // GSOPT_RUNTIME_FRAMEWORK_H
