/**
 * @file
 * The shader measurement framework (paper Section IV-B), reproduced
 * over the simulated devices:
 *
 *  - shaders execute in an *isolated context* (one fragment shader at a
 *    time, nothing else on the queue);
 *  - full-screen triangles clipped to 500x500 quads: 250,000 fragment
 *    invocations per draw against 3 vertex-shader invocations;
 *  - 1000 triangles per frame on desktop, 100 on mobile, drawn
 *    front-to-back; every draw is timed with a GL_TIME_ELAPSED-style
 *    query (noisy, quantised);
 *  - 100 frames per run, 5 runs per shader variant;
 *  - the vertex shader is auto-generated from the fragment shader's
 *    inputs, and uniforms/textures are auto-initialised from the
 *    interface reflection (floats 0.5, ints 1, colourful procedural
 *    texture), exactly as the paper describes.
 */
#ifndef GSOPT_RUNTIME_FRAMEWORK_H
#define GSOPT_RUNTIME_FRAMEWORK_H

#include <string>
#include <vector>

#include "glsl/sema.h"
#include "gpu/device.h"
#include "gpu/driver.h"
#include "ir/interp.h"
#include "ir/interp_batch.h"

namespace gsopt::runtime {

/** Fragments shaded per draw: 500x500 full-screen quad. */
constexpr long kFragmentsPerDraw = 500L * 500L;
/** Frames measured per repetition. */
constexpr int kFramesPerRun = 100;
/** Repetitions per shader variant. */
constexpr int kRepetitions = 5;

/** A timed measurement of one shader variant on one device. */
struct TimingResult
{
    std::vector<double> frameTimesNs; ///< all samples (runs x frames)
    double meanNs = 0;
    double medianNs = 0;
    double stddevNs = 0;
    gpu::ShaderBinary binary;         ///< the driver's compilation
};

/**
 * Generate the matching vertex shader for a fragment shader interface
 * (pass-through varyings + full-screen position with depth uniform).
 */
std::string generateVertexShader(const glsl::ShaderInterface &iface);

/**
 * Auto-initialise an interpreter environment from the interface:
 * floats/vecs to 0.5, ints to 1, matrices to identity-ish, samplers to
 * the default colourful pattern. Used by tests and the examples to run
 * shaders functionally.
 */
ir::InterpEnv defaultEnvironment(const glsl::ShaderInterface &iface);

/**
 * Memoised defaultEnvironment: one build per distinct interface
 * signature, then the same (immutable) environment is returned by
 * reference forever. The bulk consumers — corpus sweeps, fuzz probe
 * loops, per-variant verification — ask for the same shader's
 * environment thousands of times; rebuilding the maps each call was
 * pure overhead in those loops. Thread-safe; the returned reference is
 * stable for the process lifetime. Callers that want to perturb the
 * environment copy it first (it is shared!).
 */
const ir::InterpEnv &
defaultEnvironmentCached(const glsl::ShaderInterface &iface);

/**
 * Options for interpretTile: tile geometry and engine selection.
 * batchWidth 0 selects the scalar reference path (one ir::interpret
 * per fragment); any other value runs the batched SIMT engine with
 * that many lanes per batch. Both paths produce bit-identical results.
 */
struct TileOptions
{
    size_t width = 16;
    size_t height = 16;
    size_t batchWidth = ir::kBatchWidth;
};

/** Aggregate result of shading one tile. Sums are accumulated in
 * row-major fragment order on both engine paths, so they are
 * bit-comparable between scalar and batched runs. */
struct TileResult
{
    size_t fragments = 0;
    size_t discardedFragments = 0;
    size_t executedInstructions = 0;
    /** All components of all non-discarded fragments finite. */
    bool allFinite = true;
    /** Per output: per-component sum over all fragments. */
    std::map<std::string, ir::LaneVector> outputSums;
};

/**
 * Shade a width x height tile of fragments with the framework's
 * auto-initialised bindings, varying each float input across the tile
 * like an interpolated varying (component 0 sweeps u = (x+0.5)/width,
 * component 1 sweeps v = (y+0.5)/height, remaining components keep the
 * auto-init value). This is the bulk-verification entry point: the
 * corpus functional checks and the benchmarks drive whole tiles
 * through one BatchRunner instead of one interpret() per fragment.
 */
TileResult interpretTile(const ir::Module &module,
                         const glsl::ShaderInterface &iface,
                         const TileOptions &opts = {});

/**
 * Run the full measurement protocol for one shader on one device.
 *
 * @param glslSource fragment shader text (post- or pre-optimization)
 * @param device     target device model
 * @param label      seed label making the noise deterministic per
 *                   (shader, device, variant) triple
 */
TimingResult measureShader(const std::string &glslSource,
                           const gpu::DeviceModel &device,
                           const std::string &label);

/** Percentage speed-up of variant vs baseline mean times (+ is faster). */
double speedupPercent(const TimingResult &baseline,
                      const TimingResult &variant);

} // namespace gsopt::runtime

#endif // GSOPT_RUNTIME_FRAMEWORK_H
