#include "runtime/framework.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>

#include "support/fault.h"
#include "support/governor.h"
#include "support/retry.h"
#include "support/rng.h"
#include "support/stats.h"

namespace gsopt::runtime {

std::string
generateVertexShader(const glsl::ShaderInterface &iface)
{
    // The paper auto-generates simplified vertex shaders from the
    // fragment inputs, with a uniform controlling the full-screen
    // triangle's depth. Varyings are passed through from attributes.
    std::ostringstream os;
    os << "#version 450\n";
    os << "uniform float quad_depth;\n";
    os << "in vec2 position;\n";
    int slot = 1;
    for (const auto &in : iface.inputs) {
        if (in.name == "gl_FragCoord")
            continue;
        os << "in " << in.type.str() << " attr_" << in.name << ";\n";
        os << "out " << in.type.str() << " " << in.name << ";\n";
        ++slot;
    }
    os << "void main() {\n";
    for (const auto &in : iface.inputs) {
        if (in.name == "gl_FragCoord")
            continue;
        os << "    " << in.name << " = attr_" << in.name << ";\n";
    }
    os << "    gl_Position = vec4(position, quad_depth, 1.0);\n";
    os << "}\n";
    (void)slot;
    return os.str();
}

ir::InterpEnv
defaultEnvironment(const glsl::ShaderInterface &iface)
{
    ir::InterpEnv env;
    auto fill = [](const glsl::Type &t) {
        const int comp = t.isArray()
                             ? t.arraySize *
                                   t.elementType().componentCount()
                             : t.componentCount();
        double v = t.isInt() ? 1.0 : 0.5;
        return ir::LaneVector(static_cast<size_t>(comp), v);
    };
    for (const auto &in : iface.inputs)
        env.inputs[in.name] = fill(in.type);
    for (const auto &u : iface.uniforms) {
        if (u.type.isSampler())
            continue; // default procedural texture applies
        if (u.type.isMatrix()) {
            // Near-identity matrix keeps positions finite.
            ir::LaneVector m(
                static_cast<size_t>(u.type.componentCount()), 0.0);
            for (int c = 0; c < u.type.cols; ++c)
                m[static_cast<size_t>(c * u.type.rows + c)] = 1.0;
            env.uniforms[u.name] = std::move(m);
        } else {
            env.uniforms[u.name] = fill(u.type);
        }
    }
    return env;
}

namespace {

/** Structural signature of an interface: every var's role, name, and
 * type. Two interfaces with the same signature auto-initialise to the
 * same environment, so it is the memoisation key. */
std::string
interfaceSignature(const glsl::ShaderInterface &iface)
{
    std::ostringstream os;
    for (const auto &in : iface.inputs)
        os << "i " << in.name << ':' << in.type.str() << ';';
    for (const auto &u : iface.uniforms)
        os << "u " << u.name << ':' << u.type.str() << ';';
    for (const auto &out : iface.outputs)
        os << "o " << out.name << ':' << out.type.str() << ';';
    return os.str();
}

} // namespace

const ir::InterpEnv &
defaultEnvironmentCached(const glsl::ShaderInterface &iface)
{
    static std::mutex mu;
    // std::map node stability keeps returned references valid while
    // later insertions grow the cache.
    static std::map<std::string, ir::InterpEnv> cache;
    const std::string key = interfaceSignature(iface);
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, defaultEnvironment(iface)).first;
    return it->second;
}

namespace {

/** A float input the tile sweep varies: component 0 follows u,
 * component 1 (when present) follows v. */
struct VaryingInput
{
    std::string name;
    size_t comps = 0;
};

std::vector<VaryingInput>
tileVaryings(const glsl::ShaderInterface &iface)
{
    std::vector<VaryingInput> out;
    for (const auto &in : iface.inputs) {
        if (in.type.isInt() || in.type.isArray())
            continue;
        const size_t comps =
            static_cast<size_t>(in.type.componentCount());
        if (comps > 0)
            out.push_back({in.name, comps});
    }
    return out;
}

void
accumulateFragment(TileResult &result, const ir::InterpResult &frag)
{
    ++result.fragments;
    result.executedInstructions += frag.executedInstructions;
    if (frag.discarded)
        ++result.discardedFragments;
    for (const auto &[name, lanes] : frag.outputs) {
        ir::LaneVector &sum = result.outputSums[name];
        if (sum.size() < lanes.size())
            sum.resize(lanes.size(), 0.0);
        for (size_t c = 0; c < lanes.size(); ++c) {
            sum[c] += lanes[c];
            if (!frag.discarded && !std::isfinite(lanes[c]))
                result.allFinite = false;
        }
    }
}

} // namespace

TileResult
interpretTile(const ir::Module &module,
              const glsl::ShaderInterface &iface,
              const TileOptions &opts)
{
    TileResult result;
    if (opts.width == 0 || opts.height == 0)
        return result;
    const ir::InterpEnv &base = defaultEnvironmentCached(iface);
    const std::vector<VaryingInput> varyings = tileVaryings(iface);
    const size_t total = opts.width * opts.height;

    auto fragUV = [&](size_t f, double &u, double &v) {
        const size_t x = f % opts.width;
        const size_t y = f / opts.width;
        u = (static_cast<double>(x) + 0.5) /
            static_cast<double>(opts.width);
        v = (static_cast<double>(y) + 0.5) /
            static_cast<double>(opts.height);
    };

    if (opts.batchWidth == 0) {
        // Scalar reference path: one interpret() per fragment, the
        // environment built once and mutated in place per fragment.
        ir::InterpEnv env = base;
        for (size_t f = 0; f < total; ++f) {
            double u, v;
            fragUV(f, u, v);
            for (const VaryingInput &in : varyings) {
                ir::LaneVector &val = env.inputs[in.name];
                val[0] = u;
                if (in.comps > 1)
                    val[1] = v;
            }
            accumulateFragment(result, ir::interpret(module, env));
        }
        return result;
    }

    const size_t W = opts.batchWidth;
    ir::BatchRunner runner(module, W);
    ir::BatchEnv benv = ir::BatchEnv::broadcast(base, W);
    for (size_t f0 = 0; f0 < total; f0 += W) {
        const size_t lanes = std::min(W, total - f0);
        for (size_t l = 0; l < W; ++l) {
            // Padding lanes replicate the last fragment; their results
            // are simply not consumed.
            double u, v;
            fragUV(std::min(f0 + l, total - 1), u, v);
            for (const VaryingInput &in : varyings) {
                ir::BatchEnv::LaneInput &li = benv.inputs[in.name];
                li.soa[0 * W + l] = u;
                if (in.comps > 1)
                    li.soa[1 * W + l] = v;
            }
        }
        const ir::BatchResult batch = runner.run(benv);
        // Accumulate straight from the SoA strips — reshaping every
        // lane into a scalar InterpResult would allocate a map per
        // fragment and dominate the batched path's runtime. Per
        // (output, component) the sum still accumulates in row-major
        // fragment order, so it stays bit-identical to the scalar path.
        for (size_t l = 0; l < lanes; ++l) {
            ++result.fragments;
            result.executedInstructions += batch.laneExecuted[l];
            if (batch.discarded[l])
                ++result.discardedFragments;
        }
        for (const auto &[name, soa] : batch.outputs) {
            const size_t comps = soa.size() / batch.width;
            ir::LaneVector &sum = result.outputSums[name];
            if (sum.size() < comps)
                sum.resize(comps, 0.0);
            for (size_t c = 0; c < comps; ++c) {
                for (size_t l = 0; l < lanes; ++l) {
                    const double v = soa[c * batch.width + l];
                    sum[c] += v;
                    if (!batch.discarded[l] && !std::isfinite(v))
                        result.allFinite = false;
                }
            }
        }
    }
    return result;
}

TimingResult
measureShader(const std::string &glslSource,
              const gpu::DeviceModel &device, const std::string &label)
{
    // The measurement protocol is a pure function of (source, device,
    // label), so transient failures — a flaky driver compile, a timing
    // query that errors out — are absorbed here with bounded retries
    // and every caller (campaign engine, search oracles, examples)
    // sees bit-identical results whether or not a retry happened.
    // Admission control: measuring one (source, device) is a unit of
    // work — under ambient caps it gets its own budget and deadline.
    // ResourceExhausted is deliberately not transient: retryTransient
    // propagates it immediately instead of burning retry attempts.
    governor::ScopedRequestBudget admission;
    const RetryPolicy policy = defaultRetryPolicy();
    TimingResult result;
    result.binary =
        retryTransient(policy, label + "/compile", [&] {
            return gpu::driverCompile(glslSource, device);
        });
    governor::checkDeadline("runtime.measure");
    retryTransient(policy, label + "/measure", [&] {
        fault::point("runtime.measure", label);
        return 0;
    });
    // The watchdog for a hung measurement (fault mode `stall` models
    // one): the query "returned", but past the deadline the result is
    // worthless — fail structured rather than keep computing.
    governor::checkDeadline("runtime.measure");

    const double draw_ns =
        gpu::drawTimeNs(result.binary, device, kFragmentsPerDraw);
    const int draws = device.trianglesPerFrame;
    const double frame_ns = draw_ns * draws;

    // Sum of `draws` independent noisy draw timings: by CLT one
    // gaussian with sigma/sqrt(draws) models the per-frame noise;
    // a second term models frame-level environmental jitter.
    const double per_frame_sigma =
        device.noiseSigma / std::sqrt(static_cast<double>(draws));
    const double env_sigma = device.noiseSigma * 0.5;

    result.frameTimesNs.reserve(
        static_cast<size_t>(kFramesPerRun * kRepetitions));
    for (int rep = 0; rep < kRepetitions; ++rep) {
        Rng rng(label + "/" + device.vendor + "/rep" +
                std::to_string(rep));
        // Environmental drift for this run (thermals, clocks).
        const double run_scale = 1.0 + rng.gaussian(0.0, env_sigma);
        for (int frame = 0; frame < kFramesPerRun; ++frame) {
            double t = frame_ns * run_scale *
                       (1.0 + rng.gaussian(0.0, per_frame_sigma));
            // Timer query quantisation.
            t = std::round(t / device.timerQuantumNs) *
                device.timerQuantumNs;
            result.frameTimesNs.push_back(std::max(0.0, t));
        }
    }

    Summary s = summarize(result.frameTimesNs);
    result.meanNs = s.mean;
    result.medianNs = s.median;
    result.stddevNs = s.stddev;
    return result;
}

double
speedupPercent(const TimingResult &baseline, const TimingResult &variant)
{
    if (baseline.meanNs <= 0.0)
        return 0.0;
    return (baseline.meanNs - variant.meanNs) / baseline.meanNs * 100.0;
}

} // namespace gsopt::runtime
