#include "runtime/framework.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/fault.h"
#include "support/retry.h"
#include "support/rng.h"
#include "support/stats.h"

namespace gsopt::runtime {

std::string
generateVertexShader(const glsl::ShaderInterface &iface)
{
    // The paper auto-generates simplified vertex shaders from the
    // fragment inputs, with a uniform controlling the full-screen
    // triangle's depth. Varyings are passed through from attributes.
    std::ostringstream os;
    os << "#version 450\n";
    os << "uniform float quad_depth;\n";
    os << "in vec2 position;\n";
    int slot = 1;
    for (const auto &in : iface.inputs) {
        if (in.name == "gl_FragCoord")
            continue;
        os << "in " << in.type.str() << " attr_" << in.name << ";\n";
        os << "out " << in.type.str() << " " << in.name << ";\n";
        ++slot;
    }
    os << "void main() {\n";
    for (const auto &in : iface.inputs) {
        if (in.name == "gl_FragCoord")
            continue;
        os << "    " << in.name << " = attr_" << in.name << ";\n";
    }
    os << "    gl_Position = vec4(position, quad_depth, 1.0);\n";
    os << "}\n";
    (void)slot;
    return os.str();
}

ir::InterpEnv
defaultEnvironment(const glsl::ShaderInterface &iface)
{
    ir::InterpEnv env;
    auto fill = [](const glsl::Type &t) {
        const int comp = t.isArray()
                             ? t.arraySize *
                                   t.elementType().componentCount()
                             : t.componentCount();
        double v = t.isInt() ? 1.0 : 0.5;
        return ir::LaneVector(static_cast<size_t>(comp), v);
    };
    for (const auto &in : iface.inputs)
        env.inputs[in.name] = fill(in.type);
    for (const auto &u : iface.uniforms) {
        if (u.type.isSampler())
            continue; // default procedural texture applies
        if (u.type.isMatrix()) {
            // Near-identity matrix keeps positions finite.
            ir::LaneVector m(
                static_cast<size_t>(u.type.componentCount()), 0.0);
            for (int c = 0; c < u.type.cols; ++c)
                m[static_cast<size_t>(c * u.type.rows + c)] = 1.0;
            env.uniforms[u.name] = std::move(m);
        } else {
            env.uniforms[u.name] = fill(u.type);
        }
    }
    return env;
}

TimingResult
measureShader(const std::string &glslSource,
              const gpu::DeviceModel &device, const std::string &label)
{
    // The measurement protocol is a pure function of (source, device,
    // label), so transient failures — a flaky driver compile, a timing
    // query that errors out — are absorbed here with bounded retries
    // and every caller (campaign engine, search oracles, examples)
    // sees bit-identical results whether or not a retry happened.
    const RetryPolicy policy = defaultRetryPolicy();
    TimingResult result;
    result.binary =
        retryTransient(policy, label + "/compile", [&] {
            return gpu::driverCompile(glslSource, device);
        });
    retryTransient(policy, label + "/measure", [&] {
        fault::point("runtime.measure", label);
        return 0;
    });

    const double draw_ns =
        gpu::drawTimeNs(result.binary, device, kFragmentsPerDraw);
    const int draws = device.trianglesPerFrame;
    const double frame_ns = draw_ns * draws;

    // Sum of `draws` independent noisy draw timings: by CLT one
    // gaussian with sigma/sqrt(draws) models the per-frame noise;
    // a second term models frame-level environmental jitter.
    const double per_frame_sigma =
        device.noiseSigma / std::sqrt(static_cast<double>(draws));
    const double env_sigma = device.noiseSigma * 0.5;

    result.frameTimesNs.reserve(
        static_cast<size_t>(kFramesPerRun * kRepetitions));
    for (int rep = 0; rep < kRepetitions; ++rep) {
        Rng rng(label + "/" + device.vendor + "/rep" +
                std::to_string(rep));
        // Environmental drift for this run (thermals, clocks).
        const double run_scale = 1.0 + rng.gaussian(0.0, env_sigma);
        for (int frame = 0; frame < kFramesPerRun; ++frame) {
            double t = frame_ns * run_scale *
                       (1.0 + rng.gaussian(0.0, per_frame_sigma));
            // Timer query quantisation.
            t = std::round(t / device.timerQuantumNs) *
                device.timerQuantumNs;
            result.frameTimesNs.push_back(std::max(0.0, t));
        }
    }

    Summary s = summarize(result.frameTimesNs);
    result.meanNs = s.mean;
    result.medianNs = s.median;
    result.stddevNs = s.stddev;
    return result;
}

double
speedupPercent(const TimingResult &baseline, const TimingResult &variant)
{
    if (baseline.meanNs <= 0.0)
        return 0.0;
    return (baseline.meanNs - variant.meanNs) / baseline.meanNs * 100.0;
}

} // namespace gsopt::runtime
