/**
 * @file
 * Bump allocation for IR storage.
 *
 * The exploration phase clones and destroys thousands of Modules per
 * shader (one clone per applied pass in the flag tree). With heap-backed
 * IR every clone paid one allocation per instruction plus one per
 * operand/index/constant vector, and every destruction walked them all
 * back. Arena backing turns a module's storage into a handful of chunks:
 * allocation is pointer bumping, clone() is a near-linear block copy, and
 * destruction frees whole chunks without visiting instructions.
 *
 * Two pieces live here:
 *
 *  - Arena: a chunked bump allocator owned by each ir::Module. Objects
 *    placed in it must be trivially destructible (enforced by create());
 *    nothing is ever freed individually — dropping an instruction from a
 *    block simply unlinks it, and its memory stays valid (and stays
 *    *stable*: no later allocation can reuse the address) until the
 *    module dies. Passes that previously kept "graveyards" to pin
 *    replaced instructions alive rely on exactly this guarantee.
 *
 *  - InlineVec<T, N>: a fixed-capacity, trivially-copyable vector used
 *    for Instr operand/index/constant-lane lists. The IR's shapes are
 *    bounded by the vec4-wide type system (max 4 operands for Construct,
 *    4 swizzle indices, 4 constant lanes), so the lists inline into the
 *    instruction itself: no per-list heap allocation, and Instr becomes
 *    trivially destructible and trivially copyable — which is what lets
 *    Module::clone() copy instructions by value and only fix up
 *    pointers. Exceeding the capacity aborts loudly (it would mean a
 *    new opcode broke the vec4 bound, not a recoverable condition).
 */
#ifndef GSOPT_IR_ARENA_H
#define GSOPT_IR_ARENA_H

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace gsopt::ir {

[[noreturn]] void inlineVecOverflow(size_t capacity, size_t wanted);

/**
 * Fixed-capacity inline vector mirroring the std::vector surface the IR
 * code uses (indexing, range-for, push_back/clear/assign). Trivially
 * copyable and destructible by construction.
 */
template <typename T, unsigned N>
class InlineVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "InlineVec holds trivially copyable elements only");
    static_assert(N <= 255,
                  "size_ is a uint8_t; larger N would wrap before the "
                  "overflow guard could fire");

  public:
    InlineVec() = default;
    InlineVec(std::initializer_list<T> init)
    {
        assign(init.begin(), init.end());
    }
    InlineVec(const std::vector<T> &v) { assign(v.begin(), v.end()); }

    InlineVec &operator=(std::initializer_list<T> init)
    {
        assign(init.begin(), init.end());
        return *this;
    }
    InlineVec &operator=(const std::vector<T> &v)
    {
        assign(v.begin(), v.end());
        return *this;
    }

    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    T *begin() { return items_; }
    T *end() { return items_ + size_; }
    const T *begin() const { return items_; }
    const T *end() const { return items_ + size_; }
    T *data() { return items_; }
    const T *data() const { return items_; }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    static constexpr size_t capacity() { return N; }

    T &operator[](size_t i) { return items_[i]; }
    const T &operator[](size_t i) const { return items_[i]; }
    T &front() { return items_[0]; }
    const T &front() const { return items_[0]; }
    T &back() { return items_[size_ - 1]; }
    const T &back() const { return items_[size_ - 1]; }

    void clear() { size_ = 0; }
    void reserve(size_t) {} // capacity is fixed; kept for call sites
    void push_back(const T &v)
    {
        if (size_ >= N)
            inlineVecOverflow(N, size_ + 1u);
        items_[size_++] = v;
    }
    void pop_back() { --size_; }

    template <typename It>
    void assign(It first, It last)
    {
        size_ = 0;
        for (; first != last; ++first)
            push_back(*first);
    }
    void assign(size_t n, const T &v)
    {
        if (n > N)
            inlineVecOverflow(N, n);
        size_ = static_cast<uint8_t>(n);
        for (size_t i = 0; i < n; ++i)
            items_[i] = v;
    }

    /** Call-site compatibility with the old std::vector members. */
    operator std::vector<T>() const
    {
        return std::vector<T>(begin(), end());
    }

    bool operator==(const InlineVec &o) const
    {
        if (size_ != o.size_)
            return false;
        for (size_t i = 0; i < size_; ++i) {
            if (!(items_[i] == o.items_[i]))
                return false;
        }
        return true;
    }
    bool operator!=(const InlineVec &o) const { return !(*this == o); }

  private:
    T items_[N];
    uint8_t size_ = 0;
};

/**
 * Chunked bump allocator. Not thread-safe (each Module owns one and
 * modules are never mutated concurrently). Move-only.
 */
class Arena
{
  public:
    Arena() = default;
    ~Arena() { releaseChunks(); }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    Arena(Arena &&o) noexcept { moveFrom(o); }
    Arena &operator=(Arena &&o) noexcept
    {
        if (this != &o) {
            releaseChunks();
            moveFrom(o);
        }
        return *this;
    }

    /** Raw bump allocation. @p align must be a power of two. */
    void *allocate(size_t size, size_t align)
    {
        char *p = alignUp(cursor_, align);
        // Signed headroom check: stays defined when the arena has no
        // chunk yet (all pointers null -> 0 headroom) and when
        // alignment pushed p past limit_ (negative headroom).
        if (limit_ - p < static_cast<std::ptrdiff_t>(size))
            return allocateSlow(size, align);
        cursor_ = p + size;
        used_ = static_cast<size_t>(cursor_ - chunkBase_) + priorUsed_;
        return p;
    }

    /** Placement-construct a trivially destructible T in the arena. */
    template <typename T, typename... Args>
    T *create(Args &&...args)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena objects are never destroyed individually");
        void *p = allocate(sizeof(T), alignof(T));
        return new (p) T(std::forward<Args>(args)...);
    }

    /**
     * Placement-construct a T whose destructor the *caller* promises to
     * run before the arena dies (Module does this for its Vars, which
     * carry a name string and const-init vector). Everything else
     * should use create().
     */
    template <typename T, typename... Args>
    T *createWithCallerManagedDtor(Args &&...args)
    {
        void *p = allocate(sizeof(T), alignof(T));
        return new (p) T(std::forward<Args>(args)...);
    }

    /** Default-initialised array of trivially destructible T. */
    template <typename T>
    T *allocateArray(size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena objects are never destroyed individually");
        if (n == 0)
            return nullptr;
        void *p = allocate(sizeof(T) * n, alignof(T));
        return new (p) T[n];
    }

    /**
     * Size the *next* chunk to hold @p bytes contiguously — in both
     * directions: raised for a big module, and *lowered* below the
     * default chunk size for a small one (the caller knows the exact
     * footprint). clone() calls this with the source's bytesUsed() so
     * a cloned module lands in one right-sized chunk; without the
     * shrink, every small module memoized by the exploration tree
     * would hold a full kMinChunk.
     */
    void reserveHint(size_t bytes)
    {
        if (chunks_ == nullptr || bytes > nextChunkSize_)
            nextChunkSize_ = bytes < kAlignSlack ? kAlignSlack : bytes;
    }

    /** Bytes handed out (cumulative, including alignment padding). */
    size_t bytesUsed() const { return used_; }
    /** Bytes reserved from the system allocator across all chunks. */
    size_t bytesReserved() const { return reserved_; }
    size_t chunkCount() const { return chunkCount_; }

  private:
    struct ChunkHeader
    {
        ChunkHeader *next;
        size_t size; ///< payload bytes (header excluded)
    };

    static char *alignUp(char *p, size_t align)
    {
        auto v = reinterpret_cast<uintptr_t>(p);
        v = (v + align - 1) & ~(static_cast<uintptr_t>(align) - 1);
        return reinterpret_cast<char *>(v);
    }

    void *allocateSlow(size_t size, size_t align);
    void releaseChunks();
    void moveFrom(Arena &o);

    static constexpr size_t kMinChunk = 16 * 1024;
    static constexpr size_t kAlignSlack = 256;

    ChunkHeader *chunks_ = nullptr; ///< newest first
    char *chunkBase_ = nullptr;     ///< payload start of newest chunk
    char *cursor_ = nullptr;
    char *limit_ = nullptr;
    size_t priorUsed_ = 0; ///< bytes used in all full chunks
    size_t used_ = 0;
    size_t reserved_ = 0;
    size_t chunkCount_ = 0;
    size_t nextChunkSize_ = kMinChunk;
};

} // namespace gsopt::ir

#endif // GSOPT_IR_ARENA_H
