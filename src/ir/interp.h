/**
 * @file
 * Reference interpreter for IR modules.
 *
 * Executes a shader module for one fragment given concrete input,
 * uniform, and texture bindings, producing the values of all output
 * variables. The test suite uses it as the ground truth for optimization
 * correctness: for every pass (and every combination of passes), the
 * optimised module must compute the same outputs as the original, up to
 * floating-point reassociation tolerance.
 */
#ifndef GSOPT_IR_INTERP_H
#define GSOPT_IR_INTERP_H

#include <array>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "support/governor.h"

namespace gsopt::ir {

/** Runtime value: one double per component. */
using LaneVector = std::vector<double>;

/**
 * A texture callback: (u, v, lod) -> RGBA. The default is a smooth
 * procedural pattern so that nearby coordinates give nearby colours (as
 * with the paper's "colourfully-patterned" default texture).
 */
using TextureFn =
    std::function<std::array<double, 4>(double, double, double)>;

/** Execution environment for one fragment. */
struct InterpEnv
{
    /** Values for Input vars (by name). */
    std::map<std::string, LaneVector> inputs;
    /** Values for Uniform vars (by name); matrices flattened
     * column-major, arrays element-major. */
    std::map<std::string, LaneVector> uniforms;
    /** Per-sampler texture functions (by name); optional. */
    std::map<std::string, TextureFn> textures;
    /** Iteration cap for generic (non-canonical) loops. */
    long maxLoopIterations = 4096;
};

/** Result of interpreting one fragment. */
struct InterpResult
{
    std::map<std::string, LaneVector> outputs;
    bool discarded = false;
    /** Dynamic instruction count (one per executed instruction). */
    size_t executedInstructions = 0;
};

/** The default procedural texture (smooth RGBA pattern in [0,1]). */
std::array<double, 4> defaultTexture(double u, double v, double lod);

/**
 * Execute the module. Missing inputs/uniforms default to 0.5 per
 * component (the measurement framework's auto-initialisation rule);
 * missing samplers use defaultTexture.
 *
 * Implementation: SSA values live in a dense slot-indexed register file
 * (one slot per Instr::id, small-buffer lane storage — GLSL values are
 * at most 4 components, so the hot path never heap-allocates), and var
 * memory is a dense table indexed by Var::id. Modules whose ids did not
 * come from Module::nextId()/newVar (hand-assembled test IR) fall back
 * to the map-based reference engine automatically.
 *
 * Throws std::runtime_error on malformed modules or runaway loops.
 */
InterpResult interpret(const Module &module, const InterpEnv &env);

/**
 * The original map-based interpreter (`unordered_map<const Instr*,
 * LaneVector>` value storage). Kept as the golden reference: the
 * slot-indexed engine must produce bit-identical outputs, and the
 * equivalence test suite pins that.
 */
InterpResult interpretReference(const Module &module,
                                const InterpEnv &env);

namespace detail {
/**
 * True when dense slot indexing is valid for @p module: every Instr::id
 * unique and below idBound(), every referenced Var at vars[Var::id].
 * Shared by the slot engine's dispatch and the batched SoA engine
 * (ir/interp_batch.h), which both fall back to the map engine when it
 * fails.
 */
bool denseIdsUsable(const Module &module);

/**
 * The shared runaway-guard for generic (non-canonical) loops, used by
 * all three engines (map, slot, batched SoA) — one implementation
 * instead of per-engine copies. It enforces the legacy per-loop
 * InterpEnv::maxLoopIterations trip cap (kept working as an alias of
 * the old hard-coded guards) and re-checks the governed wall-clock
 * deadline on every trip, so a slow loop cannot outrun
 * GSOPT_DEADLINE_MS between the amortised instruction-budget flushes.
 * The governed work bound itself (Dim::InterpSteps) counts executed
 * instructions, not trips — see governor::StepMeter at the engines'
 * instruction dispatch.
 */
class LoopGuard
{
  public:
    explicit LoopGuard(long maxTrips) : maxTrips_(maxTrips) {}

    void tick()
    {
        if (++trips_ > maxTrips_)
            throw std::runtime_error("interp: runaway generic loop");
        governor::checkDeadline("interp");
    }

  private:
    long trips_ = 0;
    long maxTrips_;
};
} // namespace detail

} // namespace gsopt::ir

#endif // GSOPT_IR_INTERP_H
