#include "ir/walk.h"

#include <algorithm>

namespace gsopt::ir {

void
forEachInstr(Region &region, const std::function<void(Instr &)> &fn)
{
    for (auto &node : region.nodes) {
        if (auto *b = dyn_cast<Block>(node.get())) {
            for (auto &i : b->instrs)
                fn(*i);
        } else if (auto *f = dyn_cast<IfNode>(node.get())) {
            forEachInstr(f->thenRegion, fn);
            forEachInstr(f->elseRegion, fn);
        } else if (auto *l = dyn_cast<LoopNode>(node.get())) {
            forEachInstr(l->condRegion, fn);
            forEachInstr(l->body, fn);
        }
    }
}

void
forEachInstr(const Region &region,
             const std::function<void(const Instr &)> &fn)
{
    forEachInstr(const_cast<Region &>(region),
                 [&fn](Instr &i) { fn(i); });
}

void
forEachNode(Region &region, const std::function<void(Node &)> &fn)
{
    for (auto &node : region.nodes) {
        fn(*node);
        if (auto *f = dyn_cast<IfNode>(node.get())) {
            forEachNode(f->thenRegion, fn);
            forEachNode(f->elseRegion, fn);
        } else if (auto *l = dyn_cast<LoopNode>(node.get())) {
            forEachNode(l->condRegion, fn);
            forEachNode(l->body, fn);
        }
    }
}

namespace {

void
replaceUsesInRegion(Region &region, Instr *from, Instr *to)
{
    for (auto &node : region.nodes) {
        if (auto *b = dyn_cast<Block>(node.get())) {
            for (auto &i : b->instrs) {
                for (auto &op : i->operands) {
                    if (op == from)
                        op = to;
                }
            }
        } else if (auto *f = dyn_cast<IfNode>(node.get())) {
            if (f->cond == from)
                f->cond = to;
            replaceUsesInRegion(f->thenRegion, from, to);
            replaceUsesInRegion(f->elseRegion, from, to);
        } else if (auto *l = dyn_cast<LoopNode>(node.get())) {
            if (l->condValue == from)
                l->condValue = to;
            replaceUsesInRegion(l->condRegion, from, to);
            replaceUsesInRegion(l->body, from, to);
        }
    }
}

} // namespace

void
replaceAllUses(Module &module, Instr *from, Instr *to)
{
    replaceUsesInRegion(module.body, from, to);
}

void
cloneRegionInto(const Region &src, Region &dst, Module &module,
                ValueMap &map)
{
    auto mapped = [&map](Instr *v) -> Instr * {
        if (!v)
            return nullptr;
        auto it = map.find(v);
        return it == map.end() ? v : it->second;
    };

    for (const auto &node : src.nodes) {
        if (const auto *b = dyn_cast<Block>(node.get())) {
            auto nb = std::make_unique<Block>();
            nb->instrs.reserve(b->instrs.size());
            for (const Instr *i : b->instrs) {
                Instr *ni = module.newInstr(*i);
                for (Instr *&op : ni->operands)
                    op = mapped(op);
                map[i] = ni;
                nb->instrs.push_back(ni);
            }
            dst.nodes.push_back(std::move(nb));
        } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
            auto nf = std::make_unique<IfNode>();
            nf->cond = mapped(f->cond);
            cloneRegionInto(f->thenRegion, nf->thenRegion, module, map);
            cloneRegionInto(f->elseRegion, nf->elseRegion, module, map);
            dst.nodes.push_back(std::move(nf));
        } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
            auto nl = std::make_unique<LoopNode>();
            nl->canonical = l->canonical;
            nl->counter = l->counter;
            nl->init = l->init;
            nl->limit = l->limit;
            nl->step = l->step;
            cloneRegionInto(l->condRegion, nl->condRegion, module, map);
            nl->condValue = mapped(l->condValue);
            cloneRegionInto(l->body, nl->body, module, map);
            dst.nodes.push_back(std::move(nl));
        }
    }
}

void
eraseInstrsIf(Region &region,
              const std::function<bool(const Instr &)> &pred)
{
    for (auto &node : region.nodes) {
        if (auto *b = dyn_cast<Block>(node.get())) {
            // Unlinks only: the instructions stay alive (and their
            // addresses stable) in the module's arena.
            auto &v = b->instrs;
            v.erase(std::remove_if(v.begin(), v.end(),
                                   [&pred](const Instr *i) {
                                       return pred(*i);
                                   }),
                    v.end());
        } else if (auto *f = dyn_cast<IfNode>(node.get())) {
            eraseInstrsIf(f->thenRegion, pred);
            eraseInstrsIf(f->elseRegion, pred);
        } else if (auto *l = dyn_cast<LoopNode>(node.get())) {
            eraseInstrsIf(l->condRegion, pred);
            eraseInstrsIf(l->body, pred);
        }
    }
}

bool
simplifyRegionStructure(Region &region)
{
    bool changed = false;
    auto &nodes = region.nodes;
    for (auto &node : nodes) {
        if (auto *f = dyn_cast<IfNode>(node.get())) {
            changed |= simplifyRegionStructure(f->thenRegion);
            changed |= simplifyRegionStructure(f->elseRegion);
        } else if (auto *l = dyn_cast<LoopNode>(node.get())) {
            changed |= simplifyRegionStructure(l->condRegion);
            changed |= simplifyRegionStructure(l->body);
        }
    }
    auto is_removable = [](const NodePtr &n) {
        if (const auto *b = dyn_cast<Block>(n.get()))
            return b->instrs.empty();
        if (const auto *f = dyn_cast<IfNode>(n.get()))
            return f->thenRegion.instructionCount() == 0 &&
                   f->elseRegion.instructionCount() == 0;
        if (const auto *l = dyn_cast<LoopNode>(n.get()))
            return l->canonical && l->body.instructionCount() == 0;
        return false;
    };
    size_t before = nodes.size();
    nodes.erase(std::remove_if(nodes.begin(), nodes.end(), is_removable),
                nodes.end());
    changed |= nodes.size() != before;

    // Merge adjacent blocks so passes see maximal straight-line runs.
    for (size_t i = 0; i + 1 < nodes.size();) {
        auto *a = dyn_cast<Block>(nodes[i].get());
        auto *b = dyn_cast<Block>(nodes[i + 1].get());
        if (a && b) {
            a->instrs.insert(a->instrs.end(), b->instrs.begin(),
                             b->instrs.end());
            nodes.erase(nodes.begin() + static_cast<long>(i) + 1);
            changed = true;
        } else {
            ++i;
        }
    }
    return changed;
}

} // namespace gsopt::ir
