#include "ir/verifier.h"

#include <stdexcept>
#include <unordered_set>

#include "ir/dump.h"

namespace gsopt::ir {

namespace {

class Verifier
{
  public:
    explicit Verifier(const Module &module) : module_(module) {}

    std::vector<std::string> run()
    {
        for (const auto &v : module_.vars) {
            if (v->kind == VarKind::ConstArray && v->constInit.empty())
                problem("const array @" + v->name + " has no data");
            vars_.insert(v);
        }
        checkRegion(module_.body);
        return std::move(problems_);
    }

  private:
    void problem(const std::string &msg) { problems_.push_back(msg); }

    void checkOperandVisible(const Instr &user, const Instr *op)
    {
        if (!op) {
            problem("null operand in: " + dumpInstr(user));
            return;
        }
        if (!defined_.count(op)) {
            problem("operand %" + std::to_string(op->id) +
                    " not defined before use in: " + dumpInstr(user));
        }
    }

    void checkRegion(const Region &region)
    {
        for (const auto &node : region.nodes) {
            if (const auto *b = dyn_cast<Block>(node.get())) {
                for (const auto &i : b->instrs)
                    checkInstr(*i);
            } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
                if (!f->cond) {
                    problem("if node without condition");
                } else {
                    if (!defined_.count(f->cond))
                        problem("if condition %" +
                                std::to_string(f->cond->id) +
                                " not defined before the if");
                    if (f->cond->type != Type::boolTy())
                        problem("if condition must be scalar bool");
                }
                // Values from the branches do not escape: passes must
                // communicate through vars. Enforce by scoping.
                auto saved = defined_;
                checkRegion(f->thenRegion);
                defined_ = saved;
                checkRegion(f->elseRegion);
                defined_ = std::move(saved);
            } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
                if (l->canonical) {
                    if (!l->counter) {
                        problem("canonical loop without counter var");
                    } else if (!vars_.count(l->counter)) {
                        problem("loop counter not owned by module");
                    }
                    if (l->step <= 0)
                        problem("canonical loop with non-positive step");
                } else if (!l->condValue) {
                    problem("generic loop without condition value");
                }
                auto saved = defined_;
                if (!l->canonical) {
                    checkRegion(l->condRegion);
                    if (l->condValue && !defined_.count(l->condValue))
                        problem("loop condition value not defined in "
                                "cond region");
                    // Cond-region values are NOT visible to the body:
                    // the GLSL back end re-evaluates the condition at a
                    // different program point, so any cross-reference
                    // would change meaning after a round trip.
                    defined_ = saved;
                }
                checkRegion(l->body);
                defined_ = std::move(saved);
            }
        }
    }

    void checkInstr(const Instr &i)
    {
        for (const Instr *op : i.operands)
            checkOperandVisible(i, op);

        switch (i.op) {
          case Opcode::Const:
            if (static_cast<int>(i.constData.size()) !=
                i.type.componentCount())
                problem("const lane count mismatch: " + dumpInstr(i));
            break;
          case Opcode::LoadVar:
            if (!i.var) {
                problem("load without var");
            } else if (i.type != i.var->type) {
                problem("load type mismatch: " + dumpInstr(i));
            }
            break;
          case Opcode::StoreVar:
            if (!i.var) {
                problem("store without var");
            } else {
                if (i.var->isReadOnly())
                    problem("store to read-only var @" + i.var->name);
                if (i.operands.size() == 1 && i.operands[0] &&
                    i.operands[0]->type != i.var->type)
                    problem("store type mismatch: " + dumpInstr(i));
            }
            break;
          case Opcode::LoadElem:
          case Opcode::StoreElem:
            if (!i.var) {
                problem("element access without var");
            } else if (!i.var->type.isArray() &&
                       !i.var->type.isMatrix()) {
                problem("element access on non-array var @" +
                        i.var->name);
            }
            if (i.op == Opcode::StoreElem &&
                i.var && i.var->isReadOnly())
                problem("element store to read-only var @" + i.var->name);
            break;
          case Opcode::Extract:
            if (i.indices.size() != 1 ||
                !i.operands[0]->type.isVector() ||
                i.indices[0] < 0 ||
                i.indices[0] >= i.operands[0]->type.rows)
                problem("bad extract: " + dumpInstr(i));
            break;
          case Opcode::Insert:
            if (i.indices.size() != 1 || i.operands.size() != 2 ||
                !i.type.isVector() || i.indices[0] < 0 ||
                i.indices[0] >= i.type.rows)
                problem("bad insert: " + dumpInstr(i));
            break;
          case Opcode::Swizzle: {
            if (i.operands.size() != 1 ||
                !i.operands[0]->type.isVector()) {
                problem("bad swizzle source: " + dumpInstr(i));
                break;
            }
            for (int idx : i.indices) {
                if (idx < 0 || idx >= i.operands[0]->type.rows)
                    problem("swizzle index out of range: " +
                            dumpInstr(i));
            }
            break;
          }
          case Opcode::Select:
            if (i.operands.size() != 3 ||
                i.operands[0]->type != Type::boolTy())
                problem("bad select: " + dumpInstr(i));
            else if (i.operands[1]->type != i.operands[2]->type)
                problem("select arm type mismatch: " + dumpInstr(i));
            break;
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::Div:
            if (i.operands.size() != 2)
                problem("binary op arity: " + dumpInstr(i));
            else if (i.operands[0]->type != i.operands[1]->type)
                problem("binary op operand types differ (" +
                        i.operands[0]->type.str() + " vs " +
                        i.operands[1]->type.str() +
                        "): " + dumpInstr(i));
            break;
          case Opcode::Texture:
          case Opcode::TextureBias:
          case Opcode::TextureLod:
            if (!i.var || i.var->kind != VarKind::Sampler)
                problem("texture op needs a sampler var: " +
                        dumpInstr(i));
            break;
          default:
            break;
        }
        if (!isVoidOp(i.op))
            defined_.insert(&i);
    }

    const Module &module_;
    std::vector<std::string> problems_;
    std::unordered_set<const Instr *> defined_;
    std::unordered_set<const Var *> vars_;
};

} // namespace

std::vector<std::string>
verify(const Module &module)
{
    return Verifier(module).run();
}

void
verifyOrDie(const Module &module, const std::string &context)
{
    auto problems = verify(module);
    if (problems.empty())
        return;
    std::string msg = "IR verification failed (" + context + "):";
    for (const auto &p : problems)
        msg += "\n  " + p;
    throw std::logic_error(msg);
}

} // namespace gsopt::ir
