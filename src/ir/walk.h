/**
 * @file
 * Traversal and mutation utilities over the structured IR: instruction
 * walks, use replacement, and remapping clones (the primitive behind loop
 * unrolling and if-flattening).
 */
#ifndef GSOPT_IR_WALK_H
#define GSOPT_IR_WALK_H

#include <functional>
#include <unordered_map>

#include "ir/ir.h"

namespace gsopt::ir {

/** Visit every instruction in the region, in structural order. */
void forEachInstr(Region &region,
                  const std::function<void(Instr &)> &fn);
void forEachInstr(const Region &region,
                  const std::function<void(const Instr &)> &fn);

/** Visit every node (blocks, ifs, loops), pre-order. */
void forEachNode(Region &region, const std::function<void(Node &)> &fn);

/**
 * Replace every use of @p from with @p to across the module body
 * (operands and if/loop condition references).
 */
void replaceAllUses(Module &module, Instr *from, Instr *to);

/** Value remapping table used while cloning. */
using ValueMap = std::unordered_map<const Instr *, Instr *>;

/**
 * Clone @p src region into @p dst (appending), remapping operand
 * references through @p map. References to values defined outside @p src
 * (not present in the map) are kept as-is. New instructions get fresh
 * ids from @p module.
 */
void cloneRegionInto(const Region &src, Region &dst, Module &module,
                     ValueMap &map);

/**
 * Erase instructions of the region for which @p pred returns true.
 * Does not check uses; callers must know the instructions are dead.
 */
void eraseInstrsIf(Region &region,
                   const std::function<bool(const Instr &)> &pred);

/** Remove empty blocks and empty if-nodes; returns true if changed. */
bool simplifyRegionStructure(Region &region);

} // namespace gsopt::ir

#endif // GSOPT_IR_WALK_H
