#include "ir/interp.h"

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

namespace gsopt::ir {

namespace {

/** Broadcast read: scalar splats extend to any lane; the modulo wrap is
 * hoisted off the common paths (scalar splat, in-range index). */
double
lane(const LaneVector &v, size_t i)
{
    if (v.empty())
        return 0.0;
    if (v.size() == 1)
        return v[0];
    return i < v.size() ? v[i] : v[i % v.size()];
}

// ===================================================================
// Map-based reference interpreter (the original engine). Kept verbatim
// as the golden baseline for the slot-indexed engine below, and as the
// fallback for hand-assembled modules with non-dense ids.
// ===================================================================

class MapInterpreter
{
  public:
    MapInterpreter(const Module &module, const InterpEnv &env)
        : module_(module), env_(env)
    {
        for (const auto &v : module_.vars)
            initVar(*v);
    }

    InterpResult run()
    {
        execRegion(module_.body);
        meter_.flush(); // enforce sub-4096 budgets before returning
        InterpResult result;
        result.discarded = discarded_;
        result.executedInstructions = executed_;
        for (const auto &v : module_.vars) {
            if (v->kind == VarKind::Output)
                result.outputs[v->name] = memory_[v];
        }
        return result;
    }

  private:
    void initVar(const Var &v)
    {
        const int comp = v.type.isArray()
                             ? v.type.arraySize *
                                   v.type.elementType().componentCount()
                             : v.type.componentCount();
        LaneVector init(static_cast<size_t>(comp), 0.0);
        switch (v.kind) {
          case VarKind::Input: {
            auto it = env_.inputs.find(v.name);
            if (it != env_.inputs.end()) {
                for (size_t i = 0; i < init.size(); ++i)
                    init[i] = lane(it->second, i);
            } else {
                init.assign(init.size(), 0.5);
            }
            break;
          }
          case VarKind::Uniform: {
            auto it = env_.uniforms.find(v.name);
            if (it != env_.uniforms.end()) {
                for (size_t i = 0; i < init.size(); ++i)
                    init[i] = lane(it->second, i);
            } else {
                init.assign(init.size(), 0.5);
            }
            break;
          }
          case VarKind::ConstArray:
            init = v.constInit;
            break;
          default:
            break;
        }
        memory_[&v] = std::move(init);
    }

    const LaneVector &value(const Instr *i)
    {
        auto it = values_.find(i);
        if (it == values_.end())
            throw std::runtime_error("interp: use of unevaluated value");
        return it->second;
    }

    void execRegion(const Region &region)
    {
        if (discarded_)
            return;
        for (const auto &node : region.nodes) {
            if (discarded_)
                return;
            if (const auto *b = dyn_cast<Block>(node.get())) {
                for (const auto &i : b->instrs) {
                    execInstr(*i);
                    if (discarded_)
                        return;
                }
            } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
                bool cond = value(f->cond)[0] != 0.0;
                execRegion(cond ? f->thenRegion : f->elseRegion);
            } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
                execLoop(*l);
            }
        }
    }

    void execLoop(const LoopNode &l)
    {
        if (l.canonical) {
            LaneVector &counter = memory_[l.counter];
            counter.assign(1, 0.0);
            for (long v = l.init; v < l.limit; v += l.step) {
                counter[0] = static_cast<double>(v);
                execRegion(l.body);
                if (discarded_)
                    return;
            }
            return;
        }
        detail::LoopGuard guard(env_.maxLoopIterations);
        for (;;) {
            execRegion(l.condRegion);
            if (discarded_)
                return;
            if (value(l.condValue)[0] == 0.0)
                break;
            execRegion(l.body);
            if (discarded_)
                return;
            guard.tick();
        }
    }

    void execInstr(const Instr &i)
    {
        ++executed_;
        meter_.tick();
        auto arg = [&](size_t k) -> const LaneVector & {
            return value(i.operands[k]);
        };
        auto set = [&](LaneVector v) {
            values_[&i] = std::move(v);
        };
        auto cw1 = [&](double (*fn)(double)) {
            LaneVector out = arg(0);
            for (double &d : out)
                d = fn(d);
            set(std::move(out));
        };
        auto cw2 = [&](double (*fn)(double, double)) {
            const LaneVector &a = arg(0);
            const LaneVector &b = arg(1);
            LaneVector out(std::max(a.size(), b.size()));
            for (size_t k = 0; k < out.size(); ++k)
                out[k] = fn(lane(a, k), lane(b, k));
            set(std::move(out));
        };

        switch (i.op) {
          case Opcode::Const:
            set(i.constData);
            break;
          case Opcode::Neg:
            cw1(+[](double a) { return -a; });
            break;
          case Opcode::Not:
            cw1(+[](double a) { return a == 0.0 ? 1.0 : 0.0; });
            break;
          case Opcode::Add:
            cw2(+[](double a, double b) { return a + b; });
            break;
          case Opcode::Sub:
            cw2(+[](double a, double b) { return a - b; });
            break;
          case Opcode::Mul:
            cw2(+[](double a, double b) { return a * b; });
            break;
          case Opcode::Div:
            if (i.type.isInt()) {
                cw2(+[](double a, double b) {
                    return b != 0.0 ? std::trunc(a / b) : 0.0;
                });
            } else {
                cw2(+[](double a, double b) { return a / b; });
            }
            break;
          case Opcode::Mod:
            cw2(+[](double a, double b) {
                return b != 0.0 ? a - b * std::floor(a / b) : 0.0;
            });
            break;
          case Opcode::Lt:
            set({arg(0)[0] < arg(1)[0] ? 1.0 : 0.0});
            break;
          case Opcode::Le:
            set({arg(0)[0] <= arg(1)[0] ? 1.0 : 0.0});
            break;
          case Opcode::Gt:
            set({arg(0)[0] > arg(1)[0] ? 1.0 : 0.0});
            break;
          case Opcode::Ge:
            set({arg(0)[0] >= arg(1)[0] ? 1.0 : 0.0});
            break;
          case Opcode::Eq:
            set({arg(0) == arg(1) ? 1.0 : 0.0});
            break;
          case Opcode::Ne:
            set({arg(0) != arg(1) ? 1.0 : 0.0});
            break;
          case Opcode::LogicalAnd:
            set({arg(0)[0] != 0.0 && arg(1)[0] != 0.0 ? 1.0 : 0.0});
            break;
          case Opcode::LogicalOr:
            set({arg(0)[0] != 0.0 || arg(1)[0] != 0.0 ? 1.0 : 0.0});
            break;
          case Opcode::Sin: cw1(+[](double a) { return std::sin(a); }); break;
          case Opcode::Cos: cw1(+[](double a) { return std::cos(a); }); break;
          case Opcode::Tan: cw1(+[](double a) { return std::tan(a); }); break;
          case Opcode::Asin: cw1(+[](double a) { return std::asin(a); }); break;
          case Opcode::Acos: cw1(+[](double a) { return std::acos(a); }); break;
          case Opcode::Atan: cw1(+[](double a) { return std::atan(a); }); break;
          case Opcode::Exp: cw1(+[](double a) { return std::exp(a); }); break;
          case Opcode::Log: cw1(+[](double a) { return std::log(a); }); break;
          case Opcode::Exp2: cw1(+[](double a) { return std::exp2(a); }); break;
          case Opcode::Log2: cw1(+[](double a) { return std::log2(a); }); break;
          case Opcode::Sqrt: cw1(+[](double a) { return std::sqrt(a); }); break;
          case Opcode::InvSqrt:
            cw1(+[](double a) { return 1.0 / std::sqrt(a); });
            break;
          case Opcode::Abs: cw1(+[](double a) { return std::fabs(a); }); break;
          case Opcode::Sign:
            cw1(+[](double a) {
                return a > 0.0 ? 1.0 : a < 0.0 ? -1.0 : 0.0;
            });
            break;
          case Opcode::Floor: cw1(+[](double a) { return std::floor(a); }); break;
          case Opcode::Ceil: cw1(+[](double a) { return std::ceil(a); }); break;
          case Opcode::Fract:
            cw1(+[](double a) { return a - std::floor(a); });
            break;
          case Opcode::Radians:
            cw1(+[](double a) { return a * M_PI / 180.0; });
            break;
          case Opcode::Degrees:
            cw1(+[](double a) { return a * 180.0 / M_PI; });
            break;
          case Opcode::Atan2:
            cw2(+[](double y, double x) { return std::atan2(y, x); });
            break;
          case Opcode::Pow:
            cw2(+[](double a, double b) { return std::pow(a, b); });
            break;
          case Opcode::Min:
            cw2(+[](double a, double b) { return std::min(a, b); });
            break;
          case Opcode::Max:
            cw2(+[](double a, double b) { return std::max(a, b); });
            break;
          case Opcode::Step:
            cw2(+[](double e, double x) { return x < e ? 0.0 : 1.0; });
            break;
          case Opcode::Normalize: {
            LaneVector out = arg(0);
            double len = 0.0;
            for (double d : out)
                len += d * d;
            len = std::sqrt(len);
            if (len > 0.0) {
                for (double &d : out)
                    d /= len;
            }
            set(std::move(out));
            break;
          }
          case Opcode::Length: {
            double len = 0.0;
            for (double d : arg(0))
                len += d * d;
            set({std::sqrt(len)});
            break;
          }
          case Opcode::Distance: {
            double len = 0.0;
            for (size_t k = 0; k < arg(0).size(); ++k) {
                double d = arg(0)[k] - lane(arg(1), k);
                len += d * d;
            }
            set({std::sqrt(len)});
            break;
          }
          case Opcode::Dot: {
            double sum = 0.0;
            for (size_t k = 0; k < arg(0).size(); ++k)
                sum += arg(0)[k] * lane(arg(1), k);
            set({sum});
            break;
          }
          case Opcode::Cross: {
            const LaneVector &a = arg(0);
            const LaneVector &b = arg(1);
            set({a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
                 a[0] * b[1] - a[1] * b[0]});
            break;
          }
          case Opcode::Reflect: {
            const LaneVector &v = arg(0);
            const LaneVector &n = arg(1);
            double d = 0.0;
            for (size_t k = 0; k < v.size(); ++k)
                d += v[k] * lane(n, k);
            LaneVector out(v.size());
            for (size_t k = 0; k < v.size(); ++k)
                out[k] = v[k] - 2.0 * d * lane(n, k);
            set(std::move(out));
            break;
          }
          case Opcode::Refract: {
            const LaneVector &v = arg(0);
            const LaneVector &n = arg(1);
            double eta = arg(2)[0];
            double d = 0.0;
            for (size_t k = 0; k < v.size(); ++k)
                d += v[k] * lane(n, k);
            double k_val = 1.0 - eta * eta * (1.0 - d * d);
            LaneVector out(v.size(), 0.0);
            if (k_val >= 0.0) {
                double coeff = eta * d + std::sqrt(k_val);
                for (size_t k = 0; k < v.size(); ++k)
                    out[k] = eta * v[k] - coeff * lane(n, k);
            }
            set(std::move(out));
            break;
          }
          case Opcode::Clamp: {
            LaneVector out = arg(0);
            for (size_t k = 0; k < out.size(); ++k)
                out[k] = std::min(std::max(out[k], lane(arg(1), k)),
                                  lane(arg(2), k));
            set(std::move(out));
            break;
          }
          case Opcode::Mix: {
            LaneVector out = arg(0);
            for (size_t k = 0; k < out.size(); ++k) {
                double t = lane(arg(2), k);
                out[k] = out[k] * (1.0 - t) + lane(arg(1), k) * t;
            }
            set(std::move(out));
            break;
          }
          case Opcode::Smoothstep: {
            LaneVector out = arg(2);
            for (size_t k = 0; k < out.size(); ++k) {
                double e0 = lane(arg(0), k), e1 = lane(arg(1), k);
                double t = e1 != e0 ? (out[k] - e0) / (e1 - e0) : 0.0;
                t = std::min(std::max(t, 0.0), 1.0);
                out[k] = t * t * (3.0 - 2.0 * t);
            }
            set(std::move(out));
            break;
          }
          case Opcode::Select:
            set(arg(0)[0] != 0.0 ? arg(1) : arg(2));
            break;
          case Opcode::Construct: {
            LaneVector out;
            for (const Instr *op : i.operands) {
                const LaneVector &v = value(op);
                out.insert(out.end(), v.begin(), v.end());
            }
            const size_t want =
                static_cast<size_t>(i.type.componentCount());
            if (out.size() == 1 && want > 1)
                out.assign(want, out[0]);
            out.resize(want, 0.0);
            // Construct doubles as the conversion op: int(x) truncates
            // toward zero (matching the constant folder, which keeps
            // all int-typed lanes integral).
            if (i.type.isInt()) {
                for (double &d : out)
                    d = std::trunc(d);
            }
            set(std::move(out));
            break;
          }
          case Opcode::Extract:
            set({arg(0)[static_cast<size_t>(i.indices[0])]});
            break;
          case Opcode::Insert: {
            LaneVector out = arg(0);
            out[static_cast<size_t>(i.indices[0])] = arg(1)[0];
            set(std::move(out));
            break;
          }
          case Opcode::Swizzle: {
            LaneVector out;
            for (int idx : i.indices)
                out.push_back(arg(0)[static_cast<size_t>(idx)]);
            set(std::move(out));
            break;
          }
          case Opcode::Texture:
          case Opcode::TextureBias:
          case Opcode::TextureLod: {
            const LaneVector &coord = arg(0);
            double lod = i.operands.size() > 1 ? arg(1)[0] : 0.0;
            TextureFn fn = defaultTexture;
            auto it = env_.textures.find(i.var->name);
            if (it != env_.textures.end())
                fn = it->second;
            auto rgba = fn(coord[0], lane(coord, 1), lod);
            set({rgba[0], rgba[1], rgba[2], rgba[3]});
            break;
          }
          case Opcode::LoadVar:
            set(memory_[i.var]);
            break;
          case Opcode::StoreVar:
            memory_[i.var] = arg(0);
            break;
          case Opcode::LoadElem: {
            const LaneVector &mem = memory_[i.var];
            const int comp = i.type.componentCount();
            long idx = static_cast<long>(arg(0)[0]);
            LaneVector out(static_cast<size_t>(comp), 0.0);
            size_t off = static_cast<size_t>(idx) *
                         static_cast<size_t>(comp);
            for (int k = 0; k < comp; ++k) {
                size_t p = off + static_cast<size_t>(k);
                if (p < mem.size())
                    out[static_cast<size_t>(k)] = mem[p];
            }
            set(std::move(out));
            break;
          }
          case Opcode::StoreElem: {
            LaneVector &mem = memory_[i.var];
            const LaneVector &val = arg(1);
            long idx = static_cast<long>(arg(0)[0]);
            size_t off = static_cast<size_t>(idx) * val.size();
            for (size_t k = 0; k < val.size(); ++k) {
                size_t p = off + k;
                if (p < mem.size())
                    mem[p] = val[k];
            }
            break;
          }
          case Opcode::Discard:
            discarded_ = true;
            break;
        }
    }

    const Module &module_;
    const InterpEnv &env_;
    std::unordered_map<const Instr *, LaneVector> values_;
    std::unordered_map<const Var *, LaneVector> memory_;
    bool discarded_ = false;
    size_t executed_ = 0;
    governor::StepMeter meter_{governor::Dim::InterpSteps, "interp"};
};

// ===================================================================
// Slot-indexed interpreter.
// ===================================================================

/**
 * Small-buffer lane storage: up to 4 lanes inline (every GLSL SSA value
 * fits), larger sizes (array/matrix var memory) spill to the heap.
 * Copying a small value is a handful of stores — no allocation.
 */
class Lanes
{
  public:
    static constexpr size_t kInline = 4;

    Lanes() = default;

    size_t size() const { return n_; }
    bool empty() const { return n_ == 0; }

    double *data() { return n_ <= kInline ? inline_ : heap_.data(); }
    const double *data() const
    {
        return n_ <= kInline ? inline_ : heap_.data();
    }

    double operator[](size_t i) const { return data()[i]; }
    double &operator[](size_t i) { return data()[i]; }

    /** Grow/shrink, preserving existing lanes; new lanes get @p fill. */
    void resize(size_t n, double fill = 0.0)
    {
        if (n > kInline) {
            if (n_ <= kInline)
                heap_.assign(inline_, inline_ + n_);
            heap_.resize(n, fill);
        } else {
            if (n_ > kInline) {
                for (size_t i = 0; i < n; ++i)
                    inline_[i] = heap_[i];
                heap_.clear();
            } else {
                for (size_t i = n_; i < n; ++i)
                    inline_[i] = fill;
            }
        }
        n_ = static_cast<uint32_t>(n);
    }

    /** All @p n lanes set to @p v. */
    void assign(size_t n, double v)
    {
        if (n > kInline) {
            heap_.assign(n, v);
        } else {
            heap_.clear();
            for (size_t i = 0; i < n; ++i)
                inline_[i] = v;
        }
        n_ = static_cast<uint32_t>(n);
    }

    void assignFrom(const double *src, size_t n)
    {
        if (n > kInline) {
            heap_.assign(src, src + n);
        } else {
            heap_.clear();
            for (size_t i = 0; i < n; ++i)
                inline_[i] = src[i];
        }
        n_ = static_cast<uint32_t>(n);
    }

    bool equals(const Lanes &o) const
    {
        if (n_ != o.n_)
            return false;
        const double *a = data(), *b = o.data();
        for (size_t i = 0; i < n_; ++i) {
            if (a[i] != b[i])
                return false;
        }
        return true;
    }

  private:
    uint32_t n_ = 0;
    double inline_[kInline];
    std::vector<double> heap_; ///< engaged only when n_ > kInline
};

/** Broadcast read over Lanes; modulo wrap hoisted off the hot paths. */
double
lane(const Lanes &v, size_t i)
{
    const size_t n = v.size();
    if (n == 0)
        return 0.0;
    if (n == 1)
        return v[0];
    return i < n ? v[i] : v[i % n];
}

/**
 * Dense indexing is only valid when every Instr::id came from
 * Module::nextId() (ids unique, below idBound()) and every referenced
 * Var sits at vars[Var::id]. Lowered/cloned/pass-transformed modules
 * always satisfy this; hand-assembled test IR may not and falls back to
 * the map engine.
 */
bool
varAtItsSlot(const Module &module, const Var *v)
{
    return v && static_cast<size_t>(v->id) < module.vars.size() &&
           module.vars[static_cast<size_t>(v->id)] == v;
}

bool
denseIdsWalk(const Module &module, const Region &r,
             std::vector<bool> &seen)
{
    const int bound = module.idBound();
    for (const auto &node : r.nodes) {
        if (const auto *b = dyn_cast<Block>(node.get())) {
            for (const auto &i : b->instrs) {
                if (i->id < 0 || i->id >= bound ||
                    seen[static_cast<size_t>(i->id)])
                    return false;
                seen[static_cast<size_t>(i->id)] = true;
                if (i->var && !varAtItsSlot(module, i->var))
                    return false;
            }
        } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
            if (!denseIdsWalk(module, f->thenRegion, seen) ||
                !denseIdsWalk(module, f->elseRegion, seen))
                return false;
        } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
            if (l->counter && !varAtItsSlot(module, l->counter))
                return false;
            if (!denseIdsWalk(module, l->condRegion, seen) ||
                !denseIdsWalk(module, l->body, seen))
                return false;
        }
    }
    return true;
}

} // namespace

namespace detail {

bool
denseIdsUsable(const Module &module)
{
    for (size_t i = 0; i < module.vars.size(); ++i) {
        if (module.vars[i]->id != static_cast<int>(i))
            return false;
    }
    std::vector<bool> seen(static_cast<size_t>(module.idBound()),
                           false);
    return denseIdsWalk(module, module.body, seen);
}

} // namespace detail

namespace {

class SlotInterpreter
{
  public:
    SlotInterpreter(const Module &module, const InterpEnv &env)
        : module_(module), env_(env)
    {
        regs_.resize(static_cast<size_t>(module.idBound()));
        defined_.assign(static_cast<size_t>(module.idBound()), 0);
        memory_.resize(module.vars.size());
        textures_.assign(module.vars.size(), nullptr);
        for (const auto &v : module_.vars)
            initVar(*v);
    }

    InterpResult run()
    {
        execRegion(module_.body);
        meter_.flush(); // enforce sub-4096 budgets before returning
        InterpResult result;
        result.discarded = discarded_;
        result.executedInstructions = executed_;
        for (const auto &v : module_.vars) {
            if (v->kind == VarKind::Output) {
                const Lanes &mem = memory_[static_cast<size_t>(v->id)];
                result.outputs[v->name] =
                    LaneVector(mem.data(), mem.data() + mem.size());
            }
        }
        return result;
    }

  private:
    void initVar(const Var &v)
    {
        const int comp = v.type.isArray()
                             ? v.type.arraySize *
                                   v.type.elementType().componentCount()
                             : v.type.componentCount();
        Lanes &init = memory_[static_cast<size_t>(v.id)];
        init.assign(static_cast<size_t>(comp), 0.0);
        switch (v.kind) {
          case VarKind::Input: {
            auto it = env_.inputs.find(v.name);
            if (it != env_.inputs.end()) {
                for (size_t i = 0; i < init.size(); ++i)
                    init[i] = lane(it->second, i);
            } else {
                init.assign(init.size(), 0.5);
            }
            break;
          }
          case VarKind::Uniform: {
            auto it = env_.uniforms.find(v.name);
            if (it != env_.uniforms.end()) {
                for (size_t i = 0; i < init.size(); ++i)
                    init[i] = lane(it->second, i);
            } else {
                init.assign(init.size(), 0.5);
            }
            break;
          }
          case VarKind::ConstArray:
            init.assignFrom(v.constInit.data(), v.constInit.size());
            break;
          case VarKind::Sampler: {
            auto it = env_.textures.find(v.name);
            if (it != env_.textures.end())
                textures_[static_cast<size_t>(v.id)] = &it->second;
            break;
          }
          default:
            break;
        }
    }

    const Lanes &value(const Instr *i)
    {
        const size_t slot = static_cast<size_t>(i->id);
        if (slot >= regs_.size() || !defined_[slot])
            throw std::runtime_error("interp: use of unevaluated value");
        return regs_[slot];
    }

    /** The output slot of @p i, marked defined. Never aliases an
     * operand slot (an instruction cannot be its own operand in
     * verified IR). */
    Lanes &define(const Instr &i)
    {
        const size_t slot = static_cast<size_t>(i.id);
        defined_[slot] = 1;
        return regs_[slot];
    }

    void execRegion(const Region &region)
    {
        if (discarded_)
            return;
        for (const auto &node : region.nodes) {
            if (discarded_)
                return;
            if (const auto *b = dyn_cast<Block>(node.get())) {
                for (const auto &i : b->instrs) {
                    execInstr(*i);
                    if (discarded_)
                        return;
                }
            } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
                bool cond = value(f->cond)[0] != 0.0;
                execRegion(cond ? f->thenRegion : f->elseRegion);
            } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
                execLoop(*l);
            }
        }
    }

    void execLoop(const LoopNode &l)
    {
        if (l.canonical) {
            Lanes &counter = memory_[static_cast<size_t>(l.counter->id)];
            counter.assign(1, 0.0);
            for (long v = l.init; v < l.limit; v += l.step) {
                counter[0] = static_cast<double>(v);
                execRegion(l.body);
                if (discarded_)
                    return;
            }
            return;
        }
        detail::LoopGuard guard(env_.maxLoopIterations);
        for (;;) {
            execRegion(l.condRegion);
            if (discarded_)
                return;
            if (value(l.condValue)[0] == 0.0)
                break;
            execRegion(l.body);
            if (discarded_)
                return;
            guard.tick();
        }
    }

    void execInstr(const Instr &i)
    {
        ++executed_;
        meter_.tick();
        auto arg = [&](size_t k) -> const Lanes & {
            return value(i.operands[k]);
        };
        auto setScalar = [&](double v) { define(i).assign(1, v); };
        auto cw1 = [&](double (*fn)(double)) {
            const Lanes &a = arg(0);
            Lanes &out = define(i);
            const size_t n = a.size();
            out.resize(n);
            const double *s = a.data();
            double *d = out.data();
            for (size_t k = 0; k < n; ++k)
                d[k] = fn(s[k]);
        };
        auto cw2 = [&](double (*fn)(double, double)) {
            const Lanes &a = arg(0);
            const Lanes &b = arg(1);
            const size_t n = std::max(a.size(), b.size());
            Lanes &out = define(i);
            out.resize(n);
            double *d = out.data();
            for (size_t k = 0; k < n; ++k)
                d[k] = fn(lane(a, k), lane(b, k));
        };

        switch (i.op) {
          case Opcode::Const:
            define(i).assignFrom(i.constData.data(), i.constData.size());
            break;
          case Opcode::Neg:
            cw1(+[](double a) { return -a; });
            break;
          case Opcode::Not:
            cw1(+[](double a) { return a == 0.0 ? 1.0 : 0.0; });
            break;
          case Opcode::Add:
            cw2(+[](double a, double b) { return a + b; });
            break;
          case Opcode::Sub:
            cw2(+[](double a, double b) { return a - b; });
            break;
          case Opcode::Mul:
            cw2(+[](double a, double b) { return a * b; });
            break;
          case Opcode::Div:
            if (i.type.isInt()) {
                cw2(+[](double a, double b) {
                    return b != 0.0 ? std::trunc(a / b) : 0.0;
                });
            } else {
                cw2(+[](double a, double b) { return a / b; });
            }
            break;
          case Opcode::Mod:
            cw2(+[](double a, double b) {
                return b != 0.0 ? a - b * std::floor(a / b) : 0.0;
            });
            break;
          case Opcode::Lt:
            setScalar(arg(0)[0] < arg(1)[0] ? 1.0 : 0.0);
            break;
          case Opcode::Le:
            setScalar(arg(0)[0] <= arg(1)[0] ? 1.0 : 0.0);
            break;
          case Opcode::Gt:
            setScalar(arg(0)[0] > arg(1)[0] ? 1.0 : 0.0);
            break;
          case Opcode::Ge:
            setScalar(arg(0)[0] >= arg(1)[0] ? 1.0 : 0.0);
            break;
          case Opcode::Eq:
            setScalar(arg(0).equals(arg(1)) ? 1.0 : 0.0);
            break;
          case Opcode::Ne:
            setScalar(!arg(0).equals(arg(1)) ? 1.0 : 0.0);
            break;
          case Opcode::LogicalAnd:
            setScalar(arg(0)[0] != 0.0 && arg(1)[0] != 0.0 ? 1.0 : 0.0);
            break;
          case Opcode::LogicalOr:
            setScalar(arg(0)[0] != 0.0 || arg(1)[0] != 0.0 ? 1.0 : 0.0);
            break;
          case Opcode::Sin: cw1(+[](double a) { return std::sin(a); }); break;
          case Opcode::Cos: cw1(+[](double a) { return std::cos(a); }); break;
          case Opcode::Tan: cw1(+[](double a) { return std::tan(a); }); break;
          case Opcode::Asin: cw1(+[](double a) { return std::asin(a); }); break;
          case Opcode::Acos: cw1(+[](double a) { return std::acos(a); }); break;
          case Opcode::Atan: cw1(+[](double a) { return std::atan(a); }); break;
          case Opcode::Exp: cw1(+[](double a) { return std::exp(a); }); break;
          case Opcode::Log: cw1(+[](double a) { return std::log(a); }); break;
          case Opcode::Exp2: cw1(+[](double a) { return std::exp2(a); }); break;
          case Opcode::Log2: cw1(+[](double a) { return std::log2(a); }); break;
          case Opcode::Sqrt: cw1(+[](double a) { return std::sqrt(a); }); break;
          case Opcode::InvSqrt:
            cw1(+[](double a) { return 1.0 / std::sqrt(a); });
            break;
          case Opcode::Abs: cw1(+[](double a) { return std::fabs(a); }); break;
          case Opcode::Sign:
            cw1(+[](double a) {
                return a > 0.0 ? 1.0 : a < 0.0 ? -1.0 : 0.0;
            });
            break;
          case Opcode::Floor: cw1(+[](double a) { return std::floor(a); }); break;
          case Opcode::Ceil: cw1(+[](double a) { return std::ceil(a); }); break;
          case Opcode::Fract:
            cw1(+[](double a) { return a - std::floor(a); });
            break;
          case Opcode::Radians:
            cw1(+[](double a) { return a * M_PI / 180.0; });
            break;
          case Opcode::Degrees:
            cw1(+[](double a) { return a * 180.0 / M_PI; });
            break;
          case Opcode::Atan2:
            cw2(+[](double y, double x) { return std::atan2(y, x); });
            break;
          case Opcode::Pow:
            cw2(+[](double a, double b) { return std::pow(a, b); });
            break;
          case Opcode::Min:
            cw2(+[](double a, double b) { return std::min(a, b); });
            break;
          case Opcode::Max:
            cw2(+[](double a, double b) { return std::max(a, b); });
            break;
          case Opcode::Step:
            cw2(+[](double e, double x) { return x < e ? 0.0 : 1.0; });
            break;
          case Opcode::Normalize: {
            const Lanes &a = arg(0);
            Lanes &out = define(i);
            const size_t n = a.size();
            out.resize(n);
            double *d = out.data();
            const double *s = a.data();
            double len = 0.0;
            for (size_t k = 0; k < n; ++k)
                len += s[k] * s[k];
            len = std::sqrt(len);
            if (len > 0.0) {
                for (size_t k = 0; k < n; ++k)
                    d[k] = s[k] / len;
            } else {
                for (size_t k = 0; k < n; ++k)
                    d[k] = s[k];
            }
            break;
          }
          case Opcode::Length: {
            const Lanes &a = arg(0);
            double len = 0.0;
            for (size_t k = 0; k < a.size(); ++k)
                len += a[k] * a[k];
            setScalar(std::sqrt(len));
            break;
          }
          case Opcode::Distance: {
            const Lanes &a = arg(0);
            const Lanes &b = arg(1);
            double len = 0.0;
            for (size_t k = 0; k < a.size(); ++k) {
                double d = a[k] - lane(b, k);
                len += d * d;
            }
            setScalar(std::sqrt(len));
            break;
          }
          case Opcode::Dot: {
            const Lanes &a = arg(0);
            const Lanes &b = arg(1);
            double sum = 0.0;
            for (size_t k = 0; k < a.size(); ++k)
                sum += a[k] * lane(b, k);
            setScalar(sum);
            break;
          }
          case Opcode::Cross: {
            const Lanes &a = arg(0);
            const Lanes &b = arg(1);
            const double x = a[1] * b[2] - a[2] * b[1];
            const double y = a[2] * b[0] - a[0] * b[2];
            const double z = a[0] * b[1] - a[1] * b[0];
            Lanes &out = define(i);
            out.resize(3);
            out[0] = x;
            out[1] = y;
            out[2] = z;
            break;
          }
          case Opcode::Reflect: {
            const Lanes &v = arg(0);
            const Lanes &n = arg(1);
            double d = 0.0;
            for (size_t k = 0; k < v.size(); ++k)
                d += v[k] * lane(n, k);
            Lanes &out = define(i);
            out.resize(v.size());
            for (size_t k = 0; k < v.size(); ++k)
                out[k] = v[k] - 2.0 * d * lane(n, k);
            break;
          }
          case Opcode::Refract: {
            const Lanes &v = arg(0);
            const Lanes &n = arg(1);
            double eta = arg(2)[0];
            double d = 0.0;
            for (size_t k = 0; k < v.size(); ++k)
                d += v[k] * lane(n, k);
            double k_val = 1.0 - eta * eta * (1.0 - d * d);
            Lanes &out = define(i);
            out.assign(v.size(), 0.0);
            if (k_val >= 0.0) {
                double coeff = eta * d + std::sqrt(k_val);
                for (size_t k = 0; k < v.size(); ++k)
                    out[k] = eta * v[k] - coeff * lane(n, k);
            }
            break;
          }
          case Opcode::Clamp: {
            const Lanes &a = arg(0);
            const Lanes &lo = arg(1);
            const Lanes &hi = arg(2);
            Lanes &out = define(i);
            out.resize(a.size());
            for (size_t k = 0; k < a.size(); ++k)
                out[k] = std::min(std::max(a[k], lane(lo, k)),
                                  lane(hi, k));
            break;
          }
          case Opcode::Mix: {
            const Lanes &a = arg(0);
            const Lanes &b = arg(1);
            const Lanes &t = arg(2);
            Lanes &out = define(i);
            out.resize(a.size());
            for (size_t k = 0; k < a.size(); ++k) {
                double tk = lane(t, k);
                out[k] = a[k] * (1.0 - tk) + lane(b, k) * tk;
            }
            break;
          }
          case Opcode::Smoothstep: {
            const Lanes &e0v = arg(0);
            const Lanes &e1v = arg(1);
            const Lanes &x = arg(2);
            Lanes &out = define(i);
            out.resize(x.size());
            for (size_t k = 0; k < x.size(); ++k) {
                double e0 = lane(e0v, k), e1 = lane(e1v, k);
                double t = e1 != e0 ? (x[k] - e0) / (e1 - e0) : 0.0;
                t = std::min(std::max(t, 0.0), 1.0);
                out[k] = t * t * (3.0 - 2.0 * t);
            }
            break;
          }
          case Opcode::Select: {
            const Lanes &src = arg(0)[0] != 0.0 ? arg(1) : arg(2);
            define(i) = src;
            break;
          }
          case Opcode::Construct: {
            // Gather operand lanes (may momentarily exceed 4 before
            // truncation, e.g. vec3(v4.xyz) shapes).
            Lanes tmp;
            size_t total = 0;
            for (const Instr *op : i.operands) {
                const Lanes &v = value(op);
                tmp.resize(total + v.size());
                for (size_t k = 0; k < v.size(); ++k)
                    tmp[total + k] = v[k];
                total += v.size();
            }
            const size_t want =
                static_cast<size_t>(i.type.componentCount());
            Lanes &out = define(i);
            if (total == 1 && want > 1) {
                out.assign(want, tmp[0]);
            } else {
                out = tmp;
                out.resize(want, 0.0);
            }
            // int(x) truncates toward zero (see the reference engine).
            if (i.type.isInt()) {
                for (size_t k = 0; k < out.size(); ++k)
                    out[k] = std::trunc(out[k]);
            }
            break;
          }
          case Opcode::Extract:
            setScalar(arg(0)[static_cast<size_t>(i.indices[0])]);
            break;
          case Opcode::Insert: {
            const double v = arg(1)[0];
            Lanes &out = define(i);
            out = arg(0);
            out[static_cast<size_t>(i.indices[0])] = v;
            break;
          }
          case Opcode::Swizzle: {
            const Lanes &a = arg(0);
            double tmp[4];
            const size_t n = i.indices.size();
            for (size_t k = 0; k < n && k < 4; ++k)
                tmp[k] = a[static_cast<size_t>(i.indices[k])];
            define(i).assignFrom(tmp, std::min<size_t>(n, 4));
            break;
          }
          case Opcode::Texture:
          case Opcode::TextureBias:
          case Opcode::TextureLod: {
            const Lanes &coord = arg(0);
            double lod = i.operands.size() > 1 ? arg(1)[0] : 0.0;
            const TextureFn *fn =
                textures_[static_cast<size_t>(i.var->id)];
            auto rgba = fn ? (*fn)(coord[0], lane(coord, 1), lod)
                           : defaultTexture(coord[0], lane(coord, 1),
                                            lod);
            define(i).assignFrom(rgba.data(), rgba.size());
            break;
          }
          case Opcode::LoadVar:
            define(i) = memory_[static_cast<size_t>(i.var->id)];
            break;
          case Opcode::StoreVar:
            memory_[static_cast<size_t>(i.var->id)] = arg(0);
            break;
          case Opcode::LoadElem: {
            const Lanes &mem = memory_[static_cast<size_t>(i.var->id)];
            const int comp = i.type.componentCount();
            long idx = static_cast<long>(arg(0)[0]);
            Lanes &out = define(i);
            out.assign(static_cast<size_t>(comp), 0.0);
            size_t off = static_cast<size_t>(idx) *
                         static_cast<size_t>(comp);
            for (int k = 0; k < comp; ++k) {
                size_t p = off + static_cast<size_t>(k);
                if (p < mem.size())
                    out[static_cast<size_t>(k)] = mem[p];
            }
            break;
          }
          case Opcode::StoreElem: {
            Lanes &mem = memory_[static_cast<size_t>(i.var->id)];
            const Lanes &val = arg(1);
            long idx = static_cast<long>(arg(0)[0]);
            size_t off = static_cast<size_t>(idx) * val.size();
            for (size_t k = 0; k < val.size(); ++k) {
                size_t p = off + k;
                if (p < mem.size())
                    mem[p] = val[k];
            }
            break;
          }
          case Opcode::Discard:
            discarded_ = true;
            break;
        }
    }

    const Module &module_;
    const InterpEnv &env_;
    std::vector<Lanes> regs_;      ///< register file, slot = Instr::id
    std::vector<uint8_t> defined_; ///< per-slot "has been evaluated"
    std::vector<Lanes> memory_;    ///< var storage, index = Var::id
    std::vector<const TextureFn *> textures_; ///< resolved per sampler
    bool discarded_ = false;
    size_t executed_ = 0;
    governor::StepMeter meter_{governor::Dim::InterpSteps, "interp"};
};

} // namespace

std::array<double, 4>
defaultTexture(double u, double v, double lod)
{
    // Smooth, colourful, deterministic pattern; lod softens amplitude.
    const double soften = 1.0 / (1.0 + 0.25 * std::max(0.0, lod));
    auto wave = [soften](double x) {
        return 0.5 + 0.5 * soften * std::sin(x);
    };
    return {wave(6.2831 * u + 1.0), wave(9.424 * v + 2.0),
            wave(6.2831 * (u + v)), 1.0};
}

InterpResult
interpret(const Module &module, const InterpEnv &env)
{
    if (!detail::denseIdsUsable(module))
        return MapInterpreter(module, env).run();
    return SlotInterpreter(module, env).run();
}

InterpResult
interpretReference(const Module &module, const InterpEnv &env)
{
    return MapInterpreter(module, env).run();
}

} // namespace gsopt::ir
