/**
 * @file
 * Textual dump of IR modules for debugging and for golden tests.
 */
#ifndef GSOPT_IR_DUMP_H
#define GSOPT_IR_DUMP_H

#include <string>

#include "ir/ir.h"

namespace gsopt::ir {

/** Render the whole module (vars then body) as indented text. */
std::string dump(const Module &module);

/** Render one instruction like "%7 = mul vec4 %3, %5". */
std::string dumpInstr(const Instr &instr);

} // namespace gsopt::ir

#endif // GSOPT_IR_DUMP_H
