#include "ir/builder.h"

#include <cassert>

namespace gsopt::ir {

IrBuilder::IrBuilder(Module &module) : module_(module)
{
    regions_.push_back(&module.body);
}

void
IrBuilder::pushRegion(Region *region)
{
    regions_.push_back(region);
}

void
IrBuilder::popRegion()
{
    assert(regions_.size() > 1 && "cannot pop the root region");
    regions_.pop_back();
}

Block *
IrBuilder::currentBlock()
{
    Region *r = regions_.back();
    if (!r->nodes.empty()) {
        if (auto *b = dyn_cast<Block>(r->nodes.back().get()))
            return b;
    }
    auto block = std::make_unique<Block>();
    Block *raw = block.get();
    r->nodes.push_back(std::move(block));
    return raw;
}

IfNode *
IrBuilder::createIf(Instr *cond)
{
    auto node = std::make_unique<IfNode>();
    node->cond = cond;
    IfNode *raw = node.get();
    regions_.back()->nodes.push_back(std::move(node));
    return raw;
}

LoopNode *
IrBuilder::createLoop()
{
    auto node = std::make_unique<LoopNode>();
    LoopNode *raw = node.get();
    regions_.back()->nodes.push_back(std::move(node));
    return raw;
}

Instr *
IrBuilder::emit(Opcode op, Type type, std::vector<Instr *> operands,
                Var *var, std::vector<int> indices)
{
    Instr *instr = module_.newInstr();
    instr->op = op;
    instr->type = type;
    instr->operands = operands;
    instr->var = var;
    instr->indices = indices;
    currentBlock()->instrs.push_back(instr);
    return instr;
}

Instr *
IrBuilder::constFloat(double v)
{
    Instr *i = emit(Opcode::Const, Type::floatTy());
    i->constData = {v};
    return i;
}

Instr *
IrBuilder::constInt(long v)
{
    Instr *i = emit(Opcode::Const, Type::intTy());
    i->constData = {static_cast<double>(v)};
    return i;
}

Instr *
IrBuilder::constBool(bool v)
{
    Instr *i = emit(Opcode::Const, Type::boolTy());
    i->constData = {v ? 1.0 : 0.0};
    return i;
}

Instr *
IrBuilder::constVec(Type type, std::vector<double> lanes)
{
    assert(static_cast<int>(lanes.size()) == type.componentCount());
    Instr *i = emit(Opcode::Const, type);
    i->constData = std::move(lanes);
    return i;
}

Instr *
IrBuilder::constSplat(Type type, double v)
{
    std::vector<double> lanes(static_cast<size_t>(type.componentCount()),
                              v);
    return constVec(type, std::move(lanes));
}

Instr *
IrBuilder::load(Var *var)
{
    return emit(Opcode::LoadVar, var->type, {}, var);
}

Instr *
IrBuilder::store(Var *var, Instr *value)
{
    return emit(Opcode::StoreVar, Type::voidTy(), {value}, var);
}

Instr *
IrBuilder::loadElem(Var *var, Instr *index)
{
    return emit(Opcode::LoadElem, var->type.elementType(), {index}, var);
}

Instr *
IrBuilder::storeElem(Var *var, Instr *index, Instr *value)
{
    return emit(Opcode::StoreElem, Type::voidTy(), {index, value}, var);
}

Instr *
IrBuilder::binary(Opcode op, Instr *a, Instr *b)
{
    Type result = a->type;
    switch (op) {
      case Opcode::Lt:
      case Opcode::Le:
      case Opcode::Gt:
      case Opcode::Ge:
      case Opcode::Eq:
      case Opcode::Ne:
      case Opcode::LogicalAnd:
      case Opcode::LogicalOr:
        result = Type::boolTy();
        break;
      case Opcode::Dot:
      case Opcode::Distance:
        result = Type::floatTy();
        break;
      default:
        // Shape-preserving ops: if one side is wider, take that shape.
        if (b->type.rows > result.rows)
            result = b->type;
        break;
    }
    return emit(op, result, {a, b});
}

Instr *
IrBuilder::unary(Opcode op, Instr *a)
{
    Type result = a->type;
    if (op == Opcode::Length)
        result = Type::floatTy();
    return emit(op, result, {a});
}

Instr *
IrBuilder::select(Instr *cond, Instr *t, Instr *f)
{
    return emit(Opcode::Select, t->type, {cond, t, f});
}

Instr *
IrBuilder::construct(Type type, std::vector<Instr *> parts)
{
    return emit(Opcode::Construct, type, std::move(parts));
}

Instr *
IrBuilder::extract(Instr *vec, int index)
{
    return emit(Opcode::Extract, vec->type.scalarType(), {vec}, nullptr,
                {index});
}

Instr *
IrBuilder::insert(Instr *vec, Instr *scalar, int index)
{
    return emit(Opcode::Insert, vec->type, {vec, scalar}, nullptr,
                {index});
}

Instr *
IrBuilder::swizzle(Instr *vec, std::vector<int> indices)
{
    Type result = indices.size() == 1
                      ? vec->type.scalarType()
                      : vec->type.withRows(
                            static_cast<int>(indices.size()));
    return emit(Opcode::Swizzle, result, {vec}, nullptr,
                std::move(indices));
}

} // namespace gsopt::ir
