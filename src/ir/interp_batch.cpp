#include "ir/interp_batch.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "support/simd.h"

namespace gsopt::ir {

namespace {

/** Per-lane execution mask; lane l is bit (1u << l). */
using Mask = uint32_t;

/** Components per register strip: the type system tops out at vec4, so
 * every SSA value fits in kMaxInstrWidth components. Variable memory
 * (arrays) has its own, exactly-sized layout. */
constexpr size_t kStride = kMaxInstrWidth;

static_assert(kMaxBatchWidth <= 32, "Mask is uint32_t");

/**
 * Raised for the rare module shapes the SoA layout cannot represent
 * (per-lane divergent variable resizes, whole-array LoadVar). The
 * runner catches it and re-executes the batch lane-by-lane on the
 * scalar engine, so callers never see it.
 */
struct BatchFallback : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Scalar broadcast-read rule (mirrors interp.cpp's lane()): component
 * c of a value that has n components. */
inline size_t
wrapComp(size_t n, size_t c)
{
    return c < n ? c : c % n;
}

template <size_t W>
class Engine
{
  public:
    explicit Engine(const Module &module) : module_(module)
    {
        const size_t slots = static_cast<size_t>(module.idBound());
        regs_.reset(new double[slots * kStride * W]);
        regSize_.assign(slots, 0);
        regEpoch_.assign(slots, 0);

        const size_t nvars = module.vars.size();
        memOffset_.resize(nvars);
        memCapacity_.resize(nvars);
        memSize_.assign(nvars, 0);
        textures_.assign(nvars, nullptr);
        size_t total = 0;
        for (size_t v = 0; v < nvars; ++v) {
            const Var &var = *module.vars[v];
            const glsl::Type &t = var.type;
            size_t comp = static_cast<size_t>(
                t.isArray() ? t.arraySize *
                                  t.elementType().componentCount()
                            : t.componentCount());
            // Scalar initVar replaces ConstArray memory with the init
            // data wholesale; size capacity for whichever is larger.
            comp = std::max(comp, var.constInit.size());
            memOffset_[v] = total;
            memCapacity_[v] = comp;
            total += comp;
        }
        mem_.reset(new double[total * W]);
        simd::broadcast<W>(zero_, 0.0);
    }

    BatchResult run(const BatchEnv &env)
    {
        if (env.width == 0 || env.width > W)
            throw std::invalid_argument(
                "interpretBatch: env.width out of range");
        if (++epoch_ == 0) {
            std::fill(regEpoch_.begin(), regEpoch_.end(), 0u);
            epoch_ = 1;
        }
        env_ = &env;
        width_ = env.width;
        initialMask_ = width_ >= 32
                           ? ~Mask{0}
                           : static_cast<Mask>((Mask{1} << width_) - 1);
        discarded_ = 0;
        for (size_t l = 0; l < W; ++l)
            laneExec_[l] = 0;
        for (const Var *v : module_.vars)
            initVar(*v);

        // The meter lives per run(), not per engine: engines are
        // cached across calls, so a member would capture whatever
        // budget happened to govern construction.
        governor::StepMeter meter(governor::Dim::InterpSteps, "interp");
        meter_ = &meter;
        execRegion(module_.body, initialMask_);
        meter.flush(); // enforce sub-4096 budgets before returning
        meter_ = nullptr;

        BatchResult result;
        result.width = width_;
        result.discarded.resize(width_);
        result.laneExecuted.resize(width_);
        for (size_t l = 0; l < width_; ++l) {
            result.discarded[l] =
                static_cast<uint8_t>((discarded_ >> l) & 1u);
            result.laneExecuted[l] = laneExec_[l];
            result.executedInstructions += laneExec_[l];
        }
        for (const Var *v : module_.vars) {
            if (v->kind != VarKind::Output)
                continue;
            const size_t vid = static_cast<size_t>(v->id);
            const size_t n = memSize_[vid];
            const double *m = mem_.get() + memOffset_[vid] * W;
            std::vector<double> soa(n * width_);
            for (size_t c = 0; c < n; ++c) {
                for (size_t l = 0; l < width_; ++l)
                    soa[c * width_ + l] = m[c * W + l];
            }
            result.outputs.emplace(v->name, std::move(soa));
        }
        return result;
    }

  private:
    // -- register file ---------------------------------------------------

    const double *val(const Instr *op, size_t &n)
    {
        const size_t slot = static_cast<size_t>(op->id);
        if (regEpoch_[slot] != epoch_)
            throw std::runtime_error(
                "interp: use of unevaluated value");
        n = regSize_[slot];
        return regs_.get() + slot * kStride * W;
    }

    double *define(const Instr &i, size_t n)
    {
        const size_t slot = static_cast<size_t>(i.id);
        regEpoch_[slot] = epoch_;
        regSize_[slot] = static_cast<uint8_t>(n);
        return regs_.get() + slot * kStride * W;
    }

    /** Strip of component c of a value (ptr, n), with the scalar
     * engine's broadcast/wrap rule; empty values read as zero. */
    const double *comp(const double *p, size_t n, size_t c) const
    {
        if (n == 0)
            return zero_;
        return p + wrapComp(n, c) * W;
    }

    // -- variable memory -------------------------------------------------

    double *varMem(size_t vid)
    {
        return mem_.get() + memOffset_[vid] * W;
    }

    void initVar(const Var &v)
    {
        const size_t vid = static_cast<size_t>(v.id);
        const glsl::Type &t = v.type;
        const size_t comp = static_cast<size_t>(
            t.isArray()
                ? t.arraySize * t.elementType().componentCount()
                : t.componentCount());
        double *m = varMem(vid);
        memSize_[vid] = comp;
        switch (v.kind) {
          case VarKind::Input: {
            auto it = env_->inputs.find(v.name);
            if (it != env_->inputs.end()) {
                const BatchEnv::LaneInput &in = it->second;
                for (size_t c = 0; c < comp; ++c) {
                    double *d = m + c * W;
                    if (in.comps == 0) {
                        simd::broadcast<W>(d, 0.0);
                        continue;
                    }
                    const double *s =
                        in.soa.data() +
                        wrapComp(in.comps, c) * env_->width;
                    for (size_t l = 0; l < width_; ++l)
                        d[l] = s[l];
                }
            } else {
                for (size_t c = 0; c < comp; ++c)
                    simd::broadcast<W>(m + c * W, 0.5);
            }
            break;
          }
          case VarKind::Uniform: {
            auto it = env_->uniforms.find(v.name);
            for (size_t c = 0; c < comp; ++c) {
                double fill = 0.5;
                if (it != env_->uniforms.end()) {
                    const LaneVector &u = it->second;
                    fill = u.empty() ? 0.0 : u[wrapComp(u.size(), c)];
                }
                simd::broadcast<W>(m + c * W, fill);
            }
            break;
          }
          case VarKind::ConstArray: {
            memSize_[vid] = v.constInit.size();
            for (size_t c = 0; c < v.constInit.size(); ++c)
                simd::broadcast<W>(m + c * W, v.constInit[c]);
            break;
          }
          case VarKind::Sampler: {
            auto it = env_->textures.find(v.name);
            textures_[vid] =
                it != env_->textures.end() ? &it->second : nullptr;
            for (size_t c = 0; c < comp; ++c)
                simd::broadcast<W>(m + c * W, 0.0);
            break;
          }
          default: // Local, Output: zero-initialised
            for (size_t c = 0; c < comp; ++c)
                simd::broadcast<W>(m + c * W, 0.0);
            break;
        }
    }

    // -- structured execution --------------------------------------------

    void execRegion(const Region &region, Mask m)
    {
        // Dynamic instruction counts are bulk-accumulated per *run* of
        // instructions executing under one active mask: the mask only
        // changes at control flow and discards, so straight-line code
        // pays one per-lane counting pass per run instead of one per
        // instruction. The per-lane sums are commutative, so nested
        // regions accumulating in between is harmless.
        Mask runMask = 0;
        size_t runLen = 0;
        auto flush = [&] {
            if (!runLen)
                return;
            uint64_t lanes = 0;
            for (size_t l = 0; l < W; ++l) {
                const uint64_t on = (runMask >> l) & 1u;
                laneExec_[l] += runLen * on;
                lanes += on;
            }
            // Governed work is the per-lane sum, matching the scalar
            // engines' per-instruction charge, amortised per run.
            meter_->tick(runLen * lanes);
            runLen = 0;
        };
        for (const auto &node : region.nodes) {
            const Mask live = m & ~discarded_;
            if (!live) {
                flush();
                return;
            }
            if (const auto *b = dyn_cast<Block>(node.get())) {
                for (const Instr *i : b->instrs) {
                    const Mask ma = m & ~discarded_;
                    if (!ma) {
                        flush();
                        return;
                    }
                    if (ma != runMask) {
                        flush();
                        runMask = ma;
                    }
                    ++runLen;
                    execInstr(*i, ma);
                }
            } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
                size_t nc;
                const double *c0 = val(f->cond, nc);
                Mask t = 0;
                for (size_t l = 0; l < W; ++l) {
                    if (((live >> l) & 1u) && c0[l] != 0.0)
                        t |= Mask{1} << l;
                }
                const Mask e = live & ~t;
                if (t)
                    execRegion(f->thenRegion, t);
                if (e)
                    execRegion(f->elseRegion, e);
            } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
                execLoop(*l, live);
            }
        }
        flush();
    }

    void maskedBroadcast(double *strip, double v, Mask m)
    {
        for (size_t l = 0; l < W; ++l) {
            if ((m >> l) & 1u)
                strip[l] = v;
        }
    }

    void execLoop(const LoopNode &l, Mask m)
    {
        if (l.canonical) {
            const size_t cid = static_cast<size_t>(l.counter->id);
            // counter.assign(1, 0.0): the counter is a scalar int, so
            // only the value changes; masked like every store.
            memSize_[cid] = 1;
            double *counter = varMem(cid);
            maskedBroadcast(counter, 0.0, m);
            for (long v = l.init; v < l.limit; v += l.step) {
                const Mask ma = m & ~discarded_;
                if (!ma)
                    return;
                maskedBroadcast(counter, static_cast<double>(v), ma);
                execRegion(l.body, ma);
            }
            return;
        }
        Mask live = m;
        detail::LoopGuard guard(env_->maxLoopIterations);
        for (;;) {
            live &= ~discarded_;
            if (!live)
                return;
            execRegion(l.condRegion, live);
            live &= ~discarded_;
            if (!live)
                return;
            size_t nc;
            const double *c0 = val(l.condValue, nc);
            Mask next = 0;
            for (size_t ln = 0; ln < W; ++ln) {
                if (((live >> ln) & 1u) && c0[ln] != 0.0)
                    next |= Mask{1} << ln;
            }
            if (!next)
                break;
            live = next;
            execRegion(l.body, live);
            live &= ~discarded_;
            if (!live)
                return;
            guard.tick();
        }
    }

    // -- per-opcode lane loops -------------------------------------------

    template <typename F>
    void cw1(const Instr &i, F f)
    {
        size_t na;
        const double *a = val(i.operands[0], na);
        double *d = define(i, na);
        for (size_t c = 0; c < na; ++c)
            simd::map1<W>(d + c * W, a + c * W, f);
    }

    template <typename F>
    void cw2(const Instr &i, F f)
    {
        size_t na, nb;
        const double *a = val(i.operands[0], na);
        const double *b = val(i.operands[1], nb);
        const size_t n = std::max(na, nb);
        double *d = define(i, n);
        for (size_t c = 0; c < n; ++c)
            simd::map2<W>(d + c * W, comp(a, na, c), comp(b, nb, c),
                          f);
    }

    /** Scalar-result comparison over component 0. */
    template <typename F>
    void cmp0(const Instr &i, F f)
    {
        size_t na, nb;
        const double *a = val(i.operands[0], na);
        const double *b = val(i.operands[1], nb);
        double *d = define(i, 1);
        simd::map2<W>(d, comp(a, na, 0), comp(b, nb, 0), f);
    }

    void execInstr(const Instr &i, Mask m)
    {
        // Counting happens in execRegion (bulk, per same-mask run).
        switch (i.op) {
          case Opcode::Const: {
            double *d = define(i, i.constData.size());
            for (size_t c = 0; c < i.constData.size(); ++c)
                simd::broadcast<W>(d + c * W, i.constData[c]);
            break;
          }
          case Opcode::Neg:
            cw1(i, [](double a) { return -a; });
            break;
          case Opcode::Not:
            cw1(i, [](double a) { return a == 0.0 ? 1.0 : 0.0; });
            break;
          case Opcode::Add:
            cw2(i, [](double a, double b) { return a + b; });
            break;
          case Opcode::Sub:
            cw2(i, [](double a, double b) { return a - b; });
            break;
          case Opcode::Mul:
            cw2(i, [](double a, double b) { return a * b; });
            break;
          case Opcode::Div:
            if (i.type.isInt()) {
                cw2(i, [](double a, double b) {
                    return b != 0.0 ? std::trunc(a / b) : 0.0;
                });
            } else {
                cw2(i, [](double a, double b) { return a / b; });
            }
            break;
          case Opcode::Mod:
            cw2(i, [](double a, double b) {
                return b != 0.0 ? a - b * std::floor(a / b) : 0.0;
            });
            break;
          case Opcode::Lt:
            cmp0(i, [](double a, double b) {
                return a < b ? 1.0 : 0.0;
            });
            break;
          case Opcode::Le:
            cmp0(i, [](double a, double b) {
                return a <= b ? 1.0 : 0.0;
            });
            break;
          case Opcode::Gt:
            cmp0(i, [](double a, double b) {
                return a > b ? 1.0 : 0.0;
            });
            break;
          case Opcode::Ge:
            cmp0(i, [](double a, double b) {
                return a >= b ? 1.0 : 0.0;
            });
            break;
          case Opcode::Eq:
          case Opcode::Ne: {
            size_t na, nb;
            const double *a = val(i.operands[0], na);
            const double *b = val(i.operands[1], nb);
            double *d = define(i, 1);
            const double if_eq = i.op == Opcode::Eq ? 1.0 : 0.0;
            if (na != nb) {
                // Vector compare of mismatched sizes is never equal.
                simd::broadcast<W>(d, 1.0 - if_eq);
                break;
            }
            for (size_t l = 0; l < W; ++l) {
                bool eq = true;
                for (size_t c = 0; c < na; ++c)
                    eq &= a[c * W + l] == b[c * W + l];
                d[l] = eq ? if_eq : 1.0 - if_eq;
            }
            break;
          }
          case Opcode::LogicalAnd:
            cmp0(i, [](double a, double b) {
                return a != 0.0 && b != 0.0 ? 1.0 : 0.0;
            });
            break;
          case Opcode::LogicalOr:
            cmp0(i, [](double a, double b) {
                return a != 0.0 || b != 0.0 ? 1.0 : 0.0;
            });
            break;
          case Opcode::Sin:
            cw1(i, [](double a) { return std::sin(a); });
            break;
          case Opcode::Cos:
            cw1(i, [](double a) { return std::cos(a); });
            break;
          case Opcode::Tan:
            cw1(i, [](double a) { return std::tan(a); });
            break;
          case Opcode::Asin:
            cw1(i, [](double a) { return std::asin(a); });
            break;
          case Opcode::Acos:
            cw1(i, [](double a) { return std::acos(a); });
            break;
          case Opcode::Atan:
            cw1(i, [](double a) { return std::atan(a); });
            break;
          case Opcode::Exp:
            cw1(i, [](double a) { return std::exp(a); });
            break;
          case Opcode::Log:
            cw1(i, [](double a) { return std::log(a); });
            break;
          case Opcode::Exp2:
            cw1(i, [](double a) { return std::exp2(a); });
            break;
          case Opcode::Log2:
            cw1(i, [](double a) { return std::log2(a); });
            break;
          case Opcode::Sqrt:
            cw1(i, [](double a) { return std::sqrt(a); });
            break;
          case Opcode::InvSqrt:
            cw1(i, [](double a) { return 1.0 / std::sqrt(a); });
            break;
          case Opcode::Abs:
            cw1(i, [](double a) { return std::fabs(a); });
            break;
          case Opcode::Sign:
            cw1(i, [](double a) {
                return a > 0.0 ? 1.0 : a < 0.0 ? -1.0 : 0.0;
            });
            break;
          case Opcode::Floor:
            cw1(i, [](double a) { return std::floor(a); });
            break;
          case Opcode::Ceil:
            cw1(i, [](double a) { return std::ceil(a); });
            break;
          case Opcode::Fract:
            cw1(i, [](double a) { return a - std::floor(a); });
            break;
          case Opcode::Radians:
            cw1(i, [](double a) { return a * M_PI / 180.0; });
            break;
          case Opcode::Degrees:
            cw1(i, [](double a) { return a * 180.0 / M_PI; });
            break;
          case Opcode::Atan2:
            cw2(i, [](double y, double x) {
                return std::atan2(y, x);
            });
            break;
          case Opcode::Pow:
            cw2(i, [](double a, double b) { return std::pow(a, b); });
            break;
          case Opcode::Min:
            cw2(i, [](double a, double b) { return std::min(a, b); });
            break;
          case Opcode::Max:
            cw2(i, [](double a, double b) { return std::max(a, b); });
            break;
          case Opcode::Step:
            cw2(i, [](double e, double x) {
                return x < e ? 0.0 : 1.0;
            });
            break;
          case Opcode::Normalize: {
            size_t na;
            const double *a = val(i.operands[0], na);
            double *d = define(i, na);
            double len[W];
            simd::broadcast<W>(len, 0.0);
            for (size_t c = 0; c < na; ++c)
                simd::mulAccum<W>(len, a + c * W, a + c * W);
            simd::apply<W>(len,
                           [](double x) { return std::sqrt(x); });
            for (size_t c = 0; c < na; ++c) {
                simd::map2<W>(d + c * W, a + c * W, len,
                              [](double s, double n) {
                                  return n > 0.0 ? s / n : s;
                              });
            }
            break;
          }
          case Opcode::Length: {
            size_t na;
            const double *a = val(i.operands[0], na);
            double len[W];
            simd::broadcast<W>(len, 0.0);
            for (size_t c = 0; c < na; ++c)
                simd::mulAccum<W>(len, a + c * W, a + c * W);
            double *d = define(i, 1);
            simd::map1<W>(d, len,
                          [](double x) { return std::sqrt(x); });
            break;
          }
          case Opcode::Distance: {
            size_t na, nb;
            const double *a = val(i.operands[0], na);
            const double *b = val(i.operands[1], nb);
            double len[W];
            simd::broadcast<W>(len, 0.0);
            for (size_t c = 0; c < na; ++c) {
                const double *ac = a + c * W;
                const double *bc = comp(b, nb, c);
                GSOPT_VEC_LOOP
                for (size_t l = 0; l < W; ++l) {
                    const double diff = ac[l] - bc[l];
                    len[l] += diff * diff;
                }
            }
            double *d = define(i, 1);
            simd::map1<W>(d, len,
                          [](double x) { return std::sqrt(x); });
            break;
          }
          case Opcode::Dot: {
            size_t na, nb;
            const double *a = val(i.operands[0], na);
            const double *b = val(i.operands[1], nb);
            double sum[W];
            simd::broadcast<W>(sum, 0.0);
            for (size_t c = 0; c < na; ++c)
                simd::mulAccum<W>(sum, a + c * W, comp(b, nb, c));
            double *d = define(i, 1);
            simd::copy<W>(d, sum);
            break;
          }
          case Opcode::Cross: {
            size_t na, nb;
            const double *a = val(i.operands[0], na);
            const double *b = val(i.operands[1], nb);
            (void)na;
            (void)nb;
            double *d = define(i, 3);
            GSOPT_VEC_LOOP
            for (size_t l = 0; l < W; ++l) {
                const double a0 = a[0 * W + l], a1 = a[1 * W + l],
                             a2 = a[2 * W + l];
                const double b0 = b[0 * W + l], b1 = b[1 * W + l],
                             b2 = b[2 * W + l];
                d[0 * W + l] = a1 * b2 - a2 * b1;
                d[1 * W + l] = a2 * b0 - a0 * b2;
                d[2 * W + l] = a0 * b1 - a1 * b0;
            }
            break;
          }
          case Opcode::Reflect: {
            size_t nv, nn;
            const double *v = val(i.operands[0], nv);
            const double *n = val(i.operands[1], nn);
            double dp[W];
            simd::broadcast<W>(dp, 0.0);
            for (size_t c = 0; c < nv; ++c)
                simd::mulAccum<W>(dp, v + c * W, comp(n, nn, c));
            double *d = define(i, nv);
            for (size_t c = 0; c < nv; ++c) {
                simd::map3<W>(d + c * W, v + c * W, dp,
                              comp(n, nn, c),
                              [](double vc, double dd, double nc) {
                                  return vc - 2.0 * dd * nc;
                              });
            }
            break;
          }
          case Opcode::Refract: {
            size_t nv, nn, ne;
            const double *v = val(i.operands[0], nv);
            const double *n = val(i.operands[1], nn);
            const double *etap = val(i.operands[2], ne);
            const double *eta = comp(etap, ne, 0);
            double dp[W];
            simd::broadcast<W>(dp, 0.0);
            for (size_t c = 0; c < nv; ++c)
                simd::mulAccum<W>(dp, v + c * W, comp(n, nn, c));
            double kv[W], coeff[W];
            GSOPT_VEC_LOOP
            for (size_t l = 0; l < W; ++l) {
                kv[l] = 1.0 - eta[l] * eta[l] * (1.0 - dp[l] * dp[l]);
                coeff[l] = eta[l] * dp[l] + std::sqrt(kv[l]);
            }
            double *d = define(i, nv);
            for (size_t c = 0; c < nv; ++c) {
                const double *vc = v + c * W;
                const double *nc = comp(n, nn, c);
                double *dc = d + c * W;
                GSOPT_VEC_LOOP
                for (size_t l = 0; l < W; ++l) {
                    dc[l] = kv[l] >= 0.0
                                ? eta[l] * vc[l] - coeff[l] * nc[l]
                                : 0.0;
                }
            }
            break;
          }
          case Opcode::Clamp: {
            size_t na, nlo, nhi;
            const double *a = val(i.operands[0], na);
            const double *lo = val(i.operands[1], nlo);
            const double *hi = val(i.operands[2], nhi);
            double *d = define(i, na);
            for (size_t c = 0; c < na; ++c) {
                simd::map3<W>(d + c * W, a + c * W, comp(lo, nlo, c),
                              comp(hi, nhi, c),
                              [](double x, double l, double h) {
                                  return std::min(std::max(x, l), h);
                              });
            }
            break;
          }
          case Opcode::Mix: {
            size_t na, nb, nt;
            const double *a = val(i.operands[0], na);
            const double *b = val(i.operands[1], nb);
            const double *t = val(i.operands[2], nt);
            double *d = define(i, na);
            for (size_t c = 0; c < na; ++c) {
                simd::map3<W>(d + c * W, a + c * W, comp(b, nb, c),
                              comp(t, nt, c),
                              [](double x, double y, double tk) {
                                  return x * (1.0 - tk) + y * tk;
                              });
            }
            break;
          }
          case Opcode::Smoothstep: {
            size_t ne0, ne1, nx;
            const double *e0 = val(i.operands[0], ne0);
            const double *e1 = val(i.operands[1], ne1);
            const double *x = val(i.operands[2], nx);
            double *d = define(i, nx);
            for (size_t c = 0; c < nx; ++c) {
                simd::map3<W>(
                    d + c * W, comp(e0, ne0, c), comp(e1, ne1, c),
                    x + c * W, [](double a, double b, double xv) {
                        double t =
                            b != a ? (xv - a) / (b - a) : 0.0;
                        t = std::min(std::max(t, 0.0), 1.0);
                        return t * t * (3.0 - 2.0 * t);
                    });
            }
            break;
          }
          case Opcode::Select: {
            size_t nc, na, nb;
            const double *c0p = val(i.operands[0], nc);
            const double *a = val(i.operands[1], na);
            const double *b = val(i.operands[2], nb);
            const double *c0 = comp(c0p, nc, 0);
            const size_t n = std::max(na, nb);
            double *d = define(i, n);
            for (size_t c = 0; c < n; ++c) {
                simd::map3<W>(d + c * W, c0, comp(a, na, c),
                              comp(b, nb, c),
                              [](double cv, double x, double y) {
                                  return cv != 0.0 ? x : y;
                              });
            }
            break;
          }
          case Opcode::Construct: {
            // Gathered operand components may momentarily exceed the
            // result width (vec3(v4.xyz) shapes): up to 4 operands of
            // up to kStride components each.
            double tmp[4 * kStride * W];
            size_t total = 0;
            for (const Instr *op : i.operands) {
                size_t nv;
                const double *v = val(op, nv);
                if (total + nv > 4 * kStride)
                    throw BatchFallback(
                        "construct wider than 16 components");
                for (size_t c = 0; c < nv; ++c)
                    simd::copy<W>(tmp + (total + c) * W, v + c * W);
                total += nv;
            }
            const size_t want =
                static_cast<size_t>(i.type.componentCount());
            double *d = define(i, want);
            if (total == 1 && want > 1) {
                for (size_t c = 0; c < want; ++c)
                    simd::copy<W>(d + c * W, tmp);
            } else {
                for (size_t c = 0; c < want; ++c) {
                    if (c < total)
                        simd::copy<W>(d + c * W, tmp + c * W);
                    else
                        simd::broadcast<W>(d + c * W, 0.0);
                }
            }
            // int(x) truncates toward zero (see the scalar engines).
            if (i.type.isInt()) {
                for (size_t c = 0; c < want; ++c)
                    simd::apply<W>(d + c * W, [](double a) {
                        return std::trunc(a);
                    });
            }
            break;
          }
          case Opcode::Extract: {
            size_t na;
            const double *a = val(i.operands[0], na);
            const size_t idx = static_cast<size_t>(i.indices[0]);
            if (idx >= kStride)
                throw BatchFallback("extract index out of strip");
            double *d = define(i, 1);
            simd::copy<W>(d, a + idx * W);
            break;
          }
          case Opcode::Insert: {
            size_t na, nb;
            const double *a = val(i.operands[0], na);
            const double *b = val(i.operands[1], nb);
            const size_t idx = static_cast<size_t>(i.indices[0]);
            if (idx >= kStride)
                throw BatchFallback("insert index out of strip");
            double *d = define(i, na);
            for (size_t c = 0; c < na; ++c)
                simd::copy<W>(d + c * W, a + c * W);
            simd::copy<W>(d + idx * W, comp(b, nb, 0));
            break;
          }
          case Opcode::Swizzle: {
            size_t na;
            const double *a = val(i.operands[0], na);
            const size_t n = i.indices.size();
            double *d = define(i, std::min<size_t>(n, kStride));
            for (size_t c = 0; c < n && c < kStride; ++c) {
                const size_t idx = static_cast<size_t>(i.indices[c]);
                if (idx >= kStride)
                    throw BatchFallback(
                        "swizzle index out of strip");
                simd::copy<W>(d + c * W, a + idx * W);
            }
            break;
          }
          case Opcode::Texture:
          case Opcode::TextureBias:
          case Opcode::TextureLod: {
            size_t nc, nl = 0;
            const double *coord = val(i.operands[0], nc);
            const double *u = comp(coord, nc, 0);
            const double *v = comp(coord, nc, 1);
            const double *lod =
                i.operands.size() > 1
                    ? comp(val(i.operands[1], nl), nl, 0)
                    : zero_;
            const TextureFn *fn =
                textures_[static_cast<size_t>(i.var->id)];
            double *d = define(i, 4);
            // Masked: a user texture callback must only observe the
            // lanes the scalar engine would have sampled.
            for (size_t l = 0; l < W; ++l) {
                if (!((m >> l) & 1u))
                    continue;
                const auto rgba =
                    fn ? (*fn)(u[l], v[l], lod[l])
                       : defaultTexture(u[l], v[l], lod[l]);
                d[0 * W + l] = rgba[0];
                d[1 * W + l] = rgba[1];
                d[2 * W + l] = rgba[2];
                d[3 * W + l] = rgba[3];
            }
            break;
          }
          case Opcode::LoadVar: {
            const size_t vid = static_cast<size_t>(i.var->id);
            const size_t n = memSize_[vid];
            if (n > kStride)
                throw BatchFallback(
                    "whole-array LoadVar exceeds register strip");
            const double *s = varMem(vid);
            double *d = define(i, n);
            for (size_t c = 0; c < n; ++c)
                simd::copy<W>(d + c * W, s + c * W);
            break;
          }
          case Opcode::StoreVar: {
            size_t nv;
            const double *v = val(i.operands[0], nv);
            const size_t vid = static_cast<size_t>(i.var->id);
            if (nv != memSize_[vid]) {
                // A store that resizes the variable is representable
                // only when every lane performs it (the SoA layout
                // keeps one size per variable, and a discarded lane's
                // memory must stay frozen at its old shape).
                if (nv > memCapacity_[vid] || m != initialMask_)
                    throw BatchFallback("divergent variable resize");
                memSize_[vid] = nv;
            }
            double *d = varMem(vid);
            if (m == fullMask()) {
                for (size_t c = 0; c < nv; ++c)
                    simd::copy<W>(d + c * W, v + c * W);
            } else {
                for (size_t c = 0; c < nv; ++c) {
                    for (size_t l = 0; l < W; ++l) {
                        if ((m >> l) & 1u)
                            d[c * W + l] = v[c * W + l];
                    }
                }
            }
            break;
          }
          case Opcode::LoadElem: {
            size_t ni;
            const double *idx0 = val(i.operands[0], ni);
            (void)ni;
            const size_t cmp =
                static_cast<size_t>(i.type.componentCount());
            const size_t vid = static_cast<size_t>(i.var->id);
            const size_t msize = memSize_[vid];
            const double *mp = varMem(vid);
            double *d = define(i, cmp);
            // Masked: inactive lanes may carry garbage indices whose
            // double->long cast would be undefined behaviour.
            for (size_t l = 0; l < W; ++l) {
                if (!((m >> l) & 1u))
                    continue;
                const long idx = static_cast<long>(idx0[l]);
                const size_t off = static_cast<size_t>(idx) * cmp;
                for (size_t c = 0; c < cmp; ++c) {
                    const size_t p = off + c;
                    d[c * W + l] = p < msize ? mp[p * W + l] : 0.0;
                }
            }
            break;
          }
          case Opcode::StoreElem: {
            size_t ni, nv;
            const double *idx0 = val(i.operands[0], ni);
            const double *v = val(i.operands[1], nv);
            (void)ni;
            const size_t vid = static_cast<size_t>(i.var->id);
            const size_t msize = memSize_[vid];
            double *mp = varMem(vid);
            for (size_t l = 0; l < W; ++l) {
                if (!((m >> l) & 1u))
                    continue;
                const long idx = static_cast<long>(idx0[l]);
                const size_t off = static_cast<size_t>(idx) * nv;
                for (size_t c = 0; c < nv; ++c) {
                    const size_t p = off + c;
                    if (p < msize)
                        mp[p * W + l] = v[c * W + l];
                }
            }
            break;
          }
          case Opcode::Discard:
            discarded_ |= m;
            break;
        }
    }

    Mask fullMask() const
    {
        return W >= 32 ? ~Mask{0}
                       : static_cast<Mask>((Mask{1} << W) - 1);
    }

    const Module &module_;
    const BatchEnv *env_ = nullptr;
    size_t width_ = 0;
    Mask initialMask_ = 0;
    Mask discarded_ = 0;
    uint32_t epoch_ = 0;
    size_t laneExec_[W] = {};
    governor::StepMeter *meter_ = nullptr; ///< valid only inside run()
    double zero_[W];

    std::unique_ptr<double[]> regs_; ///< idBound x kStride x W
    std::vector<uint8_t> regSize_;
    std::vector<uint32_t> regEpoch_;

    std::unique_ptr<double[]> mem_; ///< variable memory, SoA strips
    std::vector<size_t> memOffset_;   ///< per var, in components
    std::vector<size_t> memCapacity_; ///< per var, in components
    std::vector<size_t> memSize_;     ///< current size, in components
    std::vector<const TextureFn *> textures_;
};

/** Per-lane scalar execution assembled into a BatchResult — the
 * fallback for non-dense ids and BatchFallback shapes, and the shape
 * the equivalence tests compare against. */
BatchResult
runScalarLanes(const Module &module, const BatchEnv &env)
{
    BatchResult result;
    result.width = env.width;
    result.discarded.resize(env.width);
    result.laneExecuted.resize(env.width);
    std::map<std::string, size_t> comps;
    for (size_t l = 0; l < env.width; ++l) {
        const InterpResult r = interpret(module, env.laneEnv(l));
        result.discarded[l] = r.discarded ? 1 : 0;
        result.laneExecuted[l] = r.executedInstructions;
        result.executedInstructions += r.executedInstructions;
        for (const auto &[name, lanes] : r.outputs) {
            auto it = comps.find(name);
            if (it == comps.end()) {
                comps.emplace(name, lanes.size());
                result.outputs[name].assign(lanes.size() * env.width,
                                            0.0);
            } else if (it->second != lanes.size()) {
                throw std::runtime_error(
                    "interpretBatch: lanes disagree on output size");
            }
            std::vector<double> &soa = result.outputs[name];
            for (size_t c = 0; c < lanes.size(); ++c)
                soa[c * env.width + l] = lanes[c];
        }
    }
    return result;
}

struct EngineBase
{
    virtual ~EngineBase() = default;
    virtual BatchResult run(const BatchEnv &env) = 0;
};

template <size_t W>
struct EngineHolder final : EngineBase
{
    explicit EngineHolder(const Module &m) : engine(m) {}
    BatchResult run(const BatchEnv &env) override
    {
        return engine.run(env);
    }
    Engine<W> engine;
};

size_t
roundUpWidth(size_t width)
{
    for (size_t w : kSupportedBatchWidths) {
        if (w >= width)
            return w;
    }
    throw std::invalid_argument(
        "BatchRunner: width exceeds kMaxBatchWidth");
}

} // namespace

// ======================================================================
// BatchEnv
// ======================================================================

BatchEnv
BatchEnv::broadcast(const InterpEnv &env, size_t width)
{
    if (width == 0 || width > kMaxBatchWidth)
        throw std::invalid_argument(
            "BatchEnv::broadcast: bad width");
    BatchEnv b;
    b.width = width;
    b.uniforms = env.uniforms;
    b.textures = env.textures;
    b.maxLoopIterations = env.maxLoopIterations;
    for (const auto &[name, v] : env.inputs) {
        LaneInput in;
        in.comps = v.size();
        in.soa.resize(v.size() * width);
        for (size_t c = 0; c < v.size(); ++c) {
            for (size_t l = 0; l < width; ++l)
                in.soa[c * width + l] = v[c];
        }
        b.inputs.emplace(name, std::move(in));
    }
    return b;
}

void
BatchEnv::setLaneInput(const std::string &name, size_t lane,
                       const LaneVector &value)
{
    if (lane >= width)
        throw std::invalid_argument("setLaneInput: lane out of range");
    LaneInput &in = inputs[name];
    if (in.soa.empty()) {
        in.comps = value.size();
        in.soa.assign(value.size() * width, 0.0);
    } else if (in.comps != value.size()) {
        throw std::invalid_argument(
            "setLaneInput: component count mismatch across lanes");
    }
    for (size_t c = 0; c < value.size(); ++c)
        in.soa[c * width + lane] = value[c];
}

InterpEnv
BatchEnv::laneEnv(size_t lane) const
{
    if (lane >= width)
        throw std::invalid_argument("laneEnv: lane out of range");
    InterpEnv e;
    e.uniforms = uniforms;
    e.textures = textures;
    e.maxLoopIterations = maxLoopIterations;
    for (const auto &[name, in] : inputs) {
        LaneVector v(in.comps);
        for (size_t c = 0; c < in.comps; ++c)
            v[c] = in.soa[c * width + lane];
        e.inputs.emplace(name, std::move(v));
    }
    return e;
}

// ======================================================================
// BatchResult
// ======================================================================

size_t
BatchResult::outputComps(const std::string &name) const
{
    auto it = outputs.find(name);
    if (it == outputs.end() || width == 0)
        return 0;
    return it->second.size() / width;
}

double
BatchResult::output(const std::string &name, size_t comp,
                    size_t lane) const
{
    return outputs.at(name).at(comp * width + lane);
}

InterpResult
BatchResult::laneResult(size_t lane) const
{
    if (lane >= width)
        throw std::invalid_argument("laneResult: lane out of range");
    InterpResult r;
    r.discarded = discarded[lane] != 0;
    r.executedInstructions = laneExecuted[lane];
    for (const auto &[name, soa] : outputs) {
        const size_t n = soa.size() / width;
        LaneVector v(n);
        for (size_t c = 0; c < n; ++c)
            v[c] = soa[c * width + lane];
        r.outputs.emplace(name, std::move(v));
    }
    return r;
}

// ======================================================================
// BatchRunner
// ======================================================================

struct BatchRunner::Impl
{
    const Module &module;
    bool dense;
    std::unique_ptr<EngineBase> engine;
    size_t engineWidth;
};

BatchRunner::BatchRunner(const Module &module, size_t width)
    : impl_(new Impl{module, detail::denseIdsUsable(module), nullptr,
                     roundUpWidth(width)})
{
    if (impl_->dense) {
        switch (impl_->engineWidth) {
          case 1:
            impl_->engine =
                std::make_unique<EngineHolder<1>>(module);
            break;
          case 4:
            impl_->engine =
                std::make_unique<EngineHolder<4>>(module);
            break;
          case 8:
            impl_->engine =
                std::make_unique<EngineHolder<8>>(module);
            break;
          default:
            impl_->engine =
                std::make_unique<EngineHolder<16>>(module);
            break;
        }
    }
}

BatchRunner::~BatchRunner() = default;

bool
BatchRunner::batched() const
{
    return impl_->dense;
}

BatchResult
BatchRunner::run(const BatchEnv &env)
{
    if (!impl_->dense)
        return runScalarLanes(impl_->module, env);
    if (env.width > impl_->engineWidth)
        throw std::invalid_argument(
            "BatchRunner::run: env.width exceeds construction width");
    try {
        return impl_->engine->run(env);
    } catch (const BatchFallback &) {
        return runScalarLanes(impl_->module, env);
    }
}

BatchResult
interpretBatch(const Module &module, const BatchEnv &env)
{
    BatchRunner runner(module, env.width);
    return runner.run(env);
}

} // namespace gsopt::ir
