/**
 * @file
 * The shader intermediate representation.
 *
 * Design: a *structured* IR rather than a flat CFG. A shader module is a
 * single function body (all user functions are inlined during lowering,
 * as LunarGlass effectively does for GLSL) represented as a Region — an
 * ordered list of nodes, where each node is either a straight-line Block
 * of instructions, an IfNode (condition value + then/else sub-regions),
 * or a LoopNode (canonical constant-trip-count loops, plus a generic
 * fallback for dynamic loops).
 *
 * Values are SSA: each instruction defines at most one value, and an
 * operand may reference any instruction that appears *structurally
 * earlier* (earlier in the same block, or in a block that precedes the
 * use's enclosing node chain). Mutable state lives in Vars (shader
 * inputs/outputs/uniforms and user locals), accessed through LoadVar /
 * StoreVar / LoadElem / StoreElem; the always-on canonicalisation pass
 * forwards stores to loads in straight-line code, which recovers pure
 * dataflow exactly where the paper's shaders live (few branches, large
 * basic blocks).
 *
 * Storage: Instrs and Vars are bump-allocated from a per-Module Arena
 * (see ir/arena.h) and referenced by raw pointer everywhere; Blocks hold
 * plain `Instr *` lists, not owning pointers. Dropping an instruction
 * from a block never frees it — its memory (and address) stays valid
 * until the module dies, which is what makes replacement maps in passes
 * safe without graveyard bookkeeping. Instr is trivially copyable, so
 * Module::clone() is a near-linear copy: instructions are copied by
 * value into the clone's arena and operand/var pointers are remapped
 * through dense slot tables indexed by Instr::id / Var::id.
 *
 * There are no matrix values in the IR: lowering scalarises all matrix
 * maths (reproducing LunarGlass compilation artefact III-C.a), and
 * scalar-times-vector is represented by splat Construct + vector ops
 * (artefact III-C.b).
 */
#ifndef GSOPT_IR_IR_H
#define GSOPT_IR_IR_H

#include <memory>
#include <string>
#include <vector>

#include "glsl/type.h"
#include "ir/arena.h"
#include "support/governor.h"

namespace gsopt::ir {

/** IR reuses the front end's type algebra (matrices never appear). */
using Type = glsl::Type;
using BaseType = glsl::BaseType;

class Block;
class Node;
class Module;

/** Storage class of a variable. */
enum class VarKind {
    Local,   ///< function-local mutable storage
    Input,   ///< `in` interface variable (read-only)
    Output,  ///< `out` interface variable (write-only-ish)
    Uniform, ///< uniform (read-only; includes matrices kept whole)
    Sampler, ///< texture sampler uniform
    ConstArray, ///< const-initialised lookup data (weights tables etc.)
};

/**
 * A named storage location. Vars live in their Module's arena (the
 * module destroys them explicitly — unlike Instrs they hold a name
 * string and const-init data, so they are not trivially destructible);
 * instructions reference them by pointer. Var ids are dense:
 * module.vars[v->id] == v.
 */
struct Var
{
    int id = 0;
    std::string name;
    Type type;
    VarKind kind = VarKind::Local;

    /**
     * Constant initial contents for ConstArray vars, flattened
     * column-major: arraySize * componentCount entries (ints/bools are
     * stored as doubles; the type says how to read them).
     */
    std::vector<double> constInit;

    bool isReadOnly() const
    {
        return kind == VarKind::Input || kind == VarKind::Uniform ||
               kind == VarKind::Sampler || kind == VarKind::ConstArray;
    }
};

/** Instruction opcodes. Grouped by arity/shape; see operand docs below. */
enum class Opcode {
    // Constants: no operands; payload in Instr::constData.
    Const,
    // Unary arithmetic/logic: operands[0].
    Neg, Not,
    // Binary arithmetic: operands[0], operands[1].
    Add, Sub, Mul, Div, Mod,
    // Comparisons / logic (result bool): operands[0], operands[1].
    Lt, Le, Gt, Ge, Eq, Ne, LogicalAnd, LogicalOr,
    // Unary math intrinsics: operands[0].
    Sin, Cos, Tan, Asin, Acos, Atan, Exp, Log, Exp2, Log2, Sqrt,
    InvSqrt, Abs, Sign, Floor, Ceil, Fract, Radians, Degrees,
    Normalize, Length,
    // Binary math intrinsics.
    Atan2, Pow, Min, Max, Step, Distance, Dot, Cross, Reflect,
    // Ternary math intrinsics.
    Clamp, Mix, Smoothstep, Refract,
    // Select: operands[0]=cond (bool scalar), [1]=true val, [2]=false.
    Select,
    // Construct: build a vector/scalar from components; a single scalar
    // operand for a vector result is a splat.
    Construct,
    // Extract: operands[0]=vector, indices[0]=component.
    Extract,
    // Insert: operands[0]=vector, operands[1]=scalar, indices[0]=comp.
    Insert,
    // Swizzle: operands[0]=vector, indices=components (1-4 entries).
    Swizzle,
    // Texturing: operands[0] is a LoadVar of a Sampler var.
    Texture,     ///< (sampler, coord)
    TextureBias, ///< (sampler, coord, bias)
    TextureLod,  ///< (sampler, coord, lod)
    // Memory.
    LoadVar,   ///< whole var read: var
    StoreVar,  ///< whole var write: var, operands[0]=value
    LoadElem,  ///< array/matrix-column read: var, operands[0]=index
    StoreElem, ///< array element write: var, operands[0]=idx, [1]=value
    // Fragment kill (side effect, no value).
    Discard,
};

/** Human-readable opcode mnemonic. */
const char *opcodeName(Opcode op);

/** True for instructions whose effect is not captured by their value. */
bool hasSideEffects(Opcode op);

/** True if the op produces no value at all. */
bool isVoidOp(Opcode op);

/** Widest operand/index/constant-lane list an instruction can carry:
 * the type system tops out at vec4, so Construct takes at most 4
 * parts, Swizzle at most 4 indices, Const at most 4 lanes. */
constexpr unsigned kMaxInstrWidth = 4;

/**
 * One SSA instruction. Lives in its Module's arena; Blocks and users
 * reference it by raw pointer (users must appear structurally later).
 * Trivially copyable and trivially destructible: the operand, index,
 * and constant-lane lists are inline fixed-capacity vectors, so copying
 * an Instr copies everything but the pointees, and destroying a module
 * never visits instructions.
 */
class Instr
{
  public:
    Opcode op = Opcode::Const;
    Type type;                  ///< result type (void for stores etc.)
    int id = 0;                 ///< unique within the module (for dumps)
    InlineVec<Instr *, kMaxInstrWidth> operands;
    Var *var = nullptr;         ///< for Load*/Store*/Texture sampler ref
    InlineVec<int, kMaxInstrWidth> indices; ///< Extract/Insert/Swizzle
    InlineVec<double, kMaxInstrWidth> constData; ///< Const: per lane

    bool isConst() const { return op == Opcode::Const; }

    /** Scalar constant convenience accessor (first lane). */
    double scalarConst() const
    {
        return constData.empty() ? 0.0 : constData[0];
    }

    /** True if every lane equals @p v (and this is a Const). */
    bool isConstValue(double v) const;

    /** True if all lanes of a Const are equal (splat constant). */
    bool isSplatConst() const;
};

static_assert(std::is_trivially_destructible_v<Instr>,
              "Instr must stay trivially destructible: module teardown "
              "frees arena chunks without visiting instructions");
static_assert(std::is_trivially_copyable_v<Instr>,
              "Instr must stay trivially copyable: clone() copies "
              "instructions by value and only remaps pointers");

/** Node discriminator. */
enum class NodeKind { Block, If, Loop };

/** Base class of region nodes. */
class Node
{
  public:
    explicit Node(NodeKind kind) : kind_(kind) {}
    virtual ~Node() = default;

    NodeKind kind() const { return kind_; }

  private:
    NodeKind kind_;
};

using NodePtr = std::unique_ptr<Node>;

/** An ordered list of nodes (a structured sub-program). */
class Region
{
  public:
    std::vector<NodePtr> nodes;

    bool empty() const { return nodes.empty(); }

    /** Total instruction count in this region, recursively. */
    size_t instructionCount() const;
};

/** Straight-line sequence of instructions (non-owning: instruction
 * storage belongs to the module's arena). */
class Block : public Node
{
  public:
    Block() : Node(NodeKind::Block) {}

    std::vector<Instr *> instrs;

    static bool classof(const Node *n)
    {
        return n->kind() == NodeKind::Block;
    }
};

/** Structured conditional. The condition is a value computed earlier. */
class IfNode : public Node
{
  public:
    IfNode() : Node(NodeKind::If) {}

    Instr *cond = nullptr;
    Region thenRegion;
    Region elseRegion;

    static bool classof(const Node *n)
    {
        return n->kind() == NodeKind::If;
    }
};

/**
 * Structured loop.
 *
 * Canonical form (recognised at lowering): `for (int i = init; i < limit;
 * i += step)` with integer constants and a body that never stores the
 * counter. Only canonical loops can be fully unrolled, mirroring
 * LunarGlass's "simple loop unrolling for constant loop indices".
 *
 * Generic form: `condRegion` is evaluated before each iteration and
 * `condValue` (a bool scalar defined inside it) decides continuation.
 */
class LoopNode : public Node
{
  public:
    LoopNode() : Node(NodeKind::Loop) {}

    bool canonical = false;
    Var *counter = nullptr;
    long init = 0;
    long limit = 0;
    long step = 1;

    Region condRegion;          ///< generic loops only
    Instr *condValue = nullptr; ///< generic loops only

    Region body;

    /** Trip count of a canonical loop (0 for generic/degenerate). */
    long tripCount() const
    {
        if (!canonical || step <= 0)
            return 0;
        if (limit <= init)
            return 0;
        return (limit - init + step - 1) / step;
    }

    static bool classof(const Node *n)
    {
        return n->kind() == NodeKind::Loop;
    }
};

/** Cast helpers in the LLVM style (null on mismatch). */
template <typename T>
T *
dyn_cast(Node *n)
{
    return n && T::classof(n) ? static_cast<T *>(n) : nullptr;
}

template <typename T>
const T *
dyn_cast(const Node *n)
{
    return n && T::classof(n) ? static_cast<const T *>(n) : nullptr;
}

/**
 * A whole shader in IR form: the variable table plus the body of main.
 * Owns an Arena that backs every Instr and Var; destruction releases
 * the arena's chunks and the (few) structural nodes, never touching
 * instructions individually.
 */
class Module
{
  public:
    Module() = default;
    ~Module();

    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    std::vector<Var *> vars;
    Region body;

    /** Create a new variable owned by this module. */
    Var *newVar(std::string name, Type type, VarKind kind);

    /** Find a variable by name (nullptr if absent). */
    Var *findVar(const std::string &name) const;

    /** Bump-allocate a blank instruction with a fresh id. The caller
     * fills the fields and links it into a block. Charged against the
     * governed IR-instruction budget (Dim::IrInstrs). */
    Instr *newInstr()
    {
        governor::charge(governor::Dim::IrInstrs, 1, "ir");
        Instr *i = arena_.create<Instr>();
        i->id = nextId_++;
        return i;
    }

    /** Bump-allocate a copy of @p proto under a fresh id (operand and
     * var pointers are copied as-is; remapping is the caller's job). */
    Instr *newInstr(const Instr &proto)
    {
        governor::charge(governor::Dim::IrInstrs, 1, "ir");
        Instr *i = arena_.create<Instr>(proto);
        i->id = nextId_++;
        return i;
    }

    /** Allocate a fresh instruction id. */
    int nextId() { return nextId_++; }

    /**
     * Exclusive upper bound on instruction ids allocated so far. Dense
     * per-value side tables (the interpreter's register file, clone's
     * slot remap) index by Instr::id and size themselves with this.
     */
    int idBound() const { return nextId_; }

    /** Total instruction count of the body. */
    size_t instructionCount() const { return body.instructionCount(); }

    /** The arena backing this module's Instrs and Vars. */
    Arena &arena() { return arena_; }
    const Arena &arena() const { return arena_; }

    /** Bytes of IR storage bump-allocated so far. */
    size_t arenaBytes() const { return arena_.bytesUsed(); }

    /**
     * Deep copy. The clone owns fresh Vars and Instrs mirroring this
     * module exactly — same var/instr ids, same structure — with every
     * operand and var reference remapped into the clone. Cloning a
     * lowered module and running a pass pipeline on the copy is
     * behaviourally identical to re-lowering from source (the
     * compile-once exploration relies on this). The clone's storage is
     * independent: it remains fully usable after the source module is
     * destroyed.
     *
     * Cost: near-linear block copy. Instructions are trivially
     * copyable, so each one is a struct copy into the clone's arena
     * (pre-sized to the source's footprint) followed by slot-indexed
     * pointer remaps through dense Instr::id / Var::id tables — no
     * hashing, no per-instruction heap traffic.
     */
    std::unique_ptr<Module> clone() const;

  private:
    Arena arena_;
    int nextId_ = 0;
    int nextVarId_ = 0;
};

/**
 * Structural fingerprint of a module: a hash over the var table and the
 * body in structural order, with values and vars numbered by position
 * (not by Instr::id / Var::id), so two modules that would render to
 * identical GLSL hash identically regardless of their id history. Used
 * to dedup variants *before* paying for the printer, and as the
 * content-address of pass memoization in the exploration flag tree.
 */
uint64_t fingerprint(const Module &module);

} // namespace gsopt::ir

#endif // GSOPT_IR_IR_H
