/**
 * @file
 * IrBuilder: append-only construction interface over a Module used by the
 * lowering stage and by tests. Keeps a stack of insertion regions so
 * structured nodes (ifs/loops) can be built inside-out.
 */
#ifndef GSOPT_IR_BUILDER_H
#define GSOPT_IR_BUILDER_H

#include <vector>

#include "ir/ir.h"

namespace gsopt::ir {

/** Builder for Module bodies. */
class IrBuilder
{
  public:
    explicit IrBuilder(Module &module);

    Module &module() { return module_; }

    // -- region management ---------------------------------------------
    /** Switch insertion to @p region (push). */
    void pushRegion(Region *region);
    /** Return to the previous region (pop). */
    void popRegion();
    /** Current insertion region. */
    Region *currentRegion() { return regions_.back(); }

    // -- structured nodes -----------------------------------------------
    /** Append an IfNode and return it (regions empty). */
    IfNode *createIf(Instr *cond);
    /** Append a LoopNode and return it. */
    LoopNode *createLoop();

    // -- instructions ----------------------------------------------------
    /** Generic emit into the current trailing block. */
    Instr *emit(Opcode op, Type type, std::vector<Instr *> operands = {},
                Var *var = nullptr, std::vector<int> indices = {});

    Instr *constFloat(double v);
    Instr *constInt(long v);
    Instr *constBool(bool v);
    /** Vector constant: type + one lane value per component. */
    Instr *constVec(Type type, std::vector<double> lanes);
    /** Splat a scalar constant to a vector type. */
    Instr *constSplat(Type type, double v);

    Instr *load(Var *var);
    Instr *store(Var *var, Instr *value);
    Instr *loadElem(Var *var, Instr *index);
    Instr *storeElem(Var *var, Instr *index, Instr *value);

    Instr *binary(Opcode op, Instr *a, Instr *b);
    Instr *unary(Opcode op, Instr *a);
    Instr *select(Instr *cond, Instr *t, Instr *f);
    Instr *construct(Type type, std::vector<Instr *> parts);
    Instr *extract(Instr *vec, int index);
    Instr *insert(Instr *vec, Instr *scalar, int index);
    Instr *swizzle(Instr *vec, std::vector<int> indices);

  private:
    /** The trailing Block of the current region (created on demand). */
    Block *currentBlock();

    Module &module_;
    std::vector<Region *> regions_;
};

} // namespace gsopt::ir

#endif // GSOPT_IR_BUILDER_H
