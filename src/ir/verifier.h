/**
 * @file
 * IR verifier: checks structural-SSA dominance (every operand defined
 * earlier), type sanity per opcode, index ranges, and storage-class rules
 * (no stores to read-only vars). Every optimization pass is verified
 * after it runs in debug/test builds, which is what keeps eight
 * independently toggleable passes honest against each other.
 */
#ifndef GSOPT_IR_VERIFIER_H
#define GSOPT_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/ir.h"

namespace gsopt::ir {

/** Verify the module; returns a list of problems (empty = valid). */
std::vector<std::string> verify(const Module &module);

/** Throw std::logic_error with all problems if the module is invalid. */
void verifyOrDie(const Module &module, const std::string &context);

} // namespace gsopt::ir

#endif // GSOPT_IR_VERIFIER_H
