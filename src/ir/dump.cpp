#include "ir/dump.h"

#include <sstream>

#include "support/strings.h"

namespace gsopt::ir {

namespace {

const char *
varKindName(VarKind k)
{
    switch (k) {
      case VarKind::Local: return "local";
      case VarKind::Input: return "in";
      case VarKind::Output: return "out";
      case VarKind::Uniform: return "uniform";
      case VarKind::Sampler: return "sampler";
      case VarKind::ConstArray: return "const";
    }
    return "?";
}

void
dumpRegion(const Region &region, std::ostringstream &os, int indent);

void
dumpBlockInto(const Block &b, std::ostringstream &os, int indent)
{
    const std::string pad(static_cast<size_t>(indent) * 2, ' ');
    for (const auto &i : b.instrs)
        os << pad << dumpInstr(*i) << "\n";
}

void
dumpRegion(const Region &region, std::ostringstream &os, int indent)
{
    const std::string pad(static_cast<size_t>(indent) * 2, ' ');
    for (const auto &node : region.nodes) {
        if (const auto *b = dyn_cast<Block>(node.get())) {
            dumpBlockInto(*b, os, indent);
        } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
            os << pad << "if %" << (f->cond ? f->cond->id : -1) << " {\n";
            dumpRegion(f->thenRegion, os, indent + 1);
            if (!f->elseRegion.empty()) {
                os << pad << "} else {\n";
                dumpRegion(f->elseRegion, os, indent + 1);
            }
            os << pad << "}\n";
        } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
            if (l->canonical) {
                os << pad << "loop " << l->counter->name << " = ["
                   << l->init << ", " << l->limit << ") step " << l->step
                   << " {\n";
            } else {
                os << pad << "loop while %"
                   << (l->condValue ? l->condValue->id : -1) << " {\n";
                dumpRegion(l->condRegion, os, indent + 1);
                os << pad << "-- body --\n";
            }
            dumpRegion(l->body, os, indent + 1);
            os << pad << "}\n";
        }
    }
}

} // namespace

std::string
dumpInstr(const Instr &instr)
{
    std::ostringstream os;
    if (!isVoidOp(instr.op))
        os << "%" << instr.id << " = ";
    os << opcodeName(instr.op) << " " << instr.type.str();
    if (instr.var)
        os << " @" << instr.var->name;
    for (const Instr *op : instr.operands)
        os << " %" << (op ? op->id : -1);
    if (!instr.indices.empty()) {
        os << " [";
        for (size_t i = 0; i < instr.indices.size(); ++i)
            os << (i ? "," : "") << instr.indices[i];
        os << "]";
    }
    if (instr.op == Opcode::Const) {
        os << " {";
        for (size_t i = 0; i < instr.constData.size(); ++i)
            os << (i ? "," : "") << formatGlslFloat(instr.constData[i]);
        os << "}";
    }
    return os.str();
}

std::string
dump(const Module &module)
{
    std::ostringstream os;
    for (const auto &v : module.vars) {
        os << "var @" << v->name << " : " << v->type.str() << " "
           << varKindName(v->kind);
        if (!v->constInit.empty()) {
            os << " = {";
            for (size_t i = 0; i < v->constInit.size() && i < 8; ++i)
                os << (i ? "," : "") << formatGlslFloat(v->constInit[i]);
            if (v->constInit.size() > 8)
                os << ",...";
            os << "}";
        }
        os << "\n";
    }
    os << "body:\n";
    dumpRegion(module.body, os, 1);
    return os.str();
}

} // namespace gsopt::ir
