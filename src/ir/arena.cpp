#include "ir/arena.h"

#include <cstdio>
#include <cstdlib>

#include "support/governor.h"

namespace gsopt::ir {

void
inlineVecOverflow(size_t capacity, size_t wanted)
{
    std::fprintf(stderr,
                 "gsopt fatal: InlineVec capacity %zu exceeded "
                 "(wanted %zu) — an IR list outgrew the vec4 bound\n",
                 capacity, wanted);
    std::abort();
}

void *
Arena::allocateSlow(size_t size, size_t align)
{
    // New chunk: big enough for the request (plus worst-case alignment
    // slack), and at least the growth hint. Doubling keeps the chunk
    // count logarithmic for organically grown modules.
    size_t payload = nextChunkSize_;
    if (payload < size + align)
        payload = size + align;
    // Charged at chunk granularity: one probe per >=16 KiB chunk keeps
    // the inline bump path untouched while a governed byte cap still
    // bounds total IR memory. Charging before any state changes means
    // a ResourceExhausted unwind leaves the arena consistent.
    governor::charge(governor::Dim::ArenaBytes, payload, "arena");
    nextChunkSize_ = payload * 2;

    auto *mem = static_cast<char *>(
        std::malloc(sizeof(ChunkHeader) + payload));
    if (!mem) {
        std::fprintf(stderr, "gsopt fatal: arena out of memory "
                             "(%zu-byte chunk)\n",
                     payload);
        std::abort();
    }
    auto *header = reinterpret_cast<ChunkHeader *>(mem);
    header->next = chunks_;
    header->size = payload;
    chunks_ = header;
    ++chunkCount_;
    reserved_ += payload;

    priorUsed_ = used_;
    chunkBase_ = mem + sizeof(ChunkHeader);
    cursor_ = chunkBase_;
    limit_ = chunkBase_ + payload;

    char *p = alignUp(cursor_, align);
    cursor_ = p + size;
    used_ = static_cast<size_t>(cursor_ - chunkBase_) + priorUsed_;
    return p;
}

void
Arena::releaseChunks()
{
    // O(chunks): the whole point. No per-object destruction happens.
    for (ChunkHeader *c = chunks_; c;) {
        ChunkHeader *next = c->next;
        std::free(c);
        c = next;
    }
    chunks_ = nullptr;
    chunkBase_ = cursor_ = limit_ = nullptr;
    priorUsed_ = used_ = reserved_ = chunkCount_ = 0;
    nextChunkSize_ = kMinChunk;
}

void
Arena::moveFrom(Arena &o)
{
    chunks_ = o.chunks_;
    chunkBase_ = o.chunkBase_;
    cursor_ = o.cursor_;
    limit_ = o.limit_;
    priorUsed_ = o.priorUsed_;
    used_ = o.used_;
    reserved_ = o.reserved_;
    chunkCount_ = o.chunkCount_;
    nextChunkSize_ = o.nextChunkSize_;
    o.chunks_ = nullptr;
    o.chunkBase_ = o.cursor_ = o.limit_ = nullptr;
    o.priorUsed_ = o.used_ = o.reserved_ = o.chunkCount_ = 0;
    o.nextChunkSize_ = kMinChunk;
}

} // namespace gsopt::ir
