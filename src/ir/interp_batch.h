/**
 * @file
 * Batched SIMT interpreter: evaluate W fragment invocations of a module
 * in one pass over the instruction stream.
 *
 * The scalar engines in ir/interp.h pay the per-instruction costs —
 * region walk, opcode dispatch, register-file bookkeeping — once per
 * invocation. The measurement protocol and the differential fuzzer are
 * inherently wide (a 500x500 draw is 250,000 invocations of the same
 * module; a fuzz seed probes many environments per variant), so this
 * engine restructures the register file as structure-of-arrays over W
 * invocations ("lanes"): each (Instr::id, component) owns one
 * contiguous strip of W doubles, the instruction stream is walked once
 * per batch, and the per-lane arithmetic loops are flat, restrict-
 * qualified, and auto-vectorizable (support/simd.h).
 *
 * Divergence follows the classic GPU SIMT model: control flow carries a
 * per-lane execution mask instead of branching per lane. `if` runs both
 * arms under complementary masks (empty masks are skipped), generic
 * loops iterate while any lane's condition holds with exited lanes
 * masked off, and `discard` removes lanes from every enclosing mask
 * permanently — a discarded lane's variable memory freezes exactly
 * where the scalar engine stopped executing. Pure value computations
 * run full-width (inactive lanes compute unobserved garbage, which is
 * safe over IEEE doubles); only side effects — variable stores, texture
 * callbacks, discard, the dynamic instruction count — are masked.
 *
 * Equivalence contract: for every lane, outputs, the discard flag, and
 * the per-lane executed-instruction count are bit-identical to running
 * `ir::interpret()` on that lane's scalar environment. The golden and
 * fuzz suites pin this across the corpus and the full pass registry.
 * `InterpResult::executedInstructions` generalises to the per-lane-
 * summed dynamic count: on divergence-free shaders the batch total is
 * exactly W times the scalar count; masked-off lanes never count.
 *
 * Modules whose ids are not dense (hand-assembled test IR) and the rare
 * shapes the SoA layout cannot represent (per-lane divergent variable
 * *resizes*, which well-typed GLSL never produces) fall back to the
 * scalar engine lane by lane; results are identical either way.
 */
#ifndef GSOPT_IR_INTERP_BATCH_H
#define GSOPT_IR_INTERP_BATCH_H

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/interp.h"
#include "ir/ir.h"

namespace gsopt::ir {

/** Hard upper bound on lanes per batch (mask fits a uint32_t). */
constexpr size_t kMaxBatchWidth = 16;

/** Default batch width: the micro_interp W-sweep improves monotonically
 * through W=16 on every corpus family (wider batches amortise the
 * instruction-stream walk further and fill vector units), so the
 * default is the maximum. */
constexpr size_t kBatchWidth = 16;

/** Engine widths that have compiled lane-loop instantiations. A batch
 * of n lanes runs on the smallest supported width >= n. */
constexpr size_t kSupportedBatchWidths[] = {1, 4, 8, 16};

/**
 * Execution environment for one batch of W fragments.
 *
 * Inputs vary per lane and are stored as SoA strips; uniforms are truly
 * uniform — one value broadcast to every lane at initialisation, never
 * per-lane — and textures are shared callbacks, exactly mirroring the
 * GPU programming model the paper measures.
 */
struct BatchEnv
{
    /** One per-lane input: `soa[c * width + lane]` holds component c of
     * lane `lane`; `comps` components per lane. */
    struct LaneInput
    {
        size_t comps = 0;
        std::vector<double> soa;
    };

    /** Number of active lanes (1..kMaxBatchWidth). */
    size_t width = kBatchWidth;
    std::map<std::string, LaneInput> inputs;
    std::map<std::string, LaneVector> uniforms; ///< broadcast once
    std::map<std::string, TextureFn> textures;
    long maxLoopIterations = 4096;

    /** All lanes identical to @p env (uniforms/textures shared). */
    static BatchEnv broadcast(const InterpEnv &env, size_t width);

    /** Overwrite one lane of one input (first call for a name fixes its
     * component count; later lanes must match). */
    void setLaneInput(const std::string &name, size_t lane,
                      const LaneVector &value);

    /** The scalar environment lane @p lane is equivalent to. */
    InterpEnv laneEnv(size_t lane) const;
};

/** Result of one batched run. */
struct BatchResult
{
    size_t width = 0;
    /** Per output: SoA strip of `comps * width` doubles,
     * `soa[c * width + lane]`. */
    std::map<std::string, std::vector<double>> outputs;
    /** Per-lane discard flags. */
    std::vector<uint8_t> discarded;
    /** Per-lane dynamic instruction counts: instructions executed while
     * the lane was in the active mask (bit-identical to the scalar
     * engine's count for that lane's environment). */
    std::vector<size_t> laneExecuted;
    /** Sum of laneExecuted: the batched generalisation of
     * InterpResult::executedInstructions. */
    size_t executedInstructions = 0;

    /** Component count of one output lane. */
    size_t outputComps(const std::string &name) const;

    /** One output component of one lane. */
    double output(const std::string &name, size_t comp,
                  size_t lane) const;

    /** Lane @p lane reshaped as a scalar InterpResult (for comparing
     * against ir::interpret with the lane's scalar environment). */
    InterpResult laneResult(size_t lane) const;
};

/**
 * A reusable batched executor for one module: the register file, the
 * variable memory, and the dense-id precheck are paid once, then
 * `run()` evaluates one batch of fragments per call (the tile paths
 * call it thousands of times per module). Not thread-safe; make one
 * per thread.
 */
class BatchRunner
{
  public:
    /** @p width lanes per batch (rounded up to a supported width). */
    explicit BatchRunner(const Module &module,
                         size_t width = kBatchWidth);
    ~BatchRunner();

    BatchRunner(const BatchRunner &) = delete;
    BatchRunner &operator=(const BatchRunner &) = delete;

    /** False when the module fell back to the scalar engines (non-dense
     * ids); results are identical, just not batched. */
    bool batched() const;

    /** Evaluate lanes [0, env.width) of @p env. env.width must not
     * exceed the construction width. */
    BatchResult run(const BatchEnv &env);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** One-shot convenience: construct a runner and evaluate one batch. */
BatchResult interpretBatch(const Module &module, const BatchEnv &env);

} // namespace gsopt::ir

#endif // GSOPT_IR_INTERP_BATCH_H
