#include "ir/ir.h"

#include <cstring>
#include <unordered_map>

#include "support/rng.h"

namespace gsopt::ir {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Const: return "const";
      case Opcode::Neg: return "neg";
      case Opcode::Not: return "not";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Mod: return "mod";
      case Opcode::Lt: return "lt";
      case Opcode::Le: return "le";
      case Opcode::Gt: return "gt";
      case Opcode::Ge: return "ge";
      case Opcode::Eq: return "eq";
      case Opcode::Ne: return "ne";
      case Opcode::LogicalAnd: return "and";
      case Opcode::LogicalOr: return "or";
      case Opcode::Sin: return "sin";
      case Opcode::Cos: return "cos";
      case Opcode::Tan: return "tan";
      case Opcode::Asin: return "asin";
      case Opcode::Acos: return "acos";
      case Opcode::Atan: return "atan";
      case Opcode::Exp: return "exp";
      case Opcode::Log: return "log";
      case Opcode::Exp2: return "exp2";
      case Opcode::Log2: return "log2";
      case Opcode::Sqrt: return "sqrt";
      case Opcode::InvSqrt: return "inversesqrt";
      case Opcode::Abs: return "abs";
      case Opcode::Sign: return "sign";
      case Opcode::Floor: return "floor";
      case Opcode::Ceil: return "ceil";
      case Opcode::Fract: return "fract";
      case Opcode::Radians: return "radians";
      case Opcode::Degrees: return "degrees";
      case Opcode::Normalize: return "normalize";
      case Opcode::Length: return "length";
      case Opcode::Atan2: return "atan2";
      case Opcode::Pow: return "pow";
      case Opcode::Min: return "min";
      case Opcode::Max: return "max";
      case Opcode::Step: return "step";
      case Opcode::Distance: return "distance";
      case Opcode::Dot: return "dot";
      case Opcode::Cross: return "cross";
      case Opcode::Reflect: return "reflect";
      case Opcode::Clamp: return "clamp";
      case Opcode::Mix: return "mix";
      case Opcode::Smoothstep: return "smoothstep";
      case Opcode::Refract: return "refract";
      case Opcode::Select: return "select";
      case Opcode::Construct: return "construct";
      case Opcode::Extract: return "extract";
      case Opcode::Insert: return "insert";
      case Opcode::Swizzle: return "swizzle";
      case Opcode::Texture: return "texture";
      case Opcode::TextureBias: return "texture_bias";
      case Opcode::TextureLod: return "texture_lod";
      case Opcode::LoadVar: return "load";
      case Opcode::StoreVar: return "store";
      case Opcode::LoadElem: return "load_elem";
      case Opcode::StoreElem: return "store_elem";
      case Opcode::Discard: return "discard";
    }
    return "?";
}

bool
hasSideEffects(Opcode op)
{
    return op == Opcode::StoreVar || op == Opcode::StoreElem ||
           op == Opcode::Discard;
}

bool
isVoidOp(Opcode op)
{
    return hasSideEffects(op);
}

bool
Instr::isConstValue(double v) const
{
    if (op != Opcode::Const || constData.empty())
        return false;
    for (double d : constData) {
        if (d != v)
            return false;
    }
    return true;
}

bool
Instr::isSplatConst() const
{
    if (op != Opcode::Const || constData.empty())
        return false;
    for (double d : constData) {
        if (d != constData[0])
            return false;
    }
    return true;
}

size_t
Region::instructionCount() const
{
    size_t n = 0;
    for (const auto &node : nodes) {
        if (const auto *b = dyn_cast<Block>(node.get())) {
            n += b->instrs.size();
        } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
            n += f->thenRegion.instructionCount() +
                 f->elseRegion.instructionCount();
        } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
            n += l->condRegion.instructionCount() +
                 l->body.instructionCount();
        }
    }
    return n;
}

Module::~Module()
{
    // Vars carry a name string and const-init vector, so they are the
    // one arena object class that needs explicit destruction. There are
    // a few dozen per shader; instructions (the thousands) are freed
    // wholesale with the arena chunks.
    for (Var *v : vars)
        v->~Var();
}

Var *
Module::newVar(std::string name, Type type, VarKind kind)
{
    Var *var = arena_.createWithCallerManagedDtor<Var>();
    var->id = nextVarId_++;
    var->name = std::move(name);
    var->type = type;
    var->kind = kind;
    vars.push_back(var);
    return var;
}

namespace {

/**
 * Slot-indexed region deep-copy preserving instruction ids (unlike
 * walk.h's cloneRegionInto, which allocates fresh ones). Every source
 * instruction is struct-copied into @p arena, then its operand/var
 * pointers are remapped through the dense id-indexed tables. References
 * to values or vars outside the source module (slot empty or id out of
 * range) are kept as-is, matching the old hash-map behaviour.
 */
struct ExactCloner
{
    Arena &arena;
    std::vector<Var *> &varBySlot;
    std::vector<Instr *> &instrBySlot;

    Var *mappedVar(Var *v) const
    {
        if (!v)
            return nullptr;
        const auto slot = static_cast<size_t>(v->id);
        if (v->id < 0 || slot >= varBySlot.size() || !varBySlot[slot])
            return v;
        return varBySlot[slot];
    }

    Instr *mappedValue(Instr *i) const
    {
        if (!i)
            return nullptr;
        const auto slot = static_cast<size_t>(i->id);
        if (i->id < 0 || slot >= instrBySlot.size() ||
            !instrBySlot[slot])
            return i;
        return instrBySlot[slot];
    }

    void cloneRegion(const Region &src, Region &dst)
    {
        dst.nodes.reserve(src.nodes.size());
        for (const auto &node : src.nodes) {
            if (const auto *b = dyn_cast<Block>(node.get())) {
                auto nb = std::make_unique<Block>();
                nb->instrs.reserve(b->instrs.size());
                for (const Instr *i : b->instrs) {
                    Instr *ni = arena.create<Instr>(*i);
                    ni->var = mappedVar(ni->var);
                    for (Instr *&op : ni->operands)
                        op = mappedValue(op);
                    instrBySlot[static_cast<size_t>(i->id)] = ni;
                    nb->instrs.push_back(ni);
                }
                dst.nodes.push_back(std::move(nb));
            } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
                auto nf = std::make_unique<IfNode>();
                nf->cond = mappedValue(f->cond);
                cloneRegion(f->thenRegion, nf->thenRegion);
                cloneRegion(f->elseRegion, nf->elseRegion);
                dst.nodes.push_back(std::move(nf));
            } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
                auto nl = std::make_unique<LoopNode>();
                nl->canonical = l->canonical;
                nl->counter = mappedVar(l->counter);
                nl->init = l->init;
                nl->limit = l->limit;
                nl->step = l->step;
                cloneRegion(l->condRegion, nl->condRegion);
                nl->condValue = mappedValue(l->condValue);
                cloneRegion(l->body, nl->body);
                dst.nodes.push_back(std::move(nl));
            }
        }
    }
};

} // namespace

std::unique_ptr<Module>
Module::clone() const
{
    auto out = std::make_unique<Module>();
    // One right-sized chunk fits the whole clone: instructions and
    // vars land contiguously, and no growth happens mid-copy. The
    // slack absorbs alignment-padding differences (the clone packs
    // vars first, the source allocated in build order).
    out->arena_.reserveHint(arena_.bytesUsed() + 64);

    std::vector<Var *> varBySlot(static_cast<size_t>(nextVarId_),
                                 nullptr);
    out->vars.reserve(vars.size());
    for (const Var *v : vars) {
        Var *nv = out->arena_.createWithCallerManagedDtor<Var>(*v);
        varBySlot[static_cast<size_t>(v->id)] = nv;
        out->vars.push_back(nv);
    }

    std::vector<Instr *> instrBySlot(static_cast<size_t>(nextId_),
                                     nullptr);
    ExactCloner cloner{out->arena_, varBySlot, instrBySlot};
    cloner.cloneRegion(body, out->body);
    out->nextId_ = nextId_;
    out->nextVarId_ = nextVarId_;
    return out;
}

namespace {

/** Running-hash state for fingerprint(): values are numbered by their
 * position in the structural walk so id history cannot leak in. */
struct Fingerprinter
{
    uint64_t h = 0xcbf29ce484222325ull;
    std::unordered_map<const Instr *, uint64_t> position;
    uint64_t nextPosition = 1; // 0 = null/external reference
    std::unordered_map<const Var *, uint64_t> varPosition; // 1-based

    uint64_t positionOfVar(const Var *v) const
    {
        if (!v)
            return 0;
        auto it = varPosition.find(v);
        return it == varPosition.end() ? 0 : it->second;
    }

    void mix(uint64_t v) { h = hashCombine(h, v); }

    void mixDouble(double d)
    {
        uint64_t bits = 0;
        std::memcpy(&bits, &d, sizeof(bits));
        mix(bits);
    }

    void mixType(const Type &t)
    {
        mix((static_cast<uint64_t>(t.base) << 48) ^
            (static_cast<uint64_t>(t.cols) << 32) ^
            (static_cast<uint64_t>(t.rows) << 16) ^
            static_cast<uint64_t>(static_cast<uint16_t>(t.arraySize)));
    }

    uint64_t positionOf(const Instr *i)
    {
        if (!i)
            return 0;
        auto it = position.find(i);
        return it == position.end() ? 0 : it->second;
    }

    void walk(const Region &region)
    {
        mix(0x5245); // region open tag
        for (const auto &node : region.nodes) {
            if (const auto *b = dyn_cast<Block>(node.get())) {
                mix(0x424c);
                for (const Instr *i : b->instrs)
                    walkInstr(*i);
            } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
                mix(0x4946);
                mix(positionOf(f->cond));
                walk(f->thenRegion);
                walk(f->elseRegion);
            } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
                mix(0x4c50);
                mix(l->canonical);
                mix(positionOfVar(l->counter));
                mix(static_cast<uint64_t>(l->init));
                mix(static_cast<uint64_t>(l->limit));
                mix(static_cast<uint64_t>(l->step));
                walk(l->condRegion);
                mix(positionOf(l->condValue));
                walk(l->body);
            }
        }
        mix(0x2f52); // region close tag
    }

    void walkInstr(const Instr &i)
    {
        position[&i] = nextPosition++;
        mix(static_cast<uint64_t>(i.op));
        mixType(i.type);
        mix(positionOfVar(i.var));
        mix(i.operands.size());
        for (const Instr *op : i.operands)
            mix(positionOf(op));
        mix(i.indices.size());
        for (int idx : i.indices)
            mix(static_cast<uint64_t>(idx));
        mix(i.constData.size());
        for (double d : i.constData)
            mixDouble(d);
    }
};

} // namespace

uint64_t
fingerprint(const Module &module)
{
    Fingerprinter fp;
    fp.position.reserve(module.instructionCount());
    fp.varPosition.reserve(module.vars.size());
    fp.mix(module.vars.size());
    for (const Var *v : module.vars) {
        const uint64_t pos = fp.varPosition.size() + 1;
        fp.varPosition[v] = pos;
        fp.mix(fnv1a(v->name));
        fp.mixType(v->type);
        fp.mix(static_cast<uint64_t>(v->kind));
        fp.mix(v->constInit.size());
        for (double d : v->constInit)
            fp.mixDouble(d);
    }
    fp.walk(module.body);
    return fp.h;
}

Var *
Module::findVar(const std::string &name) const
{
    for (Var *v : vars) {
        if (v->name == name)
            return v;
    }
    return nullptr;
}

} // namespace gsopt::ir
