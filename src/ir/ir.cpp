#include "ir/ir.h"

#include <cstring>
#include <unordered_map>

#include "support/rng.h"

namespace gsopt::ir {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Const: return "const";
      case Opcode::Neg: return "neg";
      case Opcode::Not: return "not";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Mod: return "mod";
      case Opcode::Lt: return "lt";
      case Opcode::Le: return "le";
      case Opcode::Gt: return "gt";
      case Opcode::Ge: return "ge";
      case Opcode::Eq: return "eq";
      case Opcode::Ne: return "ne";
      case Opcode::LogicalAnd: return "and";
      case Opcode::LogicalOr: return "or";
      case Opcode::Sin: return "sin";
      case Opcode::Cos: return "cos";
      case Opcode::Tan: return "tan";
      case Opcode::Asin: return "asin";
      case Opcode::Acos: return "acos";
      case Opcode::Atan: return "atan";
      case Opcode::Exp: return "exp";
      case Opcode::Log: return "log";
      case Opcode::Exp2: return "exp2";
      case Opcode::Log2: return "log2";
      case Opcode::Sqrt: return "sqrt";
      case Opcode::InvSqrt: return "inversesqrt";
      case Opcode::Abs: return "abs";
      case Opcode::Sign: return "sign";
      case Opcode::Floor: return "floor";
      case Opcode::Ceil: return "ceil";
      case Opcode::Fract: return "fract";
      case Opcode::Radians: return "radians";
      case Opcode::Degrees: return "degrees";
      case Opcode::Normalize: return "normalize";
      case Opcode::Length: return "length";
      case Opcode::Atan2: return "atan2";
      case Opcode::Pow: return "pow";
      case Opcode::Min: return "min";
      case Opcode::Max: return "max";
      case Opcode::Step: return "step";
      case Opcode::Distance: return "distance";
      case Opcode::Dot: return "dot";
      case Opcode::Cross: return "cross";
      case Opcode::Reflect: return "reflect";
      case Opcode::Clamp: return "clamp";
      case Opcode::Mix: return "mix";
      case Opcode::Smoothstep: return "smoothstep";
      case Opcode::Refract: return "refract";
      case Opcode::Select: return "select";
      case Opcode::Construct: return "construct";
      case Opcode::Extract: return "extract";
      case Opcode::Insert: return "insert";
      case Opcode::Swizzle: return "swizzle";
      case Opcode::Texture: return "texture";
      case Opcode::TextureBias: return "texture_bias";
      case Opcode::TextureLod: return "texture_lod";
      case Opcode::LoadVar: return "load";
      case Opcode::StoreVar: return "store";
      case Opcode::LoadElem: return "load_elem";
      case Opcode::StoreElem: return "store_elem";
      case Opcode::Discard: return "discard";
    }
    return "?";
}

bool
hasSideEffects(Opcode op)
{
    return op == Opcode::StoreVar || op == Opcode::StoreElem ||
           op == Opcode::Discard;
}

bool
isVoidOp(Opcode op)
{
    return hasSideEffects(op);
}

bool
Instr::isConstValue(double v) const
{
    if (op != Opcode::Const || constData.empty())
        return false;
    for (double d : constData) {
        if (d != v)
            return false;
    }
    return true;
}

bool
Instr::isSplatConst() const
{
    if (op != Opcode::Const || constData.empty())
        return false;
    for (double d : constData) {
        if (d != constData[0])
            return false;
    }
    return true;
}

size_t
Region::instructionCount() const
{
    size_t n = 0;
    for (const auto &node : nodes) {
        if (const auto *b = dyn_cast<Block>(node.get())) {
            n += b->instrs.size();
        } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
            n += f->thenRegion.instructionCount() +
                 f->elseRegion.instructionCount();
        } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
            n += l->condRegion.instructionCount() +
                 l->body.instructionCount();
        }
    }
    return n;
}

Var *
Module::newVar(std::string name, Type type, VarKind kind)
{
    auto var = std::make_unique<Var>();
    var->id = nextVarId_++;
    var->name = std::move(name);
    var->type = type;
    var->kind = kind;
    vars.push_back(std::move(var));
    return vars.back().get();
}

namespace {

/** Region deep-copy preserving instruction ids (unlike
 * walk.h's cloneRegionInto, which allocates fresh ones). */
void
cloneRegionExact(const Region &src, Region &dst,
                 const std::unordered_map<const Var *, Var *> &varMap,
                 std::unordered_map<const Instr *, Instr *> &valueMap)
{
    auto mappedVar = [&varMap](Var *v) -> Var * {
        if (!v)
            return nullptr;
        auto it = varMap.find(v);
        return it == varMap.end() ? v : it->second;
    };
    auto mappedValue = [&valueMap](Instr *v) -> Instr * {
        if (!v)
            return nullptr;
        auto it = valueMap.find(v);
        return it == valueMap.end() ? v : it->second;
    };

    for (const auto &node : src.nodes) {
        if (const auto *b = dyn_cast<Block>(node.get())) {
            auto nb = std::make_unique<Block>();
            nb->instrs.reserve(b->instrs.size());
            for (const auto &i : b->instrs) {
                auto ni = std::make_unique<Instr>();
                ni->op = i->op;
                ni->type = i->type;
                ni->id = i->id;
                ni->var = mappedVar(i->var);
                ni->indices = i->indices;
                ni->constData = i->constData;
                ni->operands.reserve(i->operands.size());
                for (Instr *op : i->operands)
                    ni->operands.push_back(mappedValue(op));
                valueMap[i.get()] = ni.get();
                nb->instrs.push_back(std::move(ni));
            }
            dst.nodes.push_back(std::move(nb));
        } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
            auto nf = std::make_unique<IfNode>();
            nf->cond = mappedValue(f->cond);
            cloneRegionExact(f->thenRegion, nf->thenRegion, varMap,
                             valueMap);
            cloneRegionExact(f->elseRegion, nf->elseRegion, varMap,
                             valueMap);
            dst.nodes.push_back(std::move(nf));
        } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
            auto nl = std::make_unique<LoopNode>();
            nl->canonical = l->canonical;
            nl->counter = mappedVar(l->counter);
            nl->init = l->init;
            nl->limit = l->limit;
            nl->step = l->step;
            cloneRegionExact(l->condRegion, nl->condRegion, varMap,
                             valueMap);
            nl->condValue = mappedValue(l->condValue);
            cloneRegionExact(l->body, nl->body, varMap, valueMap);
            dst.nodes.push_back(std::move(nl));
        }
    }
}

} // namespace

std::unique_ptr<Module>
Module::clone() const
{
    auto out = std::make_unique<Module>();
    std::unordered_map<const Var *, Var *> varMap;
    varMap.reserve(vars.size());
    out->vars.reserve(vars.size());
    for (const auto &v : vars) {
        auto nv = std::make_unique<Var>(*v);
        varMap[v.get()] = nv.get();
        out->vars.push_back(std::move(nv));
    }
    std::unordered_map<const Instr *, Instr *> valueMap;
    valueMap.reserve(static_cast<size_t>(nextId_));
    cloneRegionExact(body, out->body, varMap, valueMap);
    out->nextId_ = nextId_;
    out->nextVarId_ = nextVarId_;
    return out;
}

namespace {

/** Running-hash state for fingerprint(): values are numbered by their
 * position in the structural walk so id history cannot leak in. */
struct Fingerprinter
{
    uint64_t h = 0xcbf29ce484222325ull;
    std::unordered_map<const Instr *, uint64_t> position;
    uint64_t nextPosition = 1; // 0 = null/external reference
    std::unordered_map<const Var *, uint64_t> varPosition; // 1-based

    uint64_t positionOfVar(const Var *v) const
    {
        if (!v)
            return 0;
        auto it = varPosition.find(v);
        return it == varPosition.end() ? 0 : it->second;
    }

    void mix(uint64_t v) { h = hashCombine(h, v); }

    void mixDouble(double d)
    {
        uint64_t bits = 0;
        std::memcpy(&bits, &d, sizeof(bits));
        mix(bits);
    }

    void mixType(const Type &t)
    {
        mix((static_cast<uint64_t>(t.base) << 48) ^
            (static_cast<uint64_t>(t.cols) << 32) ^
            (static_cast<uint64_t>(t.rows) << 16) ^
            static_cast<uint64_t>(static_cast<uint16_t>(t.arraySize)));
    }

    uint64_t positionOf(const Instr *i)
    {
        if (!i)
            return 0;
        auto it = position.find(i);
        return it == position.end() ? 0 : it->second;
    }

    void walk(const Region &region)
    {
        mix(0x5245); // region open tag
        for (const auto &node : region.nodes) {
            if (const auto *b = dyn_cast<Block>(node.get())) {
                mix(0x424c);
                for (const auto &i : b->instrs)
                    walkInstr(*i);
            } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
                mix(0x4946);
                mix(positionOf(f->cond));
                walk(f->thenRegion);
                walk(f->elseRegion);
            } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
                mix(0x4c50);
                mix(l->canonical);
                mix(positionOfVar(l->counter));
                mix(static_cast<uint64_t>(l->init));
                mix(static_cast<uint64_t>(l->limit));
                mix(static_cast<uint64_t>(l->step));
                walk(l->condRegion);
                mix(positionOf(l->condValue));
                walk(l->body);
            }
        }
        mix(0x2f52); // region close tag
    }

    void walkInstr(const Instr &i)
    {
        position[&i] = nextPosition++;
        mix(static_cast<uint64_t>(i.op));
        mixType(i.type);
        mix(positionOfVar(i.var));
        mix(i.operands.size());
        for (const Instr *op : i.operands)
            mix(positionOf(op));
        mix(i.indices.size());
        for (int idx : i.indices)
            mix(static_cast<uint64_t>(idx));
        mix(i.constData.size());
        for (double d : i.constData)
            mixDouble(d);
    }
};

} // namespace

uint64_t
fingerprint(const Module &module)
{
    Fingerprinter fp;
    fp.position.reserve(module.instructionCount());
    fp.varPosition.reserve(module.vars.size());
    fp.mix(module.vars.size());
    for (const auto &v : module.vars) {
        const uint64_t pos = fp.varPosition.size() + 1;
        fp.varPosition[v.get()] = pos;
        fp.mix(fnv1a(v->name));
        fp.mixType(v->type);
        fp.mix(static_cast<uint64_t>(v->kind));
        fp.mix(v->constInit.size());
        for (double d : v->constInit)
            fp.mixDouble(d);
    }
    fp.walk(module.body);
    return fp.h;
}

Var *
Module::findVar(const std::string &name) const
{
    for (const auto &v : vars) {
        if (v->name == name)
            return v.get();
    }
    return nullptr;
}

} // namespace gsopt::ir
