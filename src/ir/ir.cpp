#include "ir/ir.h"

namespace gsopt::ir {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Const: return "const";
      case Opcode::Neg: return "neg";
      case Opcode::Not: return "not";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Mod: return "mod";
      case Opcode::Lt: return "lt";
      case Opcode::Le: return "le";
      case Opcode::Gt: return "gt";
      case Opcode::Ge: return "ge";
      case Opcode::Eq: return "eq";
      case Opcode::Ne: return "ne";
      case Opcode::LogicalAnd: return "and";
      case Opcode::LogicalOr: return "or";
      case Opcode::Sin: return "sin";
      case Opcode::Cos: return "cos";
      case Opcode::Tan: return "tan";
      case Opcode::Asin: return "asin";
      case Opcode::Acos: return "acos";
      case Opcode::Atan: return "atan";
      case Opcode::Exp: return "exp";
      case Opcode::Log: return "log";
      case Opcode::Exp2: return "exp2";
      case Opcode::Log2: return "log2";
      case Opcode::Sqrt: return "sqrt";
      case Opcode::InvSqrt: return "inversesqrt";
      case Opcode::Abs: return "abs";
      case Opcode::Sign: return "sign";
      case Opcode::Floor: return "floor";
      case Opcode::Ceil: return "ceil";
      case Opcode::Fract: return "fract";
      case Opcode::Radians: return "radians";
      case Opcode::Degrees: return "degrees";
      case Opcode::Normalize: return "normalize";
      case Opcode::Length: return "length";
      case Opcode::Atan2: return "atan2";
      case Opcode::Pow: return "pow";
      case Opcode::Min: return "min";
      case Opcode::Max: return "max";
      case Opcode::Step: return "step";
      case Opcode::Distance: return "distance";
      case Opcode::Dot: return "dot";
      case Opcode::Cross: return "cross";
      case Opcode::Reflect: return "reflect";
      case Opcode::Clamp: return "clamp";
      case Opcode::Mix: return "mix";
      case Opcode::Smoothstep: return "smoothstep";
      case Opcode::Refract: return "refract";
      case Opcode::Select: return "select";
      case Opcode::Construct: return "construct";
      case Opcode::Extract: return "extract";
      case Opcode::Insert: return "insert";
      case Opcode::Swizzle: return "swizzle";
      case Opcode::Texture: return "texture";
      case Opcode::TextureBias: return "texture_bias";
      case Opcode::TextureLod: return "texture_lod";
      case Opcode::LoadVar: return "load";
      case Opcode::StoreVar: return "store";
      case Opcode::LoadElem: return "load_elem";
      case Opcode::StoreElem: return "store_elem";
      case Opcode::Discard: return "discard";
    }
    return "?";
}

bool
hasSideEffects(Opcode op)
{
    return op == Opcode::StoreVar || op == Opcode::StoreElem ||
           op == Opcode::Discard;
}

bool
isVoidOp(Opcode op)
{
    return hasSideEffects(op);
}

bool
Instr::isConstValue(double v) const
{
    if (op != Opcode::Const || constData.empty())
        return false;
    for (double d : constData) {
        if (d != v)
            return false;
    }
    return true;
}

bool
Instr::isSplatConst() const
{
    if (op != Opcode::Const || constData.empty())
        return false;
    for (double d : constData) {
        if (d != constData[0])
            return false;
    }
    return true;
}

size_t
Region::instructionCount() const
{
    size_t n = 0;
    for (const auto &node : nodes) {
        if (const auto *b = dyn_cast<Block>(node.get())) {
            n += b->instrs.size();
        } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
            n += f->thenRegion.instructionCount() +
                 f->elseRegion.instructionCount();
        } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
            n += l->condRegion.instructionCount() +
                 l->body.instructionCount();
        }
    }
    return n;
}

Var *
Module::newVar(std::string name, Type type, VarKind kind)
{
    auto var = std::make_unique<Var>();
    var->id = nextVarId_++;
    var->name = std::move(name);
    var->type = type;
    var->kind = kind;
    vars.push_back(std::move(var));
    return vars.back().get();
}

Var *
Module::findVar(const std::string &name) const
{
    for (const auto &v : vars) {
        if (v->name == name)
            return v.get();
    }
    return nullptr;
}

} // namespace gsopt::ir
