/**
 * @file
 * Pressure-reducing scheduler ("sinking"): moves pure single-use
 * instructions whose definition sits far from their only user down to
 * just before that user.
 *
 * Every production shader compiler list-schedules for register
 * pressure; without this, an offline pass that rebuilds a long
 * reduction chain at the end of a block (reassociation does exactly
 * that) would look catastrophically expensive, because all of its
 * operands would appear live across the whole block. The driver model
 * runs this before register accounting.
 *
 * The span threshold keeps the model honest: schedulers fix egregious
 * live ranges, but they cannot undo genuine pressure (if-converted code
 * interleaves both arms' chains within the window; those stay put).
 *
 * Texture fetches never sink: drivers issue them early to hide latency.
 */
#include <algorithm>
#include <functional>
#include <unordered_map>

#include "ir/walk.h"
#include "passes/passes.h"
#include "passes/util.h"

namespace gsopt::passes {

using ir::Block;
using ir::dyn_cast;
using ir::Instr;
using ir::Module;
using ir::Node;
using ir::Opcode;

namespace {

bool
isSinkable(const Instr &i)
{
    if (ir::hasSideEffects(i.op))
        return false;
    switch (i.op) {
      case Opcode::Texture:
      case Opcode::TextureBias:
      case Opcode::TextureLod:
      case Opcode::Const: // free anyway; moving them is churn
        return false;
      case Opcode::LoadVar:
      case Opcode::LoadElem:
        // Memory order against stores must be preserved; loads stay.
        return false;
      default:
        return true;
    }
}

bool
scheduleBlock(Block &block, size_t min_span,
              const std::unordered_map<const Instr *, int> &uses)
{
    const size_t n = block.instrs.size();
    std::unordered_map<const Instr *, size_t> pos;
    for (size_t i = 0; i < n; ++i)
        pos[block.instrs[i]] = i;

    // First (and only, for single-use values) user position per instr.
    std::unordered_map<const Instr *, size_t> user_pos;
    for (size_t i = 0; i < n; ++i) {
        for (const Instr *op : block.instrs[i]->operands) {
            if (!user_pos.count(op))
                user_pos[op] = i;
        }
    }

    // Decide what sinks.
    std::unordered_map<const Instr *, bool> sink;
    bool any = false;
    for (size_t i = 0; i < n; ++i) {
        const Instr *instr = block.instrs[i];
        auto uit = uses.find(instr);
        auto pit = user_pos.find(instr);
        if (uit == uses.end() || uit->second != 1 ||
            pit == user_pos.end())
            continue; // multi-use, unused, or used outside the block
        if (!isSinkable(*instr))
            continue;
        // Sinking a direct consumer of a texture fetch would extend the
        // (wide) fetch result's live range to the consumer's new
        // position — schedulers keep those together instead.
        bool consumes_texture = false;
        for (const Instr *op : instr->operands) {
            consumes_texture |= op->op == Opcode::Texture ||
                                op->op == Opcode::TextureBias ||
                                op->op == Opcode::TextureLod;
        }
        if (consumes_texture)
            continue;
        if (pit->second - i <= min_span)
            continue;
        sink[instr] = true;
        any = true;
    }
    if (!any)
        return false;

    // Rebuild: non-sunk instructions keep their order; sunk ones are
    // emitted (with their sunk dependencies, recursively) right before
    // their user.
    std::vector<Instr *> result;
    result.reserve(n);
    std::unordered_map<const Instr *, size_t> holding; // -> old index
    std::unordered_map<const Instr *, bool> emitted;

    std::function<void(size_t)> emit_sunk = [&](size_t old_index) {
        Instr *instr = block.instrs[old_index];
        if (emitted[instr])
            return;
        emitted[instr] = true;
        for (const Instr *op : instr->operands) {
            auto hit = holding.find(op);
            if (hit != holding.end())
                emit_sunk(hit->second);
        }
        result.push_back(instr);
    };

    for (size_t i = 0; i < n; ++i) {
        Instr *instr = block.instrs[i];
        if (sink[instr]) {
            holding[instr] = i;
            continue;
        }
        // Emit any sunk values this instruction consumes.
        for (const Instr *op : instr->operands) {
            auto hit = holding.find(op);
            if (hit != holding.end())
                emit_sunk(hit->second);
        }
        result.push_back(instr);
    }
    // Anything never demanded (shouldn't happen for single-use values
    // used in this block) is appended in original order to preserve
    // both the value and determinism.
    std::vector<size_t> leftovers;
    for (auto &[instr, old_index] : holding) {
        if (!emitted[instr])
            leftovers.push_back(old_index);
    }
    std::sort(leftovers.begin(), leftovers.end());
    for (size_t old_index : leftovers)
        emit_sunk(old_index);
    block.instrs = std::move(result);
    return true;
}

} // namespace

bool
scheduleForPressure(Module &module, size_t minSpan)
{
    auto uses = countUses(module);
    bool changed = false;
    ir::forEachNode(module.body, [&](Node &n) {
        if (auto *b = dyn_cast<Block>(&n))
            changed |= scheduleBlock(*b, minSpan, uses);
    });
    return changed;
}

} // namespace gsopt::passes
