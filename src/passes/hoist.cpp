/**
 * @file
 * Conditional flattening ("Hoist" in LunarGlass): if both arms of an if
 * contain only speculatable code plus whole-variable assignments, the
 * arms are merged into straight-line code and each assigned variable
 * receives a select between its two arm values.
 *
 * This is the pass responsible for the paper's "huge basic blocks"
 * artefact (III-C.c): after hoisting (especially combined with
 * unrolling), shaders become single large blocks that stress vendor
 * register allocators — the mechanism behind the pathological ARM
 * slowdowns in Fig 9.
 */
#include <map>
#include <unordered_map>

#include "ir/walk.h"
#include "passes/passes.h"
#include "passes/util.h"

namespace gsopt::passes {

using ir::Block;
using ir::dyn_cast;
using ir::IfNode;
using ir::Instr;
using ir::Module;
using ir::NodePtr;
using ir::Opcode;
using ir::Region;
using ir::Var;

namespace {

/** Texture ops must not be speculated (real drivers refuse too). */
bool
isSpeculatable(const Instr &i)
{
    switch (i.op) {
      case Opcode::Texture:
      case Opcode::TextureBias:
      case Opcode::TextureLod:
      case Opcode::Discard:
      case Opcode::StoreElem:
      case Opcode::LoadElem:
        return false;
      case Opcode::StoreVar:
        return true; // handled specially
      default:
        return !ir::hasSideEffects(i.op);
    }
}

/**
 * An arm qualifies if it is a single straight-line block (or empty)
 * whose instructions are all speculatable.
 */
Block *
qualifyingArm(Region &region, bool &ok, size_t max_arm_instrs)
{
    ok = false;
    if (region.nodes.empty()) {
        ok = true;
        return nullptr;
    }
    if (region.nodes.size() != 1)
        return nullptr;
    auto *b = dyn_cast<Block>(region.nodes[0].get());
    if (!b)
        return nullptr;
    if (b->instrs.size() > max_arm_instrs)
        return nullptr;
    for (const auto &i : b->instrs) {
        if (!isSpeculatable(*i))
            return nullptr;
    }
    ok = true;
    return b;
}

bool
hoistRegion(Region &region, Module &module,
            std::unordered_map<Instr *, Instr *> &repl,
            size_t max_arm_instrs)
{
    bool changed = false;
    // Bottom-up: flatten nested ifs first so their parents qualify.
    for (auto &node : region.nodes) {
        if (auto *f = dyn_cast<IfNode>(node.get())) {
            changed |= hoistRegion(f->thenRegion, module, repl,
                                   max_arm_instrs);
            changed |= hoistRegion(f->elseRegion, module, repl,
                                   max_arm_instrs);
        } else if (auto *l = dyn_cast<ir::LoopNode>(node.get())) {
            changed |= hoistRegion(l->condRegion, module, repl,
                                   max_arm_instrs);
            changed |= hoistRegion(l->body, module, repl,
                                   max_arm_instrs);
        }
    }
    if (changed)
        ir::simplifyRegionStructure(region);

    std::vector<NodePtr> result;
    for (auto &node : region.nodes) {
        auto *f = dyn_cast<IfNode>(node.get());
        if (!f) {
            result.push_back(std::move(node));
            continue;
        }
        bool then_ok = false, else_ok = false;
        Block *then_b =
            qualifyingArm(f->thenRegion, then_ok, max_arm_instrs);
        Block *else_b =
            qualifyingArm(f->elseRegion, else_ok, max_arm_instrs);
        if (!then_ok || !else_ok) {
            result.push_back(std::move(node));
            continue;
        }

        auto merged = std::make_unique<Block>();
        // Variables assigned per arm: the *last* store wins.
        std::map<Var *, Instr *> then_vals, else_vals;
        // Pre-if values loaded on demand, shared between arms.
        std::map<Var *, Instr *> pre_vals;

        auto resolve = [&repl](Instr *v) {
            while (v) {
                auto it = repl.find(v);
                if (it == repl.end())
                    break;
                v = it->second;
            }
            return v;
        };
        auto move_arm = [&](Block *arm, std::map<Var *, Instr *> &vals) {
            if (!arm)
                return;
            for (Instr *ip : arm->instrs) {
                for (Instr *&op : ip->operands)
                    op = resolve(op);
                if (ip->op == Opcode::StoreVar) {
                    // The store dissolves into a select later. Its
                    // storage stays alive (and its address stable) in
                    // the module arena, so stale pointers to it in
                    // `repl` remain safe to chase.
                    vals[ip->var] = ip->operands[0];
                    continue;
                }
                if (ip->op == Opcode::LoadVar && vals.count(ip->var)) {
                    // The arm already assigned this var: the load must
                    // see the arm-local value, not the pre-if value.
                    repl[ip] = vals[ip->var];
                    continue;
                }
                merged->instrs.push_back(ip);
            }
            arm->instrs.clear();
        };
        move_arm(then_b, then_vals);
        move_arm(else_b, else_vals);

        auto pre_value = [&](Var *v) -> Instr * {
            auto it = pre_vals.find(v);
            if (it != pre_vals.end())
                return it->second;
            Instr *load = module.newInstr();
            load->op = Opcode::LoadVar;
            load->type = v->type;
            load->var = v;
            // Pre-if loads must precede the moved arm code; insert at
            // the front of the merged block.
            merged->instrs.insert(merged->instrs.begin(), load);
            pre_vals[v] = load;
            return load;
        };

        // Union of assigned vars in *var id* order: pointer-keyed maps
        // iterate in allocation order, which is not deterministic
        // across runs and would break textual dedup.
        std::map<int, Var *> var_of_id;
        std::map<int, std::pair<Instr *, Instr *>> assigned;
        for (auto &[v, val] : then_vals) {
            assigned[v->id].first = val;
            var_of_id[v->id] = v;
        }
        for (auto &[v, val] : else_vals) {
            assigned[v->id].second = val;
            var_of_id[v->id] = v;
        }

        for (auto &[v_id, tv_ev] : assigned) {
            Var *v = var_of_id[v_id];
            Instr *tv =
                tv_ev.first ? resolve(tv_ev.first) : pre_value(v);
            Instr *ev =
                tv_ev.second ? resolve(tv_ev.second) : pre_value(v);

            Instr *sel = module.newInstr();
            sel->op = Opcode::Select;
            sel->type = v->type;
            sel->operands = {f->cond, tv, ev};
            merged->instrs.push_back(sel);

            Instr *store = module.newInstr();
            store->op = Opcode::StoreVar;
            store->type = ir::Type::voidTy();
            store->var = v;
            store->operands = {sel};
            merged->instrs.push_back(store);
        }

        result.push_back(std::move(merged));
        changed = true;
    }
    region.nodes = std::move(result);
    if (changed)
        ir::simplifyRegionStructure(region);
    return changed;
}

} // namespace

bool
hoist(Module &module, size_t maxArmInstrs)
{
    std::unordered_map<Instr *, Instr *> repl;
    bool changed =
        hoistRegion(module.body, module, repl, maxArmInstrs);
    if (!repl.empty()) {
        auto resolve = [&repl](Instr *v) {
            while (v) {
                auto it = repl.find(v);
                if (it == repl.end())
                    break;
                v = it->second;
            }
            return v;
        };
        ir::forEachInstr(module.body, [&](Instr &i) {
            for (Instr *&op : i.operands)
                op = resolve(op);
        });
        ir::forEachNode(module.body, [&](ir::Node &n) {
            if (auto *f = dyn_cast<IfNode>(&n))
                f->cond = resolve(f->cond);
            else if (auto *l = dyn_cast<ir::LoopNode>(&n))
                l->condValue = resolve(l->condValue);
        });
    }
    return changed;
}

} // namespace gsopt::passes
