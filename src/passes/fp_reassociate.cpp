/**
 * @file
 * The paper's custom *unsafe floating-point reassociation* pass
 * (Section III-B). It mimics the integer reassociation pass for floats
 * and adds:
 *
 *   - additive simplification:  a+b-a -> b,  a+a+a -> 3a
 *   - factorisation:            ab + ac -> a(b+c)
 *   - constant grouping:        c1*(c2*v) -> (c1*c2)*v
 *   - scalar grouping:          f1*(f2*v) -> (f1*f2)*v  (minimises
 *     temporary vector registers when scalars suffice)
 *   - identity removal:         x*1 -> x, x+0 -> x, x-0 -> x, x/1 -> x
 *   - canonical operand ordering of commutative ops (better CSE later)
 *
 * None of this is IEEE-754 preserving, which is exactly why a conformant
 * driver JIT cannot do it and an offline tool can (the paper's point).
 */
#include <algorithm>
#include <map>

#include "ir/walk.h"
#include "passes/passes.h"
#include "passes/util.h"

namespace gsopt::passes {

using ir::Block;
using ir::dyn_cast;
using ir::Instr;
using ir::Module;
using ir::Node;
using ir::Opcode;
using ir::Type;

namespace {

struct Rewriter
{
    Module &module;
    const std::unordered_map<const Instr *, int> &uses;
    std::unordered_map<Instr *, Instr *> &repl;
    bool changed = false;

    int useCount(const Instr *i) const
    {
        auto it = uses.find(i);
        return it == uses.end() ? 0 : it->second;
    }

    // ---------------- additive chains --------------------------------
    struct Term
    {
        Instr *value = nullptr;
        int sign = 1;
    };

    /** Flatten an Add/Sub/Neg tree through single-use same-type links. */
    void flattenAdd(Instr *node, int sign, std::vector<Term> &terms,
                    bool is_root)
    {
        const bool chainable =
            (node->op == Opcode::Add || node->op == Opcode::Sub ||
             node->op == Opcode::Neg) &&
            node->type.isFloat();
        if (!chainable || (!is_root && useCount(node) != 1)) {
            terms.push_back({node, sign});
            return;
        }
        if (node->op == Opcode::Neg) {
            flattenAdd(node->operands[0], -sign, terms, false);
            return;
        }
        flattenAdd(node->operands[0], sign, terms, false);
        flattenAdd(node->operands[1],
                   node->op == Opcode::Sub ? -sign : sign, terms,
                   false);
    }

    /**
     * Rewrite an additive chain root. Returns the replacement value or
     * nullptr if nothing changed.
     */
    Instr *rewriteAddChain(Instr &root, Block &block, size_t &pos)
    {
        std::vector<Term> terms;
        flattenAdd(&root, 1, terms, true);
        if (terms.size() < 2)
            return nullptr;

        const Type ty = root.type;
        LocalBuilder lb(module, block, pos);

        // 1. Fold constants (splat-aware) into one accumulator.
        double const_acc = 0.0;
        int n_consts = 0;
        std::vector<Term> rest;
        for (const Term &t : terms) {
            auto c = splatConstValue(t.value);
            if (c && (t.value->type == ty || t.value->type.isScalar())) {
                const_acc += t.sign * *c;
                ++n_consts;
            } else {
                rest.push_back(t);
            }
        }
        const bool any_const = n_consts > 0;

        // 2. Cancel/merge identical values: net coefficient per value.
        std::vector<std::pair<Instr *, int>> coeffs; // keeps order
        for (const Term &t : rest) {
            bool merged = false;
            for (auto &[v, c] : coeffs) {
                if (v == t.value) {
                    c += t.sign;
                    merged = true;
                    break;
                }
            }
            if (!merged)
                coeffs.emplace_back(t.value, t.sign);
        }

        // 3. Factorisation: group multiply terms by a shared factor.
        //    Only single-use Mul terms with coefficient +-1 take part.
        struct MulTerm
        {
            size_t coeff_index;
            Instr *factor;
            Instr *other;
        };
        // Keyed by instruction id, NOT pointer: map iteration order
        // must be deterministic across runs or textual dedup breaks.
        std::map<int, std::vector<MulTerm>> by_factor;
        std::map<int, Instr *> factor_of_id;
        for (size_t k = 0; k < coeffs.size(); ++k) {
            Instr *v = coeffs[k].first;
            if (coeffs[k].second == 0)
                continue;
            if (v->op == Opcode::Mul && v->type == ty &&
                useCount(v) <= 1 && std::abs(coeffs[k].second) == 1) {
                for (int side = 0; side < 2; ++side) {
                    Instr *factor = v->operands[side];
                    Instr *other = v->operands[1 - side];
                    by_factor[factor->id].push_back(
                        {k, factor, other});
                    factor_of_id[factor->id] = factor;
                }
            }
        }
        // Pick the factor shared by the most terms (>= 2); ties go to
        // the lowest id (stable).
        Instr *best_factor = nullptr;
        size_t best_count = 1;
        for (auto &[factor_id, list] : by_factor) {
            // A term can appear twice under the same factor (x*x); count
            // distinct coefficient inds.
            std::vector<size_t> inds;
            for (const auto &mt : list)
                inds.push_back(mt.coeff_index);
            std::sort(inds.begin(), inds.end());
            inds.erase(std::unique(inds.begin(), inds.end()),
                       inds.end());
            if (inds.size() > best_count) {
                best_count = inds.size();
                best_factor = factor_of_id[factor_id];
            }
        }

        const bool had_cancel_or_merge = [&]() {
            for (const auto &[v, c] : coeffs) {
                if (c == 0 || c > 1 || c < -1)
                    return true;
            }
            return false;
        }();

        // Only rewrite when something actually simplifies: two or more
        // constants fold together, identical terms cancel/merge, or a
        // common factor can be pulled out. A lone constant in a 2-term
        // chain has nothing to gain and rebuild could only add ops.
        const bool worth_it = n_consts >= 2 || had_cancel_or_merge ||
                              best_factor ||
                              (any_const && const_acc == 0.0);
        if (!worth_it)
            return nullptr;

        // Build the factored group first.
        std::vector<std::pair<Instr *, int>> final_terms;
        if (best_factor) {
            std::vector<size_t> used;
            Instr *inner = nullptr;
            for (const auto &mt : by_factor[best_factor->id]) {
                if (std::find(used.begin(), used.end(),
                              mt.coeff_index) != used.end())
                    continue;
                if (coeffs[mt.coeff_index].second == 0)
                    continue;
                used.push_back(mt.coeff_index);
                Instr *other = mt.other;
                if (coeffs[mt.coeff_index].second < 0)
                    other = lb.emit(Opcode::Neg, other->type, {other});
                inner = inner ? lb.emit(Opcode::Add, ty,
                                        {inner, other})
                              : other;
                coeffs[mt.coeff_index].second = 0;
            }
            if (inner) {
                Instr *grouped =
                    lb.emit(Opcode::Mul, ty, {best_factor, inner});
                final_terms.emplace_back(grouped, 1);
            }
        }
        for (auto &[v, c] : coeffs) {
            if (c == 0)
                continue;
            if (c == 1 || c == -1) {
                final_terms.emplace_back(v, c);
            } else {
                // a+a+a -> 3*a
                Instr *k = v->type.isScalar()
                               ? lb.constFloat(std::abs(c))
                               : lb.constSplat(v->type,
                                               std::abs(c));
                Instr *m = lb.emit(Opcode::Mul, v->type, {k, v});
                final_terms.emplace_back(m, c > 0 ? 1 : -1);
            }
        }

        // Canonical order: positives first by id.
        std::stable_sort(final_terms.begin(), final_terms.end(),
                         [](const auto &a, const auto &b) {
                             if (a.second != b.second)
                                 return a.second > b.second;
                             return a.first->id < b.first->id;
                         });

        // Rebuild as (positives + positive-const) - (negatives +
        // negative-const): never a Neg+Add pair where a Sub suffices.
        auto widen = [&](Instr *val) {
            if (val->type != ty && val->type.isScalar())
                return lb.emit(Opcode::Construct, ty, {val});
            return val;
        };
        Instr *pos_acc = nullptr;
        Instr *neg_acc = nullptr;
        for (auto &[v, sign] : final_terms) {
            Instr *val = widen(v);
            Instr *&acc = sign > 0 ? pos_acc : neg_acc;
            acc = acc ? lb.emit(Opcode::Add, ty, {acc, val}) : val;
        }
        if (any_const && const_acc != 0.0) {
            Instr *c = ty.isScalar()
                           ? lb.constFloat(std::abs(const_acc))
                           : lb.constSplat(ty, std::abs(const_acc));
            Instr *&acc = const_acc > 0 ? pos_acc : neg_acc;
            acc = acc ? lb.emit(Opcode::Add, ty, {acc, c}) : c;
        }
        Instr *acc = nullptr;
        if (pos_acc && neg_acc)
            acc = lb.emit(Opcode::Sub, ty, {pos_acc, neg_acc});
        else if (pos_acc)
            acc = pos_acc;
        else if (neg_acc)
            acc = lb.emit(Opcode::Neg, ty, {neg_acc});
        else
            acc = ty.isScalar() ? lb.constFloat(0.0)
                                : lb.constSplat(ty, 0.0);
        pos = lb.position();
        return acc;
    }

    // ---------------- multiplicative chains ----------------------------
    /**
     * Flatten a float Mul tree: constants folded, scalar factors and
     * vector factors separated.
     */
    void flattenMul(Instr *node, bool is_root, double &const_acc,
                    std::vector<Instr *> &scalars,
                    std::vector<Instr *> &vectors, int &links)
    {
        if (node->op == Opcode::Mul && node->type.isFloat() &&
            (is_root || useCount(node) == 1)) {
            if (!is_root)
                ++links;
            flattenMul(node->operands[0], false, const_acc, scalars,
                       vectors, links);
            flattenMul(node->operands[1], false, const_acc, scalars,
                       vectors, links);
            return;
        }
        auto c = splatConstValue(node);
        if (c) {
            const_acc *= *c;
            return;
        }
        // A splat Construct of a non-constant scalar contributes its
        // scalar (this is the f1*(f2*v) regrouping opportunity).
        if (node->op == Opcode::Construct &&
            node->operands.size() == 1 &&
            node->operands[0]->type.isScalar() &&
            node->type.isVector() && useCount(node) <= 1) {
            scalars.push_back(node->operands[0]);
            return;
        }
        if (node->type.isScalar())
            scalars.push_back(node);
        else
            vectors.push_back(node);
    }

    Instr *rewriteMulChain(Instr &root, Block &block, size_t &pos)
    {
        double const_acc = 1.0;
        std::vector<Instr *> scalars, vectors;
        int links = 0;
        flattenMul(&root, true, const_acc, scalars, vectors, links);

        const size_t nfactors = scalars.size() + vectors.size();
        const bool had_const = const_acc != 1.0;
        // Profitable if we folded constants together, removed a *1, or
        // can regroup scalars ahead of vectors.
        bool regroupable =
            links > 0 && (had_const || scalars.size() >= 1) &&
            vectors.size() >= 1;
        bool const_mergeable = links > 0 && had_const;
        bool identity = !had_const && nfactors == 1 && links == 0 &&
                        (splatConstValue(root.operands[0]) ||
                         splatConstValue(root.operands[1]));
        if (!regroupable && !const_mergeable && !identity &&
            !(links > 0 && scalars.size() >= 2))
            return nullptr;

        const Type ty = root.type;
        LocalBuilder lb(module, block, pos);

        std::sort(scalars.begin(), scalars.end(),
                  [](const Instr *a, const Instr *b) {
                      return a->id < b->id;
                  });
        std::sort(vectors.begin(), vectors.end(),
                  [](const Instr *a, const Instr *b) {
                      return a->id < b->id;
                  });

        // Combine all scalar factors (constants folded into one).
        Instr *scalar_part = nullptr;
        for (Instr *s : scalars) {
            scalar_part = scalar_part
                              ? lb.emit(Opcode::Mul, Type::floatTy(),
                                        {scalar_part, s})
                              : s;
        }
        if (const_acc != 1.0 || (!scalar_part && vectors.empty())) {
            Instr *c = lb.constFloat(const_acc);
            scalar_part = scalar_part
                              ? lb.emit(Opcode::Mul, Type::floatTy(),
                                        {c, scalar_part})
                              : c;
        }

        Instr *acc = nullptr;
        for (Instr *v : vectors)
            acc = acc ? lb.emit(Opcode::Mul, v->type, {acc, v}) : v;

        if (acc && scalar_part) {
            Instr *splat =
                lb.emit(Opcode::Construct, acc->type, {scalar_part});
            acc = lb.emit(Opcode::Mul, acc->type, {splat, acc});
        } else if (!acc) {
            acc = scalar_part;
            if (acc && !ty.isScalar() && acc->type.isScalar())
                acc = lb.emit(Opcode::Construct, ty, {acc});
        }
        pos = lb.position();
        return acc;
    }

    // --------------------------------------------------------------
    void rewriteBlock(Block &block)
    {
        for (size_t pos = 0; pos < block.instrs.size(); ++pos) {
            Instr &i = *block.instrs[pos];
            if (repl.count(&i))
                continue;
            if (!i.type.isFloat() || i.type.isMatrix())
                continue;

            // Identity: x / 1 -> x (division is otherwise left to the
            // DivToMul flag).
            if (i.op == Opcode::Div) {
                auto c = splatConstValue(i.operands[1]);
                if (c && *c == 1.0) {
                    repl[&i] = i.operands[0];
                    changed = true;
                }
                continue;
            }

            if (i.op == Opcode::Add || i.op == Opcode::Sub) {
                // Only rewrite chain roots: if the single user is another
                // additive op, the root will handle the whole tree.
                bool is_sub_chain = false;
                if (useCount(&i) == 1) {
                    for (size_t j = pos + 1; j < block.instrs.size();
                         ++j) {
                        const Instr &later = *block.instrs[j];
                        if ((later.op == Opcode::Add ||
                             later.op == Opcode::Sub ||
                             later.op == Opcode::Neg) &&
                            later.type.isFloat()) {
                            for (const Instr *op : later.operands) {
                                if (op == &i) {
                                    is_sub_chain = true;
                                    break;
                                }
                            }
                        }
                        if (is_sub_chain)
                            break;
                    }
                }
                if (is_sub_chain)
                    continue;
                size_t p = pos;
                if (Instr *r = rewriteAddChain(i, block, p)) {
                    if (r != &i) {
                        repl[&i] = r;
                        changed = true;
                    }
                    pos = p;
                }
                continue;
            }

            if (i.op == Opcode::Mul) {
                bool is_sub_chain = false;
                if (useCount(&i) == 1) {
                    for (size_t j = pos + 1; j < block.instrs.size();
                         ++j) {
                        const Instr &later = *block.instrs[j];
                        if (later.op == Opcode::Mul &&
                            later.type.isFloat()) {
                            for (const Instr *op : later.operands) {
                                if (op == &i) {
                                    is_sub_chain = true;
                                    break;
                                }
                            }
                        }
                        if (is_sub_chain)
                            break;
                    }
                }
                if (is_sub_chain)
                    continue;
                size_t p = pos;
                if (Instr *r = rewriteMulChain(i, block, p)) {
                    if (r != &i) {
                        repl[&i] = r;
                        changed = true;
                    }
                    pos = p;
                }
                continue;
            }

            // Canonical operand order for commutative ops (CSE help).
            if ((i.op == Opcode::Min || i.op == Opcode::Max ||
                 i.op == Opcode::Dot) &&
                i.operands.size() == 2 &&
                i.operands[0]->id > i.operands[1]->id) {
                std::swap(i.operands[0], i.operands[1]);
                changed = true;
            }
        }
    }
};

void
applyRepl(Module &module, std::unordered_map<Instr *, Instr *> &repl)
{
    if (repl.empty())
        return;
    auto resolve = [&repl](Instr *v) {
        while (v) {
            auto it = repl.find(v);
            if (it == repl.end())
                break;
            v = it->second;
        }
        return v;
    };
    ir::forEachInstr(module.body, [&](Instr &i) {
        for (Instr *&op : i.operands)
            op = resolve(op);
    });
    ir::forEachNode(module.body, [&](Node &n) {
        if (auto *f = dyn_cast<ir::IfNode>(&n))
            f->cond = resolve(f->cond);
        else if (auto *l = dyn_cast<ir::LoopNode>(&n))
            l->condValue = resolve(l->condValue);
    });
}

} // namespace

bool
fpReassociate(Module &module)
{
    auto uses = countUses(module);
    std::unordered_map<Instr *, Instr *> repl;
    Rewriter rw{module, uses, repl};
    ir::forEachNode(module.body, [&](Node &n) {
        if (auto *b = dyn_cast<Block>(&n))
            rw.rewriteBlock(*b);
    });
    applyRepl(module, repl);
    return rw.changed;
}

} // namespace gsopt::passes
