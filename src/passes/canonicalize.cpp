/**
 * @file
 * The always-on canonicalisation fixpoint: constant folding, vector
 * element simplification, store->load forwarding, dead store
 * elimination, block-local CSE, trivial DCE, and structural cleanup.
 */
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "ir/walk.h"
#include "passes/passes.h"
#include "passes/util.h"

namespace gsopt::passes {

using ir::Block;
using ir::dyn_cast;
using ir::IfNode;
using ir::Instr;
using ir::LoopNode;
using ir::Module;
using ir::Node;
using ir::Opcode;
using ir::Region;
using ir::Type;
using ir::Var;
using ir::VarKind;

namespace {

/**
 * Apply a value-replacement map to all operand references in the module
 * (with chain following).
 */
void
applyReplacements(Module &module,
                  std::unordered_map<Instr *, Instr *> &repl)
{
    if (repl.empty())
        return;
    auto resolve = [&repl](Instr *v) {
        while (v) {
            auto it = repl.find(v);
            if (it == repl.end())
                break;
            v = it->second;
        }
        return v;
    };
    ir::forEachInstr(module.body, [&](Instr &i) {
        for (Instr *&op : i.operands)
            op = resolve(op);
    });
    ir::forEachNode(module.body, [&](Node &n) {
        if (auto *f = dyn_cast<IfNode>(&n))
            f->cond = resolve(f->cond);
        else if (auto *l = dyn_cast<LoopNode>(&n))
            l->condValue = resolve(l->condValue);
    });
}

// ------------------------------------------------------------------
// Constant folding + simple instruction simplification (in place).
// ------------------------------------------------------------------
bool
foldConstants(Module &module)
{
    bool changed = false;
    std::unordered_map<Instr *, Instr *> repl;

    ir::forEachInstr(module.body, [&](Instr &i) {
        if (i.op == Opcode::Const || ir::hasSideEffects(i.op))
            return;

        // Const-array element load with constant index folds to data.
        if (i.op == Opcode::LoadElem && i.var &&
            i.var->kind == VarKind::ConstArray &&
            i.operands[0]->op == Opcode::Const) {
            const int comp = i.type.componentCount();
            long idx = static_cast<long>(i.operands[0]->scalarConst());
            long count = i.var->type.arraySize;
            if (idx >= 0 && idx < count) {
                size_t off = static_cast<size_t>(idx) *
                             static_cast<size_t>(comp);
                i.op = Opcode::Const;
                i.constData.assign(
                    i.var->constInit.begin() + static_cast<long>(off),
                    i.var->constInit.begin() +
                        static_cast<long>(off + comp));
                i.operands.clear();
                i.var = nullptr;
                changed = true;
            }
            return;
        }

        // Full constant fold.
        auto folded = foldConstInstr(i);
        if (folded) {
            i.op = Opcode::Const;
            i.constData = std::move(*folded);
            i.operands.clear();
            i.indices.clear();
            i.var = nullptr;
            changed = true;
            return;
        }

        // Select with constant condition -> the chosen arm.
        if (i.op == Opcode::Select &&
            i.operands[0]->op == Opcode::Const) {
            repl[&i] = i.operands[0]->scalarConst() != 0.0
                           ? i.operands[1]
                           : i.operands[2];
            changed = true;
            return;
        }
        // Select with identical arms.
        if (i.op == Opcode::Select && i.operands[1] == i.operands[2]) {
            repl[&i] = i.operands[1];
            changed = true;
            return;
        }

        // Extract of Construct / splat / Swizzle.
        if (i.op == Opcode::Extract) {
            Instr *src = i.operands[0];
            const int want = i.indices[0];
            if (src->op == Opcode::Construct) {
                if (src->operands.size() == 1 &&
                    src->operands[0]->type.isScalar()) {
                    repl[&i] = src->operands[0]; // splat
                    changed = true;
                    return;
                }
                int at = 0;
                for (Instr *part : src->operands) {
                    int n = part->type.componentCount();
                    if (want < at + n) {
                        if (part->type.isScalar()) {
                            repl[&i] = part;
                        } else {
                            i.operands[0] = part;
                            i.indices[0] = want - at;
                        }
                        changed = true;
                        return;
                    }
                    at += n;
                }
            } else if (src->op == Opcode::Swizzle) {
                i.operands[0] = src->operands[0];
                i.indices[0] =
                    src->indices[static_cast<size_t>(want)];
                changed = true;
                return;
            } else if (src->op == Opcode::Insert) {
                if (src->indices[0] == want) {
                    repl[&i] = src->operands[1];
                } else {
                    i.operands[0] = src->operands[0];
                }
                changed = true;
                return;
            }
            return;
        }

        // Swizzle simplifications.
        if (i.op == Opcode::Swizzle) {
            Instr *src = i.operands[0];
            // Identity swizzle.
            if (i.type == src->type) {
                bool identity = true;
                for (size_t k = 0; k < i.indices.size(); ++k)
                    identity &= i.indices[k] == static_cast<int>(k);
                if (identity) {
                    repl[&i] = src;
                    changed = true;
                    return;
                }
            }
            // Swizzle of swizzle composes.
            if (src->op == Opcode::Swizzle) {
                for (int &idx : i.indices)
                    idx = src->indices[static_cast<size_t>(idx)];
                i.operands[0] = src->operands[0];
                changed = true;
                return;
            }
            // Swizzle of a splat construct is the splat (same width) or
            // a smaller splat.
            if (src->op == Opcode::Construct &&
                src->operands.size() == 1 &&
                src->operands[0]->type.isScalar()) {
                if (i.type.rows == src->type.rows) {
                    repl[&i] = src;
                } else {
                    i.op = Opcode::Construct;
                    i.operands = {src->operands[0]};
                    i.indices.clear();
                }
                changed = true;
                return;
            }
            return;
        }

        // Construct of a single full-width vector is that vector.
        if (i.op == Opcode::Construct && i.operands.size() == 1 &&
            i.operands[0]->type == i.type && !i.type.isScalar()) {
            repl[&i] = i.operands[0];
            changed = true;
            return;
        }
        // Scalar "conversion" construct of same type.
        if (i.op == Opcode::Construct && i.operands.size() == 1 &&
            i.type.isScalar() && i.operands[0]->type == i.type) {
            repl[&i] = i.operands[0];
            changed = true;
            return;
        }
    });

    applyReplacements(module, repl);
    return changed;
}

// ------------------------------------------------------------------
// Store->load forwarding with region-aware invalidation.
// ------------------------------------------------------------------
struct MemEnv
{
    /** Whole-var known values. */
    std::map<Var *, Instr *> whole;
    /** Known array elements: (var, const index) -> value. */
    std::map<std::pair<Var *, long>, Instr *> elems;

    void invalidate(Var *v)
    {
        whole.erase(v);
        for (auto it = elems.begin(); it != elems.end();) {
            if (it->first.first == v)
                it = elems.erase(it);
            else
                ++it;
        }
    }
};

/** Collect every var stored anywhere inside a region. */
void
collectStoredVars(const Region &region, std::unordered_set<Var *> &out)
{
    ir::forEachInstr(region, [&out](const Instr &i) {
        if (i.op == Opcode::StoreVar || i.op == Opcode::StoreElem)
            out.insert(i.var);
    });
}

bool
forwardRegion(Region &region, MemEnv &env,
              std::unordered_map<Instr *, Instr *> &repl)
{
    bool changed = false;
    for (auto &node : region.nodes) {
        if (auto *b = dyn_cast<Block>(node.get())) {
            for (auto &ip : b->instrs) {
                Instr &i = *ip;
                // Operands may already have replacements.
                for (Instr *&op : i.operands) {
                    auto it = repl.find(op);
                    while (it != repl.end()) {
                        op = it->second;
                        it = repl.find(op);
                    }
                }
                switch (i.op) {
                  case Opcode::LoadVar: {
                    auto it = env.whole.find(i.var);
                    if (it != env.whole.end()) {
                        repl[&i] = it->second;
                        changed = true;
                    } else if (!i.var->type.isArray() &&
                               !i.var->type.isMatrix()) {
                        // Remember the loaded value: later loads with no
                        // intervening store forward to this one.
                        env.whole[i.var] = &i;
                    }
                    break;
                  }
                  case Opcode::StoreVar:
                    env.invalidate(i.var);
                    env.whole[i.var] = i.operands[0];
                    break;
                  case Opcode::LoadElem: {
                    if (i.operands[0]->op == Opcode::Const) {
                        long idx = static_cast<long>(
                            i.operands[0]->scalarConst());
                        auto key = std::make_pair(i.var, idx);
                        auto it = env.elems.find(key);
                        if (it != env.elems.end()) {
                            repl[&i] = it->second;
                            changed = true;
                        } else {
                            env.elems[key] = &i;
                        }
                    }
                    break;
                  }
                  case Opcode::StoreElem: {
                    if (i.operands[0]->op == Opcode::Const) {
                        long idx = static_cast<long>(
                            i.operands[0]->scalarConst());
                        // Invalidate whole-var view plus this element.
                        env.whole.erase(i.var);
                        env.elems[{i.var, idx}] = i.operands[1];
                    } else {
                        env.invalidate(i.var);
                    }
                    break;
                  }
                  default:
                    break;
                }
            }
        } else if (auto *f = dyn_cast<IfNode>(node.get())) {
            if (f->cond) {
                auto it = repl.find(f->cond);
                while (it != repl.end()) {
                    f->cond = it->second;
                    it = repl.find(f->cond);
                }
            }
            MemEnv then_env = env;
            MemEnv else_env = env;
            changed |= forwardRegion(f->thenRegion, then_env, repl);
            changed |= forwardRegion(f->elseRegion, else_env, repl);
            std::unordered_set<Var *> stored;
            collectStoredVars(f->thenRegion, stored);
            collectStoredVars(f->elseRegion, stored);
            for (Var *v : stored)
                env.invalidate(v);
            // Loads cached inside branches don't survive (they are
            // conditioned); keep only the pre-if knowledge minus stores.
        } else if (auto *l = dyn_cast<LoopNode>(node.get())) {
            std::unordered_set<Var *> stored;
            collectStoredVars(l->condRegion, stored);
            collectStoredVars(l->body, stored);
            if (l->counter)
                stored.insert(l->counter);
            for (Var *v : stored)
                env.invalidate(v);
            MemEnv cond_env = env;
            changed |= forwardRegion(l->condRegion, cond_env, repl);
            if (l->condValue) {
                auto it = repl.find(l->condValue);
                while (it != repl.end()) {
                    l->condValue = it->second;
                    it = repl.find(l->condValue);
                }
            }
            MemEnv body_env = env;
            changed |= forwardRegion(l->body, body_env, repl);
            for (Var *v : stored)
                env.invalidate(v);
        }
    }
    return changed;
}

bool
storeLoadForwarding(Module &module)
{
    MemEnv env;
    std::unordered_map<Instr *, Instr *> repl;
    bool changed = forwardRegion(module.body, env, repl);
    applyReplacements(module, repl);
    return changed;
}

// ------------------------------------------------------------------
// Dead store elimination.
// ------------------------------------------------------------------
bool
deadStoreElim(Module &module)
{
    bool changed = false;

    // 1. Locals that are never loaded anywhere: all their stores die.
    std::unordered_set<Var *> loaded;
    ir::forEachInstr(module.body, [&loaded](const Instr &i) {
        if (i.op == Opcode::LoadVar || i.op == Opcode::LoadElem)
            loaded.insert(i.var);
    });
    std::unordered_set<const Instr *> dead;
    ir::forEachInstr(module.body, [&](const Instr &i) {
        if ((i.op == Opcode::StoreVar || i.op == Opcode::StoreElem) &&
            i.var->kind == VarKind::Local && !loaded.count(i.var))
            dead.insert(&i);
    });

    // 2. Same-block overwritten stores with no intervening load.
    ir::forEachNode(module.body, [&](Node &n) {
        auto *b = dyn_cast<Block>(&n);
        if (!b)
            return;
        std::map<Var *, Instr *> pending; // whole-var stores
        for (auto &ip : b->instrs) {
            Instr &i = *ip;
            switch (i.op) {
              case Opcode::StoreVar: {
                auto it = pending.find(i.var);
                if (it != pending.end())
                    dead.insert(it->second);
                pending[i.var] = &i;
                break;
              }
              case Opcode::LoadVar:
              case Opcode::LoadElem:
                pending.erase(i.var);
                break;
              case Opcode::StoreElem:
                pending.erase(i.var);
                break;
              default:
                break;
            }
        }
    });

    if (!dead.empty()) {
        ir::eraseInstrsIf(module.body, [&dead](const Instr &i) {
            return dead.count(&i) > 0;
        });
        changed = true;
    }
    return changed;
}

// ------------------------------------------------------------------
// Block-local CSE.
// ------------------------------------------------------------------
std::string
instrKey(const Instr &i)
{
    std::string key = std::to_string(static_cast<int>(i.op));
    key += "/" + i.type.str();
    for (const Instr *op : i.operands)
        key += ":" + std::to_string(op->id);
    if (i.var)
        key += "@" + std::to_string(i.var->id);
    for (int idx : i.indices)
        key += "." + std::to_string(idx);
    for (double d : i.constData)
        key += "," + std::to_string(d);
    return key;
}

/** True if the instruction can be value-numbered. */
bool
isNumerable(const Instr &i)
{
    if (ir::hasSideEffects(i.op))
        return false;
    if (i.op == Opcode::LoadVar)
        return i.var->isReadOnly();
    if (i.op == Opcode::LoadElem)
        return i.var->isReadOnly();
    // Texture fetches of the same coords are the same value.
    return true;
}

bool
localCse(Module &module)
{
    bool changed = false;
    std::unordered_map<Instr *, Instr *> repl;
    ir::forEachNode(module.body, [&](Node &n) {
        auto *b = dyn_cast<Block>(&n);
        if (!b)
            return;
        std::unordered_map<std::string, Instr *> table;
        for (auto &ip : b->instrs) {
            Instr &i = *ip;
            for (Instr *&op : i.operands) {
                auto it = repl.find(op);
                while (it != repl.end()) {
                    op = it->second;
                    it = repl.find(op);
                }
            }
            if (!isNumerable(i))
                continue;
            std::string key = instrKey(i);
            auto [it, inserted] = table.emplace(key, &i);
            if (!inserted) {
                repl[&i] = it->second;
                changed = true;
            }
        }
    });
    applyReplacements(module, repl);
    return changed;
}

// ------------------------------------------------------------------
// Trivial DCE: iteratively drop unused pure instructions.
// ------------------------------------------------------------------
bool
trivialDce(Module &module)
{
    bool changed = false;
    for (;;) {
        auto uses = countUses(module);
        std::unordered_set<const Instr *> dead;
        ir::forEachInstr(module.body, [&](const Instr &i) {
            if (!ir::hasSideEffects(i.op) && uses[&i] == 0)
                dead.insert(&i);
        });
        if (dead.empty())
            break;
        ir::eraseInstrsIf(module.body, [&dead](const Instr &i) {
            return dead.count(&i) > 0;
        });
        changed = true;
    }
    return changed;
}

// ------------------------------------------------------------------
// Structural folding: if(const) splice, dead loops, empty nodes.
// ------------------------------------------------------------------
bool
foldStructure(Region &region)
{
    bool changed = false;
    std::vector<ir::NodePtr> result;
    for (auto &node : region.nodes) {
        if (auto *f = dyn_cast<IfNode>(node.get())) {
            changed |= foldStructure(f->thenRegion);
            changed |= foldStructure(f->elseRegion);
            if (f->cond && f->cond->op == Opcode::Const) {
                Region &taken = f->cond->scalarConst() != 0.0
                                    ? f->thenRegion
                                    : f->elseRegion;
                for (auto &inner : taken.nodes)
                    result.push_back(std::move(inner));
                changed = true;
                continue;
            }
        } else if (auto *l = dyn_cast<LoopNode>(node.get())) {
            changed |= foldStructure(l->condRegion);
            changed |= foldStructure(l->body);
            if (l->canonical && l->tripCount() == 0) {
                changed = true;
                continue;
            }
            if (!l->canonical && l->condValue &&
                l->condValue->op == Opcode::Const &&
                l->condValue->scalarConst() == 0.0) {
                // while(false): the cond region still executes once.
                for (auto &inner : l->condRegion.nodes)
                    result.push_back(std::move(inner));
                changed = true;
                continue;
            }
        }
        result.push_back(std::move(node));
    }
    region.nodes = std::move(result);
    changed |= ir::simplifyRegionStructure(region);
    return changed;
}

} // namespace

bool
canonicalize(Module &module)
{
    bool any = false;
    for (int iter = 0; iter < 32; ++iter) {
        bool changed = false;
        changed |= foldConstants(module);
        changed |= storeLoadForwarding(module);
        changed |= deadStoreElim(module);
        changed |= localCse(module);
        changed |= trivialDce(module);
        changed |= foldStructure(module.body);
        if (!changed)
            break;
        any = true;
    }
    return any;
}

} // namespace gsopt::passes
