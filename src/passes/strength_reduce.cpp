/**
 * @file
 * Integer/index strength reduction: replace expensive ops with chains
 * of the cheapest ALU class, the transformation every mobile driver
 * stack performs and the paper's eight LunarGlass flags leave on the
 * table.
 *
 *  - pow(x, k) for a small constant integer k becomes a multiply chain
 *    (k = 0..4): one transcendental-unit op traded for at most two
 *    add/mul-class ops per lane. Like div_to_mul this is "unsafe" in
 *    the strict-IEEE sense (std::pow and the chain can differ in the
 *    last ulp) and is gated behind its own flag.
 *  - integer multiply by a power of two (2/4/8) becomes a doubling add
 *    chain — the IR has no shift ops (GLSL 450 shaders in the paper's
 *    corpus do not use them), so x+x is the shift-equivalent lane op.
 *  - redundant index recompute folding: integer x*c1 + x*c2 and
 *    x*c + x (the pattern constant-index arithmetic leaves behind
 *    after unrolling) refold into a single multiply.
 *
 * Rules run to a local fixpoint (a folded index multiply may itself be
 * a power of two and reduce again); replaced instructions are left for
 * the trailing canonicalisation's DCE, exactly like the built-ins.
 */
#include <cmath>
#include <unordered_map>

#include "ir/walk.h"
#include "passes/passes.h"
#include "passes/util.h"

namespace gsopt::passes {

using ir::Block;
using ir::dyn_cast;
using ir::Instr;
using ir::Module;
using ir::Node;
using ir::Opcode;

namespace {

/** Small integral exponent of a Const/splat operand, if any. */
std::optional<long>
smallIntConst(const Instr *instr, long lo, long hi)
{
    auto v = splatConstValue(instr);
    if (!v)
        return std::nullopt;
    const double d = *v;
    if (d != std::nearbyint(d))
        return std::nullopt;
    const long k = static_cast<long>(d);
    if (k < lo || k > hi)
        return std::nullopt;
    return k;
}

/** Decompose an integer-scalar value as (base, constant factor). */
std::pair<Instr *, long>
mulParts(Instr *v)
{
    if (v->op == Opcode::Mul && v->type.isInt() && v->type.isScalar()) {
        if (auto c = smallIntConst(v->operands[1], -4096, 4096))
            return {v->operands[0], *c};
        if (auto c = smallIntConst(v->operands[0], -4096, 4096))
            return {v->operands[1], *c};
    }
    return {v, 1};
}

class StrengthReducer
{
  public:
    explicit StrengthReducer(Module &module) : module_(module) {}

    bool run()
    {
        bool changed = false;
        // Each rewrite strictly shrinks the pow/int-mul work left, but
        // a folded index multiply can expose one more doubling step;
        // the cap is belt-and-braces against rule interaction cycles.
        for (int round = 0; round < 8; ++round) {
            round_changed_ = false;
            ir::forEachNode(module_.body, [&](Node &n) {
                if (auto *b = dyn_cast<Block>(&n))
                    reduceBlock(*b);
            });
            if (!round_changed_)
                break;
            changed = true;
        }
        apply();
        return changed;
    }

  private:
    Instr *resolve(Instr *v)
    {
        while (v) {
            auto it = repl_.find(v);
            if (it == repl_.end())
                break;
            v = it->second;
        }
        return v;
    }

    void reduceBlock(Block &block)
    {
        for (size_t pos = 0; pos < block.instrs.size(); ++pos) {
            Instr &i = *block.instrs[pos];
            if (repl_.count(&i))
                continue; // already rewritten; awaiting DCE
            for (Instr *&op : i.operands)
                op = resolve(op);

            if (i.op == Opcode::Pow) {
                if (auto k = smallIntConst(i.operands[1], 0, 4)) {
                    rewritePow(block, pos, i, *k);
                    continue;
                }
            }
            if (i.op == Opcode::Mul && i.type.isInt() &&
                i.type.isScalar()) {
                Instr *base = nullptr;
                long k = 0;
                if (auto c = smallIntConst(i.operands[1], 2, 8)) {
                    base = i.operands[0];
                    k = *c;
                } else if (auto c =
                               smallIntConst(i.operands[0], 2, 8)) {
                    base = i.operands[1];
                    k = *c;
                }
                if (base && (k == 2 || k == 4 || k == 8)) {
                    rewriteMulPow2(block, pos, i, base, k);
                    continue;
                }
            }
            if (i.op == Opcode::Add && i.type.isInt() &&
                i.type.isScalar()) {
                auto [a, ca] = mulParts(i.operands[0]);
                auto [b, cb] = mulParts(i.operands[1]);
                // Fold only when a real multiply participates: plain
                // x+x stays an add (it *is* the reduced form).
                if (a == b && (ca != 1 || cb != 1))
                    rewriteFactor(block, pos, i, a, ca + cb);
            }
        }
    }

    void rewritePow(Block &block, size_t &pos, Instr &i, long k)
    {
        LocalBuilder lb(module_, block, pos);
        Instr *x = i.operands[0];
        Instr *acc;
        switch (k) {
          case 0:
            acc = lb.constSplat(i.type, 1.0);
            break;
          case 1:
            acc = x;
            break;
          case 2:
            acc = lb.emit(Opcode::Mul, i.type, {x, x});
            break;
          case 3: {
            Instr *sq = lb.emit(Opcode::Mul, i.type, {x, x});
            acc = lb.emit(Opcode::Mul, i.type, {sq, x});
            break;
          }
          default: { // 4
            Instr *sq = lb.emit(Opcode::Mul, i.type, {x, x});
            acc = lb.emit(Opcode::Mul, i.type, {sq, sq});
            break;
          }
        }
        repl_[&i] = acc;
        pos = lb.position();
        round_changed_ = true;
    }

    void rewriteMulPow2(Block &block, size_t &pos, Instr &i,
                        Instr *base, long k)
    {
        LocalBuilder lb(module_, block, pos);
        Instr *acc = base;
        for (long m = 1; m < k; m *= 2)
            acc = lb.emit(Opcode::Add, i.type, {acc, acc});
        repl_[&i] = acc;
        pos = lb.position();
        round_changed_ = true;
    }

    void rewriteFactor(Block &block, size_t &pos, Instr &i,
                       Instr *base, long factor)
    {
        LocalBuilder lb(module_, block, pos);
        Instr *acc;
        if (factor == 0) {
            acc = lb.emit(Opcode::Const, i.type);
            acc->constData = {0.0};
        } else if (factor == 1) {
            acc = base;
        } else {
            Instr *c = lb.emit(Opcode::Const, i.type);
            c->constData = {static_cast<double>(factor)};
            acc = lb.emit(Opcode::Mul, i.type, {base, c});
        }
        repl_[&i] = acc;
        pos = lb.position();
        round_changed_ = true;
    }

    void apply()
    {
        if (repl_.empty())
            return;
        ir::forEachInstr(module_.body, [&](Instr &i) {
            if (repl_.count(&i))
                return; // dead original; operands stay as-is
            for (Instr *&op : i.operands)
                op = resolve(op);
        });
        ir::forEachNode(module_.body, [&](Node &n) {
            if (auto *f = dyn_cast<ir::IfNode>(&n))
                f->cond = resolve(f->cond);
            else if (auto *l = dyn_cast<ir::LoopNode>(&n))
                l->condValue = resolve(l->condValue);
        });
    }

    Module &module_;
    std::unordered_map<Instr *, Instr *> repl_;
    bool round_changed_ = false;
};

} // namespace

bool
strengthReduce(Module &module)
{
    return StrengthReducer(module).run();
}

} // namespace gsopt::passes
