/**
 * @file
 * The optimization pass set. This is the reproduction of LunarGlass's
 * toggleable pass flags (paper Section III) plus the always-on
 * canonicalisation (constant folding, local CSE, store/load forwarding,
 * trivial DCE) that LunarGlass inherits from LLVM and does not expose as
 * flags.
 *
 * Each flag pass is a standalone function Module -> changed?. The
 * `optimize` entry point applies a flag set in LunarGlass's fixed pass
 * order with canonicalisation interleaved.
 */
#ifndef GSOPT_PASSES_PASSES_H
#define GSOPT_PASSES_PASSES_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace gsopt::passes {

// -- always-on canonicalisation ----------------------------------------

/**
 * Run constant folding, extract/construct simplification, store->load
 * forwarding, dead-store elimination, block-local CSE, trivial DCE, and
 * structural simplification to a fixpoint. Returns true if anything
 * changed.
 */
bool canonicalize(ir::Module &module);

// -- the eight toggleable flags ------------------------------------------

/** Aggressive dead code elimination (never beats the trivial-DCE
 * fixpoint in practice, exactly as the paper observes for LunarGlass). */
bool adce(ir::Module &module);

/** Flatten conditionals: if-blocks of pure code + var assignments become
 * straight-line code with select instructions. The offline tool
 * flattens unconditionally; driver JITs pass an arm-size budget
 * (real drivers only if-convert small blocks). */
bool hoist(ir::Module &module,
           size_t maxArmInstrs = static_cast<size_t>(-1));

/** Fully unroll canonical constant-trip-count loops. The offline tool
 * uses generous caps; driver JITs pass their own heuristics' budgets. */
bool unroll(ir::Module &module, long maxTrips = 64,
            size_t maxUnrolledInstrs = 8192);

/** Turn chains of per-component vector inserts into single swizzled
 * construct assignments. */
bool coalesce(ir::Module &module);

/** Global value numbering across the structured dominance tree. */
bool gvn(ir::Module &module);

/** Integer reassociation (plus the float x+0 / f*0 cases LunarGlass's
 * pass handles). */
bool reassociate(ir::Module &module);

/** The paper's custom unsafe floating-point reassociation: factorisation
 * ab+ac -> a(b+c), a+b-a -> b, a+a+a -> 3a, constant/scalar grouping
 * f1(f2 v) -> (f1 f2)v, identity removal, canonical operand order. */
bool fpReassociate(ir::Module &module);

/** Replace division by a compile-time constant with multiplication by
 * its reciprocal (unsafe). */
bool divToMul(ir::Module &module);

// -- registered extras beyond the paper's eight --------------------------
// These ship in the extra-pass catalog (passes/registry.h): not part of
// the default registration, so the paper's 256-combination space — and
// every golden campaign byte — stays intact until a caller opts in.

/**
 * Loop-invariant code motion: move whole invariant expression trees
 * out of canonical constant-trip loops (trip count >= 1, so this is
 * motion, never speculation — texture fetches qualify) into a
 * preheader block. Fires exactly where `unroll` declines: over-budget
 * trip counts or body sizes.
 */
bool licm(ir::Module &module);

/** Instructions licm would hoist, without mutating (analysis only;
 * the profitability feature hook in tuner/features.cpp). */
size_t licmHoistableCount(const ir::Module &module);

/**
 * Integer/index strength reduction: pow(x, small const int) becomes a
 * multiply chain, integer multiplies by 2/4/8 become doubling add
 * chains (the IR's shift-equivalent lane ops), and integer
 * x*c1 + x*c2 / x*c + x index arithmetic refolds into one multiply.
 */
bool strengthReduce(ir::Module &module);

/**
 * Texture-fetch batching: dominance-scoped value numbering restricted
 * to the fetch class (texture ops + read-only varying/uniform/
 * const-array loads), collapsing same-sampler same-coordinate fetches
 * across block boundaries onto one fetch with lane extracts. The
 * targeted subset of GVN that pays on the mobile parts whose driver
 * JITs run no GVN of their own.
 */
bool texBatch(ir::Module &module);

/** tex_batch's fetch class: ops whose value is a pure function of
 * read-only state and their operands (texture ops + read-only loads).
 * Shared with the tuner's dupFetches feature so the profitability
 * signal and the pass agree on what a fetch is. */
bool isFetchOp(const ir::Instr &instr);

/** tex_batch's fetch identity key (op, type, operands, var, indices).
 * Two fetches with equal keys compute the same value on any path
 * where both execute. */
std::string fetchKey(const ir::Instr &instr);

// -- driver-side scheduling ----------------------------------------------

/**
 * Pressure-reducing scheduler: sink pure single-use values defined more
 * than @p minSpan instructions before their only user down to the use
 * site. Not one of the eight flags — the *driver* models run it before
 * register accounting, because every production compiler list-schedules
 * for pressure (see src/passes/schedule.cpp).
 */
bool scheduleForPressure(ir::Module &module, size_t minSpan = 48);

// -- pipeline -------------------------------------------------------------

/** Flag-bit positions of the built-in passes (the registry assigns
 * these at start-up in this historical order; tuner::FlagBit mirrors
 * the same values). */
enum BuiltinPassBit : int {
    kPassBitAdce = 0,
    kPassBitCoalesce = 1,
    kPassBitGvn = 2,
    kPassBitReassociate = 3,
    kPassBitUnroll = 4,
    kPassBitHoist = 5,
    kPassBitFpReassociate = 6,
    kPassBitDivToMul = 7,
    kBuiltinPassCount = 8,
};

/**
 * Selection of gated passes to apply. The paper's eight flags keep
 * their named bools (bit order per BuiltinPassBit); passes registered
 * beyond the built-ins live in extraMask at bit (b - 8). Use
 * test()/set()/mask() for registry-generic code.
 */
struct OptFlags
{
    bool adce = false;
    bool coalesce = false;
    bool gvn = false;
    bool reassociate = false;
    bool unroll = false;
    bool hoist = false;
    bool fpReassociate = false;
    bool divToMul = false;

    /** Registered passes beyond the built-in eight, bit (b - 8). */
    uint64_t extraMask = 0;

    /** Is registry bit @p bit selected? */
    bool test(int bit) const;
    /** Select/deselect registry bit @p bit. */
    void set(int bit, bool on = true);
    /** Full selection as a registry-bit-ordered mask. */
    uint64_t mask() const;
    /** Inverse of mask(). */
    static OptFlags fromMask(uint64_t mask);

    bool operator==(const OptFlags &o) const
    {
        return mask() == o.mask();
    }

    /** The passes LunarGlass enables by default (paper Table I text). */
    static OptFlags lunarGlassDefaults()
    {
        OptFlags f;
        f.adce = true;
        f.coalesce = true;
        f.gvn = true;
        f.reassociate = true;
        f.unroll = true;
        f.hoist = true;
        return f;
    }

    /** Every registered pass on. */
    static OptFlags all();

    /** Everything off (the LunarGlass passthrough baseline of Fig 9). */
    static OptFlags none() { return OptFlags{}; }
};

/**
 * Apply the optimizer with the given flags. Canonicalisation always
 * runs (before, between, and after the flagged passes), mirroring the
 * paper's note that folding/CSE/load-store elimination "were necessary
 * passes to canonicalize instructions".
 */
void optimize(ir::Module &module, const OptFlags &flags);

/**
 * Phase accounting for one forEachFlagCombination() walk. The caller
 * folds these into its own counters (tuner::ExploreCounters for the
 * exploration path).
 */
struct FlagTreeStats
{
    uint64_t passRuns = 0;     ///< pass applications actually executed
    uint64_t passMemoHits = 0; ///< apply edges served from the memo
    uint64_t fingerprintRuns = 0; ///< module fingerprints computed
    uint64_t fingerprintNs = 0;   ///< time spent fingerprinting
    uint64_t arenaBytes = 0; ///< IR arena bytes of all tree modules
};

/**
 * Run the flagged pipeline for every one of the 2^N flag combinations
 * of the registered passes (256 for the default built-in set) against
 * @p base, invoking @p sink with each combination's final module
 * (valid only for the duration of the call) and that module's
 * structural fingerprint.
 *
 * Because the pipeline applies passes in a fixed order, the 2^N
 * combinations form a binary prefix tree over N include/exclude
 * decisions; this walks that tree, cloning at branch points, so work
 * shared by combinations with a common pass prefix runs once (2^N - 1
 * pass applications instead of N * 2^(N-1)). Each delivered module is
 * content-identical — structure, ids, and therefore emitted text — to
 * optimize(base.clone(), flags); only object identity is NOT
 * guaranteed (memoization below can hand several combinations the
 * same module instance).
 *
 * On top of the prefix sharing, apply edges are memoized by content:
 * each (incoming-module structural fingerprint, incoming id
 * labelling, pass id) triple runs the pass (and pays its clone) only
 * once per walk, and every other edge with the same key reuses the
 * stored result module — sound because a deterministic pass given
 * content-identical input produces content-identical output. Flag
 * orders that converge to identical intermediate IR — the common
 * case: most passes fire on nothing (paper Fig 4c) — therefore
 * collapse from 2^N - 1 pass runs to one run per *distinct*
 * (module, pass) edge, which is what keeps a 10-pass exploration
 * cheaper than an unmemoized 8-pass one. The fingerprint each module
 * needs is computed exactly once, when the module is created, and
 * handed to the sink for free.
 *
 * Sink invocation order follows the tree walk, not numeric flag order.
 */
void forEachFlagCombination(
    const ir::Module &base,
    const std::function<void(const OptFlags &, const ir::Module &,
                             uint64_t fingerprint)> &sink,
    FlagTreeStats *stats = nullptr);

/** Fingerprint-free convenience overload. */
void forEachFlagCombination(
    const ir::Module &base,
    const std::function<void(const OptFlags &, const ir::Module &)>
        &sink);

struct PassPlan; // registry.h — an ordered sequence of pass bits

/**
 * The memoized apply-edge machinery behind forEachFlagCombination,
 * exposed so ordered-plan exploration shares the same cache. Every
 * module a PlanApplier creates is immutable once built and owned by
 * the applier (alive until destruction), and every apply edge is
 * content-addressed by (incoming structural fingerprint, incoming id
 * labelling, pass id) — so plans that share a prefix, or that converge
 * to identical intermediate IR through different orders, pay for each
 * distinct (module, pass) edge exactly once across the applier's whole
 * lifetime. This is what holds executed pass runs far below the
 * walked-plan count when exploring permutations.
 *
 * Node handles stay valid for the applier's lifetime. Not thread-safe;
 * one applier per exploration thread.
 */
class PlanApplier
{
  public:
    /** A module in the plan tree plus the hashes its outgoing apply
     * edges are keyed by. */
    struct Node
    {
        const ir::Module *module = nullptr;
        uint64_t fingerprint = 0; ///< ir::fingerprint (structural)
        uint64_t idHash = 0;      ///< instruction-id labelling hash
    };

    PlanApplier();
    ~PlanApplier();
    PlanApplier(const PlanApplier &) = delete;
    PlanApplier &operator=(const PlanApplier &) = delete;

    /** Clone @p base, canonicalize, verify, fingerprint — the shared
     * root every plan starts from (identical to what optimize() and
     * forEachFlagCombination() do before the first gated pass). */
    Node root(const ir::Module &base);

    /** Apply registered pass @p passBit to @p from, memoized: a
     * repeated (fingerprint, idHash, pass) edge returns the stored
     * result without running the pass. */
    Node apply(const Node &from, int passBit);

    /** Cumulative work accounting since construction (callers diff
     * before/after to attribute work to one walk). */
    const FlagTreeStats &stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Run every ordered plan in @p plans against @p base, invoking @p sink
 * with the plan, its final module (valid until the call returns), and
 * that module's structural fingerprint. The generalisation of
 * forEachFlagCombination from the flag lattice to ordered sequences:
 * a canonical plan (PassPlan::canonicalOf) delivers a module
 * bit-identical to optimize() with the same flag set, and one shared
 * PlanApplier memo serves all plans, so permutations that share a
 * prefix or converge to the same module share pass runs and
 * fingerprints. Plans are processed in the given order; invalid plans
 * abort (validate first with PassPlan::valid).
 */
void forEachPlan(
    const ir::Module &base, const std::vector<PassPlan> &plans,
    const std::function<void(const PassPlan &, const ir::Module &,
                             uint64_t fingerprint)> &sink,
    FlagTreeStats *stats = nullptr);

} // namespace gsopt::passes

#endif // GSOPT_PASSES_PASSES_H
