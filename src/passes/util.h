/**
 * @file
 * Shared machinery for optimization passes: module-wide use counts, an
 * insert-anywhere instruction factory, and the constant evaluator used by
 * folding.
 */
#ifndef GSOPT_PASSES_UTIL_H
#define GSOPT_PASSES_UTIL_H

#include <optional>
#include <unordered_map>
#include <vector>

#include "ir/ir.h"

namespace gsopt::passes {

/** Number of uses of each value (operands + structured condition refs). */
std::unordered_map<const ir::Instr *, int>
countUses(const ir::Module &module);

/**
 * Creates instructions inside an existing Block at a fixed position
 * (before the instruction passes are rewriting). Keeps SSA order valid:
 * everything emitted lands before the rewrite root.
 */
class LocalBuilder
{
  public:
    /** Insert before @p block->instrs[pos]; pos may equal size(). */
    LocalBuilder(ir::Module &module, ir::Block &block, size_t pos)
        : module_(module), block_(block), pos_(pos)
    {
    }

    ir::Instr *emit(ir::Opcode op, ir::Type type,
                    std::vector<ir::Instr *> operands = {},
                    ir::Var *var = nullptr,
                    std::vector<int> indices = {});

    ir::Instr *constFloat(double v);
    ir::Instr *constSplat(ir::Type type, double v);
    ir::Instr *constVec(ir::Type type, std::vector<double> lanes);

    /** Position after all emissions (== index of the rewrite root). */
    size_t position() const { return pos_; }

  private:
    ir::Module &module_;
    ir::Block &block_;
    size_t pos_;
};

/**
 * Evaluate an instruction whose operands are all Const, returning the
 * result lanes; nullopt if the op is not foldable.
 */
std::optional<std::vector<double>> foldConstInstr(const ir::Instr &instr);

/** True if the value is a Const (scalar or splat vector) equal to v. */
bool isConstSplatValue(const ir::Instr *instr, double v);

/**
 * If @p instr is a "scalar-like" constant — a Const scalar, a Const
 * splat vector, or a Construct splat of a Const scalar — return the
 * scalar value.
 */
std::optional<double> splatConstValue(const ir::Instr *instr);

} // namespace gsopt::passes

#endif // GSOPT_PASSES_UTIL_H
