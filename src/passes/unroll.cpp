/**
 * @file
 * Loop unrolling: canonical constant-trip-count loops are fully unrolled,
 * with each clone of the body seeing the counter as a literal constant.
 * This is LunarGlass's "simple loop unrolling for constant loop indices"
 * and is the enabling transformation of the paper's motivating example
 * (Listing 1 -> Listing 2): after unrolling, the weight table indexes
 * become constant, the weight sum folds away, and the texture offsets
 * become literals.
 */
#include "ir/walk.h"
#include "passes/passes.h"

namespace gsopt::passes {

using ir::Block;
using ir::dyn_cast;
using ir::Instr;
using ir::LoopNode;
using ir::Module;
using ir::NodePtr;
using ir::Opcode;
using ir::Region;

namespace {

/** Replace loads of the loop counter with the literal iteration value. */
void
substituteCounter(Region &region, ir::Var *counter, long value)
{
    ir::forEachInstr(region, [&](Instr &i) {
        if (i.op == Opcode::LoadVar && i.var == counter) {
            i.op = Opcode::Const;
            i.constData = {static_cast<double>(value)};
            i.var = nullptr;
        }
    });
}

bool
unrollRegion(Region &region, Module &module, long max_trips,
             size_t max_instrs)
{
    bool changed = false;
    std::vector<NodePtr> result;
    for (auto &node : region.nodes) {
        if (auto *f = dyn_cast<ir::IfNode>(node.get())) {
            changed |= unrollRegion(f->thenRegion, module, max_trips, max_instrs);
            changed |= unrollRegion(f->elseRegion, module, max_trips, max_instrs);
            result.push_back(std::move(node));
            continue;
        }
        auto *loop = dyn_cast<LoopNode>(node.get());
        if (!loop) {
            result.push_back(std::move(node));
            continue;
        }
        // Unroll inner loops first so nested constant loops flatten
        // completely.
        changed |= unrollRegion(loop->body, module, max_trips, max_instrs);

        const long trips = loop->tripCount();
        const size_t body_size = loop->body.instructionCount();
        if (!loop->canonical || trips <= 0 || trips > max_trips ||
            static_cast<size_t>(trips) * body_size > max_instrs) {
            changed |= unrollRegion(loop->condRegion, module, max_trips,
                                    max_instrs);
            result.push_back(std::move(node));
            continue;
        }

        for (long it = 0, v = loop->init; it < trips;
             ++it, v += loop->step) {
            Region clone;
            ir::ValueMap map;
            ir::cloneRegionInto(loop->body, clone, module, map);
            substituteCounter(clone, loop->counter, v);
            for (auto &inner : clone.nodes)
                result.push_back(std::move(inner));
        }
        changed = true;
    }
    region.nodes = std::move(result);
    return changed;
}

} // namespace

bool
unroll(Module &module, long maxTrips, size_t maxUnrolledInstrs)
{
    bool changed =
        unrollRegion(module.body, module, maxTrips, maxUnrolledInstrs);
    if (changed)
        ir::simplifyRegionStructure(module.body);
    return changed;
}

} // namespace gsopt::passes
