/**
 * @file
 * Integer reassociation (the LunarGlass "Reassociate" flag): flattens
 * integer add/mul chains, folds their constants, and canonically orders
 * operands. Per the paper it also handles a small set of floating-point
 * identities (x + 0, f * 0) — and indeed most of its real-world impact
 * comes from those, because integers are rare in shaders (Fig 8c).
 */
#include <algorithm>

#include "ir/walk.h"
#include "passes/passes.h"
#include "passes/util.h"

namespace gsopt::passes {

using ir::Block;
using ir::dyn_cast;
using ir::Instr;
using ir::Module;
using ir::Node;
using ir::Opcode;

namespace {

bool
reassociateBlock(Block &block, Module &module,
                 const std::unordered_map<const Instr *, int> &uses,
                 std::unordered_map<Instr *, Instr *> &repl)
{
    bool changed = false;
    for (size_t pos = 0; pos < block.instrs.size(); ++pos) {
        Instr &i = *block.instrs[pos];

        // -- float identities the LunarGlass pass handles ----------------
        if (i.type.isFloat() &&
            (i.op == Opcode::Add || i.op == Opcode::Mul)) {
            Instr *a = i.operands[0];
            Instr *b = i.operands[1];
            auto ca = splatConstValue(a);
            auto cb = splatConstValue(b);
            if (i.op == Opcode::Add) {
                if (cb && *cb == 0.0) {
                    repl[&i] = a;
                    changed = true;
                    continue;
                }
                if (ca && *ca == 0.0) {
                    repl[&i] = b;
                    changed = true;
                    continue;
                }
            } else { // Mul
                if ((cb && *cb == 0.0) || (ca && *ca == 0.0)) {
                    LocalBuilder lb(module, block, pos);
                    Instr *zero = lb.constSplat(i.type, 0.0);
                    repl[&i] = zero;
                    pos = lb.position();
                    changed = true;
                    continue;
                }
            }
        }

        if (!i.type.isInt() || !i.type.isScalar())
            continue;
        if (i.op != Opcode::Add && i.op != Opcode::Mul)
            continue;

        // Is this a chain head? (no same-op single-use parent consumes it)
        // Flatten through same-op children that are single-use.
        std::vector<Instr *> terms;
        long const_acc = i.op == Opcode::Add ? 0 : 1;
        bool saw_const = false;
        int flattened = 0;
        std::vector<Instr *> stack = {&i};
        while (!stack.empty()) {
            Instr *cur = stack.back();
            stack.pop_back();
            for (Instr *op : cur->operands) {
                auto it = uses.find(op);
                int n = it == uses.end() ? 0 : it->second;
                if (op->op == i.op && op->type == i.type && n == 1) {
                    stack.push_back(op);
                    ++flattened;
                } else if (op->op == Opcode::Const) {
                    long v = static_cast<long>(op->scalarConst());
                    const_acc =
                        i.op == Opcode::Add ? const_acc + v
                                            : const_acc * v;
                    saw_const = true;
                } else {
                    terms.push_back(op);
                }
            }
        }
        // Only rewrite if the chain was non-trivial.
        if (flattened == 0 && !saw_const)
            continue;
        if (flattened == 0 && terms.size() == 2)
            continue; // plain binary with no constant partner

        // Canonical order for CSE friendliness.
        std::sort(terms.begin(), terms.end(),
                  [](const Instr *a, const Instr *b) {
                      return a->id < b->id;
                  });

        LocalBuilder lb(module, block, pos);
        Instr *acc = nullptr;
        for (Instr *t : terms) {
            acc = acc ? lb.emit(i.op, i.type, {acc, t}) : t;
        }
        const long identity = i.op == Opcode::Add ? 0 : 1;
        if (const_acc != identity || !acc) {
            Instr *c = lb.emit(Opcode::Const, i.type);
            c->constData = {static_cast<double>(const_acc)};
            acc = acc ? lb.emit(i.op, i.type, {acc, c}) : c;
        }
        // Multiplication by zero collapses everything.
        if (i.op == Opcode::Mul && const_acc == 0) {
            Instr *c = lb.emit(Opcode::Const, i.type);
            c->constData = {0.0};
            acc = c;
        }
        repl[&i] = acc;
        pos = lb.position();
        changed = true;
    }
    return changed;
}

void
applyRepl(Module &module, std::unordered_map<Instr *, Instr *> &repl)
{
    if (repl.empty())
        return;
    auto resolve = [&repl](Instr *v) {
        while (v) {
            auto it = repl.find(v);
            if (it == repl.end())
                break;
            v = it->second;
        }
        return v;
    };
    ir::forEachInstr(module.body, [&](Instr &i) {
        for (Instr *&op : i.operands)
            op = resolve(op);
    });
    ir::forEachNode(module.body, [&](Node &n) {
        if (auto *f = dyn_cast<ir::IfNode>(&n))
            f->cond = resolve(f->cond);
        else if (auto *l = dyn_cast<ir::LoopNode>(&n))
            l->condValue = resolve(l->condValue);
    });
}

} // namespace

bool
reassociate(Module &module)
{
    auto uses = countUses(module);
    std::unordered_map<Instr *, Instr *> repl;
    bool changed = false;
    ir::forEachNode(module.body, [&](Node &n) {
        if (auto *b = dyn_cast<Block>(&n))
            changed |= reassociateBlock(*b, module, uses, repl);
    });
    applyRepl(module, repl);
    return changed;
}

} // namespace gsopt::passes
