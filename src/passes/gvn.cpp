/**
 * @file
 * Global value numbering over the structured dominance tree. The always-
 * on CSE is block-local; GVN extends value numbering across nested
 * structure (code before an if dominates both arms and everything after
 * it cannot see arm-local values, which the scope stack enforces).
 * Loads participate with a memory version per variable that bumps on
 * stores, so redundant loads across control flow collapse too.
 *
 * As in the paper (Section VI-D2), this matters only for the few
 * shaders with non-trivial control flow: straight-line redundancy is
 * already gone after local CSE.
 */
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/walk.h"
#include "passes/passes.h"
#include "passes/util.h"

namespace gsopt::passes {

using ir::Block;
using ir::dyn_cast;
using ir::IfNode;
using ir::Instr;
using ir::LoopNode;
using ir::Module;
using ir::Opcode;
using ir::Region;
using ir::Var;

namespace {

class GvnPass
{
  public:
    explicit GvnPass(Module &module) : module_(module) {}

    bool run()
    {
        scopes_.emplace_back();
        walkRegion(module_.body);

        if (repl_.empty())
            return false;
        auto resolve = [this](Instr *v) {
            while (v) {
                auto it = repl_.find(v);
                if (it == repl_.end())
                    break;
                v = it->second;
            }
            return v;
        };
        ir::forEachInstr(module_.body, [&](Instr &i) {
            for (Instr *&op : i.operands)
                op = resolve(op);
        });
        ir::forEachNode(module_.body, [&](ir::Node &n) {
            if (auto *f = dyn_cast<IfNode>(&n))
                f->cond = resolve(f->cond);
            else if (auto *l = dyn_cast<LoopNode>(&n))
                l->condValue = resolve(l->condValue);
        });
        return true;
    }

  private:
    using Scope = std::unordered_map<std::string, Instr *>;

    Instr *lookup(const std::string &key)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->find(key);
            if (f != it->end())
                return f->second;
        }
        return nullptr;
    }

    std::string keyOf(const Instr &i)
    {
        std::string key = std::to_string(static_cast<int>(i.op));
        key += "/" + i.type.str();
        for (const Instr *op : i.operands)
            key += ":" + std::to_string(op->id);
        if (i.var) {
            key += "@" + std::to_string(i.var->id);
            if (i.op == Opcode::LoadVar || i.op == Opcode::LoadElem)
                key += "v" + std::to_string(memVersion_[i.var]);
        }
        for (int idx : i.indices)
            key += "." + std::to_string(idx);
        for (double d : i.constData)
            key += "," + std::to_string(d);
        return key;
    }

    void bumpStoredVars(const Region &region)
    {
        ir::forEachInstr(region, [this](const Instr &i) {
            if (i.op == Opcode::StoreVar || i.op == Opcode::StoreElem)
                ++memVersion_[i.var];
        });
    }

    void walkRegion(Region &region)
    {
        for (auto &node : region.nodes) {
            if (auto *b = dyn_cast<Block>(node.get())) {
                for (auto &ip : b->instrs) {
                    Instr &i = *ip;
                    for (Instr *&op : i.operands) {
                        auto it = repl_.find(op);
                        while (it != repl_.end()) {
                            op = it->second;
                            it = repl_.find(op);
                        }
                    }
                    if (i.op == Opcode::StoreVar ||
                        i.op == Opcode::StoreElem) {
                        ++memVersion_[i.var];
                        continue;
                    }
                    if (ir::hasSideEffects(i.op))
                        continue;
                    std::string key = keyOf(i);
                    if (Instr *prior = lookup(key)) {
                        repl_[&i] = prior;
                    } else {
                        scopes_.back().emplace(std::move(key), &i);
                    }
                }
            } else if (auto *f = dyn_cast<IfNode>(node.get())) {
                if (f->cond) {
                    auto it = repl_.find(f->cond);
                    while (it != repl_.end()) {
                        f->cond = it->second;
                        it = repl_.find(f->cond);
                    }
                }
                auto versions = memVersion_;
                scopes_.emplace_back();
                walkRegion(f->thenRegion);
                scopes_.pop_back();
                memVersion_ = versions;
                scopes_.emplace_back();
                walkRegion(f->elseRegion);
                scopes_.pop_back();
                memVersion_ = versions;
                // After the if, any var stored in either arm has a new
                // version.
                bumpStoredVars(f->thenRegion);
                bumpStoredVars(f->elseRegion);
            } else if (auto *l = dyn_cast<LoopNode>(node.get())) {
                // Everything stored by the loop varies per iteration:
                // bump before walking so body loads don't match
                // pre-loop loads.
                bumpStoredVars(l->condRegion);
                bumpStoredVars(l->body);
                if (l->counter)
                    ++memVersion_[l->counter];
                // Cond region and body get *separate* scopes: values
                // must not be shared between them (the back end emits
                // the condition computation twice, at different points).
                scopes_.emplace_back();
                walkRegion(l->condRegion);
                if (l->condValue) {
                    auto it = repl_.find(l->condValue);
                    while (it != repl_.end()) {
                        l->condValue = it->second;
                        it = repl_.find(l->condValue);
                    }
                }
                scopes_.pop_back();
                scopes_.emplace_back();
                walkRegion(l->body);
                scopes_.pop_back();
                bumpStoredVars(l->condRegion);
                bumpStoredVars(l->body);
                if (l->counter)
                    ++memVersion_[l->counter];
            }
        }
    }

    Module &module_;
    std::vector<Scope> scopes_;
    std::map<Var *, int> memVersion_;
    std::unordered_map<Instr *, Instr *> repl_;
};

} // namespace

bool
gvn(Module &module)
{
    return GvnPass(module).run();
}

} // namespace gsopt::passes
