/**
 * @file
 * The LunarGlass-style pass pipeline, driven by the pass registry:
 * canonicalisation always runs; each registered gated pass applies in
 * registry pipeline order when its flag bit is selected. The registry
 * is the single source of truth for that order — optimize() and the
 * prefix-sharing forEachFlagCombination() both walk it, which is what
 * guarantees the tree walk reproduces the linear pipeline bit-for-bit
 * (and that newly registered passes flow through both paths with no
 * further changes).
 */
#include "ir/verifier.h"
#include "passes/passes.h"
#include "passes/registry.h"

namespace gsopt::passes {

bool
OptFlags::test(int bit) const
{
    switch (bit) {
      case kPassBitAdce: return adce;
      case kPassBitCoalesce: return coalesce;
      case kPassBitGvn: return gvn;
      case kPassBitReassociate: return reassociate;
      case kPassBitUnroll: return unroll;
      case kPassBitHoist: return hoist;
      case kPassBitFpReassociate: return fpReassociate;
      case kPassBitDivToMul: return divToMul;
      default:
        return bit >= kBuiltinPassCount && bit < 64 + kBuiltinPassCount
                   ? (extraMask >> (bit - kBuiltinPassCount)) & 1
                   : false;
    }
}

void
OptFlags::set(int bit, bool on)
{
    switch (bit) {
      case kPassBitAdce: adce = on; return;
      case kPassBitCoalesce: coalesce = on; return;
      case kPassBitGvn: gvn = on; return;
      case kPassBitReassociate: reassociate = on; return;
      case kPassBitUnroll: unroll = on; return;
      case kPassBitHoist: hoist = on; return;
      case kPassBitFpReassociate: fpReassociate = on; return;
      case kPassBitDivToMul: divToMul = on; return;
      default:
        if (bit >= kBuiltinPassCount && bit < 64 + kBuiltinPassCount) {
            const uint64_t b = 1ull << (bit - kBuiltinPassCount);
            extraMask = on ? (extraMask | b) : (extraMask & ~b);
        }
        return;
    }
}

uint64_t
OptFlags::mask() const
{
    uint64_t m = extraMask << kBuiltinPassCount;
    for (int bit = 0; bit < kBuiltinPassCount; ++bit)
        m |= static_cast<uint64_t>(test(bit)) << bit;
    return m;
}

OptFlags
OptFlags::fromMask(uint64_t mask)
{
    OptFlags f;
    for (int bit = 0; bit < kBuiltinPassCount; ++bit)
        f.set(bit, (mask >> bit) & 1);
    f.extraMask = mask >> kBuiltinPassCount;
    return f;
}

OptFlags
OptFlags::all()
{
    const size_t n = PassRegistry::instance().count();
    return fromMask(n >= 64 ? ~0ull : (1ull << n) - 1);
}

namespace {

void
walkCombinations(
    const ir::Module &module, size_t stage, const OptFlags &flags,
    const std::vector<const PassDescriptor *> &pipeline,
    const std::function<void(const OptFlags &, const ir::Module &)>
        &sink)
{
    if (stage == pipeline.size()) {
        ir::verifyOrDie(module, "after optimize pipeline");
        sink(flags, module);
        return;
    }
    // Skip branch: the module is untouched — share it, no copy.
    walkCombinations(module, stage + 1, flags, pipeline, sink);
    // Apply branch: clone, run the stage, recurse.
    auto on = module.clone();
    pipeline[stage]->apply(*on);
    OptFlags with = flags;
    with.set(pipeline[stage]->bit);
    walkCombinations(*on, stage + 1, with, pipeline, sink);
}

} // namespace

void
optimize(ir::Module &module, const OptFlags &flags)
{
    canonicalize(module);
    for (const PassDescriptor *pass :
         PassRegistry::instance().pipeline()) {
        if (flags.test(pass->bit))
            pass->apply(module);
    }
    ir::verifyOrDie(module, "after optimize pipeline");
}

void
forEachFlagCombination(
    const ir::Module &base,
    const std::function<void(const OptFlags &, const ir::Module &)>
        &sink)
{
    auto root = base.clone();
    canonicalize(*root);
    walkCombinations(*root, 0, OptFlags{},
                     PassRegistry::instance().pipeline(), sink);
}

} // namespace gsopt::passes
