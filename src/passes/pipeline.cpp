/**
 * @file
 * The LunarGlass-style pass pipeline, driven by the pass registry:
 * canonicalisation always runs; each registered gated pass applies in
 * registry pipeline order when its flag bit is selected. The registry
 * is the single source of truth for that order — optimize() and the
 * prefix-sharing forEachFlagCombination() both walk it, which is what
 * guarantees the tree walk reproduces the linear pipeline bit-for-bit
 * (and that newly registered passes flow through both paths with no
 * further changes).
 */
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ir/verifier.h"
#include "ir/walk.h"
#include "passes/passes.h"
#include "passes/registry.h"
#include "support/governor.h"
#include "support/rng.h"
#include "support/time.h"

namespace gsopt::passes {

bool
OptFlags::test(int bit) const
{
    switch (bit) {
      case kPassBitAdce: return adce;
      case kPassBitCoalesce: return coalesce;
      case kPassBitGvn: return gvn;
      case kPassBitReassociate: return reassociate;
      case kPassBitUnroll: return unroll;
      case kPassBitHoist: return hoist;
      case kPassBitFpReassociate: return fpReassociate;
      case kPassBitDivToMul: return divToMul;
      default:
        return bit >= kBuiltinPassCount && bit < 64 + kBuiltinPassCount
                   ? (extraMask >> (bit - kBuiltinPassCount)) & 1
                   : false;
    }
}

void
OptFlags::set(int bit, bool on)
{
    switch (bit) {
      case kPassBitAdce: adce = on; return;
      case kPassBitCoalesce: coalesce = on; return;
      case kPassBitGvn: gvn = on; return;
      case kPassBitReassociate: reassociate = on; return;
      case kPassBitUnroll: unroll = on; return;
      case kPassBitHoist: hoist = on; return;
      case kPassBitFpReassociate: fpReassociate = on; return;
      case kPassBitDivToMul: divToMul = on; return;
      default:
        if (bit >= kBuiltinPassCount && bit < 64 + kBuiltinPassCount) {
            const uint64_t b = 1ull << (bit - kBuiltinPassCount);
            extraMask = on ? (extraMask | b) : (extraMask & ~b);
        }
        return;
    }
}

uint64_t
OptFlags::mask() const
{
    uint64_t m = extraMask << kBuiltinPassCount;
    for (int bit = 0; bit < kBuiltinPassCount; ++bit)
        m |= static_cast<uint64_t>(test(bit)) << bit;
    return m;
}

OptFlags
OptFlags::fromMask(uint64_t mask)
{
    OptFlags f;
    for (int bit = 0; bit < kBuiltinPassCount; ++bit)
        f.set(bit, (mask >> bit) & 1);
    f.extraMask = mask >> kBuiltinPassCount;
    return f;
}

OptFlags
OptFlags::all()
{
    const size_t n = PassRegistry::instance().count();
    return fromMask(n >= 64 ? ~0ull : (1ull << n) - 1);
}

namespace {

/**
 * Hash of a module's instruction-id labelling: the id sequence in
 * structural order plus the id allocation bound. ir::fingerprint is
 * deliberately id-agnostic (it numbers values by position so printed
 * text dedups correctly), but some passes make id-sensitive decisions
 * — reassociate sorts rebuilt chains by Instr::id, fp_reassociate
 * orders commutative operands by id — and a mutating pass draws fresh
 * ids from nextId(). Memo sharing is only sound between modules that
 * agree on *both* structure and ids, so the edge key carries this
 * hash alongside the structural fingerprint. (In practice fp-equal
 * tree modules are id-equal too — they arise from no-op pass edges on
 * id-preserving clones — so this costs no hit rate.)
 */
uint64_t
idSequenceHash(const ir::Module &m)
{
    uint64_t h = 0xcbf29ce484222325ull;
    h = hashCombine(h, static_cast<uint64_t>(m.idBound()));
    ir::forEachInstr(m.body, [&h](const ir::Instr &i) {
        h = hashCombine(h, static_cast<uint64_t>(i.id));
    });
    return h;
}

/** Memo key: content-address of an apply edge in the flag tree. */
struct PassEdgeKey
{
    uint64_t moduleFp;
    uint64_t idHash;
    int passBit;

    bool operator==(const PassEdgeKey &o) const
    {
        return moduleFp == o.moduleFp && idHash == o.idHash &&
               passBit == o.passBit;
    }
};

struct PassEdgeKeyHash
{
    size_t operator()(const PassEdgeKey &k) const
    {
        return static_cast<size_t>(
            hashCombine(k.moduleFp, k.idHash) ^
            (0x9e3779b97f4a7c15ull *
             static_cast<uint64_t>(k.passBit + 1)));
    }
};

} // namespace

/**
 * Memo + ownership behind PlanApplier. Modules are immutable once
 * created (a pass mutates only the fresh clone it is handed), so the
 * memo can safely hand the same result module to every edge that
 * shares its key; downstream consumers only read it and clone from it.
 */
struct PlanApplier::Impl
{
    FlagTreeStats stats;
    std::unordered_map<PassEdgeKey, Node, PassEdgeKeyHash> memo;
    /** Owners of the tree's modules (alive for the applier's life). */
    std::vector<std::unique_ptr<ir::Module>> owned;

    uint64_t fingerprintTimed(const ir::Module &m)
    {
        const uint64_t t0 = nowNs();
        const uint64_t fp = ir::fingerprint(m);
        stats.fingerprintNs += nowNs() - t0;
        ++stats.fingerprintRuns;
        return fp;
    }
};

PlanApplier::PlanApplier() : impl_(std::make_unique<Impl>()) {}
PlanApplier::~PlanApplier() = default;

PlanApplier::Node
PlanApplier::root(const ir::Module &base)
{
    auto m = base.clone();
    canonicalize(*m);
    ir::verifyOrDie(*m, "after optimize pipeline");
    Node node{m.get(), impl_->fingerprintTimed(*m),
              idSequenceHash(*m)};
    impl_->stats.arenaBytes += m->arenaBytes();
    impl_->owned.push_back(std::move(m));
    return node;
}

PlanApplier::Node
PlanApplier::apply(const Node &from, int passBit)
{
    // The single choke point for every walked pass step — lattice
    // walks and plan walks both route through here — so one probe
    // makes a 20k-combo exploration abortable mid-tree. Memo hits are
    // walked steps too: they advance the same exploration.
    governor::charge(governor::Dim::PassSteps, 1, "passes");
    governor::checkDeadline("passes");
    // Memoized on (incoming fingerprint, incoming id labelling, pass).
    const PassEdgeKey key{from.fingerprint, from.idHash, passBit};
    auto it = impl_->memo.find(key);
    if (it == impl_->memo.end()) {
        const PassDescriptor &pass = PassRegistry::instance().pass(passBit);
        auto on = from.module->clone();
        pass.apply(*on);
        // Every module is verified right after its last mutation;
        // sharing below never re-mutates, so this covers all the
        // leaves that reuse it.
        ir::verifyOrDie(*on, "after optimize pipeline");
        ++impl_->stats.passRuns;
        const uint64_t onFp = impl_->fingerprintTimed(*on);
        impl_->stats.arenaBytes += on->arenaBytes();
        it = impl_->memo
                 .emplace(key, Node{on.get(), onFp, idSequenceHash(*on)})
                 .first;
        impl_->owned.push_back(std::move(on));
    } else {
        ++impl_->stats.passMemoHits;
    }
    return it->second;
}

const FlagTreeStats &
PlanApplier::stats() const
{
    return impl_->stats;
}

namespace {

/** The prefix-sharing binary tree walk over include/exclude decisions,
 * with the apply edges served by the shared PlanApplier memo. */
struct CombinationWalker
{
    const std::vector<const PassDescriptor *> &pipeline;
    const std::function<void(const OptFlags &, const ir::Module &,
                             uint64_t)> &sink;
    PlanApplier &applier;

    void walk(const PlanApplier::Node &node, size_t stage,
              const OptFlags &flags)
    {
        if (stage == pipeline.size()) {
            sink(flags, *node.module, node.fingerprint);
            return;
        }
        // Skip branch: the module is untouched — share it (and its
        // hashes), no copy.
        walk(node, stage + 1, flags);

        // Apply branch: memoized inside the applier.
        const PassDescriptor *pass = pipeline[stage];
        const PlanApplier::Node next = applier.apply(node, pass->bit);
        OptFlags with = flags;
        with.set(pass->bit);
        walk(next, stage + 1, with);
    }
};

} // namespace

void
optimize(ir::Module &module, const OptFlags &flags)
{
    canonicalize(module);
    for (const PassDescriptor *pass :
         PassRegistry::instance().pipeline()) {
        if (flags.test(pass->bit)) {
            governor::charge(governor::Dim::PassSteps, 1, "passes");
            governor::checkDeadline("passes");
            pass->apply(module);
        }
    }
    ir::verifyOrDie(module, "after optimize pipeline");
}

void
forEachFlagCombination(
    const ir::Module &base,
    const std::function<void(const OptFlags &, const ir::Module &,
                             uint64_t)> &sink,
    FlagTreeStats *stats)
{
    PlanApplier applier;
    const PlanApplier::Node root = applier.root(base);
    CombinationWalker walker{PassRegistry::instance().pipeline(), sink,
                             applier};
    walker.walk(root, 0, OptFlags{});
    if (stats)
        *stats = applier.stats();
}

void
forEachPlan(const ir::Module &base, const std::vector<PassPlan> &plans,
            const std::function<void(const PassPlan &,
                                     const ir::Module &, uint64_t)> &sink,
            FlagTreeStats *stats)
{
    PlanApplier applier;
    const PlanApplier::Node root = applier.root(base);
    for (const PassPlan &plan : plans) {
        std::string why;
        if (!plan.valid(&why)) {
            std::fprintf(stderr, "forEachPlan: invalid plan '%s': %s\n",
                         plan.str().c_str(), why.c_str());
            std::abort();
        }
        PlanApplier::Node node = root;
        for (int bit : plan.bits)
            node = applier.apply(node, bit);
        sink(plan, *node.module, node.fingerprint);
    }
    if (stats)
        *stats = applier.stats();
}

void
forEachFlagCombination(
    const ir::Module &base,
    const std::function<void(const OptFlags &, const ir::Module &)>
        &sink)
{
    forEachFlagCombination(
        base,
        [&sink](const OptFlags &flags, const ir::Module &module,
                uint64_t) { sink(flags, module); },
        nullptr);
}

} // namespace gsopt::passes
