/**
 * @file
 * The fixed LunarGlass-style pass pipeline: canonicalisation always runs;
 * the eight flags gate their passes in a fixed order. The stage table is
 * the single source of truth for that order — optimize() and the
 * prefix-sharing forEachFlagCombination() both walk it, which is what
 * guarantees the tree walk reproduces the linear pipeline bit-for-bit.
 */
#include "ir/verifier.h"
#include "passes/passes.h"

namespace gsopt::passes {

namespace {

struct Stage
{
    bool OptFlags::*flag;
    void (*apply)(ir::Module &);
};

/** Pipeline order (not FlagSet bit order). Each apply() includes the
 * trailing canonicalisation the linear pipeline performs. */
const Stage kStages[] = {
    {&OptFlags::unroll,
     [](ir::Module &m) {
         unroll(m);
         canonicalize(m);
     }},
    {&OptFlags::hoist,
     [](ir::Module &m) {
         hoist(m);
         canonicalize(m);
     }},
    {&OptFlags::coalesce,
     [](ir::Module &m) {
         coalesce(m);
         canonicalize(m);
     }},
    {&OptFlags::reassociate,
     [](ir::Module &m) {
         reassociate(m);
         canonicalize(m);
     }},
    {&OptFlags::fpReassociate,
     [](ir::Module &m) {
         fpReassociate(m);
         canonicalize(m);
         // A second application catches chains exposed by the first
         // (e.g. factorised groups whose inner sums now fold).
         fpReassociate(m);
         canonicalize(m);
     }},
    {&OptFlags::divToMul,
     [](ir::Module &m) {
         divToMul(m);
         canonicalize(m);
     }},
    {&OptFlags::gvn,
     [](ir::Module &m) {
         gvn(m);
         canonicalize(m);
     }},
    {&OptFlags::adce,
     [](ir::Module &m) {
         adce(m);
         canonicalize(m);
     }},
};

constexpr size_t kStageCount = sizeof(kStages) / sizeof(kStages[0]);

void
walkCombinations(
    const ir::Module &module, size_t stage, const OptFlags &flags,
    const std::function<void(const OptFlags &, const ir::Module &)>
        &sink)
{
    if (stage == kStageCount) {
        ir::verifyOrDie(module, "after optimize pipeline");
        sink(flags, module);
        return;
    }
    // Skip branch: the module is untouched — share it, no copy.
    walkCombinations(module, stage + 1, flags, sink);
    // Apply branch: clone, run the stage, recurse.
    auto on = module.clone();
    kStages[stage].apply(*on);
    OptFlags with = flags;
    with.*kStages[stage].flag = true;
    walkCombinations(*on, stage + 1, with, sink);
}

} // namespace

void
optimize(ir::Module &module, const OptFlags &flags)
{
    canonicalize(module);
    for (const Stage &stage : kStages) {
        if (flags.*stage.flag)
            stage.apply(module);
    }
    ir::verifyOrDie(module, "after optimize pipeline");
}

void
forEachFlagCombination(
    const ir::Module &base,
    const std::function<void(const OptFlags &, const ir::Module &)>
        &sink)
{
    auto root = base.clone();
    canonicalize(*root);
    walkCombinations(*root, 0, OptFlags{}, sink);
}

} // namespace gsopt::passes
