/**
 * @file
 * The fixed LunarGlass-style pass pipeline: canonicalisation always runs;
 * the eight flags gate their passes in a fixed order.
 */
#include "ir/verifier.h"
#include "passes/passes.h"

namespace gsopt::passes {

void
optimize(ir::Module &module, const OptFlags &flags)
{
    canonicalize(module);

    if (flags.unroll) {
        unroll(module);
        canonicalize(module);
    }
    if (flags.hoist) {
        hoist(module);
        canonicalize(module);
    }
    if (flags.coalesce) {
        coalesce(module);
        canonicalize(module);
    }
    if (flags.reassociate) {
        reassociate(module);
        canonicalize(module);
    }
    if (flags.fpReassociate) {
        fpReassociate(module);
        canonicalize(module);
        // A second application catches chains exposed by the first
        // (e.g. factorised groups whose inner sums now fold).
        fpReassociate(module);
        canonicalize(module);
    }
    if (flags.divToMul) {
        divToMul(module);
        canonicalize(module);
    }
    if (flags.gvn) {
        gvn(module);
        canonicalize(module);
    }
    if (flags.adce) {
        adce(module);
        canonicalize(module);
    }

    ir::verifyOrDie(module, "after optimize pipeline");
}

} // namespace gsopt::passes
