/**
 * @file
 * PassRegistry implementation plus the built-in registration of the
 * paper's eight LunarGlass flags. The stage functions here are the
 * former fixed kStages[] table: each apply() includes the trailing
 * canonicalisation the linear pipeline performs after the pass, so the
 * prefix-sharing combination tree replays exactly what optimize() does.
 */
#include "passes/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "passes/passes.h"
#include "support/rng.h"

namespace gsopt::passes {

namespace {

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

[[noreturn]] void
registryDie(const char *what)
{
    std::fprintf(stderr, "PassRegistry: %s\n", what);
    std::abort();
}

} // namespace

PassRegistry::PassRegistry()
{
    // Hard cap (see add()); reserving it keeps descriptor addresses —
    // and the c_str()s flagName() hands out — stable across add().
    passes_.reserve(63);
    // The paper's eight flags, in their historical *bit* order
    // (tuner::FlagBit). Pipeline positions encode the independent
    // historical *application* order: Unroll, Hoist, Coalesce,
    // Reassociate, FP Reassociate, Div to Mul, GVN, ADCE.
    struct Builtin
    {
        const char *id;
        const char *name;
        void (*apply)(ir::Module &);
        int position;
    };
    const Builtin builtins[] = {
        {"adce", "ADCE",
         [](ir::Module &m) {
             adce(m);
             canonicalize(m);
         },
         7},
        {"coalesce", "Coalesce",
         [](ir::Module &m) {
             coalesce(m);
             canonicalize(m);
         },
         2},
        {"gvn", "GVN",
         [](ir::Module &m) {
             gvn(m);
             canonicalize(m);
         },
         6},
        {"reassociate", "Reassociate",
         [](ir::Module &m) {
             reassociate(m);
             canonicalize(m);
         },
         3},
        {"unroll", "Unroll",
         [](ir::Module &m) {
             unroll(m);
             canonicalize(m);
         },
         0},
        {"hoist", "Hoist",
         [](ir::Module &m) {
             hoist(m);
             canonicalize(m);
         },
         1},
        {"fp_reassociate", "FP Reassociate",
         [](ir::Module &m) {
             fpReassociate(m);
             canonicalize(m);
             // A second application catches chains exposed by the
             // first (e.g. factorised groups whose inner sums fold).
             fpReassociate(m);
             canonicalize(m);
         },
         4},
        {"div_to_mul", "Div to Mul",
         [](ir::Module &m) {
             divToMul(m);
             canonicalize(m);
         },
         5},
    };
    for (const Builtin &b : builtins) {
        PassDescriptor d;
        d.id = b.id;
        d.name = b.name;
        d.apply = b.apply;
        d.bit = static_cast<int>(passes_.size());
        d.position = b.position;
        passes_.push_back(std::move(d));
    }
    rebuildPipeline();
}

PassRegistry &
PassRegistry::instance()
{
    static PassRegistry registry;
    return registry;
}

const PassDescriptor &
PassRegistry::pass(int bit) const
{
    if (bit < 0 || static_cast<size_t>(bit) >= passes_.size())
        registryDie("pass bit out of range");
    return passes_[static_cast<size_t>(bit)];
}

int
PassRegistry::bitOf(const std::string &id) const
{
    for (const PassDescriptor &d : passes_) {
        if (d.id == id)
            return d.bit;
    }
    return -1;
}

int
PassRegistry::add(std::string id, std::string name,
                  std::function<void(ir::Module &)> apply, int position)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    if (bitOf(id) >= 0)
        registryDie("duplicate pass id");
    if (passes_.size() >= 63)
        registryDie("flag space exhausted (max 63 gated passes)");
    PassDescriptor d;
    d.id = std::move(id);
    d.name = std::move(name);
    d.apply = std::move(apply);
    d.bit = static_cast<int>(passes_.size());
    d.position =
        position < 0 ? static_cast<int>(passes_.size()) : position;
    passes_.push_back(std::move(d));
    rebuildPipeline();
    return passes_.back().bit;
}

void
PassRegistry::remove(int bit)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    if (passes_.size() <= static_cast<size_t>(kBuiltinPassCount))
        registryDie("cannot remove built-in passes");
    if (bit != static_cast<int>(passes_.size()) - 1)
        registryDie("passes must be removed in LIFO order");
    passes_.pop_back();
    rebuildPipeline();
}

void
PassRegistry::rebuildPipeline()
{
    pipeline_.clear();
    pipeline_.reserve(passes_.size());
    for (const PassDescriptor &d : passes_)
        pipeline_.push_back(&d);
    std::stable_sort(pipeline_.begin(), pipeline_.end(),
                     [](const PassDescriptor *a,
                        const PassDescriptor *b) {
                         return a->position < b->position;
                     });
}

uint64_t
PassRegistry::signature() const
{
    uint64_t sig = fnv1a("pass-registry");
    sig = hashCombine(sig, passes_.size());
    for (const PassDescriptor &d : passes_) {
        sig = hashCombine(sig, fnv1a(d.id));
        sig = hashCombine(sig, static_cast<uint64_t>(d.bit));
        sig = hashCombine(sig, static_cast<uint64_t>(d.position));
    }
    return sig;
}

} // namespace gsopt::passes
