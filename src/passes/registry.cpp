/**
 * @file
 * PassRegistry implementation plus the built-in registration of the
 * paper's eight LunarGlass flags. The stage functions here are the
 * former fixed kStages[] table: each apply() includes the trailing
 * canonicalisation the linear pipeline performs after the pass, so the
 * prefix-sharing combination tree replays exactly what optimize() does.
 */
#include "passes/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "passes/passes.h"
#include "support/rng.h"
#include "support/strings.h"

namespace gsopt::passes {

namespace {

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

[[noreturn]] void
registryDie(const char *what)
{
    std::fprintf(stderr, "PassRegistry: %s\n", what);
    std::abort();
}

} // namespace

const std::vector<PassDescriptor> &
extraPassCatalog()
{
    // Stage contract: like the built-ins, each apply() carries the
    // trailing canonicalisation so the prefix-sharing combination tree
    // replays exactly what optimize() does.
    static const std::vector<PassDescriptor> catalog = [] {
        std::vector<PassDescriptor> c;
        PassDescriptor d;
        d.id = "licm";
        d.name = "LICM";
        d.apply = [](ir::Module &m) {
            licm(m);
            canonicalize(m);
        };
        c.push_back(d);
        d.id = "strength_reduce";
        d.name = "Strength Reduce";
        d.apply = [](ir::Module &m) {
            strengthReduce(m);
            canonicalize(m);
        };
        c.push_back(d);
        d.id = "tex_batch";
        d.name = "Tex Batch";
        d.apply = [](ir::Module &m) {
            texBatch(m);
            canonicalize(m);
        };
        c.push_back(d);
        return c;
    }();
    return catalog;
}

int
registerExtraPass(const std::string &id)
{
    for (const PassDescriptor &d : extraPassCatalog()) {
        if (d.id == id)
            return PassRegistry::instance().add(d.id, d.name, d.apply);
    }
    return -1;
}

ScopedExtraPasses::ScopedExtraPasses()
{
    PassRegistry &reg = PassRegistry::instance();
    for (const PassDescriptor &d : extraPassCatalog()) {
        if (reg.bitOf(d.id) < 0)
            bits_.push_back(reg.add(d.id, d.name, d.apply));
    }
}

ScopedExtraPasses::~ScopedExtraPasses()
{
    for (auto it = bits_.rbegin(); it != bits_.rend(); ++it)
        PassRegistry::instance().remove(*it);
}

PassRegistry::PassRegistry()
{
    // Hard cap (see add()); reserving it keeps descriptor addresses —
    // and the c_str()s flagName() hands out — stable across add().
    passes_.reserve(63);
    // The paper's eight flags, in their historical *bit* order
    // (tuner::FlagBit). Pipeline positions encode the independent
    // historical *application* order: Unroll, Hoist, Coalesce,
    // Reassociate, FP Reassociate, Div to Mul, GVN, ADCE.
    struct Builtin
    {
        const char *id;
        const char *name;
        void (*apply)(ir::Module &);
        int position;
    };
    const Builtin builtins[] = {
        {"adce", "ADCE",
         [](ir::Module &m) {
             adce(m);
             canonicalize(m);
         },
         7},
        {"coalesce", "Coalesce",
         [](ir::Module &m) {
             coalesce(m);
             canonicalize(m);
         },
         2},
        {"gvn", "GVN",
         [](ir::Module &m) {
             gvn(m);
             canonicalize(m);
         },
         6},
        {"reassociate", "Reassociate",
         [](ir::Module &m) {
             reassociate(m);
             canonicalize(m);
         },
         3},
        {"unroll", "Unroll",
         [](ir::Module &m) {
             unroll(m);
             canonicalize(m);
         },
         0},
        {"hoist", "Hoist",
         [](ir::Module &m) {
             hoist(m);
             canonicalize(m);
         },
         1},
        {"fp_reassociate", "FP Reassociate",
         [](ir::Module &m) {
             fpReassociate(m);
             canonicalize(m);
             // A second application catches chains exposed by the
             // first (e.g. factorised groups whose inner sums fold).
             fpReassociate(m);
             canonicalize(m);
         },
         4},
        {"div_to_mul", "Div to Mul",
         [](ir::Module &m) {
             divToMul(m);
             canonicalize(m);
         },
         5},
    };
    for (const Builtin &b : builtins) {
        PassDescriptor d;
        d.id = b.id;
        d.name = b.name;
        d.apply = b.apply;
        d.bit = static_cast<int>(passes_.size());
        d.position = b.position;
        passes_.push_back(std::move(d));
    }
    // GSOPT_EXTRA_PASSES: opt-in start-up registration of catalog
    // passes ("licm,tex_batch" or "all"). Registered inline — not via
    // add() — because this runs inside instance()'s static
    // construction. Unknown names die loudly: a typo silently running
    // the 256-combination space would invalidate whatever experiment
    // asked for the wider one.
    if (const char *env = std::getenv("GSOPT_EXTRA_PASSES")) {
        // Tokenise: comma-separated, whitespace-trimmed, empty tokens
        // (trailing commas) skipped, duplicates harmless.
        std::vector<std::string> tokens;
        for (const std::string &raw : split(env, ',')) {
            std::string tok(trim(raw));
            if (!tok.empty())
                tokens.push_back(std::move(tok));
        }
        auto in_catalog = [](const std::string &id) {
            for (const PassDescriptor &d : extraPassCatalog()) {
                if (d.id == id)
                    return true;
            }
            return false;
        };
        bool all = false;
        for (const std::string &tok : tokens) {
            if (tok == "all") {
                all = true;
            } else if (!in_catalog(tok)) {
                std::fprintf(stderr,
                             "PassRegistry: GSOPT_EXTRA_PASSES names "
                             "'%s', not in the extra-pass catalog\n",
                             tok.c_str());
                std::abort();
            }
        }
        auto wanted = [&](const std::string &id) {
            if (all)
                return true;
            for (const std::string &tok : tokens) {
                if (tok == id)
                    return true;
            }
            return false;
        };
        for (const PassDescriptor &extra : extraPassCatalog()) {
            if (!wanted(extra.id))
                continue;
            PassDescriptor d = extra;
            d.bit = static_cast<int>(passes_.size());
            d.position = static_cast<int>(passes_.size());
            passes_.push_back(std::move(d));
        }
    }
    rebuildPipeline();
}

PassRegistry &
PassRegistry::instance()
{
    static PassRegistry registry;
    return registry;
}

const PassDescriptor &
PassRegistry::pass(int bit) const
{
    if (bit < 0 || static_cast<size_t>(bit) >= passes_.size())
        registryDie("pass bit out of range");
    return passes_[static_cast<size_t>(bit)];
}

int
PassRegistry::bitOf(const std::string &id) const
{
    for (const PassDescriptor &d : passes_) {
        if (d.id == id)
            return d.bit;
    }
    return -1;
}

int
PassRegistry::add(std::string id, std::string name,
                  std::function<void(ir::Module &)> apply, int position)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    if (bitOf(id) >= 0)
        registryDie("duplicate pass id");
    if (passes_.size() >= 63)
        registryDie("flag space exhausted (max 63 gated passes)");
    PassDescriptor d;
    d.id = std::move(id);
    d.name = std::move(name);
    d.apply = std::move(apply);
    d.bit = static_cast<int>(passes_.size());
    d.position =
        position < 0 ? static_cast<int>(passes_.size()) : position;
    passes_.push_back(std::move(d));
    rebuildPipeline();
    return passes_.back().bit;
}

void
PassRegistry::remove(int bit)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    if (passes_.size() <= static_cast<size_t>(kBuiltinPassCount))
        registryDie("cannot remove built-in passes");
    if (bit != static_cast<int>(passes_.size()) - 1)
        registryDie("passes must be removed in LIFO order");
    passes_.pop_back();
    rebuildPipeline();
}

void
PassRegistry::rebuildPipeline()
{
    pipeline_.clear();
    pipeline_.reserve(passes_.size());
    for (const PassDescriptor &d : passes_)
        pipeline_.push_back(&d);
    std::stable_sort(pipeline_.begin(), pipeline_.end(),
                     [](const PassDescriptor *a,
                        const PassDescriptor *b) {
                         return a->position < b->position;
                     });
}

uint64_t
PassPlan::mask() const
{
    uint64_t m = 0;
    for (int b : bits)
        m |= 1ull << b;
    return m;
}

PassPlan
PassPlan::canonicalOf(uint64_t mask)
{
    PassPlan plan;
    for (const PassDescriptor *d : PassRegistry::instance().pipeline()) {
        if (mask & (1ull << d->bit))
            plan.bits.push_back(d->bit);
    }
    return plan;
}

bool
PassPlan::isCanonical() const
{
    return bits == canonicalOf(mask()).bits;
}

bool
PassPlan::valid(std::string *why) const
{
    const PassRegistry &reg = PassRegistry::instance();
    uint64_t seen = 0;
    for (int b : bits) {
        if (b < 0 || static_cast<size_t>(b) >= reg.count()) {
            if (why)
                *why = "pass bit " + std::to_string(b) +
                       " is not registered";
            return false;
        }
        if (seen & (1ull << b)) {
            if (why)
                *why = "pass '" + reg.pass(b).id + "' appears twice";
            return false;
        }
        seen |= 1ull << b;
    }
    return true;
}

std::string
PassPlan::str() const
{
    if (bits.empty())
        return "-";
    const PassRegistry &reg = PassRegistry::instance();
    std::string s;
    for (size_t i = 0; i < bits.size(); ++i) {
        if (i)
            s += '>';
        s += reg.pass(bits[i]).id;
    }
    return s;
}

bool
PassPlan::parse(const std::string &text, PassPlan &out)
{
    PassPlan plan;
    if (text != "-") {
        const PassRegistry &reg = PassRegistry::instance();
        for (const std::string &raw : split(text, '>')) {
            std::string id(trim(raw));
            int bit = reg.bitOf(id);
            if (bit < 0)
                return false;
            plan.bits.push_back(bit);
        }
    }
    if (!plan.valid())
        return false;
    out = std::move(plan);
    return true;
}

uint64_t
PassRegistry::signature() const
{
    uint64_t sig = fnv1a("pass-registry");
    sig = hashCombine(sig, passes_.size());
    for (const PassDescriptor &d : passes_) {
        sig = hashCombine(sig, fnv1a(d.id));
        sig = hashCombine(sig, static_cast<uint64_t>(d.bit));
        sig = hashCombine(sig, static_cast<uint64_t>(d.position));
    }
    return sig;
}

} // namespace gsopt::passes
