/**
 * @file
 * The pass registry: the single source of truth for which gated
 * (flag-toggleable) passes exist, the flag bit each one owns, and the
 * order the pipeline applies them in.
 *
 * The paper's eight LunarGlass flags are registered as built-ins at
 * start-up with their historical bit positions and pipeline order, so
 * every 256-combination semantic (bit encodings, display names,
 * variant partitions) is bit-compatible with the fixed-table code this
 * replaces. New passes register on top — `optimize()`,
 * `forEachFlagCombination()`, the tuner's `FlagSet`, exploration, the
 * search strategies, and the experiment engine all size themselves
 * from the registry, so a ninth pass needs no changes anywhere else.
 */
#ifndef GSOPT_PASSES_REGISTRY_H
#define GSOPT_PASSES_REGISTRY_H

#include <functional>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace gsopt::passes {

/** One gated pass: what it is called and what it does. */
struct PassDescriptor
{
    std::string id;   ///< stable slug used in keys, e.g. "fp_reassoc"
    std::string name; ///< display name, e.g. "FP Reassociate"

    /**
     * Apply the pass to a module. The function must include whatever
     * trailing canonicalisation the linear pipeline performs after the
     * pass (the built-ins all run passes::canonicalize), because the
     * prefix-sharing combination tree replays these stage functions
     * verbatim to stay bit-identical with optimize().
     */
    std::function<void(ir::Module &)> apply;

    /** Flag bit this pass owns (tuner::FlagSet bit position). Assigned
     * by the registry in registration order. */
    int bit = -1;

    /** Position in the pipeline application order. The pipeline order
     * is independent of the bit order (the paper's flag-bit layout
     * predates its pipeline layout). */
    int position = 0;
};

/**
 * Registry of gated passes. Reads are lock-free; registration is
 * expected at start-up or from test set-up (guarded by a mutex, but
 * must not race active explorations).
 */
class PassRegistry
{
  public:
    /** The process-wide registry, pre-loaded with the paper's eight. */
    static PassRegistry &instance();

    /** Number of registered gated passes (N of the N-bit flag space). */
    size_t count() const { return passes_.size(); }

    /** 2^count(): the size of the flag-combination space. */
    uint64_t comboCount() const { return 1ull << passes_.size(); }

    /** Descriptor owning @p bit. Aborts on out-of-range bits. */
    const PassDescriptor &pass(int bit) const;

    /** Bit owned by pass @p id, or -1 if no such pass. */
    int bitOf(const std::string &id) const;

    /** Descriptors in pipeline application order. */
    const std::vector<const PassDescriptor *> &pipeline() const
    {
        return pipeline_;
    }

    /**
     * Register a gated pass and return its assigned bit. @p position
     * orders it within the pipeline (built-ins occupy 0..7); passes
     * registered with equal positions apply in registration order;
     * omit it to append at the end of the pipeline.
     */
    int add(std::string id, std::string name,
            std::function<void(ir::Module &)> apply, int position = -1);

    /** Remove the most recently added pass (stack discipline: bits are
     * dense, so only the top of the stack can be retired). Aborts if
     * @p bit is not the highest live bit. */
    void remove(int bit);

    /**
     * Fingerprint of the registered pass set (ids, bit order, pipeline
     * order). Campaign cache keys include it so registering a pass
     * invalidates cached results.
     */
    uint64_t signature() const;

  private:
    PassRegistry();
    void rebuildPipeline();

    std::vector<PassDescriptor> passes_; ///< indexed by bit
    std::vector<const PassDescriptor *> pipeline_;
};

/**
 * An ordered sequence of registered pass ids — the unit of
 * phase-ordering exploration. A flag subset is the canonical-order
 * special case: `PassPlan::canonicalOf(mask)` lists the selected
 * passes in registry pipeline order, and applying that plan is
 * bit-identical to `optimize()` with the same flags. Non-canonical
 * plans open the ordering dimension the flag lattice cannot express
 * (e.g. licm *before* unroll can shrink a loop body under unroll's
 * budget, unlocking a full unroll no flag subset reaches).
 *
 * Stable string form (shard annotations, logs, dedup keys): pass ids
 * joined by '>' in application order — "unroll>licm>gvn"; the empty
 * plan prints as "-". parse() inverts str() against the live registry.
 */
struct PassPlan
{
    /** Registry flag bits in application order. No duplicates. */
    std::vector<int> bits;

    PassPlan() = default;
    explicit PassPlan(std::vector<int> b) : bits(std::move(b)) {}

    size_t length() const { return bits.size(); }
    bool empty() const { return bits.empty(); }

    /** Selection mask of the member passes (order erased). */
    uint64_t mask() const;

    /** The canonical plan of @p mask: selected passes in registry
     * pipeline order. Applying it reproduces optimize() with the same
     * flags bit-for-bit. */
    static PassPlan canonicalOf(uint64_t mask);

    /** Is this exactly the canonical (pipeline-order) plan of its own
     * mask? Canonical plans are flag subsets; only non-canonical ones
     * carry ordering information. */
    bool isCanonical() const;

    /** Every bit registered and no bit repeated? On failure @p why
     * (when non-null) names the offending bit. */
    bool valid(std::string *why = nullptr) const;

    /** Stable spelling: ids joined by '>' ("unroll>licm"); "-" when
     * empty. */
    std::string str() const;

    /** Inverse of str() against the live registry. Returns false —
     * leaving @p out untouched — on unknown ids, duplicates, or
     * malformed input. */
    static bool parse(const std::string &text, PassPlan &out);

    bool operator==(const PassPlan &o) const { return bits == o.bits; }
    bool operator!=(const PassPlan &o) const { return bits != o.bits; }
};

/**
 * The catalog of shippable passes beyond the built-in eight: licm,
 * strength_reduce, tex_batch (ISSUE 5 / ROADMAP "New registered
 * passes"). Catalogued, not registered — the default space stays the
 * paper's 256 combinations and every golden campaign byte holds.
 * Register them with ScopedExtraPasses (tests, benches), by id via
 * registerExtraPass (applications), or process-wide with the
 * GSOPT_EXTRA_PASSES environment variable ("licm,tex_batch" or "all"),
 * which the registry reads once at start-up — the knob the CI
 * examples-smoke job uses to run the shipped examples in a widened
 * space without code changes.
 */
const std::vector<PassDescriptor> &extraPassCatalog();

/** Register catalog pass @p id (appended to the pipeline, stage
 * contract included). Returns its bit, or -1 if @p id is not in the
 * catalog. Aborts on duplicate registration like PassRegistry::add. */
int registerExtraPass(const std::string &id);

/**
 * RAII registration for tests and experiments: registers a pass on
 * construction, retires it on destruction. Nest in LIFO order.
 */
class ScopedPass
{
  public:
    ScopedPass(std::string id, std::string name,
               std::function<void(ir::Module &)> apply,
               int position = -1)
        : bit_(PassRegistry::instance().add(
              std::move(id), std::move(name), std::move(apply),
              position))
    {
    }
    ~ScopedPass() { PassRegistry::instance().remove(bit_); }
    ScopedPass(const ScopedPass &) = delete;
    ScopedPass &operator=(const ScopedPass &) = delete;

    int bit() const { return bit_; }

  private:
    int bit_;
};

/**
 * RAII registration of every catalog pass not already registered (the
 * GSOPT_EXTRA_PASSES env knob may have claimed some at start-up);
 * removes its own registrations in LIFO order on destruction. The
 * one-liner that takes a test or bench from the paper's 8-pass space
 * to the full 11-pass space.
 */
class ScopedExtraPasses
{
  public:
    ScopedExtraPasses();
    ~ScopedExtraPasses();
    ScopedExtraPasses(const ScopedExtraPasses &) = delete;
    ScopedExtraPasses &operator=(const ScopedExtraPasses &) = delete;

    /** Bits this scope registered (catalog passes already present at
     * construction are not re-registered and not listed). */
    const std::vector<int> &bits() const { return bits_; }

  private:
    std::vector<int> bits_;
};

} // namespace gsopt::passes

#endif // GSOPT_PASSES_REGISTRY_H
