/**
 * @file
 * Aggressive dead code elimination: liveness is seeded only from
 * observable effects (stores that can reach an output, discard) and
 * propagated backwards through operands and control dependences.
 *
 * As the paper reports for LunarGlass (Section VI-D1), this pass "in
 * practise never changes the source output": the always-on trivial-DCE /
 * dead-store fixpoint already removes everything ADCE could. The pass is
 * implemented faithfully anyway — the experiment harness verifies the
 * no-op observation rather than assuming it.
 */
#include <unordered_set>

#include "ir/walk.h"
#include "passes/passes.h"

namespace gsopt::passes {

using ir::dyn_cast;
using ir::Instr;
using ir::Module;
using ir::Opcode;
using ir::Region;
using ir::Var;

namespace {

struct Liveness
{
    std::unordered_set<const Instr *> live;
    std::unordered_set<const Var *> loaded;
    bool changed = true;

    void markLive(const Instr *i)
    {
        if (!i || live.count(i))
            return;
        live.insert(i);
        changed = true;
        for (const Instr *op : i->operands)
            markLive(op);
        if (i->op == Opcode::LoadVar || i->op == Opcode::LoadElem)
            loaded.insert(i->var);
    }
};

/** One liveness propagation sweep; returns whether the region holds any
 * live instruction (for control-dependence marking). */
bool
sweep(const Region &region, Liveness &lv)
{
    bool any_live = false;
    for (const auto &node : region.nodes) {
        if (const auto *b = dyn_cast<ir::Block>(node.get())) {
            for (const auto &i : b->instrs) {
                if (lv.live.count(i)) {
                    any_live = true;
                    continue;
                }
                const bool is_root =
                    i->op == Opcode::Discard ||
                    ((i->op == Opcode::StoreVar ||
                      i->op == Opcode::StoreElem) &&
                     (i->var->kind == ir::VarKind::Output ||
                      lv.loaded.count(i->var)));
                if (is_root) {
                    lv.markLive(i);
                    any_live = true;
                }
            }
        } else if (const auto *f = dyn_cast<ir::IfNode>(node.get())) {
            bool arm_live = sweep(f->thenRegion, lv);
            arm_live |= sweep(f->elseRegion, lv);
            if (arm_live)
                lv.markLive(f->cond);
            any_live |= arm_live;
        } else if (const auto *l = dyn_cast<ir::LoopNode>(node.get())) {
            bool body_live = sweep(l->body, lv);
            body_live |= sweep(l->condRegion, lv);
            if (body_live && l->condValue)
                lv.markLive(l->condValue);
            any_live |= body_live;
        }
    }
    return any_live;
}

} // namespace

bool
adce(Module &module)
{
    Liveness lv;
    while (lv.changed) {
        lv.changed = false;
        sweep(module.body, lv);
    }
    size_t before = module.instructionCount();
    ir::eraseInstrsIf(module.body, [&lv](const Instr &i) {
        return !lv.live.count(&i);
    });
    bool changed = module.instructionCount() != before;
    if (changed)
        ir::simplifyRegionStructure(module.body);
    return changed;
}

} // namespace gsopt::passes
