/**
 * @file
 * Loop-invariant code motion. Generalizes what the paper's pipeline can
 * only get indirectly (unroll + CSE collapsing per-iteration
 * recomputations): whole invariant expression *trees* in the top-level
 * straight-line blocks of a canonical constant-trip loop body move to a
 * preheader block in front of the loop — including loops `unroll`
 * declines (trip count or body size over budget), which is where the
 * pass earns its keep, because there the recomputation really runs
 * every iteration on every device.
 *
 * Safety argument: a canonical loop with tripCount() >= 1 executes its
 * body top level at least once, so moving a *pure* instruction to the
 * preheader never executes anything the original program would not
 * have executed — this is motion, not speculation (which is why
 * texture fetches qualify here but not in `hoist`, whose if-arms may
 * never run). Loads qualify when nothing inside the loop stores their
 * variable; instructions nested in ifs or inner loops never move
 * (conditional execution).
 */
#include <unordered_map>
#include <unordered_set>

#include "ir/walk.h"
#include "passes/passes.h"

namespace gsopt::passes {

using ir::Block;
using ir::dyn_cast;
using ir::IfNode;
using ir::Instr;
using ir::LoopNode;
using ir::Module;
using ir::NodePtr;
using ir::Opcode;
using ir::Region;
using ir::Var;

namespace {

/** Vars written anywhere inside the loop (body + cond region), plus
 * the counter: loads of any of these vary per iteration. */
std::unordered_set<const Var *>
variantVars(const LoopNode &loop)
{
    std::unordered_set<const Var *> stored;
    auto collect = [&stored](const Region &r) {
        ir::forEachInstr(r, [&stored](const Instr &i) {
            if (i.op == Opcode::StoreVar || i.op == Opcode::StoreElem)
                stored.insert(i.var);
        });
    };
    collect(loop.body);
    collect(loop.condRegion);
    if (loop.counter)
        stored.insert(loop.counter);
    return stored;
}

/**
 * The instructions licm would move out of @p loop, in structural
 * order. An instruction is invariant when it is pure, its loads (if
 * any) reference variables the loop never stores, and every operand is
 * either itself invariant or defined before the loop. Only the body's
 * top-level blocks participate: the SSA visibility rule means their
 * operands can only be top-level body values (tracked in @p status) or
 * pre-loop values (absent from it).
 */
std::vector<const Instr *>
invariantInstrs(const LoopNode &loop)
{
    const std::unordered_set<const Var *> stored = variantVars(loop);
    std::unordered_map<const Instr *, bool> status;
    std::vector<const Instr *> hoistable;
    for (const auto &node : loop.body.nodes) {
        const auto *b = dyn_cast<Block>(node.get());
        if (!b)
            continue;
        for (const Instr *i : b->instrs) {
            bool inv = !ir::hasSideEffects(i->op);
            if ((i->op == Opcode::LoadVar ||
                 i->op == Opcode::LoadElem) &&
                stored.count(i->var))
                inv = false;
            if (inv) {
                for (const Instr *op : i->operands) {
                    auto it = status.find(op);
                    if (it != status.end() && !it->second) {
                        inv = false;
                        break;
                    }
                }
            }
            status.emplace(i, inv);
            if (inv)
                hoistable.push_back(i);
        }
    }
    // A loop whose only invariants are constants has nothing worth
    // moving: the printer renders constants inline, so "hoisting" them
    // is pure churn. (When real computation moves, its constant
    // operands must move too for SSA order, so the all-or-nothing test
    // is on the whole list.)
    bool non_trivial = false;
    for (const Instr *i : hoistable)
        non_trivial |= i->op != Opcode::Const;
    if (!non_trivial)
        hoistable.clear();
    return hoistable;
}

bool
licmRegion(Region &region, Module &module)
{
    bool changed = false;
    std::vector<NodePtr> result;
    for (auto &node : region.nodes) {
        if (auto *f = dyn_cast<IfNode>(node.get())) {
            changed |= licmRegion(f->thenRegion, module);
            changed |= licmRegion(f->elseRegion, module);
            result.push_back(std::move(node));
            continue;
        }
        auto *loop = dyn_cast<LoopNode>(node.get());
        if (!loop) {
            result.push_back(std::move(node));
            continue;
        }
        // Inner loops first: their preheaders land in this loop's body
        // as ordinary top-level blocks, so fully invariant trees bubble
        // all the way out of a nest.
        changed |= licmRegion(loop->body, module);
        changed |= licmRegion(loop->condRegion, module);

        // Motion (not speculation) needs a guaranteed first iteration.
        if (!loop->canonical || loop->tripCount() < 1) {
            result.push_back(std::move(node));
            continue;
        }
        const std::vector<const Instr *> hoistable =
            invariantInstrs(*loop);
        if (hoistable.empty()) {
            result.push_back(std::move(node));
            continue;
        }

        std::unordered_set<const Instr *> moving(hoistable.begin(),
                                                 hoistable.end());
        auto preheader = std::make_unique<Block>();
        for (const Instr *i : hoistable)
            preheader->instrs.push_back(const_cast<Instr *>(i));
        for (auto &inner : loop->body.nodes) {
            if (auto *b = dyn_cast<Block>(inner.get())) {
                std::vector<Instr *> kept;
                kept.reserve(b->instrs.size());
                for (Instr *i : b->instrs) {
                    if (!moving.count(i))
                        kept.push_back(i);
                }
                b->instrs = std::move(kept);
            }
        }
        // Preheader values stay visible inside the loop body (values
        // defined before a loop are in scope throughout it), so the
        // remaining body uses need no rewriting.
        result.push_back(std::move(preheader));
        result.push_back(std::move(node));
        changed = true;
    }
    region.nodes = std::move(result);
    return changed;
}

} // namespace

bool
licm(Module &module)
{
    bool changed = licmRegion(module.body, module);
    if (changed)
        ir::simplifyRegionStructure(module.body);
    return changed;
}

size_t
licmHoistableCount(const ir::Module &module)
{
    size_t count = 0;
    // Counts per-loop at the current nesting only: the mutating pass
    // would migrate inner-loop invariants outward and re-qualify them,
    // but as a profitability *feature* the first-level count is the
    // signal that matters (nonzero == the pass has work).
    std::function<void(const Region &)> walk =
        [&](const Region &region) {
            for (const auto &node : region.nodes) {
                if (const auto *f = dyn_cast<IfNode>(node.get())) {
                    walk(f->thenRegion);
                    walk(f->elseRegion);
                } else if (const auto *l =
                               dyn_cast<LoopNode>(node.get())) {
                    walk(l->body);
                    walk(l->condRegion);
                    if (l->canonical && l->tripCount() >= 1)
                        count += invariantInstrs(*l).size();
                }
            }
        };
    walk(module.body);
    return count;
}

} // namespace gsopt::passes
