/**
 * @file
 * Constant-division-to-multiplication (the paper's second custom unsafe
 * pass): `x / C` with a compile-time constant divisor becomes
 * `x * (1/C)`, with the reciprocal computed at compile time. Applies to
 * more than half of all shaders (Fig 8b) because dividing by constants
 * (normalisation factors, weight totals) is ubiquitous in shading code.
 */
#include "ir/walk.h"
#include "passes/passes.h"
#include "passes/util.h"

namespace gsopt::passes {

using ir::Block;
using ir::dyn_cast;
using ir::Instr;
using ir::Module;
using ir::Node;
using ir::Opcode;

bool
divToMul(Module &module)
{
    bool changed = false;
    ir::forEachNode(module.body, [&](Node &n) {
        auto *b = dyn_cast<Block>(&n);
        if (!b)
            return;
        for (size_t pos = 0; pos < b->instrs.size(); ++pos) {
            Instr &i = *b->instrs[pos];
            if (i.op != Opcode::Div || !i.type.isFloat())
                continue;
            Instr *divisor = i.operands[1];

            // Whole-vector constant divisor (not necessarily splat).
            if (divisor->op == Opcode::Const) {
                bool nonzero = true;
                for (double d : divisor->constData)
                    nonzero &= d != 0.0;
                if (!nonzero)
                    continue;
                LocalBuilder lb(module, *b, pos);
                std::vector<double> recip = divisor->constData;
                for (double &d : recip)
                    d = 1.0 / d;
                Instr *c = lb.constVec(divisor->type, std::move(recip));
                i.op = Opcode::Mul;
                i.operands[1] = c;
                pos = lb.position();
                changed = true;
                continue;
            }
            // Splat of a constant scalar (Construct(const)).
            auto c = splatConstValue(divisor);
            if (c && *c != 0.0) {
                LocalBuilder lb(module, *b, pos);
                Instr *scalar = lb.constFloat(1.0 / *c);
                Instr *recip =
                    divisor->type.isScalar()
                        ? scalar
                        : lb.emit(Opcode::Construct, divisor->type,
                                  {scalar});
                i.op = Opcode::Mul;
                i.operands[1] = recip;
                pos = lb.position();
                changed = true;
            }
        }
    });
    return changed;
}

} // namespace gsopt::passes
