/**
 * @file
 * Texture-fetch batching: fetches of the same sampler at the same
 * coordinates — and read-only varying/uniform/const-array loads —
 * collapse onto the first fetch on a dominating path, leaving one
 * fetch whose consumers extract the lanes they need.
 *
 * The always-on canonicalisation already does this *within* a block;
 * full GVN does it across blocks but drags every other op class along
 * and is a flag the mobile drivers in the paper's device set do not
 * run. tex_batch is the targeted middle ground: dominance-scoped value
 * numbering over the fetch class only — the memory-bandwidth win that
 * matters on the tile-based mobile parts (ARM, Qualcomm), whose JIT
 * models run no GVN of their own.
 *
 * Every participating op is read-only (samplers, inputs, uniforms,
 * const arrays), so unlike GVN no memory versioning is needed; the
 * scope stack alone enforces dominance (an if-arm fetch never serves
 * the other arm or the code after the join, and loop cond-region
 * values never serve the body, mirroring the GVN/back-end contract).
 */
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/walk.h"
#include "passes/passes.h"

namespace gsopt::passes {

using ir::Block;
using ir::dyn_cast;
using ir::IfNode;
using ir::Instr;
using ir::LoopNode;
using ir::Module;
using ir::Opcode;
using ir::Region;

bool
isFetchOp(const Instr &i)
{
    switch (i.op) {
      case Opcode::Texture:
      case Opcode::TextureBias:
      case Opcode::TextureLod:
        return true;
      case Opcode::LoadVar:
      case Opcode::LoadElem:
        return i.var && i.var->isReadOnly();
      default:
        return false;
    }
}

std::string
fetchKey(const Instr &i)
{
    std::string key = std::to_string(static_cast<int>(i.op));
    key += "/" + i.type.str();
    for (const Instr *op : i.operands)
        key += ":" + std::to_string(op->id);
    if (i.var)
        key += "@" + std::to_string(i.var->id);
    for (int idx : i.indices)
        key += "." + std::to_string(idx);
    return key;
}

namespace {

class TexBatcher
{
  public:
    explicit TexBatcher(Module &module) : module_(module) {}

    bool run()
    {
        scopes_.emplace_back();
        walkRegion(module_.body);
        if (repl_.empty())
            return false;
        ir::forEachInstr(module_.body, [&](Instr &i) {
            for (Instr *&op : i.operands)
                op = resolve(op);
        });
        ir::forEachNode(module_.body, [&](ir::Node &n) {
            if (auto *f = dyn_cast<IfNode>(&n))
                f->cond = resolve(f->cond);
            else if (auto *l = dyn_cast<LoopNode>(&n))
                l->condValue = resolve(l->condValue);
        });
        return true;
    }

  private:
    using Scope = std::unordered_map<std::string, Instr *>;

    Instr *resolve(Instr *v)
    {
        while (v) {
            auto it = repl_.find(v);
            if (it == repl_.end())
                break;
            v = it->second;
        }
        return v;
    }

    Instr *lookup(const std::string &key)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->find(key);
            if (f != it->end())
                return f->second;
        }
        return nullptr;
    }

    void walkRegion(Region &region)
    {
        for (auto &node : region.nodes) {
            if (auto *b = dyn_cast<Block>(node.get())) {
                for (auto &ip : b->instrs) {
                    Instr &i = *ip;
                    for (Instr *&op : i.operands)
                        op = resolve(op);
                    if (!isFetchOp(i))
                        continue;
                    std::string key = fetchKey(i);
                    if (Instr *prior = lookup(key))
                        repl_[&i] = prior;
                    else
                        scopes_.back().emplace(std::move(key), &i);
                }
            } else if (auto *f = dyn_cast<IfNode>(node.get())) {
                f->cond = resolve(f->cond);
                scopes_.emplace_back();
                walkRegion(f->thenRegion);
                scopes_.pop_back();
                scopes_.emplace_back();
                walkRegion(f->elseRegion);
                scopes_.pop_back();
            } else if (auto *l = dyn_cast<LoopNode>(node.get())) {
                // Cond region and body get separate scopes (the back
                // end re-emits the condition at a different program
                // point); pre-loop fetches stay visible to both, which
                // is what lifts a loop-constant fetch to one issue.
                scopes_.emplace_back();
                walkRegion(l->condRegion);
                l->condValue = resolve(l->condValue);
                scopes_.pop_back();
                scopes_.emplace_back();
                walkRegion(l->body);
                scopes_.pop_back();
            }
        }
    }

    Module &module_;
    std::vector<Scope> scopes_;
    std::unordered_map<Instr *, Instr *> repl_;
};

} // namespace

bool
texBatch(Module &module)
{
    return TexBatcher(module).run();
}

} // namespace gsopt::passes
