/**
 * @file
 * Coalesce: rewrite chains of single-component vector inserts into one
 * swizzled vector construction, and constructs whose components are all
 * extracts of one source vector into a single swizzle. This is the
 * LunarGlass "Coalesce inserts/extracts into multiInserts/swizzles"
 * pass; it applies to almost every shader (Fig 8a) because lowering
 * turns per-component writes (`v.x = ...`) into insert chains.
 */
#include <unordered_map>

#include "ir/walk.h"
#include "passes/passes.h"
#include "passes/util.h"

namespace gsopt::passes {

using ir::Block;
using ir::dyn_cast;
using ir::Instr;
using ir::Module;
using ir::Node;
using ir::Opcode;

namespace {

bool
coalesceBlock(Block &block, Module &module,
              const std::unordered_map<const Instr *, int> &uses,
              std::unordered_map<Instr *, Instr *> &repl)
{
    bool changed = false;
    for (size_t pos = 0; pos < block.instrs.size(); ++pos) {
        Instr &i = *block.instrs[pos];

        // ---- Insert chains -> Construct --------------------------------
        if (i.op == Opcode::Insert) {
            // Dead inserts (mid-chain leftovers from an earlier sweep)
            // are cleanup work for DCE, not chain heads.
            {
                auto it = uses.find(&i);
                if (it == uses.end() || it->second == 0)
                    continue;
            }
            // Only rewrite chain heads: an insert whose result is not
            // consumed by another single-use insert in this block.
            bool is_head = true;
            if (pos + 1 < block.instrs.size()) {
                // Heuristic scan: if any later insert in this block uses
                // i as its vector operand and i has exactly one use, i
                // is mid-chain.
                auto it = uses.find(&i);
                int use_count = it == uses.end() ? 0 : it->second;
                if (use_count == 1) {
                    for (size_t j = pos + 1; j < block.instrs.size();
                         ++j) {
                        const Instr &later = *block.instrs[j];
                        if (later.op == Opcode::Insert &&
                            later.operands[0] == &i) {
                            is_head = false;
                            break;
                        }
                    }
                }
            }
            if (!is_head)
                continue;

            // Walk down the chain collecting lane values (outermost
            // insert wins its lane).
            const int rows = i.type.rows;
            std::vector<Instr *> lanes(static_cast<size_t>(rows),
                                       nullptr);
            Instr *cursor = &i;
            int chain_len = 0;
            while (cursor && cursor->op == Opcode::Insert) {
                int lane = cursor->indices[0];
                if (!lanes[static_cast<size_t>(lane)])
                    lanes[static_cast<size_t>(lane)] =
                        cursor->operands[1];
                ++chain_len;
                Instr *base = cursor->operands[0];
                // Only follow through single-use inserts.
                auto it = uses.find(base);
                if (base->op == Opcode::Insert && it != uses.end() &&
                    it->second == 1) {
                    cursor = base;
                } else {
                    cursor = base;
                    break;
                }
            }
            if (chain_len < 2)
                continue;
            // Fill uncovered lanes from the chain's base vector.
            Instr *base = cursor;
            LocalBuilder lb(module, block, pos);
            for (int lane = 0; lane < rows; ++lane) {
                if (!lanes[static_cast<size_t>(lane)]) {
                    lanes[static_cast<size_t>(lane)] = lb.emit(
                        Opcode::Extract, i.type.scalarType(), {base},
                        nullptr, {lane});
                }
            }
            // Rewrite the head insert in place as a Construct.
            i.op = Opcode::Construct;
            i.operands = lanes;
            i.indices.clear();
            pos = lb.position(); // skip the extracts we just emitted
            changed = true;
            continue;
        }

        // ---- Construct of extracts -> Swizzle ---------------------------
        if (i.op == Opcode::Construct && i.type.isVector() &&
            i.operands.size() > 1) {
            Instr *src = nullptr;
            std::vector<int> idx;
            bool all_extracts = true;
            for (Instr *part : i.operands) {
                if (part->op != Opcode::Extract ||
                    !part->operands[0]->type.isVector()) {
                    all_extracts = false;
                    break;
                }
                if (!src)
                    src = part->operands[0];
                if (part->operands[0] != src) {
                    all_extracts = false;
                    break;
                }
                idx.push_back(part->indices[0]);
            }
            if (all_extracts && src &&
                static_cast<int>(idx.size()) == i.type.rows) {
                i.op = Opcode::Swizzle;
                i.operands = {src};
                i.indices = idx;
                changed = true;
                // Identity swizzles fold away in canonicalisation.
                continue;
            }
        }
    }
    (void)repl;
    return changed;
}

} // namespace

bool
coalesce(Module &module)
{
    // Iterate to a fixpoint: an insert chain first becomes a Construct
    // of extracts, which a second sweep turns into a Swizzle.
    bool changed = false;
    for (int iter = 0; iter < 4; ++iter) {
        auto uses = countUses(module);
        std::unordered_map<Instr *, Instr *> repl;
        bool pass_changed = false;
        ir::forEachNode(module.body, [&](Node &n) {
            if (auto *b = dyn_cast<Block>(&n))
                pass_changed |= coalesceBlock(*b, module, uses, repl);
        });
        if (!pass_changed)
            break;
        changed = true;
    }
    return changed;
}

} // namespace gsopt::passes
