#include "passes/util.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ir/walk.h"

namespace gsopt::passes {

using ir::Instr;
using ir::Module;
using ir::Opcode;
using ir::Type;

std::unordered_map<const Instr *, int>
countUses(const Module &module)
{
    std::unordered_map<const Instr *, int> uses;
    ir::forEachInstr(module.body, [&uses](const Instr &i) {
        for (const Instr *op : i.operands)
            ++uses[op];
    });
    // Structured condition references count as uses too.
    ir::forEachNode(const_cast<Module &>(module).body,
                    [&uses](ir::Node &n) {
                        if (auto *f = ir::dyn_cast<ir::IfNode>(&n)) {
                            if (f->cond)
                                ++uses[f->cond];
                        } else if (auto *l =
                                       ir::dyn_cast<ir::LoopNode>(&n)) {
                            if (l->condValue)
                                ++uses[l->condValue];
                        }
                    });
    return uses;
}

Instr *
LocalBuilder::emit(Opcode op, Type type, std::vector<Instr *> operands,
                   ir::Var *var, std::vector<int> indices)
{
    Instr *instr = module_.newInstr();
    instr->op = op;
    instr->type = type;
    instr->operands = operands;
    instr->var = var;
    instr->indices = indices;
    block_.instrs.insert(block_.instrs.begin() + static_cast<long>(pos_),
                         instr);
    ++pos_;
    return instr;
}

Instr *
LocalBuilder::constFloat(double v)
{
    Instr *i = emit(Opcode::Const, Type::floatTy());
    i->constData = {v};
    return i;
}

Instr *
LocalBuilder::constSplat(Type type, double v)
{
    Instr *i = emit(Opcode::Const, type);
    i->constData.assign(static_cast<size_t>(type.componentCount()), v);
    return i;
}

Instr *
LocalBuilder::constVec(Type type, std::vector<double> lanes)
{
    Instr *i = emit(Opcode::Const, type);
    i->constData = std::move(lanes);
    return i;
}

bool
isConstSplatValue(const Instr *instr, double v)
{
    return instr && instr->op == Opcode::Const && instr->isConstValue(v);
}

std::optional<double>
splatConstValue(const Instr *instr)
{
    if (!instr)
        return std::nullopt;
    if (instr->op == Opcode::Const && instr->isSplatConst())
        return instr->scalarConst();
    if (instr->op == Opcode::Construct && instr->operands.size() == 1 &&
        instr->operands[0]->op == Opcode::Const &&
        instr->operands[0]->type.isScalar())
        return instr->operands[0]->scalarConst();
    return std::nullopt;
}

namespace {

/** An Instr's inline constant-lane list. */
using Lanes = ir::InlineVec<double, ir::kMaxInstrWidth>;

/** Broadcast-aware lane fetch. */
double
lane(const Lanes &v, size_t i)
{
    return v.size() == 1 ? v[0] : v[i];
}

std::vector<double>
componentwise2(const Lanes &a, const Lanes &b,
               double (*fn)(double, double))
{
    const size_t n = std::max(a.size(), b.size());
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = fn(lane(a, i), lane(b, i));
    return out;
}

} // namespace

std::optional<std::vector<double>>
foldConstInstr(const Instr &instr)
{
    for (const Instr *op : instr.operands) {
        if (!op || op->op != Opcode::Const)
            return std::nullopt;
    }
    auto arg = [&](size_t i) -> const Lanes & {
        return instr.operands[i]->constData;
    };
    const bool is_int = instr.type.isInt();

    auto wrap_int = [is_int](std::vector<double> v) {
        if (is_int) {
            for (double &d : v)
                d = std::trunc(d);
        }
        return v;
    };

    switch (instr.op) {
      case Opcode::Neg: {
        std::vector<double> out = arg(0);
        for (double &d : out)
            d = -d;
        return out;
      }
      case Opcode::Not: {
        std::vector<double> out = arg(0);
        for (double &d : out)
            d = d == 0.0 ? 1.0 : 0.0;
        return out;
      }
      case Opcode::Add:
        return wrap_int(componentwise2(
            arg(0), arg(1), +[](double a, double b) { return a + b; }));
      case Opcode::Sub:
        return wrap_int(componentwise2(
            arg(0), arg(1), +[](double a, double b) { return a - b; }));
      case Opcode::Mul:
        return wrap_int(componentwise2(
            arg(0), arg(1), +[](double a, double b) { return a * b; }));
      case Opcode::Div:
        if (is_int) {
            return componentwise2(arg(0), arg(1),
                                  +[](double a, double b) {
                                      return b != 0.0
                                                 ? std::trunc(a / b)
                                                 : 0.0;
                                  });
        }
        return componentwise2(arg(0), arg(1), +[](double a, double b) {
            return b != 0.0 ? a / b
                            : (a == 0.0
                                   ? std::nan("")
                                   : std::copysign(
                                         std::numeric_limits<
                                             double>::infinity(),
                                         a));
        });
      case Opcode::Mod:
        return componentwise2(arg(0), arg(1), +[](double a, double b) {
            return b != 0.0 ? a - b * std::floor(a / b) : 0.0;
        });
      case Opcode::Lt:
        return std::vector<double>{arg(0)[0] < arg(1)[0] ? 1.0 : 0.0};
      case Opcode::Le:
        return std::vector<double>{arg(0)[0] <= arg(1)[0] ? 1.0 : 0.0};
      case Opcode::Gt:
        return std::vector<double>{arg(0)[0] > arg(1)[0] ? 1.0 : 0.0};
      case Opcode::Ge:
        return std::vector<double>{arg(0)[0] >= arg(1)[0] ? 1.0 : 0.0};
      case Opcode::Eq: {
        bool eq = arg(0) == arg(1);
        return std::vector<double>{eq ? 1.0 : 0.0};
      }
      case Opcode::Ne: {
        bool ne = arg(0) != arg(1);
        return std::vector<double>{ne ? 1.0 : 0.0};
      }
      case Opcode::LogicalAnd:
        return std::vector<double>{
            arg(0)[0] != 0.0 && arg(1)[0] != 0.0 ? 1.0 : 0.0};
      case Opcode::LogicalOr:
        return std::vector<double>{
            arg(0)[0] != 0.0 || arg(1)[0] != 0.0 ? 1.0 : 0.0};
      case Opcode::Sin:
      case Opcode::Cos:
      case Opcode::Tan:
      case Opcode::Asin:
      case Opcode::Acos:
      case Opcode::Atan:
      case Opcode::Exp:
      case Opcode::Log:
      case Opcode::Exp2:
      case Opcode::Log2:
      case Opcode::Sqrt:
      case Opcode::InvSqrt:
      case Opcode::Abs:
      case Opcode::Sign:
      case Opcode::Floor:
      case Opcode::Ceil:
      case Opcode::Fract:
      case Opcode::Radians:
      case Opcode::Degrees: {
        std::vector<double> out = arg(0);
        for (double &d : out) {
            switch (instr.op) {
              case Opcode::Sin: d = std::sin(d); break;
              case Opcode::Cos: d = std::cos(d); break;
              case Opcode::Tan: d = std::tan(d); break;
              case Opcode::Asin: d = std::asin(d); break;
              case Opcode::Acos: d = std::acos(d); break;
              case Opcode::Atan: d = std::atan(d); break;
              case Opcode::Exp: d = std::exp(d); break;
              case Opcode::Log: d = std::log(d); break;
              case Opcode::Exp2: d = std::exp2(d); break;
              case Opcode::Log2: d = std::log2(d); break;
              case Opcode::Sqrt: d = std::sqrt(d); break;
              case Opcode::InvSqrt: d = 1.0 / std::sqrt(d); break;
              case Opcode::Abs: d = std::fabs(d); break;
              case Opcode::Sign:
                d = d > 0.0 ? 1.0 : d < 0.0 ? -1.0 : 0.0;
                break;
              case Opcode::Floor: d = std::floor(d); break;
              case Opcode::Ceil: d = std::ceil(d); break;
              case Opcode::Fract: d = d - std::floor(d); break;
              case Opcode::Radians: d = d * M_PI / 180.0; break;
              case Opcode::Degrees: d = d * 180.0 / M_PI; break;
              default: break;
            }
        }
        return out;
      }
      case Opcode::Atan2:
        return componentwise2(arg(0), arg(1), +[](double y, double x) {
            return std::atan2(y, x);
        });
      case Opcode::Pow:
        return componentwise2(arg(0), arg(1), +[](double a, double b) {
            return std::pow(a, b);
        });
      case Opcode::Min:
        return componentwise2(arg(0), arg(1), +[](double a, double b) {
            return std::min(a, b);
        });
      case Opcode::Max:
        return componentwise2(arg(0), arg(1), +[](double a, double b) {
            return std::max(a, b);
        });
      case Opcode::Step:
        return componentwise2(arg(0), arg(1), +[](double e, double x) {
            return x < e ? 0.0 : 1.0;
        });
      case Opcode::Dot: {
        double sum = 0.0;
        for (size_t i = 0; i < arg(0).size(); ++i)
            sum += arg(0)[i] * lane(arg(1), i);
        return std::vector<double>{sum};
      }
      case Opcode::Length: {
        double sum = 0.0;
        for (double d : arg(0))
            sum += d * d;
        return std::vector<double>{std::sqrt(sum)};
      }
      case Opcode::Distance: {
        double sum = 0.0;
        for (size_t i = 0; i < arg(0).size(); ++i) {
            double d = arg(0)[i] - lane(arg(1), i);
            sum += d * d;
        }
        return std::vector<double>{std::sqrt(sum)};
      }
      case Opcode::Normalize: {
        double sum = 0.0;
        for (double d : arg(0))
            sum += d * d;
        double len = std::sqrt(sum);
        std::vector<double> out = arg(0);
        if (len > 0.0) {
            for (double &d : out)
                d /= len;
        }
        return out;
      }
      case Opcode::Cross: {
        const auto &a = arg(0);
        const auto &b = arg(1);
        return std::vector<double>{a[1] * b[2] - a[2] * b[1],
                                   a[2] * b[0] - a[0] * b[2],
                                   a[0] * b[1] - a[1] * b[0]};
      }
      case Opcode::Clamp: {
        std::vector<double> out = arg(0);
        for (size_t i = 0; i < out.size(); ++i)
            out[i] = std::min(std::max(out[i], lane(arg(1), i)),
                              lane(arg(2), i));
        return out;
      }
      case Opcode::Mix: {
        std::vector<double> out = arg(0);
        for (size_t i = 0; i < out.size(); ++i) {
            double t = lane(arg(2), i);
            out[i] = out[i] * (1.0 - t) + lane(arg(1), i) * t;
        }
        return out;
      }
      case Opcode::Smoothstep: {
        std::vector<double> out = arg(2);
        for (size_t i = 0; i < out.size(); ++i) {
            double e0 = lane(arg(0), i), e1 = lane(arg(1), i);
            double t = e1 != e0 ? (out[i] - e0) / (e1 - e0) : 0.0;
            t = std::min(std::max(t, 0.0), 1.0);
            out[i] = t * t * (3.0 - 2.0 * t);
        }
        return out;
      }
      case Opcode::Select: {
        return instr.operands[0]->scalarConst() != 0.0
                   ? arg(1)
                   : arg(2);
      }
      case Opcode::Construct: {
        std::vector<double> out;
        for (const Instr *op : instr.operands)
            out.insert(out.end(), op->constData.begin(),
                       op->constData.end());
        const size_t want =
            static_cast<size_t>(instr.type.componentCount());
        if (out.size() == 1 && want > 1)
            out.assign(want, out[0]); // splat
        if (out.size() != want)
            return std::nullopt;
        // int(x) truncates toward zero (GLSL 4.4.0 §4.1.10). Construct
        // is also the IR's conversion op, so this is where fractional
        // values must die: the interpreter truncates here too, and the
        // int-arithmetic wrap_int below only ever sees integral lanes.
        return wrap_int(std::move(out));
      }
      case Opcode::Extract:
        return std::vector<double>{
            arg(0)[static_cast<size_t>(instr.indices[0])]};
      case Opcode::Insert: {
        std::vector<double> out = arg(0);
        out[static_cast<size_t>(instr.indices[0])] = arg(1)[0];
        return out;
      }
      case Opcode::Swizzle: {
        std::vector<double> out;
        for (int idx : instr.indices)
            out.push_back(arg(0)[static_cast<size_t>(idx)]);
        return out;
      }
      default:
        return std::nullopt;
    }
}

} // namespace gsopt::passes
