#include "glsl/sema.h"

#include <map>
#include <optional>
#include <set>

#include "support/governor.h"

namespace gsopt::glsl {

namespace {

/** Is every arg a float scalar or vector of the same shape? */
bool
sameFloatShape(const std::vector<Type> &args)
{
    if (args.empty())
        return false;
    for (const Type &t : args) {
        if (!t.isFloat() || t.isArray() || t.isMatrix())
            return false;
        if (t.rows != args[0].rows)
            return false;
    }
    return true;
}

bool
isFloatScalarOrVector(const Type &t)
{
    return t.isFloat() && !t.isArray() && !t.isMatrix();
}

} // namespace

bool
isBuiltinFunction(const std::string &name)
{
    static const char *names[] = {
        "radians", "degrees", "sin", "cos", "tan", "asin", "acos",
        "atan", "pow", "exp", "log", "exp2", "log2", "sqrt",
        "inversesqrt", "abs", "sign", "floor", "ceil", "fract", "mod",
        "min", "max", "clamp", "mix", "step", "smoothstep", "length",
        "distance", "dot", "cross", "normalize", "reflect", "refract",
        "texture", "texture2D", "textureLod",
    };
    for (const char *n : names) {
        if (name == n)
            return true;
    }
    return false;
}

Type
builtinResultType(const std::string &name, const std::vector<Type> &args)
{
    const size_t n = args.size();

    // -- texturing ------------------------------------------------------
    if (name == "texture" || name == "texture2D") {
        if (n == 2 && args[0].isSampler() && args[1] == Type::vec(2))
            return Type::vec(4);
        // texture(s, uv, bias)
        if (n == 3 && args[0].isSampler() && args[1] == Type::vec(2) &&
            args[2] == Type::floatTy())
            return Type::vec(4);
        return Type::voidTy();
    }
    if (name == "textureLod") {
        if (n == 3 && args[0].isSampler() && args[1] == Type::vec(2) &&
            args[2] == Type::floatTy())
            return Type::vec(4);
        return Type::voidTy();
    }

    // -- genType -> genType unary --------------------------------------
    static const char *unary_gen[] = {
        "radians", "degrees", "sin", "cos", "tan", "asin", "acos",
        "exp", "log", "exp2", "log2", "sqrt", "inversesqrt", "sign",
        "floor", "ceil", "fract", "normalize",
    };
    for (const char *u : unary_gen) {
        if (name == u) {
            if (n == 1 && isFloatScalarOrVector(args[0]))
                return args[0];
            return Type::voidTy();
        }
    }
    if (name == "abs") {
        if (n == 1 && !args[0].isArray() && !args[0].isMatrix() &&
            (args[0].isFloat() || args[0].isInt()))
            return args[0];
        return Type::voidTy();
    }
    if (name == "atan") {
        if (n == 1 && isFloatScalarOrVector(args[0]))
            return args[0];
        if (n == 2 && sameFloatShape(args))
            return args[0];
        return Type::voidTy();
    }

    // -- binary genType (second operand may be scalar) -------------------
    if (name == "pow") {
        if (n == 2 && sameFloatShape(args))
            return args[0];
        return Type::voidTy();
    }
    if (name == "mod" || name == "min" || name == "max") {
        if (n != 2)
            return Type::voidTy();
        // int overloads of min/max
        if (name != "mod" && args[0].isInt() && args[1].isInt() &&
            !args[0].isArray() &&
            (args[0].rows == args[1].rows || args[1].isScalar()))
            return args[0];
        if (!isFloatScalarOrVector(args[0]) ||
            !isFloatScalarOrVector(args[1]))
            return Type::voidTy();
        if (args[0].rows == args[1].rows || args[1].isScalar())
            return args[0];
        return Type::voidTy();
    }
    if (name == "clamp") {
        if (n != 3)
            return Type::voidTy();
        if (args[0].isInt() && args[1].isInt() && args[2].isInt() &&
            !args[0].isArray())
            return args[0];
        if (!isFloatScalarOrVector(args[0]))
            return Type::voidTy();
        bool scalar_rest =
            args[1].isScalar() && args[2].isScalar() &&
            args[1].isFloat() && args[2].isFloat();
        bool same_rest = args[1] == args[0] && args[2] == args[0];
        return (scalar_rest || same_rest) ? args[0] : Type::voidTy();
    }
    if (name == "mix") {
        if (n != 3)
            return Type::voidTy();
        if (!isFloatScalarOrVector(args[0]) || args[1] != args[0])
            return Type::voidTy();
        if (args[2] == args[0] ||
            (args[2].isScalar() && args[2].isFloat()))
            return args[0];
        return Type::voidTy();
    }
    if (name == "step") {
        if (n != 2 || !isFloatScalarOrVector(args[1]))
            return Type::voidTy();
        if (args[0] == args[1] ||
            (args[0].isScalar() && args[0].isFloat()))
            return args[1];
        return Type::voidTy();
    }
    if (name == "smoothstep") {
        if (n != 3 || !isFloatScalarOrVector(args[2]))
            return Type::voidTy();
        bool scalar_edges = args[0] == Type::floatTy() &&
                            args[1] == Type::floatTy();
        bool same_edges = args[0] == args[2] && args[1] == args[2];
        return (scalar_edges || same_edges) ? args[2] : Type::voidTy();
    }

    // -- reductions -------------------------------------------------------
    if (name == "length") {
        if (n == 1 && isFloatScalarOrVector(args[0]))
            return Type::floatTy();
        return Type::voidTy();
    }
    if (name == "distance" || name == "dot") {
        if (n == 2 && sameFloatShape(args))
            return Type::floatTy();
        return Type::voidTy();
    }
    if (name == "cross") {
        if (n == 2 && args[0] == Type::vec(3) && args[1] == Type::vec(3))
            return Type::vec(3);
        return Type::voidTy();
    }
    if (name == "reflect") {
        if (n == 2 && sameFloatShape(args))
            return args[0];
        return Type::voidTy();
    }
    if (name == "refract") {
        if (n == 3 && isFloatScalarOrVector(args[0]) &&
            args[1] == args[0] && args[2] == Type::floatTy())
            return args[0];
        return Type::voidTy();
    }

    return Type::voidTy();
}

namespace {

/** A declared name visible in some scope. */
struct Symbol
{
    Type type;
    Qualifier qual = Qualifier::Global;
    bool isConst = false;
    std::string uniqueName; ///< post-alpha-renaming spelling
};

/** Decode a swizzle like "xyz" / "rgb" / "stp"; empty on failure. */
std::optional<std::vector<int>>
decodeSwizzle(const std::string &name, int source_rows)
{
    if (name.empty() || name.size() > 4)
        return std::nullopt;
    std::vector<int> idx;
    for (char c : name) {
        int i = -1;
        switch (c) {
          case 'x': case 'r': case 's': i = 0; break;
          case 'y': case 'g': case 't': i = 1; break;
          case 'z': case 'b': case 'p': i = 2; break;
          case 'w': case 'a': case 'q': i = 3; break;
          default: return std::nullopt;
        }
        if (i >= source_rows)
            return std::nullopt;
        idx.push_back(i);
    }
    return idx;
}

class Checker
{
  public:
    Checker(Shader &shader, DiagEngine &diags)
        : shader_(shader), diags_(diags)
    {
    }

    ShaderInterface run()
    {
        pushScope();
        declareBuiltins();
        for (auto &g : shader_.globals)
            checkGlobal(g);
        for (auto &f : shader_.functions)
            checkFunction(f);
        if (!shader_.findFunction("main"))
            diags_.error({}, "shader has no main() function");
        popScope();
        return iface_;
    }

  private:
    // -- scopes -----------------------------------------------------------
    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }

    Symbol *lookup(const std::string &name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return &f->second;
        }
        return nullptr;
    }

    /**
     * Declare a name in the innermost scope, alpha-renaming if the
     * spelling was ever used before in this shader.
     */
    std::string declare(const std::string &name, Symbol sym,
                        SourceLoc loc)
    {
        if (scopes_.back().count(name)) {
            diags_.error(loc, "redefinition of '" + name + "'");
            return name;
        }
        std::string unique = name;
        if (usedNames_.count(name)) {
            int n = 1;
            do {
                unique = name + "_s" + std::to_string(n++);
            } while (usedNames_.count(unique));
        }
        usedNames_.insert(unique);
        sym.uniqueName = unique;
        scopes_.back().emplace(name, std::move(sym));
        return unique;
    }

    void declareBuiltins()
    {
        Symbol frag_coord;
        frag_coord.type = Type::vec(4);
        frag_coord.qual = Qualifier::In;
        frag_coord.uniqueName = "gl_FragCoord";
        scopes_.back().emplace("gl_FragCoord", frag_coord);
        usedNames_.insert("gl_FragCoord");
    }

    // -- conversions ------------------------------------------------------
    /** Wrap @p e in an int->float conversion if needed to match @p want. */
    bool coerce(ExprPtr &e, const Type &want)
    {
        if (e->type == want)
            return true;
        // int -> float (scalar), possibly already literal
        if (want.isFloat() && e->type.isInt() &&
            e->type.rows == want.rows && e->type.cols == want.cols &&
            !e->type.isArray() && !want.isArray()) {
            if (e->kind == ExprKind::IntLit) {
                e->kind = ExprKind::FloatLit;
                e->floatValue = static_cast<double>(e->intValue);
                e->type = want;
                return true;
            }
            auto conv = std::make_unique<Expr>();
            conv->kind = ExprKind::Construct;
            conv->ctorType = want;
            conv->type = want;
            conv->loc = e->loc;
            conv->args.push_back(std::move(e));
            e = std::move(conv);
            return true;
        }
        return false;
    }

    /** Numeric usual-arithmetic conversion across two operands. */
    void balance(ExprPtr &a, ExprPtr &b)
    {
        if (a->type.isFloat() && b->type.isInt())
            coerce(b, Type{BaseType::Float, b->type.cols, b->type.rows, 0});
        else if (a->type.isInt() && b->type.isFloat())
            coerce(a, Type{BaseType::Float, a->type.cols, a->type.rows, 0});
    }

    // -- globals / functions ----------------------------------------------
    void checkGlobal(GlobalDecl &g)
    {
        if (g.init) {
            checkExpr(g.init);
            if (g.type.isArray() && g.type.arraySize < 0 &&
                g.init->type.isArray()) {
                g.type.arraySize = g.init->type.arraySize;
            }
            if (!coerce(g.init, g.type) && g.init->type != g.type) {
                diags_.error(g.loc, "initialiser type " +
                                        g.init->type.str() +
                                        " does not match " + g.type.str() +
                                        " for '" + g.name + "'");
            }
        } else if (g.type.isArray() && g.type.arraySize < 0) {
            diags_.error(g.loc,
                         "unsized array '" + g.name +
                             "' needs an initialiser");
        }
        if (g.qual == Qualifier::Const && !g.init)
            diags_.error(g.loc, "const '" + g.name +
                                    "' needs an initialiser");
        if (g.type.isSampler() && g.qual != Qualifier::Uniform)
            diags_.error(g.loc, "samplers must be uniforms");

        Symbol sym;
        sym.type = g.type;
        sym.qual = g.qual;
        sym.isConst = g.qual == Qualifier::Const;
        g.name = declare(g.name, sym, g.loc);

        InterfaceVar iv{g.name, g.type, g.qual};
        switch (g.qual) {
          case Qualifier::In:
            iface_.inputs.push_back(iv);
            break;
          case Qualifier::Out:
            iface_.outputs.push_back(iv);
            break;
          case Qualifier::Uniform:
            iface_.uniforms.push_back(iv);
            break;
          default:
            break;
        }
    }

    void checkFunction(FunctionDecl &fn)
    {
        currentFunction_ = &fn;
        pushScope();
        for (auto &p : fn.params) {
            Symbol sym;
            sym.type = p.type;
            sym.qual = Qualifier::Global;
            p.name = declare(p.name, sym, fn.loc);
        }
        checkStmt(fn.body);
        popScope();
        currentFunction_ = nullptr;
    }

    // -- recursion governance ---------------------------------------------
    // Sema recursion mirrors AST depth. The parser already caps its own
    // nesting, but sema must stand alone against any AST producer: the
    // built-in cap yields a clean diagnostic before the C++ stack
    // overflows, and the governed cap (Dim::SemaDepth) lets a budget
    // reject shallower with a structured ResourceExhausted.
    static constexpr int kMaxDepth = 1024;
    struct DepthGuard
    {
        Checker &c;
        explicit DepthGuard(Checker &checker) : c(checker)
        {
            governor::checkDepth(governor::Dim::SemaDepth,
                                 static_cast<uint64_t>(++c.depth_),
                                 "sema");
        }
        ~DepthGuard() { --c.depth_; }

        bool tooDeep(SourceLoc loc) const
        {
            if (c.depth_ <= kMaxDepth)
                return false;
            if (!c.deepDiagnosed_) {
                c.deepDiagnosed_ = true;
                c.diags_.error(loc, "semantic analysis nesting too deep");
            }
            return true;
        }
    };

    // -- statements ---------------------------------------------------------
    void checkStmt(StmtPtr &s)
    {
        DepthGuard guard(*this);
        if (guard.tooDeep(s->loc))
            return;
        switch (s->kind) {
          case StmtKind::Block: {
            if (!s->transparent)
                pushScope();
            for (auto &b : s->body)
                checkStmt(b);
            if (!s->transparent)
                popScope();
            break;
          }
          case StmtKind::Decl: {
            if (s->rhs) {
                checkExpr(s->rhs);
                if (s->declType.isArray() && s->declType.arraySize < 0 &&
                    s->rhs->type.isArray())
                    s->declType.arraySize = s->rhs->type.arraySize;
                if (!coerce(s->rhs, s->declType) &&
                    s->rhs->type != s->declType) {
                    diags_.error(s->loc,
                                 "initialiser type " + s->rhs->type.str() +
                                     " does not match " +
                                     s->declType.str() + " for '" +
                                     s->name + "'");
                }
            } else if (s->declType.isArray() &&
                       s->declType.arraySize < 0) {
                diags_.error(s->loc, "unsized array '" + s->name +
                                         "' needs an initialiser");
            }
            Symbol sym;
            sym.type = s->declType;
            sym.isConst = s->isConst;
            s->name = declare(s->name, sym, s->loc);
            break;
          }
          case StmtKind::Assign: {
            checkExpr(s->lhs);
            checkLValue(*s->lhs);
            checkExpr(s->rhs);
            Type target = s->lhs->type;
            if (s->assignOp != AssignOp::Assign) {
                // compound assign behaves like the binary operator
                if (!target.isNumeric() && !target.isMatrix())
                    diags_.error(s->loc,
                                 "compound assignment needs numeric type");
                if (target.isFloat() && s->rhs->type.isInt())
                    coerce(s->rhs,
                           Type{BaseType::Float, s->rhs->type.cols,
                                s->rhs->type.rows, 0});
                bool ok = s->rhs->type == target ||
                          (s->rhs->type.isScalar() &&
                           s->rhs->type.base == target.base);
                if (!ok)
                    diags_.error(s->loc,
                                 "cannot apply compound assignment of " +
                                     s->rhs->type.str() + " to " +
                                     target.str());
            } else {
                if (!coerce(s->rhs, target) && s->rhs->type != target) {
                    diags_.error(s->loc, "cannot assign " +
                                             s->rhs->type.str() + " to " +
                                             target.str());
                }
            }
            break;
          }
          case StmtKind::ExprStmt:
            checkExpr(s->rhs);
            break;
          case StmtKind::If: {
            checkExpr(s->cond);
            if (s->cond->type != Type::boolTy())
                diags_.error(s->loc, "if condition must be bool, got " +
                                         s->cond->type.str());
            pushScope();
            for (auto &b : s->body)
                checkStmt(b);
            popScope();
            pushScope();
            for (auto &b : s->elseBody)
                checkStmt(b);
            popScope();
            break;
          }
          case StmtKind::For: {
            pushScope();
            if (s->init)
                checkStmt(s->init);
            if (s->cond) {
                checkExpr(s->cond);
                if (s->cond->type != Type::boolTy())
                    diags_.error(s->loc,
                                 "loop condition must be bool, got " +
                                     s->cond->type.str());
            }
            if (s->step)
                checkStmt(s->step);
            pushScope();
            for (auto &b : s->body)
                checkStmt(b);
            popScope();
            popScope();
            break;
          }
          case StmtKind::While: {
            checkExpr(s->cond);
            if (s->cond->type != Type::boolTy())
                diags_.error(s->loc, "loop condition must be bool");
            pushScope();
            for (auto &b : s->body)
                checkStmt(b);
            popScope();
            break;
          }
          case StmtKind::Return: {
            Type want = currentFunction_
                            ? currentFunction_->returnType
                            : Type::voidTy();
            if (s->rhs) {
                checkExpr(s->rhs);
                if (!coerce(s->rhs, want) && s->rhs->type != want)
                    diags_.error(s->loc, "return type mismatch: got " +
                                             s->rhs->type.str() +
                                             ", expected " + want.str());
            } else if (!want.isVoid()) {
                diags_.error(s->loc, "non-void function must return a "
                                     "value");
            }
            break;
          }
          case StmtKind::Discard:
            break;
        }
    }

    void checkLValue(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::VarRef: {
            Symbol *sym = findByUnique(e.name);
            if (!sym) {
                return; // undefined already reported
            }
            if (sym->isConst)
                diags_.error(e.loc, "cannot assign to const '" + e.name +
                                        "'");
            if (sym->qual == Qualifier::In ||
                sym->qual == Qualifier::Uniform)
                diags_.error(e.loc, "cannot assign to " +
                                        std::string(sym->qual ==
                                                            Qualifier::In
                                                        ? "input"
                                                        : "uniform") +
                                        " '" + e.name + "'");
            break;
          }
          case ExprKind::Index:
          case ExprKind::Member:
            checkLValue(*e.args[0]);
            if (e.kind == ExprKind::Member) {
                // swizzle lvalues must not repeat components
                std::string seen;
                for (char c : e.name) {
                    if (seen.find(c) != std::string::npos)
                        diags_.error(e.loc,
                                     "duplicate component in swizzle "
                                     "assignment");
                    seen += c;
                }
            }
            break;
          default:
            diags_.error(e.loc, "expression is not assignable");
        }
    }

    Symbol *findByUnique(const std::string &unique)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            for (auto &[k, v] : *it) {
                if (v.uniqueName == unique)
                    return &v;
            }
        }
        return nullptr;
    }

    // -- expressions ----------------------------------------------------
    void checkExpr(ExprPtr &e)
    {
        DepthGuard guard(*this);
        if (guard.tooDeep(e->loc)) {
            e->type = Type::floatTy();
            return;
        }
        switch (e->kind) {
          case ExprKind::IntLit:
            e->type = Type::intTy();
            break;
          case ExprKind::FloatLit:
            e->type = Type::floatTy();
            break;
          case ExprKind::BoolLit:
            e->type = Type::boolTy();
            break;
          case ExprKind::VarRef: {
            Symbol *sym = lookup(e->name);
            if (!sym) {
                diags_.error(e->loc, "use of undeclared identifier '" +
                                         e->name + "'");
                e->type = Type::floatTy();
                break;
            }
            e->name = sym->uniqueName;
            e->type = sym->type;
            break;
          }
          case ExprKind::Unary: {
            checkExpr(e->args[0]);
            const Type &t = e->args[0]->type;
            if (e->unaryOp == UnaryOp::Not) {
                if (t != Type::boolTy())
                    diags_.error(e->loc, "'!' needs a bool operand");
                e->type = Type::boolTy();
            } else {
                if (!t.isNumeric() && !t.isMatrix())
                    diags_.error(e->loc, "unary '-' needs numeric type");
                e->type = t;
            }
            break;
          }
          case ExprKind::Binary:
            checkBinary(e);
            break;
          case ExprKind::Ternary: {
            checkExpr(e->args[0]);
            if (e->args[0]->type != Type::boolTy())
                diags_.error(e->loc, "ternary condition must be bool");
            checkExpr(e->args[1]);
            checkExpr(e->args[2]);
            balance(e->args[1], e->args[2]);
            if (e->args[1]->type != e->args[2]->type)
                diags_.error(e->loc, "ternary branches disagree: " +
                                         e->args[1]->type.str() + " vs " +
                                         e->args[2]->type.str());
            e->type = e->args[1]->type;
            break;
          }
          case ExprKind::Call:
            checkCall(e);
            break;
          case ExprKind::Construct:
            checkConstruct(e);
            break;
          case ExprKind::Index: {
            checkExpr(e->args[0]);
            checkExpr(e->args[1]);
            if (!e->args[1]->type.isInt() ||
                !e->args[1]->type.isScalar())
                diags_.error(e->loc, "index must be an int");
            const Type &base = e->args[0]->type;
            if (base.isArray()) {
                e->type = base.elementType();
            } else if (base.isMatrix()) {
                e->type = Type::vec(base.rows);
            } else if (base.isVector()) {
                e->type = base.scalarType();
            } else {
                diags_.error(e->loc, "type " + base.str() +
                                         " is not indexable");
                e->type = Type::floatTy();
            }
            break;
          }
          case ExprKind::Member: {
            checkExpr(e->args[0]);
            const Type &base = e->args[0]->type;
            if (!base.isVector()) {
                diags_.error(e->loc, "swizzle on non-vector type " +
                                         base.str());
                e->type = Type::floatTy();
                break;
            }
            auto sw = decodeSwizzle(e->name, base.rows);
            if (!sw) {
                diags_.error(e->loc, "invalid swizzle '." + e->name +
                                         "' on " + base.str());
                e->type = Type::floatTy();
                break;
            }
            e->type = sw->size() == 1
                          ? base.scalarType()
                          : base.withRows(static_cast<int>(sw->size()));
            break;
          }
        }
    }

    void checkBinary(ExprPtr &e)
    {
        checkExpr(e->args[0]);
        checkExpr(e->args[1]);
        ExprPtr &a = e->args[0];
        ExprPtr &b = e->args[1];
        const BinaryOp op = e->binaryOp;

        if (op == BinaryOp::LogicalAnd || op == BinaryOp::LogicalOr) {
            if (a->type != Type::boolTy() || b->type != Type::boolTy())
                diags_.error(e->loc, "logical operator needs bool "
                                     "operands");
            e->type = Type::boolTy();
            return;
        }
        if (op == BinaryOp::Eq || op == BinaryOp::Ne) {
            balance(a, b);
            if (a->type != b->type)
                diags_.error(e->loc, "cannot compare " + a->type.str() +
                                         " with " + b->type.str());
            e->type = Type::boolTy();
            return;
        }
        if (op == BinaryOp::Lt || op == BinaryOp::Le ||
            op == BinaryOp::Gt || op == BinaryOp::Ge) {
            balance(a, b);
            if (!a->type.isScalar() || !b->type.isScalar() ||
                a->type != b->type || a->type.isBool())
                diags_.error(e->loc, "relational operators need matching "
                                     "numeric scalars");
            e->type = Type::boolTy();
            return;
        }
        if (op == BinaryOp::Mod) {
            if (!a->type.isInt() || !b->type.isInt() ||
                !a->type.isScalar() || !b->type.isScalar())
                diags_.error(e->loc, "'%' needs int scalars (use mod() "
                                     "for floats)");
            e->type = Type::intTy();
            return;
        }

        // Arithmetic: +,-,*,/
        balance(a, b);
        const Type &ta = a->type;
        const Type &tb = b->type;
        auto fail = [&]() {
            diags_.error(e->loc, "invalid operands " + ta.str() + " and " +
                                     tb.str());
            e->type = ta;
        };
        if (ta.isArray() || tb.isArray() || ta.isSampler() ||
            tb.isSampler() || ta.isBool() || tb.isBool()) {
            fail();
            return;
        }
        if (ta.base != tb.base) {
            fail();
            return;
        }
        if (op == BinaryOp::Mul) {
            if (ta.isMatrix() && tb.isMatrix() && ta.cols == tb.cols) {
                e->type = ta;
                return;
            }
            if (ta.isMatrix() && tb.isVector() && ta.cols == tb.rows) {
                e->type = Type::vec(ta.rows);
                return;
            }
            if (ta.isVector() && tb.isMatrix() && ta.rows == tb.rows) {
                e->type = Type::vec(tb.cols);
                return;
            }
        }
        if (ta.isMatrix() || tb.isMatrix()) {
            // mat +- mat, mat */ scalar
            if (ta.isMatrix() && tb.isMatrix()) {
                if (ta == tb && (op == BinaryOp::Add ||
                                 op == BinaryOp::Sub)) {
                    e->type = ta;
                    return;
                }
                fail();
                return;
            }
            if (ta.isMatrix() && tb.isScalar()) {
                e->type = ta;
                return;
            }
            if (ta.isScalar() && tb.isMatrix()) {
                e->type = tb;
                return;
            }
            fail();
            return;
        }
        // scalar/vector combinations
        if (ta.rows == tb.rows) {
            e->type = ta;
            return;
        }
        if (ta.isScalar()) {
            e->type = tb;
            return;
        }
        if (tb.isScalar()) {
            e->type = ta;
            return;
        }
        fail();
    }

    void checkCall(ExprPtr &e)
    {
        std::vector<Type> arg_types;
        for (auto &a : e->args) {
            checkExpr(a);
            arg_types.push_back(a->type);
        }
        // Builtin?
        if (isBuiltinFunction(e->name)) {
            Type r = builtinResultType(e->name, arg_types);
            if (r.isVoid()) {
                // Try int->float promoting every int arg.
                bool promoted = false;
                for (size_t i = 0; i < e->args.size(); ++i) {
                    if (arg_types[i].isInt() &&
                        !arg_types[i].isArray()) {
                        Type ft{BaseType::Float, arg_types[i].cols,
                                arg_types[i].rows, 0};
                        if (coerce(e->args[i], ft)) {
                            arg_types[i] = ft;
                            promoted = true;
                        }
                    }
                }
                if (promoted)
                    r = builtinResultType(e->name, arg_types);
            }
            if (r.isVoid()) {
                std::string sig;
                for (const auto &t : arg_types)
                    sig += (sig.empty() ? "" : ", ") + t.str();
                diags_.error(e->loc, "no matching overload for " +
                                         e->name + "(" + sig + ")");
                e->type = Type::floatTy();
                return;
            }
            e->type = r;
            return;
        }
        // User function.
        const FunctionDecl *fn = shader_.findFunction(e->name);
        if (!fn) {
            diags_.error(e->loc, "call to undefined function '" +
                                     e->name + "'");
            e->type = Type::floatTy();
            return;
        }
        if (fn->params.size() != e->args.size()) {
            diags_.error(e->loc, "'" + e->name + "' expects " +
                                     std::to_string(fn->params.size()) +
                                     " arguments, got " +
                                     std::to_string(e->args.size()));
            e->type = fn->returnType;
            return;
        }
        for (size_t i = 0; i < e->args.size(); ++i) {
            if (!coerce(e->args[i], fn->params[i].type) &&
                e->args[i]->type != fn->params[i].type) {
                diags_.error(e->loc,
                             "argument " + std::to_string(i + 1) +
                                 " of '" + e->name + "': expected " +
                                 fn->params[i].type.str() + ", got " +
                                 e->args[i]->type.str());
            }
        }
        e->type = fn->returnType;
    }

    void checkConstruct(ExprPtr &e)
    {
        for (auto &a : e->args)
            checkExpr(a);
        const Type ty = e->ctorType;
        e->type = ty;

        if (ty.isArray()) {
            if (ty.arraySize != static_cast<int>(e->args.size())) {
                diags_.error(e->loc,
                             "array constructor needs " +
                                 std::to_string(ty.arraySize) +
                                 " elements, got " +
                                 std::to_string(e->args.size()));
                return;
            }
            for (auto &a : e->args) {
                if (!coerce(a, ty.elementType()) &&
                    a->type != ty.elementType()) {
                    diags_.error(a->loc,
                                 "array element type " + a->type.str() +
                                     " does not match " +
                                     ty.elementType().str());
                }
            }
            return;
        }
        if (ty.isScalar()) {
            if (e->args.size() != 1 ||
                (!e->args[0]->type.isScalar() &&
                 !e->args[0]->type.isVector())) {
                diags_.error(e->loc, "scalar constructor needs one "
                                     "scalar argument");
            }
            return;
        }
        if (ty.isVector()) {
            int total = 0;
            for (auto &a : e->args) {
                if (a->type.isArray() || a->type.isSampler() ||
                    a->type.isMatrix()) {
                    diags_.error(a->loc, "bad vector constructor "
                                         "argument");
                    return;
                }
                // int components are fine; they convert per-component
                total += a->type.componentCount();
            }
            bool splat = e->args.size() == 1 &&
                         e->args[0]->type.isScalar();
            bool shrink = e->args.size() == 1 &&
                          e->args[0]->type.isVector() &&
                          e->args[0]->type.rows >= ty.rows;
            if (!splat && !shrink && total != ty.rows) {
                diags_.error(e->loc,
                             "vector constructor components (" +
                                 std::to_string(total) +
                                 ") do not match " + ty.str());
            }
            return;
        }
        if (ty.isMatrix()) {
            const int need = ty.cols * ty.rows;
            if (e->args.size() == 1 && e->args[0]->type.isScalar())
                return; // diagonal matrix
            if (e->args.size() == 1 && e->args[0]->type.isMatrix())
                return; // matrix resize
            int total = 0;
            bool columns = true;
            for (auto &a : e->args) {
                if (!a->type.isScalar() && !a->type.isVector()) {
                    diags_.error(a->loc, "bad matrix constructor "
                                         "argument");
                    return;
                }
                columns = columns && a->type.isVector() &&
                          a->type.rows == ty.rows;
                total += a->type.componentCount();
            }
            if (total != need) {
                diags_.error(e->loc,
                             "matrix constructor components (" +
                                 std::to_string(total) +
                                 ") do not match " + ty.str());
            }
            return;
        }
        diags_.error(e->loc, "cannot construct type " + ty.str());
    }

    Shader &shader_;
    DiagEngine &diags_;
    std::vector<std::map<std::string, Symbol>> scopes_;
    std::set<std::string> usedNames_;
    ShaderInterface iface_;
    FunctionDecl *currentFunction_ = nullptr;
    int depth_ = 0;
    bool deepDiagnosed_ = false;
};

} // namespace

ShaderInterface
analyze(Shader &shader, DiagEngine &diags)
{
    Checker checker(shader, diags);
    return checker.run();
}

} // namespace gsopt::glsl
