#include "glsl/frontend.h"

#include "glsl/lexer.h"
#include "glsl/parser.h"

namespace gsopt::glsl {

std::unique_ptr<CompiledShader>
tryCompileShader(const std::string &source,
                 const std::map<std::string, std::string> &predefines,
                 DiagEngine &diags)
{
    auto out = std::make_unique<CompiledShader>();
    PreprocessResult pp = preprocess(source, predefines, diags);
    if (diags.hasErrors())
        return nullptr;
    out->preprocessedText = pp.text;
    out->version = pp.version;

    auto tokens = lex(pp.text, diags);
    if (diags.hasErrors())
        return nullptr;

    out->ast = parseShader(tokens, diags);
    if (diags.hasErrors())
        return nullptr;
    out->ast.version = pp.version;

    out->interface = analyze(out->ast, diags);
    if (diags.hasErrors())
        return nullptr;
    return out;
}

CompiledShader
compileShader(const std::string &source,
              const std::map<std::string, std::string> &predefines)
{
    DiagEngine diags;
    auto out = tryCompileShader(source, predefines, diags);
    diags.checkpoint();
    return std::move(*out);
}

} // namespace gsopt::glsl
