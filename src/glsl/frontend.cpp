#include "glsl/frontend.h"

#include "glsl/lexer.h"
#include "glsl/parser.h"
#include "support/governor.h"

namespace gsopt::glsl {

std::unique_ptr<CompiledShader>
tryCompileShader(const std::string &source,
                 const std::map<std::string, std::string> &predefines,
                 DiagEngine &diags)
{
    // Admission control: a cold compile of untrusted text gets a fresh
    // budget from the ambient caps (GSOPT_DEADLINE_MS / GSOPT_BUDGET_*)
    // unless an outer request already governs this thread.
    governor::ScopedRequestBudget admission;
    auto out = std::make_unique<CompiledShader>();
    PreprocessResult pp = preprocess(source, predefines, diags);
    if (diags.hasErrors())
        return nullptr;
    out->preprocessedText = pp.text;
    out->version = pp.version;

    auto tokens = lex(pp.text, diags);
    if (diags.hasErrors())
        return nullptr;

    out->ast = parseShader(tokens, diags);
    if (diags.hasErrors())
        return nullptr;
    out->ast.version = pp.version;

    out->interface = analyze(out->ast, diags);
    if (diags.hasErrors())
        return nullptr;
    return out;
}

CompiledShader
compileShader(const std::string &source,
              const std::map<std::string, std::string> &predefines)
{
    DiagEngine diags;
    auto out = tryCompileShader(source, predefines, diags);
    diags.checkpoint();
    // Success is not silence: this entry point's contract only throws
    // on errors, so route any warnings through the support/diag sink
    // rather than dropping them with the local engine.
    diags.reportWarnings();
    return std::move(*out);
}

} // namespace gsopt::glsl
