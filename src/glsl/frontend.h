/**
 * @file
 * Convenience facade over the GLSL front end: preprocess + lex + parse +
 * analyze in one call. This is the entry point the optimizer, the driver
 * compilers, and the corpus all use.
 */
#ifndef GSOPT_GLSL_FRONTEND_H
#define GSOPT_GLSL_FRONTEND_H

#include <map>
#include <memory>
#include <string>

#include "glsl/ast.h"
#include "glsl/preprocessor.h"
#include "glsl/sema.h"
#include "support/diag.h"

namespace gsopt::glsl {

/** A fully checked shader plus its interface and preprocessed text. */
struct CompiledShader
{
    Shader ast;
    ShaderInterface interface;
    std::string preprocessedText;
    int version = 0;
};

/**
 * Run the complete front end. Throws CompileError on any diagnostic of
 * error severity.
 *
 * @param source     raw GLSL text (may contain directives)
 * @param predefines externally injected macros (übershader specialisation)
 */
CompiledShader compileShader(
    const std::string &source,
    const std::map<std::string, std::string> &predefines = {});

/**
 * Non-throwing variant; returns nullptr on error and fills @p diags.
 */
std::unique_ptr<CompiledShader> tryCompileShader(
    const std::string &source,
    const std::map<std::string, std::string> &predefines,
    DiagEngine &diags);

} // namespace gsopt::glsl

#endif // GSOPT_GLSL_FRONTEND_H
