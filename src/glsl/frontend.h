/**
 * @file
 * Convenience facade over the GLSL front end: preprocess + lex + parse +
 * analyze in one call. This is the entry point the optimizer, the driver
 * compilers, and the corpus all use.
 */
#ifndef GSOPT_GLSL_FRONTEND_H
#define GSOPT_GLSL_FRONTEND_H

#include <map>
#include <memory>
#include <string>

#include "glsl/ast.h"
#include "glsl/preprocessor.h"
#include "glsl/sema.h"
#include "support/diag.h"

namespace gsopt::glsl {

/** A fully checked shader plus its interface and preprocessed text. */
struct CompiledShader
{
    Shader ast;
    ShaderInterface interface;
    std::string preprocessedText;
    int version = 0;
};

/**
 * Run the complete front end. Throws CompileError on any diagnostic of
 * error severity; warnings on a successful compile are delivered
 * through the support/diag warning sink (setWarningSink), never
 * silently dropped.
 *
 * Both entry points are governed admission points: when ambient
 * resource caps are configured (GSOPT_DEADLINE_MS / GSOPT_BUDGET_*, or
 * governor::ScopedAmbientCaps), each call gets a fresh budget and may
 * throw governor::ResourceExhausted naming the exhausted dimension.
 *
 * @param source     raw GLSL text (may contain directives)
 * @param predefines externally injected macros (übershader specialisation)
 */
CompiledShader compileShader(
    const std::string &source,
    const std::map<std::string, std::string> &predefines = {});

/**
 * Diagnostic-collecting variant; returns nullptr on error and fills
 * @p diags (the caller owns reporting, including warnings). Still
 * throws governor::ResourceExhausted under a configured budget.
 */
std::unique_ptr<CompiledShader> tryCompileShader(
    const std::string &source,
    const std::map<std::string, std::string> &predefines,
    DiagEngine &diags);

} // namespace gsopt::glsl

#endif // GSOPT_GLSL_FRONTEND_H
