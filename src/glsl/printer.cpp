#include "glsl/printer.h"



#include "support/strings.h"

namespace gsopt::glsl {

namespace {

/** Operator precedence for minimal parenthesisation. */
int
precedence(const Expr &e)
{
    switch (e.kind) {
      case ExprKind::Ternary:
        return 1;
      case ExprKind::Binary:
        switch (e.binaryOp) {
          case BinaryOp::LogicalOr: return 2;
          case BinaryOp::LogicalAnd: return 3;
          case BinaryOp::Eq:
          case BinaryOp::Ne: return 4;
          case BinaryOp::Lt:
          case BinaryOp::Le:
          case BinaryOp::Gt:
          case BinaryOp::Ge: return 5;
          case BinaryOp::Add:
          case BinaryOp::Sub: return 6;
          case BinaryOp::Mul:
          case BinaryOp::Div:
          case BinaryOp::Mod: return 7;
        }
        return 7;
      case ExprKind::Unary:
        return 8;
      default:
        return 9; // primary
    }
}

const char *
binOpSpelling(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add: return "+";
      case BinaryOp::Sub: return "-";
      case BinaryOp::Mul: return "*";
      case BinaryOp::Div: return "/";
      case BinaryOp::Mod: return "%";
      case BinaryOp::Lt: return "<";
      case BinaryOp::Le: return "<=";
      case BinaryOp::Gt: return ">";
      case BinaryOp::Ge: return ">=";
      case BinaryOp::Eq: return "==";
      case BinaryOp::Ne: return "!=";
      case BinaryOp::LogicalAnd: return "&&";
      case BinaryOp::LogicalOr: return "||";
    }
    return "?";
}

void
printExprInto(const Expr &e, StringBuilder &os, int parent_prec)
{
    const int prec = precedence(e);
    const bool parens = prec < parent_prec;
    if (parens)
        os << "(";
    switch (e.kind) {
      case ExprKind::IntLit:
        os << e.intValue;
        break;
      case ExprKind::FloatLit:
        os << formatGlslFloat(e.floatValue);
        break;
      case ExprKind::BoolLit:
        os << (e.boolValue ? "true" : "false");
        break;
      case ExprKind::VarRef:
        os << e.name;
        break;
      case ExprKind::Unary:
        os << (e.unaryOp == UnaryOp::Not ? "!" : "-");
        printExprInto(*e.args[0], os, prec + 1);
        break;
      case ExprKind::Binary:
        printExprInto(*e.args[0], os, prec);
        os << " " << binOpSpelling(e.binaryOp) << " ";
        // Right operand binds tighter to preserve evaluation order of
        // non-associative operators (a - (b - c) keeps its parens).
        printExprInto(*e.args[1], os, prec + 1);
        break;
      case ExprKind::Ternary:
        printExprInto(*e.args[0], os, prec + 1);
        os << " ? ";
        printExprInto(*e.args[1], os, prec);
        os << " : ";
        printExprInto(*e.args[2], os, prec);
        break;
      case ExprKind::Call: {
        os << e.name << "(";
        for (size_t i = 0; i < e.args.size(); ++i) {
            if (i)
                os << ", ";
            printExprInto(*e.args[i], os, 0);
        }
        os << ")";
        break;
      }
      case ExprKind::Construct: {
        if (e.ctorType.isArray()) {
            os << e.ctorType.elementType().str() << "[](";
        } else {
            os << e.ctorType.str() << "(";
        }
        for (size_t i = 0; i < e.args.size(); ++i) {
            if (i)
                os << ", ";
            printExprInto(*e.args[i], os, 0);
        }
        os << ")";
        break;
      }
      case ExprKind::Index:
        printExprInto(*e.args[0], os, prec);
        os << "[";
        printExprInto(*e.args[1], os, 0);
        os << "]";
        break;
      case ExprKind::Member:
        printExprInto(*e.args[0], os, prec);
        os << "." << e.name;
        break;
    }
    if (parens)
        os << ")";
}

void
printStmtInto(const Stmt &s, StringBuilder &os, int indent);

void
printBody(const std::vector<StmtPtr> &body, StringBuilder &os,
          int indent)
{
    // Flatten a body that is a single brace-block so that `if (c) { .. }`
    // does not print doubled braces and round-trips byte-identically.
    if (body.size() == 1 && body[0]->kind == StmtKind::Block &&
        !body[0]->transparent) {
        printBody(body[0]->body, os, indent);
        return;
    }
    os << "{\n";
    for (const auto &b : body)
        printStmtInto(*b, os, indent + 1);
    os.append(static_cast<size_t>(indent) * 4, ' ');
    os << "}";
}

const char *
assignSpelling(AssignOp op)
{
    switch (op) {
      case AssignOp::Assign: return "=";
      case AssignOp::AddAssign: return "+=";
      case AssignOp::SubAssign: return "-=";
      case AssignOp::MulAssign: return "*=";
      case AssignOp::DivAssign: return "/=";
    }
    return "=";
}

/** Declaration spelling with GLSL's postfix array syntax. */
std::string
declSpelling(const Type &ty, const std::string &name)
{
    if (ty.isArray()) {
        return ty.elementType().str() + " " + name + "[" +
               std::to_string(ty.arraySize) + "]";
    }
    return ty.str() + " " + name;
}

void
printStmtInto(const Stmt &s, StringBuilder &os, int indent)
{
    const auto pad = [&os, indent] {
        os.append(static_cast<size_t>(indent) * 4, ' ');
    };
    switch (s.kind) {
      case StmtKind::Block:
        if (s.transparent) {
            for (const auto &b : s.body)
                printStmtInto(*b, os, indent);
            break;
        }
        pad();
        printBody(s.body, os, indent);
        os << "\n";
        break;
      case StmtKind::Decl:
        pad();
        if (s.isConst)
            os << "const ";
        os << declSpelling(s.declType, s.name);
        if (s.rhs) {
            os << " = ";
            printExprInto(*s.rhs, os, 0);
        }
        os << ";\n";
        break;
      case StmtKind::Assign:
        pad();
        printExprInto(*s.lhs, os, 0);
        os << " " << assignSpelling(s.assignOp) << " ";
        printExprInto(*s.rhs, os, 0);
        os << ";\n";
        break;
      case StmtKind::ExprStmt:
        pad();
        printExprInto(*s.rhs, os, 0);
        os << ";\n";
        break;
      case StmtKind::If:
        pad();
        os << "if (";
        printExprInto(*s.cond, os, 0);
        os << ") ";
        printBody(s.body, os, indent);
        if (!s.elseBody.empty()) {
            os << " else ";
            printBody(s.elseBody, os, indent);
        }
        os << "\n";
        break;
      case StmtKind::For: {
        pad();
        os << "for (";
        if (s.init) {
            // Render the init inline without its newline/indent.
            StringBuilder tmp;
            printStmtInto(*s.init, tmp, 0);
            std::string text = tmp.take();
            while (!text.empty() &&
                   (text.back() == '\n' || text.back() == ';'))
                text.pop_back();
            os << text;
        }
        os << "; ";
        if (s.cond)
            printExprInto(*s.cond, os, 0);
        os << "; ";
        if (s.step) {
            StringBuilder tmp;
            printStmtInto(*s.step, tmp, 0);
            std::string text = tmp.take();
            while (!text.empty() &&
                   (text.back() == '\n' || text.back() == ';'))
                text.pop_back();
            os << text;
        }
        os << ") ";
        printBody(s.body, os, indent);
        os << "\n";
        break;
      }
      case StmtKind::While:
        pad();
        os << "while (";
        printExprInto(*s.cond, os, 0);
        os << ") ";
        printBody(s.body, os, indent);
        os << "\n";
        break;
      case StmtKind::Return:
        pad();
        os << "return";
        if (s.rhs) {
            os << " ";
            printExprInto(*s.rhs, os, 0);
        }
        os << ";\n";
        break;
      case StmtKind::Discard:
        pad();
        os << "discard;\n";
        break;
    }
}

const char *
qualSpelling(Qualifier q)
{
    switch (q) {
      case Qualifier::In: return "in ";
      case Qualifier::Out: return "out ";
      case Qualifier::Uniform: return "uniform ";
      case Qualifier::Const: return "const ";
      case Qualifier::Global: return "";
    }
    return "";
}

} // namespace

std::string
printExpr(const Expr &e)
{
    StringBuilder os;
    printExprInto(e, os, 0);
    return os.take();
}

std::string
printStmt(const Stmt &s, int indent)
{
    StringBuilder os;
    printStmtInto(s, os, indent);
    return os.take();
}

std::string
printShader(const Shader &shader)
{
    StringBuilder os;
    if (shader.version)
        os << "#version " << shader.version << "\n";
    for (const auto &g : shader.globals) {
        os << qualSpelling(g.qual) << declSpelling(g.type, g.name);
        if (g.init) {
            os << " = ";
            printExprInto(*g.init, os, 0);
        }
        os << ";\n";
    }
    for (const auto &f : shader.functions) {
        os << f.returnType.str() << " " << f.name << "(";
        for (size_t i = 0; i < f.params.size(); ++i) {
            if (i)
                os << ", ";
            os << declSpelling(f.params[i].type, f.params[i].name);
        }
        os << ") ";
        printBody(f.body->body, os, 0);
        os << "\n";
    }
    return os.take();
}

} // namespace gsopt::glsl
