/**
 * @file
 * A GLSL preprocessor. GFXBench-style "übershaders" are specialised via
 * `#define` / `#ifdef`, so faithful preprocessing is a prerequisite both
 * for building the corpus families and for the paper's "lines of code
 * after preprocessing" metric (Fig 4a).
 *
 * Supported directives: #version, #extension, #pragma (recorded or
 * ignored), #define (object- and function-like), #undef, #ifdef, #ifndef,
 * #if, #elif, #else, #endif, and backslash line continuations. `defined(X)`
 * and integer constant expressions are supported in #if/#elif.
 */
#ifndef GSOPT_GLSL_PREPROCESSOR_H
#define GSOPT_GLSL_PREPROCESSOR_H

#include <map>
#include <string>
#include <vector>

#include "support/diag.h"

namespace gsopt::glsl {

/** Output of a preprocessor run. */
struct PreprocessResult
{
    std::string text;   ///< directive-free GLSL source
    int version = 0;    ///< value of #version, 0 if absent
    std::vector<std::string> extensions; ///< raw #extension lines
};

/**
 * Run the preprocessor.
 *
 * @param source     raw GLSL text
 * @param predefines externally injected macros (name -> replacement);
 *                   an empty replacement defines a flag macro
 * @param diags      receives directive errors
 */
PreprocessResult preprocess(
    const std::string &source,
    const std::map<std::string, std::string> &predefines,
    DiagEngine &diags);

} // namespace gsopt::glsl

#endif // GSOPT_GLSL_PREPROCESSOR_H
