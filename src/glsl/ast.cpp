#include "glsl/ast.h"

namespace gsopt::glsl {

ExprPtr
Expr::makeFloat(double v, SourceLoc loc)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::FloatLit;
    e->loc = loc;
    e->floatValue = v;
    e->type = Type::floatTy();
    return e;
}

ExprPtr
Expr::makeInt(long v, SourceLoc loc)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::IntLit;
    e->loc = loc;
    e->intValue = v;
    e->floatValue = static_cast<double>(v);
    e->type = Type::intTy();
    return e;
}

ExprPtr
Expr::makeBool(bool v, SourceLoc loc)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::BoolLit;
    e->loc = loc;
    e->boolValue = v;
    e->type = Type::boolTy();
    return e;
}

ExprPtr
Expr::makeVarRef(std::string name, SourceLoc loc)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::VarRef;
    e->loc = loc;
    e->name = std::move(name);
    return e;
}

ExprPtr
Expr::clone() const
{
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->loc = loc;
    e->type = type;
    e->floatValue = floatValue;
    e->intValue = intValue;
    e->boolValue = boolValue;
    e->name = name;
    e->unaryOp = unaryOp;
    e->binaryOp = binaryOp;
    e->ctorType = ctorType;
    e->args.reserve(args.size());
    for (const auto &a : args)
        e->args.push_back(a->clone());
    return e;
}

StmtPtr
Stmt::make(StmtKind kind, SourceLoc loc)
{
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->loc = loc;
    return s;
}

StmtPtr
Stmt::clone() const
{
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->loc = loc;
    s->declType = declType;
    s->name = name;
    s->isConst = isConst;
    s->transparent = transparent;
    s->assignOp = assignOp;
    if (lhs)
        s->lhs = lhs->clone();
    if (rhs)
        s->rhs = rhs->clone();
    if (cond)
        s->cond = cond->clone();
    if (init)
        s->init = init->clone();
    if (step)
        s->step = step->clone();
    s->body.reserve(body.size());
    for (const auto &b : body)
        s->body.push_back(b->clone());
    s->elseBody.reserve(elseBody.size());
    for (const auto &b : elseBody)
        s->elseBody.push_back(b->clone());
    return s;
}

const FunctionDecl *
Shader::findFunction(const std::string &name) const
{
    for (const auto &f : functions) {
        if (f.name == name)
            return &f;
    }
    return nullptr;
}

const GlobalDecl *
Shader::findGlobal(const std::string &name) const
{
    for (const auto &g : globals) {
        if (g.name == name)
            return &g;
    }
    return nullptr;
}

} // namespace gsopt::glsl
