#include "glsl/parser.h"

#include <optional>

#include "support/governor.h"

namespace gsopt::glsl {

namespace {

bool
isPrecisionWord(const std::string &w)
{
    return w == "highp" || w == "mediump" || w == "lowp";
}

bool
isInterpolationWord(const std::string &w)
{
    return w == "flat" || w == "smooth" || w == "noperspective" ||
           w == "invariant";
}

/** The recursive-descent parser proper. */
class Parser
{
  public:
    Parser(const std::vector<Token> &tokens, DiagEngine &diags)
        : toks_(tokens), diags_(diags)
    {
    }

    Shader parse()
    {
        Shader shader;
        while (!peek().is(TokKind::End)) {
            size_t before = pos_;
            parseTopLevel(shader);
            if (pos_ == before) {
                // Defensive: never loop without progress.
                error("unexpected token");
                ++pos_;
            }
            if (diags_.hasErrors())
                break;
        }
        return shader;
    }

  private:
    // -- token helpers --------------------------------------------------
    const Token &peek(size_t ahead = 0) const
    {
        size_t i = pos_ + ahead;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }
    const Token &advance()
    {
        const Token &t = peek();
        if (pos_ < toks_.size() - 1)
            ++pos_;
        return t;
    }
    bool check(TokKind kind) const { return peek().is(kind); }
    bool accept(TokKind kind)
    {
        if (check(kind)) {
            advance();
            return true;
        }
        return false;
    }
    const Token &expect(TokKind kind, const char *ctx)
    {
        if (!check(kind)) {
            error(std::string("expected ") + tokKindName(kind) + " " +
                  ctx + ", got " + tokKindName(peek().kind) +
                  (peek().kind == TokKind::Identifier
                       ? " '" + peek().text + "'"
                       : ""));
        }
        return advance();
    }
    void error(const std::string &msg) { diags_.error(peek().loc, msg); }

    // -- nesting governance ----------------------------------------------
    // Recursive descent turns input nesting into C++ stack depth. The
    // built-in cap turns a nesting bomb into a clean diagnostic well
    // before the stack overflows (even ungoverned); the governed cap
    // (Dim::ParseDepth) lets a budget reject far shallower with a
    // structured ResourceExhausted. Depth counts statement and
    // expression levels combined.
    static constexpr int kMaxNesting = 1024;
    struct NestingGuard
    {
        Parser &p;
        explicit NestingGuard(Parser &parser) : p(parser)
        {
            governor::checkDepth(governor::Dim::ParseDepth,
                                 static_cast<uint64_t>(++p.depth_),
                                 "parse");
        }
        ~NestingGuard() { --p.depth_; }

        /** Past the built-in cap? Diagnoses once; the caller must then
         * return a stub without recursing further. */
        bool tooDeep() const
        {
            if (p.depth_ <= kMaxNesting)
                return false;
            if (!p.deepDiagnosed_) {
                p.deepDiagnosed_ = true;
                p.error("nesting too deep (more than " +
                        std::to_string(kMaxNesting) + " levels)");
            }
            return true;
        }
    };

    // -- qualifiers / types ---------------------------------------------
    void skipPrecisionAndInterp()
    {
        while (check(TokKind::Identifier) &&
               (isPrecisionWord(peek().text) ||
                isInterpolationWord(peek().text))) {
            advance();
        }
    }

    /** Skip a layout(...) qualifier if present. */
    void skipLayout()
    {
        if (check(TokKind::Identifier) && peek().text == "layout" &&
            peek(1).is(TokKind::LParen)) {
            advance();
            advance();
            int depth = 1;
            while (depth > 0 && !check(TokKind::End)) {
                if (accept(TokKind::LParen))
                    ++depth;
                else if (accept(TokKind::RParen))
                    --depth;
                else
                    advance();
            }
        }
    }

    /** True if the current identifier token names a type. */
    bool atType(size_t ahead = 0) const
    {
        return peek(ahead).is(TokKind::Identifier) &&
               isTypeKeyword(peek(ahead).text);
    }

    /**
     * Parse a type spelled as keyword plus optional `[N]` / `[]` array
     * suffix directly after the keyword (GLSL also allows the suffix
     * after the declarator name; callers handle that case).
     */
    Type parseType()
    {
        skipPrecisionAndInterp();
        const Token &t = expect(TokKind::Identifier, "as type");
        Type ty = typeFromKeyword(t.text);
        if (ty.isVoid() && t.text != "void")
            diags_.error(t.loc, "unknown type '" + t.text + "'");
        if (check(TokKind::LBracket)) {
            advance();
            if (check(TokKind::IntLit)) {
                ty = ty.array(static_cast<int>(advance().intValue));
            } else {
                ty = ty.array(-1); // unsized; resolved from initialiser
            }
            expect(TokKind::RBracket, "after array size");
        }
        return ty;
    }

    // -- top level --------------------------------------------------------
    void parseTopLevel(Shader &shader)
    {
        skipLayout();
        skipPrecisionAndInterp();

        // `precision highp float;` statements.
        if (peek().isIdent("precision")) {
            while (!check(TokKind::Semicolon) && !check(TokKind::End))
                advance();
            accept(TokKind::Semicolon);
            return;
        }

        Qualifier qual = Qualifier::Global;
        for (;;) {
            if (peek().isIdent("in") || peek().isIdent("varying")) {
                qual = Qualifier::In;
                advance();
            } else if (peek().isIdent("out")) {
                qual = Qualifier::Out;
                advance();
            } else if (peek().isIdent("uniform")) {
                qual = Qualifier::Uniform;
                advance();
            } else if (peek().isIdent("const")) {
                qual = Qualifier::Const;
                advance();
            } else if (check(TokKind::Identifier) &&
                       (isPrecisionWord(peek().text) ||
                        isInterpolationWord(peek().text))) {
                advance();
            } else {
                break;
            }
        }

        Type type = parseType();
        const Token &name_tok =
            expect(TokKind::Identifier, "as declaration name");
        std::string name = name_tok.text;

        if (check(TokKind::LParen)) {
            parseFunction(shader, type, name, name_tok.loc);
            return;
        }

        // Possibly a list of declarators: `in vec2 uv, uv2;`
        for (;;) {
            GlobalDecl g;
            g.qual = qual;
            g.type = type;
            g.name = name;
            g.loc = name_tok.loc;
            if (check(TokKind::LBracket)) {
                advance();
                if (check(TokKind::IntLit))
                    g.type = g.type.array(
                        static_cast<int>(advance().intValue));
                else
                    g.type = g.type.array(-1);
                expect(TokKind::RBracket, "after array size");
            }
            if (accept(TokKind::Assign))
                g.init = parseAssignmentSource();
            shader.globals.push_back(std::move(g));
            if (accept(TokKind::Comma)) {
                name = expect(TokKind::Identifier,
                              "in declarator list")
                           .text;
                continue;
            }
            break;
        }
        expect(TokKind::Semicolon, "after declaration");
    }

    void parseFunction(Shader &shader, Type ret, std::string name,
                       SourceLoc loc)
    {
        FunctionDecl fn;
        fn.returnType = ret;
        fn.name = std::move(name);
        fn.loc = loc;
        expect(TokKind::LParen, "in function declaration");
        if (!check(TokKind::RParen)) {
            for (;;) {
                skipPrecisionAndInterp();
                if (peek().isIdent("in"))
                    advance();
                else if (peek().isIdent("out") ||
                         peek().isIdent("inout"))
                    error("out/inout parameters are not supported");
                if (peek().isIdent("void") &&
                    peek(1).is(TokKind::RParen)) {
                    advance();
                    break;
                }
                ParamDecl p;
                p.type = parseType();
                p.name = expect(TokKind::Identifier,
                                "as parameter name")
                             .text;
                if (check(TokKind::LBracket)) {
                    advance();
                    if (check(TokKind::IntLit))
                        p.type = p.type.array(
                            static_cast<int>(advance().intValue));
                    expect(TokKind::RBracket, "after array size");
                }
                fn.params.push_back(std::move(p));
                if (!accept(TokKind::Comma))
                    break;
            }
        }
        expect(TokKind::RParen, "after parameters");
        if (accept(TokKind::Semicolon))
            return; // forward declaration: body comes later
        fn.body = parseBlock();
        shader.functions.push_back(std::move(fn));
    }

    // -- statements -------------------------------------------------------
    StmtPtr parseBlock()
    {
        auto block = Stmt::make(StmtKind::Block, peek().loc);
        expect(TokKind::LBrace, "to open block");
        while (!check(TokKind::RBrace) && !check(TokKind::End)) {
            size_t before = pos_;
            block->body.push_back(parseStatement());
            if (diags_.hasErrors())
                break;
            if (pos_ == before)
                ++pos_;
        }
        expect(TokKind::RBrace, "to close block");
        return block;
    }

    StmtPtr parseStatement()
    {
        NestingGuard guard(*this);
        const SourceLoc loc = peek().loc;
        if (guard.tooDeep())
            return Stmt::make(StmtKind::Block, loc);
        if (check(TokKind::LBrace))
            return parseBlock();
        if (peek().isIdent("if"))
            return parseIf();
        if (peek().isIdent("for"))
            return parseFor();
        if (peek().isIdent("while"))
            return parseWhile();
        if (peek().isIdent("return")) {
            advance();
            auto s = Stmt::make(StmtKind::Return, loc);
            if (!check(TokKind::Semicolon))
                s->rhs = parseExpr();
            expect(TokKind::Semicolon, "after return");
            return s;
        }
        if (peek().isIdent("discard")) {
            advance();
            expect(TokKind::Semicolon, "after discard");
            return Stmt::make(StmtKind::Discard, loc);
        }
        if (peek().isIdent("break") || peek().isIdent("continue")) {
            error("break/continue are not supported in this subset");
            advance();
            accept(TokKind::Semicolon);
            return Stmt::make(StmtKind::Block, loc);
        }
        // Declaration?
        bool is_const = false;
        size_t save = pos_;
        skipPrecisionAndInterp();
        if (peek().isIdent("const")) {
            is_const = true;
            advance();
            skipPrecisionAndInterp();
        }
        if (atType()) {
            // Distinguish `vec4 x ...` (decl) from `vec4(...)` (expr).
            // After the type keyword we may see `[N]` (array type). A
            // declaration follows with an identifier.
            size_t ahead = 1;
            if (peek(ahead).is(TokKind::LBracket)) {
                size_t a = ahead + 1;
                while (!peek(a).is(TokKind::RBracket) &&
                       !peek(a).is(TokKind::End))
                    ++a;
                ahead = a + 1;
            }
            if (peek(ahead).is(TokKind::Identifier) &&
                !isTypeKeyword(peek(ahead).text)) {
                return parseDecl(is_const, loc);
            }
        }
        pos_ = save;
        return parseExprOrAssign(loc);
    }

    StmtPtr parseDecl(bool is_const, SourceLoc loc)
    {
        Type type = parseType();
        auto first = parseSingleDeclarator(type, is_const, loc);
        if (!check(TokKind::Comma)) {
            expect(TokKind::Semicolon, "after declaration");
            return first;
        }
        // Multiple declarators expand into a scope-transparent block.
        auto block = Stmt::make(StmtKind::Block, loc);
        block->transparent = true;
        block->body.push_back(std::move(first));
        while (accept(TokKind::Comma))
            block->body.push_back(
                parseSingleDeclarator(type, is_const, peek().loc));
        expect(TokKind::Semicolon, "after declaration");
        return block;
    }

    StmtPtr parseSingleDeclarator(Type type, bool is_const, SourceLoc loc)
    {
        auto s = Stmt::make(StmtKind::Decl, loc);
        s->isConst = is_const;
        s->declType = type;
        s->name = expect(TokKind::Identifier, "as variable name").text;
        if (check(TokKind::LBracket)) {
            advance();
            if (check(TokKind::IntLit))
                s->declType = s->declType.array(
                    static_cast<int>(advance().intValue));
            else
                s->declType = s->declType.array(-1);
            expect(TokKind::RBracket, "after array size");
        }
        if (accept(TokKind::Assign))
            s->rhs = parseAssignmentSource();
        return s;
    }

    /** Initialiser value: a normal expression (array ctors included). */
    ExprPtr parseAssignmentSource() { return parseExpr(); }

    StmtPtr parseIf()
    {
        const SourceLoc loc = peek().loc;
        advance(); // if
        expect(TokKind::LParen, "after 'if'");
        auto s = Stmt::make(StmtKind::If, loc);
        s->cond = parseExpr();
        expect(TokKind::RParen, "after if condition");
        s->body.push_back(parseStatement());
        if (peek().isIdent("else")) {
            advance();
            s->elseBody.push_back(parseStatement());
        }
        return s;
    }

    StmtPtr parseFor()
    {
        const SourceLoc loc = peek().loc;
        advance(); // for
        expect(TokKind::LParen, "after 'for'");
        auto s = Stmt::make(StmtKind::For, loc);
        if (!accept(TokKind::Semicolon)) {
            if (atType() ||
                (peek().isIdent("const")) ||
                (check(TokKind::Identifier) &&
                 isPrecisionWord(peek().text))) {
                bool is_const = false;
                if (peek().isIdent("const")) {
                    is_const = true;
                    advance();
                }
                s->init = parseDecl(is_const, peek().loc);
            } else {
                s->init = parseExprOrAssign(peek().loc);
            }
        }
        if (!check(TokKind::Semicolon))
            s->cond = parseExpr();
        expect(TokKind::Semicolon, "after for condition");
        if (!check(TokKind::RParen))
            s->step = parseExprOrAssignNoSemi(peek().loc);
        expect(TokKind::RParen, "after for header");
        s->body.push_back(parseStatement());
        return s;
    }

    StmtPtr parseWhile()
    {
        const SourceLoc loc = peek().loc;
        advance(); // while
        expect(TokKind::LParen, "after 'while'");
        auto s = Stmt::make(StmtKind::While, loc);
        s->cond = parseExpr();
        expect(TokKind::RParen, "after while condition");
        s->body.push_back(parseStatement());
        return s;
    }

    StmtPtr parseExprOrAssign(SourceLoc loc)
    {
        auto s = parseExprOrAssignNoSemi(loc);
        expect(TokKind::Semicolon, "after statement");
        return s;
    }

    StmtPtr parseExprOrAssignNoSemi(SourceLoc loc)
    {
        // Prefix increment/decrement.
        if (check(TokKind::PlusPlus) || check(TokKind::MinusMinus)) {
            bool inc = advance().is(TokKind::PlusPlus);
            ExprPtr target = parseUnary();
            return makeIncDec(std::move(target), inc, loc);
        }
        ExprPtr e = parseExpr();
        if (check(TokKind::Assign) || check(TokKind::PlusAssign) ||
            check(TokKind::MinusAssign) || check(TokKind::StarAssign) ||
            check(TokKind::SlashAssign)) {
            TokKind k = advance().kind;
            auto s = Stmt::make(StmtKind::Assign, loc);
            s->lhs = std::move(e);
            s->assignOp = k == TokKind::Assign        ? AssignOp::Assign
                          : k == TokKind::PlusAssign  ? AssignOp::AddAssign
                          : k == TokKind::MinusAssign ? AssignOp::SubAssign
                          : k == TokKind::StarAssign  ? AssignOp::MulAssign
                                                      : AssignOp::DivAssign;
            s->rhs = parseExpr();
            return s;
        }
        if (check(TokKind::PlusPlus) || check(TokKind::MinusMinus)) {
            bool inc = advance().is(TokKind::PlusPlus);
            return makeIncDec(std::move(e), inc, loc);
        }
        auto s = Stmt::make(StmtKind::ExprStmt, loc);
        s->rhs = std::move(e);
        return s;
    }

    StmtPtr makeIncDec(ExprPtr target, bool inc, SourceLoc loc)
    {
        auto s = Stmt::make(StmtKind::Assign, loc);
        s->assignOp = inc ? AssignOp::AddAssign : AssignOp::SubAssign;
        s->lhs = std::move(target);
        s->rhs = Expr::makeInt(1, loc);
        return s;
    }

    // -- expressions ------------------------------------------------------
    ExprPtr parseExpr() { return parseTernary(); }

    ExprPtr parseTernary()
    {
        ExprPtr cond = parseLogicalOr();
        if (!accept(TokKind::Question))
            return cond;
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Ternary;
        e->loc = cond->loc;
        e->args.push_back(std::move(cond));
        e->args.push_back(parseExpr());
        expect(TokKind::Colon, "in ternary expression");
        e->args.push_back(parseExpr());
        return e;
    }

    ExprPtr makeBinary(BinaryOp op, ExprPtr a, ExprPtr b)
    {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Binary;
        e->binaryOp = op;
        e->loc = a->loc;
        e->args.push_back(std::move(a));
        e->args.push_back(std::move(b));
        return e;
    }

    ExprPtr parseLogicalOr()
    {
        ExprPtr e = parseLogicalAnd();
        while (accept(TokKind::PipePipe))
            e = makeBinary(BinaryOp::LogicalOr, std::move(e),
                           parseLogicalAnd());
        return e;
    }

    ExprPtr parseLogicalAnd()
    {
        ExprPtr e = parseEquality();
        while (accept(TokKind::AmpAmp))
            e = makeBinary(BinaryOp::LogicalAnd, std::move(e),
                           parseEquality());
        return e;
    }

    ExprPtr parseEquality()
    {
        ExprPtr e = parseRelational();
        for (;;) {
            if (accept(TokKind::EqEq))
                e = makeBinary(BinaryOp::Eq, std::move(e),
                               parseRelational());
            else if (accept(TokKind::NotEq))
                e = makeBinary(BinaryOp::Ne, std::move(e),
                               parseRelational());
            else
                break;
        }
        return e;
    }

    ExprPtr parseRelational()
    {
        ExprPtr e = parseAdditive();
        for (;;) {
            if (accept(TokKind::Less))
                e = makeBinary(BinaryOp::Lt, std::move(e),
                               parseAdditive());
            else if (accept(TokKind::Greater))
                e = makeBinary(BinaryOp::Gt, std::move(e),
                               parseAdditive());
            else if (accept(TokKind::LessEq))
                e = makeBinary(BinaryOp::Le, std::move(e),
                               parseAdditive());
            else if (accept(TokKind::GreaterEq))
                e = makeBinary(BinaryOp::Ge, std::move(e),
                               parseAdditive());
            else
                break;
        }
        return e;
    }

    ExprPtr parseAdditive()
    {
        ExprPtr e = parseMultiplicative();
        for (;;) {
            if (accept(TokKind::Plus))
                e = makeBinary(BinaryOp::Add, std::move(e),
                               parseMultiplicative());
            else if (accept(TokKind::Minus))
                e = makeBinary(BinaryOp::Sub, std::move(e),
                               parseMultiplicative());
            else
                break;
        }
        return e;
    }

    ExprPtr parseMultiplicative()
    {
        ExprPtr e = parseUnary();
        for (;;) {
            if (accept(TokKind::Star))
                e = makeBinary(BinaryOp::Mul, std::move(e), parseUnary());
            else if (accept(TokKind::Slash))
                e = makeBinary(BinaryOp::Div, std::move(e), parseUnary());
            else if (accept(TokKind::Percent))
                e = makeBinary(BinaryOp::Mod, std::move(e), parseUnary());
            else
                break;
        }
        return e;
    }

    ExprPtr parseUnary()
    {
        NestingGuard guard(*this);
        const SourceLoc loc = peek().loc;
        if (guard.tooDeep())
            return Expr::makeFloat(0.0, loc);
        if (accept(TokKind::Minus)) {
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::Unary;
            e->unaryOp = UnaryOp::Neg;
            e->loc = loc;
            e->args.push_back(parseUnary());
            return e;
        }
        if (accept(TokKind::Plus))
            return parseUnary();
        if (accept(TokKind::Bang)) {
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::Unary;
            e->unaryOp = UnaryOp::Not;
            e->loc = loc;
            e->args.push_back(parseUnary());
            return e;
        }
        if (check(TokKind::PlusPlus) || check(TokKind::MinusMinus)) {
            error("increment/decrement is only supported as a statement");
            advance();
            return parseUnary();
        }
        return parsePostfix();
    }

    ExprPtr parsePostfix()
    {
        ExprPtr e = parsePrimary();
        for (;;) {
            if (check(TokKind::LBracket)) {
                advance();
                auto idx = std::make_unique<Expr>();
                idx->kind = ExprKind::Index;
                idx->loc = e->loc;
                idx->args.push_back(std::move(e));
                idx->args.push_back(parseExpr());
                expect(TokKind::RBracket, "after index");
                e = std::move(idx);
            } else if (check(TokKind::Dot)) {
                advance();
                auto mem = std::make_unique<Expr>();
                mem->kind = ExprKind::Member;
                mem->loc = e->loc;
                mem->name = expect(TokKind::Identifier,
                                   "after '.'")
                                .text;
                mem->args.push_back(std::move(e));
                e = std::move(mem);
            } else {
                break;
            }
        }
        return e;
    }

    ExprPtr parsePrimary()
    {
        const Token &t = peek();
        const SourceLoc loc = t.loc;
        if (t.is(TokKind::IntLit)) {
            advance();
            return Expr::makeInt(t.intValue, loc);
        }
        if (t.is(TokKind::FloatLit)) {
            advance();
            return Expr::makeFloat(t.floatValue, loc);
        }
        if (t.is(TokKind::LParen)) {
            advance();
            ExprPtr e = parseExpr();
            expect(TokKind::RParen, "to close parenthesis");
            return e;
        }
        if (t.is(TokKind::Identifier)) {
            if (t.text == "true") {
                advance();
                return Expr::makeBool(true, loc);
            }
            if (t.text == "false") {
                advance();
                return Expr::makeBool(false, loc);
            }
            if (isPrecisionWord(t.text)) {
                advance();
                return parsePrimary();
            }
            if (isTypeKeyword(t.text) && t.text != "void") {
                return parseConstructor();
            }
            advance();
            if (check(TokKind::LParen)) {
                advance();
                auto call = std::make_unique<Expr>();
                call->kind = ExprKind::Call;
                call->name = t.text;
                call->loc = loc;
                if (!check(TokKind::RParen)) {
                    for (;;) {
                        call->args.push_back(parseExpr());
                        if (!accept(TokKind::Comma))
                            break;
                    }
                }
                expect(TokKind::RParen, "after call arguments");
                return call;
            }
            return Expr::makeVarRef(t.text, loc);
        }
        error(std::string("unexpected token ") + tokKindName(t.kind) +
              " in expression");
        advance();
        return Expr::makeFloat(0.0, loc);
    }

    /**
     * Constructor expression: `vec4(...)`, `mat3(...)`, `float(...)`,
     * or array constructors `vec4[](...)` / `vec4[9](...)`.
     */
    ExprPtr parseConstructor()
    {
        const Token &t = advance();
        Type ty = typeFromKeyword(t.text);
        if (check(TokKind::LBracket)) {
            advance();
            if (check(TokKind::IntLit))
                ty = ty.array(static_cast<int>(advance().intValue));
            else
                ty = ty.array(-1);
            expect(TokKind::RBracket, "in array constructor");
        }
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Construct;
        e->ctorType = ty;
        e->loc = t.loc;
        expect(TokKind::LParen, "in constructor");
        if (!check(TokKind::RParen)) {
            for (;;) {
                e->args.push_back(parseExpr());
                if (!accept(TokKind::Comma))
                    break;
            }
        }
        expect(TokKind::RParen, "after constructor arguments");
        if (e->ctorType.isArray() && e->ctorType.arraySize < 0)
            e->ctorType.arraySize = static_cast<int>(e->args.size());
        return e;
    }

    const std::vector<Token> &toks_;
    DiagEngine &diags_;
    size_t pos_ = 0;
    int depth_ = 0;
    bool deepDiagnosed_ = false;
};

} // namespace

Shader
parseShader(const std::vector<Token> &tokens, DiagEngine &diags)
{
    Parser parser(tokens, diags);
    return parser.parse();
}

} // namespace gsopt::glsl
