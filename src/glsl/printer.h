/**
 * @file
 * AST pretty-printer: renders a (possibly optimised) Shader back to GLSL
 * source text. The output is deterministic, which makes it usable as the
 * textual identity key for the paper's unique-variant counting (Fig 4c).
 */
#ifndef GSOPT_GLSL_PRINTER_H
#define GSOPT_GLSL_PRINTER_H

#include <string>

#include "glsl/ast.h"

namespace gsopt::glsl {

/** Render a full shader (version line, globals, functions). */
std::string printShader(const Shader &shader);

/** Render a single expression (used in tests and debugging). */
std::string printExpr(const Expr &e);

/** Render a single statement at the given indent level. */
std::string printStmt(const Stmt &s, int indent = 0);

} // namespace gsopt::glsl

#endif // GSOPT_GLSL_PRINTER_H
