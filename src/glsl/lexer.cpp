#include "glsl/lexer.h"

#include <cctype>
#include <cstdlib>

#include "support/governor.h"

namespace gsopt::glsl {

const char *
tokKindName(TokKind kind)
{
    switch (kind) {
      case TokKind::End: return "end of input";
      case TokKind::Identifier: return "identifier";
      case TokKind::IntLit: return "integer literal";
      case TokKind::FloatLit: return "float literal";
      case TokKind::LParen: return "'('";
      case TokKind::RParen: return "')'";
      case TokKind::LBrace: return "'{'";
      case TokKind::RBrace: return "'}'";
      case TokKind::LBracket: return "'['";
      case TokKind::RBracket: return "']'";
      case TokKind::Comma: return "','";
      case TokKind::Semicolon: return "';'";
      case TokKind::Dot: return "'.'";
      case TokKind::Question: return "'?'";
      case TokKind::Colon: return "':'";
      case TokKind::Plus: return "'+'";
      case TokKind::Minus: return "'-'";
      case TokKind::Star: return "'*'";
      case TokKind::Slash: return "'/'";
      case TokKind::Percent: return "'%'";
      case TokKind::PlusPlus: return "'++'";
      case TokKind::MinusMinus: return "'--'";
      case TokKind::Assign: return "'='";
      case TokKind::PlusAssign: return "'+='";
      case TokKind::MinusAssign: return "'-='";
      case TokKind::StarAssign: return "'*='";
      case TokKind::SlashAssign: return "'/='";
      case TokKind::EqEq: return "'=='";
      case TokKind::NotEq: return "'!='";
      case TokKind::Less: return "'<'";
      case TokKind::Greater: return "'>'";
      case TokKind::LessEq: return "'<='";
      case TokKind::GreaterEq: return "'>='";
      case TokKind::AmpAmp: return "'&&'";
      case TokKind::PipePipe: return "'||'";
      case TokKind::Bang: return "'!'";
    }
    return "?";
}

namespace {

/** Cursor over the raw source with line/column tracking. */
class Cursor
{
  public:
    Cursor(const std::string &src) : src_(src) {}

    bool atEnd() const { return pos_ >= src_.size(); }
    char peek(size_t ahead = 0) const
    {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }
    char advance()
    {
        char c = src_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }
    SourceLoc loc() const { return {line_, col_}; }

  private:
    const std::string &src_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

} // namespace

std::vector<Token>
lex(const std::string &source, DiagEngine &diags)
{
    std::vector<Token> out;
    Cursor cur(source);

    // Every emitted token is charged to the ambient budget (the charge
    // path also re-checks the deadline periodically, so a giant source
    // cannot outrun a governed deadline between tokens).
    auto push = [&](TokKind kind, SourceLoc loc, std::string text = "") {
        governor::charge(governor::Dim::Tokens, 1, "lex");
        Token t;
        t.kind = kind;
        t.loc = loc;
        t.text = std::move(text);
        out.push_back(std::move(t));
    };

    while (!cur.atEnd()) {
        const SourceLoc loc = cur.loc();
        char c = cur.peek();

        if (std::isspace(static_cast<unsigned char>(c))) {
            cur.advance();
            continue;
        }
        // Comments.
        if (c == '/' && cur.peek(1) == '/') {
            while (!cur.atEnd() && cur.peek() != '\n')
                cur.advance();
            continue;
        }
        if (c == '/' && cur.peek(1) == '*') {
            cur.advance();
            cur.advance();
            while (!cur.atEnd() &&
                   !(cur.peek() == '*' && cur.peek(1) == '/')) {
                cur.advance();
            }
            if (cur.atEnd()) {
                diags.error(loc, "unterminated block comment");
            } else {
                cur.advance();
                cur.advance();
            }
            continue;
        }
        // Identifiers and keywords.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string word;
            while (!cur.atEnd() &&
                   (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
                    cur.peek() == '_')) {
                word += cur.advance();
            }
            push(TokKind::Identifier, loc, std::move(word));
            continue;
        }
        // Numeric literals: ints, floats (with '.', exponent, 'f' suffix).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
            std::string num;
            bool is_float = false;
            while (!cur.atEnd() &&
                   std::isdigit(static_cast<unsigned char>(cur.peek())))
                num += cur.advance();
            if (cur.peek() == '.') {
                is_float = true;
                num += cur.advance();
                while (!cur.atEnd() &&
                       std::isdigit(
                           static_cast<unsigned char>(cur.peek())))
                    num += cur.advance();
            }
            if (cur.peek() == 'e' || cur.peek() == 'E') {
                is_float = true;
                num += cur.advance();
                if (cur.peek() == '+' || cur.peek() == '-')
                    num += cur.advance();
                if (!std::isdigit(static_cast<unsigned char>(cur.peek())))
                    diags.error(cur.loc(), "missing exponent digits");
                while (!cur.atEnd() &&
                       std::isdigit(
                           static_cast<unsigned char>(cur.peek())))
                    num += cur.advance();
            }
            if (cur.peek() == 'f' || cur.peek() == 'F') {
                is_float = true;
                cur.advance();
            } else if (cur.peek() == 'u' || cur.peek() == 'U') {
                cur.advance(); // treat uint literals as int
            }
            governor::charge(governor::Dim::Tokens, 1, "lex");
            Token t;
            t.loc = loc;
            t.text = num;
            if (is_float) {
                t.kind = TokKind::FloatLit;
                t.floatValue = std::strtod(num.c_str(), nullptr);
            } else {
                t.kind = TokKind::IntLit;
                t.intValue = std::strtol(num.c_str(), nullptr, 10);
                t.floatValue = static_cast<double>(t.intValue);
            }
            out.push_back(std::move(t));
            continue;
        }

        cur.advance();
        switch (c) {
          case '(': push(TokKind::LParen, loc); break;
          case ')': push(TokKind::RParen, loc); break;
          case '{': push(TokKind::LBrace, loc); break;
          case '}': push(TokKind::RBrace, loc); break;
          case '[': push(TokKind::LBracket, loc); break;
          case ']': push(TokKind::RBracket, loc); break;
          case ',': push(TokKind::Comma, loc); break;
          case ';': push(TokKind::Semicolon, loc); break;
          case '.': push(TokKind::Dot, loc); break;
          case '?': push(TokKind::Question, loc); break;
          case ':': push(TokKind::Colon, loc); break;
          case '%': push(TokKind::Percent, loc); break;
          case '+':
            if (cur.peek() == '+') {
                cur.advance();
                push(TokKind::PlusPlus, loc);
            } else if (cur.peek() == '=') {
                cur.advance();
                push(TokKind::PlusAssign, loc);
            } else {
                push(TokKind::Plus, loc);
            }
            break;
          case '-':
            if (cur.peek() == '-') {
                cur.advance();
                push(TokKind::MinusMinus, loc);
            } else if (cur.peek() == '=') {
                cur.advance();
                push(TokKind::MinusAssign, loc);
            } else {
                push(TokKind::Minus, loc);
            }
            break;
          case '*':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokKind::StarAssign, loc);
            } else {
                push(TokKind::Star, loc);
            }
            break;
          case '/':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokKind::SlashAssign, loc);
            } else {
                push(TokKind::Slash, loc);
            }
            break;
          case '=':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokKind::EqEq, loc);
            } else {
                push(TokKind::Assign, loc);
            }
            break;
          case '!':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokKind::NotEq, loc);
            } else {
                push(TokKind::Bang, loc);
            }
            break;
          case '<':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokKind::LessEq, loc);
            } else {
                push(TokKind::Less, loc);
            }
            break;
          case '>':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokKind::GreaterEq, loc);
            } else {
                push(TokKind::Greater, loc);
            }
            break;
          case '&':
            if (cur.peek() == '&') {
                cur.advance();
                push(TokKind::AmpAmp, loc);
            } else {
                diags.error(loc, "bitwise '&' is not supported");
            }
            break;
          case '|':
            if (cur.peek() == '|') {
                cur.advance();
                push(TokKind::PipePipe, loc);
            } else {
                diags.error(loc, "bitwise '|' is not supported");
            }
            break;
          default:
            diags.error(loc, std::string("unexpected character '") + c +
                                 "'");
            break;
        }
    }

    Token end;
    end.kind = TokKind::End;
    end.loc = cur.loc();
    out.push_back(std::move(end));
    return out;
}

} // namespace gsopt::glsl
