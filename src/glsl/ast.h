/**
 * @file
 * Abstract syntax tree for the GLSL subset. Nodes are tagged structs
 * (ExprKind / StmtKind discriminators) rather than a class hierarchy; the
 * tree is owned top-down through unique_ptr.
 *
 * The subset covers everything fragment shaders in the corpus use:
 * expressions over scalars/vectors/matrices/arrays, swizzles, constructor
 * and builtin calls, if/else, for/while loops, user functions, in/out/
 * uniform/const globals, `discard`, and const array initialisers
 * (`vec4[](...)`). Structs, switch, and bit operations are out of scope.
 */
#ifndef GSOPT_GLSL_AST_H
#define GSOPT_GLSL_AST_H

#include <memory>
#include <string>
#include <vector>

#include "glsl/type.h"
#include "support/diag.h"

namespace gsopt::glsl {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/** Expression node discriminator. */
enum class ExprKind {
    IntLit,
    FloatLit,
    BoolLit,
    VarRef,   ///< name
    Unary,    ///< unaryOp, args[0]
    Binary,   ///< binaryOp, args[0], args[1]
    Ternary,  ///< args[0] ? args[1] : args[2]
    Call,     ///< builtin or user function: name, args
    Construct,///< type constructor: ctorType, args (also array init)
    Index,    ///< args[0] [ args[1] ]
    Member,   ///< args[0] . name   (vector swizzle)
};

enum class UnaryOp { Neg, Not, Plus };

enum class BinaryOp {
    Add, Sub, Mul, Div, Mod,
    Lt, Le, Gt, Ge, Eq, Ne,
    LogicalAnd, LogicalOr,
};

/** A GLSL expression. Field use depends on `kind` (see ExprKind docs). */
struct Expr
{
    ExprKind kind;
    SourceLoc loc;
    Type type; ///< filled in by semantic analysis

    double floatValue = 0.0;
    long intValue = 0;
    bool boolValue = false;
    std::string name;
    UnaryOp unaryOp = UnaryOp::Neg;
    BinaryOp binaryOp = BinaryOp::Add;
    Type ctorType;
    std::vector<ExprPtr> args;

    static ExprPtr makeFloat(double v, SourceLoc loc = {});
    static ExprPtr makeInt(long v, SourceLoc loc = {});
    static ExprPtr makeBool(bool v, SourceLoc loc = {});
    static ExprPtr makeVarRef(std::string name, SourceLoc loc = {});

    /** Deep copy (used by function inlining during lowering). */
    ExprPtr clone() const;
};

/** Statement node discriminator. */
enum class StmtKind {
    Block,    ///< body
    Decl,     ///< declType, name, optional init, isConst
    Assign,   ///< lhs op= rhs (op may be plain Assign)
    ExprStmt, ///< rhs as expression (e.g. a bare call)
    If,       ///< cond, body (then), elseBody
    For,      ///< init, cond, step, body
    While,    ///< cond, body
    Return,   ///< optional rhs
    Discard,
};

enum class AssignOp { Assign, AddAssign, SubAssign, MulAssign, DivAssign };

/** A GLSL statement. Field use depends on `kind` (see StmtKind docs). */
struct Stmt
{
    StmtKind kind;
    SourceLoc loc;

    // Decl
    Type declType;
    std::string name;
    bool isConst = false;

    /**
     * A Block produced by expanding a declarator list (`float a, b;`)
     * rather than by source braces: it introduces no scope and prints
     * without braces.
     */
    bool transparent = false;

    // Assign / ExprStmt / Return / Decl-init
    ExprPtr lhs;
    AssignOp assignOp = AssignOp::Assign;
    ExprPtr rhs; ///< decl init, assign value, expr, return value

    // Control flow
    ExprPtr cond;
    StmtPtr init;  ///< for-init
    StmtPtr step;  ///< for-step
    std::vector<StmtPtr> body;
    std::vector<StmtPtr> elseBody;

    static StmtPtr make(StmtKind kind, SourceLoc loc = {});

    /** Deep copy (used by function inlining during lowering). */
    StmtPtr clone() const;
};

/** Storage qualifier of a global declaration. */
enum class Qualifier { Global, In, Out, Uniform, Const };

/** A module-scope declaration. */
struct GlobalDecl
{
    Qualifier qual = Qualifier::Global;
    Type type;
    std::string name;
    ExprPtr init; ///< only for const/global initialisers
    SourceLoc loc;
};

/** A function parameter (only `in` parameters are supported). */
struct ParamDecl
{
    Type type;
    std::string name;
};

/** A function definition. */
struct FunctionDecl
{
    Type returnType;
    std::string name;
    std::vector<ParamDecl> params;
    StmtPtr body; ///< a Block statement
    SourceLoc loc;
};

/** A whole translation unit (one shader stage). */
struct Shader
{
    int version = 0;
    std::vector<GlobalDecl> globals;
    std::vector<FunctionDecl> functions;

    /** Find a function by name (nullptr if absent). */
    const FunctionDecl *findFunction(const std::string &name) const;
    /** Find a global by name (nullptr if absent). */
    const GlobalDecl *findGlobal(const std::string &name) const;
};

} // namespace gsopt::glsl

#endif // GSOPT_GLSL_AST_H
