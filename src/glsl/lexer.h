/**
 * @file
 * The GLSL lexer. Converts preprocessed source text into a token stream.
 * Comments are stripped; `#` directives must already have been handled by
 * the Preprocessor (a stray `#` is a lex error).
 */
#ifndef GSOPT_GLSL_LEXER_H
#define GSOPT_GLSL_LEXER_H

#include <string>
#include <vector>

#include "glsl/token.h"
#include "support/diag.h"

namespace gsopt::glsl {

/**
 * Lex a whole buffer into tokens (terminated by a TokKind::End token).
 *
 * @param source preprocessed GLSL text
 * @param diags  receives lexical errors (bad characters, bad numbers)
 */
std::vector<Token> lex(const std::string &source, DiagEngine &diags);

} // namespace gsopt::glsl

#endif // GSOPT_GLSL_LEXER_H
