/**
 * @file
 * Token definitions shared by the GLSL lexer, preprocessor, and parser.
 */
#ifndef GSOPT_GLSL_TOKEN_H
#define GSOPT_GLSL_TOKEN_H

#include <string>

#include "support/diag.h"

namespace gsopt::glsl {

/** Token kinds for the GLSL subset. */
enum class TokKind {
    End,
    Identifier, ///< also type keywords and reserved words
    IntLit,
    FloatLit,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Dot,
    Question,
    Colon,
    // operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    EqEq,
    NotEq,
    Less,
    Greater,
    LessEq,
    GreaterEq,
    AmpAmp,
    PipePipe,
    Bang,
};

/** A single lexed token with its spelling and location. */
struct Token
{
    TokKind kind = TokKind::End;
    std::string text;     ///< identifier spelling or literal text
    double floatValue = 0.0;
    long intValue = 0;
    SourceLoc loc;

    bool is(TokKind k) const { return kind == k; }
    bool isIdent(const char *name) const
    {
        return kind == TokKind::Identifier && text == name;
    }
};

/** Spelling of a token kind for diagnostics ("','", "identifier", ...). */
const char *tokKindName(TokKind kind);

} // namespace gsopt::glsl

#endif // GSOPT_GLSL_TOKEN_H
