/**
 * @file
 * Semantic analysis for the GLSL subset.
 *
 * Responsibilities:
 *  - build symbol tables and check every name/type rule of the subset;
 *  - annotate every expression with its Type (Expr::type);
 *  - insert implicit int->float conversions as Construct nodes;
 *  - alpha-rename shadowed locals so that, post-sema, every variable name
 *    in a function is unique (this is what lets the lowering stage treat
 *    names as identities without re-implementing scoping);
 *  - collect the shader's interface (inputs, outputs, uniforms/samplers),
 *    which the runtime uses for introspection-driven auto-initialisation
 *    exactly as described in the paper (Section IV-B).
 */
#ifndef GSOPT_GLSL_SEMA_H
#define GSOPT_GLSL_SEMA_H

#include <string>
#include <vector>

#include "glsl/ast.h"
#include "support/diag.h"

namespace gsopt::glsl {

/** One interface variable of a checked shader. */
struct InterfaceVar
{
    std::string name;
    Type type;
    Qualifier qual = Qualifier::In;
};

/** Summary of a shader's external interface after checking. */
struct ShaderInterface
{
    std::vector<InterfaceVar> inputs;   ///< `in` variables
    std::vector<InterfaceVar> outputs;  ///< `out` variables
    std::vector<InterfaceVar> uniforms; ///< uniforms incl. samplers
};

/**
 * Type-check and annotate a shader AST in place.
 *
 * @returns the shader interface; meaningful only if !diags.hasErrors().
 */
ShaderInterface analyze(Shader &shader, DiagEngine &diags);

/**
 * Result type of a builtin-function call given argument types, or Void if
 * @p name is not a builtin / the argument types do not match. Exposed for
 * reuse by the lowering stage and tests.
 */
Type builtinResultType(const std::string &name,
                       const std::vector<Type> &args);

/** True if @p name names a builtin function of the subset. */
bool isBuiltinFunction(const std::string &name);

} // namespace gsopt::glsl

#endif // GSOPT_GLSL_SEMA_H
