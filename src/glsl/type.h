/**
 * @file
 * The GLSL type system subset used by the shader compiler: void, scalars
 * (float/int/bool), vectors (vec2-4, ivec2-4, bvec2-4), square matrices
 * (mat2-4), sampler2D, and constant-size arrays of any of those.
 *
 * This covers everything the GFXBench-like corpus (and typical fragment
 * shaders) needs; structs and images are deliberately out of scope and are
 * rejected by the parser.
 */
#ifndef GSOPT_GLSL_TYPE_H
#define GSOPT_GLSL_TYPE_H

#include <string>

namespace gsopt::glsl {

/** Fundamental element type. */
enum class BaseType { Void, Float, Int, Bool, Sampler2D };

/**
 * A GLSL type: a base type with column/row shape plus an optional array
 * dimension.
 *
 * Shape encoding: scalars are 1x1; a vecN is cols=1, rows=N; a matN is
 * cols=N, rows=N (column-major, as in GLSL). Samplers and void are 1x1.
 */
struct Type
{
    BaseType base = BaseType::Void;
    int cols = 1;
    int rows = 1;
    /**
     * Array dimension: 0 means "not an array"; a negative value marks an
     * unsized array (`vec4[]`) whose size is resolved from its
     * initialiser during semantic analysis.
     */
    int arraySize = 0;

    // -- Factories ------------------------------------------------------
    static Type voidTy() { return {BaseType::Void, 1, 1, 0}; }
    static Type floatTy() { return {BaseType::Float, 1, 1, 0}; }
    static Type intTy() { return {BaseType::Int, 1, 1, 0}; }
    static Type boolTy() { return {BaseType::Bool, 1, 1, 0}; }
    static Type sampler2D() { return {BaseType::Sampler2D, 1, 1, 0}; }
    static Type vec(int n) { return {BaseType::Float, 1, n, 0}; }
    static Type ivec(int n) { return {BaseType::Int, 1, n, 0}; }
    static Type bvec(int n) { return {BaseType::Bool, 1, n, 0}; }
    static Type mat(int n) { return {BaseType::Float, n, n, 0}; }

    /** Same type with a different array dimension. */
    Type array(int n) const
    {
        Type t = *this;
        t.arraySize = n;
        return t;
    }

    /** The element type of an array (self if not an array). */
    Type elementType() const
    {
        Type t = *this;
        t.arraySize = 0;
        return t;
    }

    // -- Queries --------------------------------------------------------
    bool isArray() const { return arraySize != 0; }
    bool isVoid() const { return base == BaseType::Void; }
    bool isSampler() const { return base == BaseType::Sampler2D; }
    bool isScalar() const
    {
        return !isArray() && cols == 1 && rows == 1 && !isSampler() &&
               !isVoid();
    }
    bool isVector() const { return !isArray() && cols == 1 && rows > 1; }
    bool isMatrix() const { return !isArray() && cols > 1; }
    bool isFloat() const { return base == BaseType::Float; }
    bool isInt() const { return base == BaseType::Int; }
    bool isBool() const { return base == BaseType::Bool; }
    bool isNumeric() const
    {
        return (isFloat() || isInt()) && !isArray() && !isSampler();
    }

    /** Number of scalar components (vec3 -> 3, mat4 -> 16, scalar -> 1). */
    int componentCount() const { return cols * rows; }

    /** The scalar type with the same base (vec3 -> float). */
    Type scalarType() const { return {base, 1, 1, 0}; }

    /** Vector of @p n lanes with the same base type. */
    Type withRows(int n) const { return {base, 1, n, 0}; }

    bool operator==(const Type &o) const
    {
        return base == o.base && cols == o.cols && rows == o.rows &&
               arraySize == o.arraySize;
    }
    bool operator!=(const Type &o) const { return !(*this == o); }

    /** GLSL spelling, e.g. "vec3", "mat4", "float", "int[9]". */
    std::string str() const;
};

/** Parse a GLSL type keyword ("vec3", "mat2", ...); Void on failure. */
Type typeFromKeyword(const std::string &word);

/** True if @p word names a type (usable as constructor name too). */
bool isTypeKeyword(const std::string &word);

} // namespace gsopt::glsl

#endif // GSOPT_GLSL_TYPE_H
