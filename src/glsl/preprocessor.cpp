#include "glsl/preprocessor.h"

#include <cctype>
#include <cstdlib>
#include <optional>

#include "support/governor.h"
#include "support/strings.h"

namespace gsopt::glsl {

namespace {

/** A macro definition. */
struct Macro
{
    bool functionLike = false;
    std::vector<std::string> params;
    std::string body;
};

using MacroTable = std::map<std::string, Macro>;

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Macro-expansion work accounting across one whole preprocess() run.
 * Recursion depth alone cannot stop a non-recursive exponential bomb
 * (#define A B B / #define B C C / ... doubles per rescan, OOMing long
 * before depth 32), so total output bytes are capped too: the built-in
 * cap rejects any bomb with a clean diagnostic even ungoverned, and
 * every produced byte is charged to the ambient governor budget so a
 * (usually much tighter) policy cap raises ResourceExhausted first.
 */
struct ExpandWork
{
    size_t bytes = 0;
    bool exhausted = false;
};

constexpr size_t kMaxExpansionBytes = 4u << 20;

/**
 * Expand macros in a single line of text. Handles nested function-like
 * invocations by rescanning; @p depth guards against runaway recursion
 * and @p work against runaway output growth.
 */
std::string
expandMacros(const std::string &line, const MacroTable &macros,
             DiagEngine &diags, ExpandWork &work, int depth = 0)
{
    if (work.exhausted)
        return line; // already diagnosed; stop rewriting entirely
    if (depth > 32) {
        diags.error({}, "macro expansion too deep (recursive macro?)");
        return line;
    }
    std::string out;
    size_t i = 0;
    bool changed = false;
    while (i < line.size()) {
        char c = line[i];
        if (!isIdentStart(c)) {
            out += c;
            ++i;
            continue;
        }
        size_t start = i;
        while (i < line.size() && isIdentChar(line[i]))
            ++i;
        std::string word = line.substr(start, i - start);
        auto it = macros.find(word);
        if (it == macros.end()) {
            out += word;
            continue;
        }
        const Macro &m = it->second;
        if (!m.functionLike) {
            out += m.body;
            changed = true;
            continue;
        }
        // Function-like: require '(' (else the name is left alone).
        size_t j = i;
        while (j < line.size() &&
               std::isspace(static_cast<unsigned char>(line[j])))
            ++j;
        if (j >= line.size() || line[j] != '(') {
            out += word;
            continue;
        }
        // Collect comma-separated arguments at paren depth 0.
        std::vector<std::string> args;
        std::string arg;
        int paren_depth = 1;
        ++j;
        while (j < line.size() && paren_depth > 0) {
            char a = line[j];
            if (a == '(') {
                ++paren_depth;
                arg += a;
            } else if (a == ')') {
                --paren_depth;
                if (paren_depth > 0)
                    arg += a;
            } else if (a == ',' && paren_depth == 1) {
                args.push_back(std::string(trim(arg)));
                arg.clear();
            } else {
                arg += a;
            }
            ++j;
        }
        if (paren_depth != 0) {
            diags.error({}, "unterminated macro invocation of '" + word +
                                "'");
            out += word;
            continue;
        }
        if (!arg.empty() || !args.empty())
            args.push_back(std::string(trim(arg)));
        if (args.size() != m.params.size()) {
            diags.error({}, "macro '" + word + "' expects " +
                                std::to_string(m.params.size()) +
                                " arguments, got " +
                                std::to_string(args.size()));
            out += word;
            continue;
        }
        // Substitute parameters as whole identifiers.
        std::string body;
        size_t k = 0;
        while (k < m.body.size()) {
            if (!isIdentStart(m.body[k])) {
                body += m.body[k];
                ++k;
                continue;
            }
            size_t ws = k;
            while (k < m.body.size() && isIdentChar(m.body[k]))
                ++k;
            std::string param = m.body.substr(ws, k - ws);
            bool substituted = false;
            for (size_t p = 0; p < m.params.size(); ++p) {
                if (m.params[p] == param) {
                    body += "(" + args[p] + ")";
                    substituted = true;
                    break;
                }
            }
            if (!substituted)
                body += param;
        }
        out += body;
        i = j;
        changed = true;
    }
    if (changed) {
        governor::charge(governor::Dim::PreprocBytes, out.size(),
                         "preprocess");
        work.bytes += out.size();
        if (work.bytes > kMaxExpansionBytes) {
            work.exhausted = true;
            diags.error({}, "macro expansion exceeded " +
                                std::to_string(kMaxExpansionBytes) +
                                " bytes (macro bomb?)");
            return line;
        }
        return expandMacros(out, macros, diags, work, depth + 1);
    }
    return out;
}

/**
 * Recursive-descent evaluator for #if constant expressions over already
 * macro-expanded text (with `defined(...)` resolved beforehand).
 */
class CondParser
{
  public:
    CondParser(const std::string &text, DiagEngine &diags)
        : text_(text), diags_(diags)
    {
    }

    long parse()
    {
        long v = parseOr();
        skipWs();
        if (pos_ < text_.size())
            diags_.error({}, "trailing characters in #if expression");
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }
    bool eat(const char *tok)
    {
        skipWs();
        size_t len = std::string(tok).size();
        if (text_.compare(pos_, len, tok) == 0) {
            // Don't let '<' match '<='.
            if ((std::string(tok) == "<" || std::string(tok) == ">") &&
                pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
                return false;
            }
            pos_ += len;
            return true;
        }
        return false;
    }
    long parseOr()
    {
        long v = parseAnd();
        while (eat("||"))
            v = (parseAnd() != 0 || v != 0) ? 1 : 0;
        return v;
    }
    long parseAnd()
    {
        long v = parseCmp();
        while (eat("&&")) {
            long r = parseCmp();
            v = (v != 0 && r != 0) ? 1 : 0;
        }
        return v;
    }
    long parseCmp()
    {
        long v = parseAdd();
        for (;;) {
            if (eat("=="))
                v = v == parseAdd();
            else if (eat("!="))
                v = v != parseAdd();
            else if (eat("<="))
                v = v <= parseAdd();
            else if (eat(">="))
                v = v >= parseAdd();
            else if (eat("<"))
                v = v < parseAdd();
            else if (eat(">"))
                v = v > parseAdd();
            else
                break;
        }
        return v;
    }
    long parseAdd()
    {
        long v = parseMul();
        for (;;) {
            if (eat("+"))
                v += parseMul();
            else if (eat("-"))
                v -= parseMul();
            else
                break;
        }
        return v;
    }
    long parseMul()
    {
        long v = parseUnary();
        for (;;) {
            if (eat("*")) {
                v *= parseUnary();
            } else if (eat("/")) {
                long d = parseUnary();
                v = d ? v / d : 0;
            } else if (eat("%")) {
                long d = parseUnary();
                v = d ? v % d : 0;
            } else {
                break;
            }
        }
        return v;
    }
    long parseUnary()
    {
        if (eat("!"))
            return parseUnary() == 0 ? 1 : 0;
        if (eat("-"))
            return -parseUnary();
        if (eat("+"))
            return parseUnary();
        if (eat("(")) {
            long v = parseOr();
            if (!eat(")"))
                diags_.error({}, "missing ')' in #if expression");
            return v;
        }
        skipWs();
        if (pos_ < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            char *endp = nullptr;
            long v = std::strtol(text_.c_str() + pos_, &endp, 0);
            pos_ = static_cast<size_t>(endp - text_.c_str());
            return v;
        }
        // Undefined identifiers evaluate to 0, as in C.
        if (pos_ < text_.size() && isIdentStart(text_[pos_])) {
            while (pos_ < text_.size() && isIdentChar(text_[pos_]))
                ++pos_;
            return 0;
        }
        diags_.error({}, "malformed #if expression");
        pos_ = text_.size();
        return 0;
    }

    const std::string &text_;
    DiagEngine &diags_;
    size_t pos_ = 0;
};

/** Replace `defined(X)` / `defined X` with 1 or 0. */
std::string
resolveDefined(const std::string &expr, const MacroTable &macros)
{
    std::string out;
    size_t i = 0;
    while (i < expr.size()) {
        if (isIdentStart(expr[i])) {
            size_t start = i;
            while (i < expr.size() && isIdentChar(expr[i]))
                ++i;
            std::string word = expr.substr(start, i - start);
            if (word != "defined") {
                out += word;
                continue;
            }
            while (i < expr.size() &&
                   std::isspace(static_cast<unsigned char>(expr[i])))
                ++i;
            bool paren = i < expr.size() && expr[i] == '(';
            if (paren)
                ++i;
            while (i < expr.size() &&
                   std::isspace(static_cast<unsigned char>(expr[i])))
                ++i;
            size_t ns = i;
            while (i < expr.size() && isIdentChar(expr[i]))
                ++i;
            std::string name = expr.substr(ns, i - ns);
            if (paren) {
                while (i < expr.size() &&
                       std::isspace(
                           static_cast<unsigned char>(expr[i])))
                    ++i;
                if (i < expr.size() && expr[i] == ')')
                    ++i;
            }
            out += macros.count(name) ? "1" : "0";
            continue;
        }
        out += expr[i];
        ++i;
    }
    return out;
}

/** State of one nested conditional block. */
struct CondState
{
    bool parentActive;  ///< enclosing region live?
    bool taken;         ///< some branch of this if-chain already taken
    bool active;        ///< current branch live?
};

} // namespace

PreprocessResult
preprocess(const std::string &source,
           const std::map<std::string, std::string> &predefines,
           DiagEngine &diags)
{
    PreprocessResult result;
    MacroTable macros;
    ExpandWork work;
    for (const auto &[name, body] : predefines)
        macros[name] = Macro{false, {}, body};

    // Merge backslash-continued lines first.
    std::vector<std::string> lines;
    {
        std::string merged;
        for (const std::string &raw : split(source, '\n')) {
            std::string line = raw;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty() && line.back() == '\\') {
                merged += line.substr(0, line.size() - 1);
                continue;
            }
            merged += line;
            lines.push_back(merged);
            merged.clear();
        }
        if (!merged.empty())
            lines.push_back(merged);
    }

    std::vector<CondState> conds;
    auto active = [&]() {
        return conds.empty() || conds.back().active;
    };

    int line_no = 0;
    for (const std::string &line : lines) {
        ++line_no;
        if ((line_no & 63) == 0)
            governor::checkDeadline("preprocess");
        const SourceLoc loc{line_no, 1};
        std::string_view stripped = trim(line);
        if (!stripped.empty() && stripped.front() == '#') {
            std::string directive(trim(stripped.substr(1)));
            std::string head, rest;
            {
                size_t sp = 0;
                while (sp < directive.size() && isIdentChar(directive[sp]))
                    ++sp;
                head = directive.substr(0, sp);
                rest = std::string(trim(directive.substr(sp)));
            }
            if (head == "version") {
                if (active())
                    result.version =
                        std::strtol(rest.c_str(), nullptr, 10);
            } else if (head == "extension") {
                if (active())
                    result.extensions.push_back(rest);
            } else if (head == "pragma") {
                // ignored
            } else if (head == "define") {
                if (active()) {
                    size_t sp = 0;
                    while (sp < rest.size() && isIdentChar(rest[sp]))
                        ++sp;
                    std::string name = rest.substr(0, sp);
                    if (name.empty()) {
                        diags.error(loc, "#define without a name");
                        continue;
                    }
                    Macro m;
                    if (sp < rest.size() && rest[sp] == '(') {
                        m.functionLike = true;
                        size_t close = rest.find(')', sp);
                        if (close == std::string::npos) {
                            diags.error(loc,
                                        "unterminated macro parameter "
                                        "list");
                            continue;
                        }
                        for (auto &p : split(
                                 rest.substr(sp + 1, close - sp - 1),
                                 ',')) {
                            std::string param(trim(p));
                            if (!param.empty())
                                m.params.push_back(param);
                        }
                        m.body = std::string(trim(rest.substr(close + 1)));
                    } else {
                        m.body = std::string(trim(rest.substr(sp)));
                    }
                    macros[name] = std::move(m);
                }
            } else if (head == "undef") {
                if (active())
                    macros.erase(std::string(trim(rest)));
            } else if (head == "ifdef" || head == "ifndef") {
                bool defined = macros.count(std::string(trim(rest))) > 0;
                bool cond = head == "ifdef" ? defined : !defined;
                bool parent = active();
                conds.push_back(
                    {parent, parent && cond, parent && cond});
            } else if (head == "if") {
                bool cond = false;
                if (active()) {
                    std::string expr =
                        expandMacros(resolveDefined(rest, macros),
                                     macros, diags, work);
                    cond = CondParser(expr, diags).parse() != 0;
                }
                bool parent = active();
                conds.push_back(
                    {parent, parent && cond, parent && cond});
            } else if (head == "elif") {
                if (conds.empty()) {
                    diags.error(loc, "#elif without #if");
                    continue;
                }
                CondState &cs = conds.back();
                if (!cs.parentActive || cs.taken) {
                    cs.active = false;
                } else {
                    std::string expr =
                        expandMacros(resolveDefined(rest, macros),
                                     macros, diags, work);
                    cs.active = CondParser(expr, diags).parse() != 0;
                    cs.taken = cs.taken || cs.active;
                }
            } else if (head == "else") {
                if (conds.empty()) {
                    diags.error(loc, "#else without #if");
                    continue;
                }
                CondState &cs = conds.back();
                cs.active = cs.parentActive && !cs.taken;
                cs.taken = true;
            } else if (head == "endif") {
                if (conds.empty()) {
                    diags.error(loc, "#endif without #if");
                    continue;
                }
                conds.pop_back();
            } else {
                diags.error(loc, "unknown directive '#" + head + "'");
            }
            continue;
        }
        if (!active())
            continue;
        result.text += expandMacros(line, macros, diags, work);
        result.text += '\n';
    }
    if (!conds.empty())
        diags.error({line_no, 1}, "unterminated #if block");
    return result;
}

} // namespace gsopt::glsl
