#include "glsl/type.h"

namespace gsopt::glsl {

std::string
Type::str() const
{
    if (isArray())
        return elementType().str() + "[" + std::to_string(arraySize) +
               "]";
    std::string name;
    if (isVoid()) {
        name = "void";
    } else if (isSampler()) {
        name = "sampler2D";
    } else if (isMatrix()) {
        name = "mat" + std::to_string(cols);
    } else if (isVector()) {
        switch (base) {
          case BaseType::Float:
            name = "vec" + std::to_string(rows);
            break;
          case BaseType::Int:
            name = "ivec" + std::to_string(rows);
            break;
          case BaseType::Bool:
            name = "bvec" + std::to_string(rows);
            break;
          default:
            name = "vec?";
            break;
        }
    } else {
        switch (base) {
          case BaseType::Float:
            name = "float";
            break;
          case BaseType::Int:
            name = "int";
            break;
          case BaseType::Bool:
            name = "bool";
            break;
          default:
            name = "void";
            break;
        }
    }
    return name;
}

Type
typeFromKeyword(const std::string &word)
{
    if (word == "void")
        return Type::voidTy();
    if (word == "float")
        return Type::floatTy();
    if (word == "int")
        return Type::intTy();
    if (word == "bool")
        return Type::boolTy();
    if (word == "sampler2D")
        return Type::sampler2D();
    if (word == "vec2")
        return Type::vec(2);
    if (word == "vec3")
        return Type::vec(3);
    if (word == "vec4")
        return Type::vec(4);
    if (word == "ivec2")
        return Type::ivec(2);
    if (word == "ivec3")
        return Type::ivec(3);
    if (word == "ivec4")
        return Type::ivec(4);
    if (word == "bvec2")
        return Type::bvec(2);
    if (word == "bvec3")
        return Type::bvec(3);
    if (word == "bvec4")
        return Type::bvec(4);
    if (word == "mat2")
        return Type::mat(2);
    if (word == "mat3")
        return Type::mat(3);
    if (word == "mat4")
        return Type::mat(4);
    return Type::voidTy();
}

bool
isTypeKeyword(const std::string &word)
{
    return word == "void" || word == "float" || word == "int" ||
           word == "bool" || word == "sampler2D" ||
           typeFromKeyword(word).base != BaseType::Void;
}

} // namespace gsopt::glsl
