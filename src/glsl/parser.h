/**
 * @file
 * Recursive-descent parser for the GLSL subset: preprocessed tokens in,
 * Shader AST out. Layout qualifiers and precision qualifiers are accepted
 * and discarded (they do not affect optimization or the performance
 * models).
 */
#ifndef GSOPT_GLSL_PARSER_H
#define GSOPT_GLSL_PARSER_H

#include <vector>

#include "glsl/ast.h"
#include "glsl/token.h"
#include "support/diag.h"

namespace gsopt::glsl {

/**
 * Parse a token stream into a Shader AST.
 *
 * Errors are reported to @p diags; the returned AST is only meaningful if
 * `!diags.hasErrors()`.
 */
Shader parseShader(const std::vector<Token> &tokens, DiagEngine &diags);

} // namespace gsopt::glsl

#endif // GSOPT_GLSL_PARSER_H
