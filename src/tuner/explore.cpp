#include "tuner/explore.h"

#include <unordered_map>

#include "emit/offline.h"
#include "glsl/frontend.h"
#include "support/rng.h"

namespace gsopt::tuner {

bool
Variant::mostlyHasFlag(int bit) const
{
    size_t with = 0;
    for (const FlagSet &f : producers)
        with += f.has(bit);
    return with * 2 >= producers.size();
}

bool
Exploration::flagChangesOutput(int bit) const
{
    for (int combo = 0; combo < 256; ++combo) {
        if ((combo >> bit) & 1)
            continue;
        if (variantOfFlags[combo] !=
            variantOfFlags[combo | (1 << bit)])
            return true;
    }
    return false;
}

Exploration
exploreShader(const corpus::CorpusShader &shader)
{
    Exploration ex;
    ex.shaderName = shader.name;
    ex.originalSource = shader.source;

    // Preprocess once for the LoC metric (Fig 4a counts preprocessed
    // lines).
    {
        glsl::CompiledShader cs =
            glsl::compileShader(shader.source, shader.defines);
        ex.preprocessedOriginal = cs.preprocessedText;
    }

    std::unordered_map<uint64_t, int> by_hash;
    for (const FlagSet &flags : allFlagSets()) {
        std::string text = emit::optimizeShaderSource(
            shader.source, flags.toOptFlags(), shader.defines);
        const uint64_t hash = fnv1a(text);
        auto it = by_hash.find(hash);
        int index;
        if (it == by_hash.end()) {
            index = static_cast<int>(ex.variants.size());
            by_hash.emplace(hash, index);
            Variant v;
            v.source = std::move(text);
            v.sourceHash = hash;
            ex.variants.push_back(std::move(v));
        } else {
            index = it->second;
        }
        ex.variants[static_cast<size_t>(index)].producers.push_back(
            flags);
        ex.variantOfFlags[flags.bits] = index;
    }
    ex.passthroughVariant = ex.variantOfFlags[FlagSet::none().bits];
    return ex;
}

} // namespace gsopt::tuner
