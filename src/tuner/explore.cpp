#include "tuner/explore.h"

#include <stdexcept>
#include <unordered_map>

#include "emit/emit.h"
#include "glsl/frontend.h"
#include "ir/ir.h"
#include "lower/lower.h"
#include "passes/passes.h"
#include "support/governor.h"
#include "support/rng.h"
#include "support/time.h"

namespace gsopt::tuner {

void
ExploreCounters::reset()
{
    frontEndRuns = 0;
    lowerRuns = 0;
    pipelineRuns = 0;
    passRuns = 0;
    passMemoHits = 0;
    printRuns = 0;
    fingerprintRuns = 0;
    fingerprintHits = 0;
    arenaBytes = 0;
    plansWalked = 0;
    frontEndNs = 0;
    lowerNs = 0;
    pipelineNs = 0;
    fingerprintNs = 0;
    printNs = 0;
}

ExploreCounters &
exploreCounters()
{
    static ExploreCounters counters;
    return counters;
}

bool
Variant::mostlyHasFlag(int bit) const
{
    // An unpopulated variant (no producers recorded yet) holds no
    // evidence either way; without this guard the 0 >= 0 comparison
    // answered "yes" for every bit.
    if (producers.empty())
        return false;
    size_t with = 0;
    for (const FlagSet &f : producers)
        with += f.has(bit);
    return with * 2 >= producers.size();
}

int
Exploration::variantOf(FlagSet flags) const
{
    auto it = variantOfCombo.find(flags.bits);
    if (it == variantOfCombo.end()) {
        throw std::out_of_range(
            "combination " + flags.str() + " was not explored for " +
            shaderName);
    }
    return it->second;
}

int
Exploration::variantOf(const passes::PassPlan &plan) const
{
    if (plan.isCanonical()) {
        auto it = variantOfCombo.find(plan.mask());
        if (it != variantOfCombo.end())
            return it->second;
    } else {
        auto it = variantOfPlan.find(plan.str());
        if (it != variantOfPlan.end())
            return it->second;
    }
    throw std::out_of_range("plan " + plan.str() +
                            " was not explored for " + shaderName);
}

bool
Exploration::flagChangesOutput(int bit) const
{
    const uint64_t mask = 1ull << bit;
    for (const auto &[combo, variant] : variantOfCombo) {
        if (combo & mask)
            continue;
        auto with = variantOfCombo.find(combo | mask);
        if (with != variantOfCombo.end() && with->second != variant)
            return true;
    }
    return false;
}

Exploration
exploreShader(const corpus::CorpusShader &shader)
{
    // Admission control: exploring one shader (front end + full
    // lattice walk + printing) is a unit of work under ambient caps.
    governor::ScopedRequestBudget admission;
    ExploreCounters &counters = exploreCounters();
    Exploration ex;
    ex.shaderName = shader.name;
    ex.family = shader.family;
    ex.originalSource = shader.source;
    ex.exploredFlagCount = flagCount();
    checkExhaustiveFeasible("exploreShader");

    // Front end once: preprocess/lex/parse/sema run a single time per
    // shader; every flag combination reuses the result. (The
    // preprocessed text also feeds the Fig 4a LoC metric.)
    uint64_t t0 = nowNs();
    glsl::CompiledShader cs =
        glsl::compileShader(shader.source, shader.defines);
    counters.frontEndRuns.fetch_add(1, std::memory_order_relaxed);
    counters.frontEndNs.fetch_add(nowNs() - t0,
                                  std::memory_order_relaxed);
    ex.preprocessedOriginal = cs.preprocessedText;

    // Lower once: the flag pipelines all start from clones of this
    // module, which is behaviourally identical to re-lowering (clone
    // preserves structure and ids exactly).
    t0 = nowNs();
    auto base = lower::lowerShader(cs);
    counters.lowerRuns.fetch_add(1, std::memory_order_relaxed);
    counters.lowerNs.fetch_add(nowNs() - t0, std::memory_order_relaxed);

    // Phase A — run all 2^N pipelines over the memoized prefix-sharing
    // tree (combos with a common pass prefix share that work, and apply
    // edges whose incoming IR fingerprints identically share one pass
    // run + one clone). Each tree module is fingerprinted exactly once,
    // at creation, and the sink receives the fingerprint for free; only
    // fingerprint-unique modules reach the printer (most of the combos
    // are structurally identical — Fig 4c).
    std::vector<uint64_t> combo_fp(comboCount(), 0);
    std::unordered_map<uint64_t, std::string> text_of_fp;
    uint64_t print_ns = 0;
    passes::FlagTreeStats tree;
    const uint64_t tree_t0 = nowNs();
    passes::forEachFlagCombination(
        *base,
        [&](const passes::OptFlags &flags, const ir::Module &module,
            uint64_t fp) {
            counters.pipelineRuns.fetch_add(1,
                                            std::memory_order_relaxed);
            combo_fp[FlagSet::fromOptFlags(flags).bits] = fp;
            if (!text_of_fp.count(fp)) {
                const uint64_t t = nowNs();
                text_of_fp.emplace(fp, emit::emitGlsl(module));
                counters.printRuns.fetch_add(
                    1, std::memory_order_relaxed);
                print_ns += nowNs() - t;
            } else {
                counters.fingerprintHits.fetch_add(
                    1, std::memory_order_relaxed);
            }
        },
        &tree);
    counters.pipelineNs.fetch_add(
        nowNs() - tree_t0 - tree.fingerprintNs - print_ns,
        std::memory_order_relaxed);
    counters.passRuns.fetch_add(tree.passRuns,
                                std::memory_order_relaxed);
    counters.passMemoHits.fetch_add(tree.passMemoHits,
                                    std::memory_order_relaxed);
    counters.fingerprintRuns.fetch_add(tree.fingerprintRuns,
                                       std::memory_order_relaxed);
    counters.fingerprintNs.fetch_add(tree.fingerprintNs,
                                     std::memory_order_relaxed);
    counters.arenaBytes.fetch_add(tree.arenaBytes,
                                  std::memory_order_relaxed);
    counters.printNs.fetch_add(print_ns, std::memory_order_relaxed);

    // Phase B — assign variant indices in numeric combo order with the
    // text-hash dedup the seed used, so the variant partition and
    // ordering stay exactly what per-combo text dedup would produce
    // (fingerprints only decide who pays for printing).
    std::unordered_map<uint64_t, int> by_text_hash;
    for (const FlagSet &flags : allFlagSets()) {
        const std::string &text = text_of_fp.at(combo_fp[flags.bits]);
        const uint64_t hash = fnv1a(text);
        auto it = by_text_hash.find(hash);
        int index;
        if (it == by_text_hash.end()) {
            index = static_cast<int>(ex.variants.size());
            by_text_hash.emplace(hash, index);
            Variant v;
            v.source = text;
            v.sourceHash = hash;
            ex.variants.push_back(std::move(v));
        } else {
            index = it->second;
        }
        ex.variants[static_cast<size_t>(index)].producers.push_back(
            flags);
        ex.variantOfCombo.emplace(flags.bits, index);
    }
    ex.passthroughVariant = ex.variantOf(FlagSet::none());
    return ex;
}

PlanExplorer::PlanExplorer(const corpus::CorpusShader &shader,
                           Exploration &ex)
    : ex_(ex)
{
    governor::ScopedRequestBudget admission;
    ExploreCounters &counters = exploreCounters();
    // Front end + lowering once, same accounting as exploreShader;
    // every plan walks from clones of this module.
    uint64_t t0 = nowNs();
    glsl::CompiledShader cs =
        glsl::compileShader(shader.source, shader.defines);
    counters.frontEndRuns.fetch_add(1, std::memory_order_relaxed);
    counters.frontEndNs.fetch_add(nowNs() - t0,
                                  std::memory_order_relaxed);
    t0 = nowNs();
    base_ = lower::lowerShader(cs);
    counters.lowerRuns.fetch_add(1, std::memory_order_relaxed);
    counters.lowerNs.fetch_add(nowNs() - t0, std::memory_order_relaxed);
    root_ = applier_.root(*base_);
    foldStats();
    for (size_t i = 0; i < ex_.variants.size(); ++i)
        byTextHash_.emplace(ex_.variants[i].sourceHash,
                            static_cast<int>(i));
}

PlanExplorer::~PlanExplorer() = default;

void
PlanExplorer::foldStats()
{
    const passes::FlagTreeStats &now = applier_.stats();
    ExploreCounters &counters = exploreCounters();
    counters.passRuns.fetch_add(now.passRuns - folded_.passRuns,
                                std::memory_order_relaxed);
    counters.passMemoHits.fetch_add(
        now.passMemoHits - folded_.passMemoHits,
        std::memory_order_relaxed);
    counters.fingerprintRuns.fetch_add(
        now.fingerprintRuns - folded_.fingerprintRuns,
        std::memory_order_relaxed);
    counters.fingerprintNs.fetch_add(
        now.fingerprintNs - folded_.fingerprintNs,
        std::memory_order_relaxed);
    counters.arenaBytes.fetch_add(now.arenaBytes - folded_.arenaBytes,
                                  std::memory_order_relaxed);
    folded_ = now;
}

int
PlanExplorer::ensure(const passes::PassPlan &plan)
{
    // Canonical plans are flag subsets; the lattice exploration
    // already owns their variants.
    if (plan.isCanonical()) {
        auto it = ex_.variantOfCombo.find(plan.mask());
        if (it != ex_.variantOfCombo.end())
            return it->second;
    }
    const std::string key = plan.str();
    auto pit = ex_.variantOfPlan.find(key);
    if (pit != ex_.variantOfPlan.end())
        return pit->second;
    std::string why;
    if (!plan.valid(&why)) {
        throw std::invalid_argument("PlanExplorer: invalid plan '" +
                                    key + "': " + why);
    }

    ExploreCounters &counters = exploreCounters();
    const uint64_t fp_ns_before = applier_.stats().fingerprintNs;
    const uint64_t t0 = nowNs();
    passes::PlanApplier::Node node = root_;
    for (int bit : plan.bits)
        node = applier_.apply(node, bit);
    counters.pipelineNs.fetch_add(
        nowNs() - t0 - (applier_.stats().fingerprintNs - fp_ns_before),
        std::memory_order_relaxed);
    ++plansWalked_;
    counters.plansWalked.fetch_add(1, std::memory_order_relaxed);
    foldStats();

    // Dedup against every variant seen so far: plans converging to an
    // existing text (canonical or plan-born) share its index.
    const uint64_t tp = nowNs();
    std::string text = emit::emitGlsl(*node.module);
    counters.printRuns.fetch_add(1, std::memory_order_relaxed);
    counters.printNs.fetch_add(nowNs() - tp, std::memory_order_relaxed);
    const uint64_t hash = fnv1a(text);
    auto hit = byTextHash_.find(hash);
    int index;
    if (hit == byTextHash_.end()) {
        index = static_cast<int>(ex_.variants.size());
        byTextHash_.emplace(hash, index);
        Variant v;
        v.source = std::move(text);
        v.sourceHash = hash;
        ex_.variants.push_back(std::move(v));
    } else {
        index = hit->second;
        counters.fingerprintHits.fetch_add(1,
                                           std::memory_order_relaxed);
    }
    if (plan.isCanonical())
        ex_.variantOfCombo.emplace(plan.mask(), index);
    else
        ex_.variantOfPlan.emplace(key, index);
    return index;
}

} // namespace gsopt::tuner
