#include "tuner/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>

#include "passes/registry.h"
#include "runtime/framework.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/thread_pool.h"

namespace gsopt::tuner {

namespace {

/** Bump when the measurement schema, a pass, or a cost model changes:
 * anything that can alter variants or timings without touching the
 * corpus or device parameters. */
/* 13: sharded per-shader cache, N-bit flag sets (wider producer
 * serialisation), combo->variant map replaces the fixed array. */
/* 14: Exploration carries the übershader family id (cross-shader
 * transfer seeding). */
constexpr uint64_t kSchemaVersion = 14;

/** Exact IEEE-754 bit pattern of a double, for hashing. Decimal
 * formatting (the old ostringstream path) silently collided configs
 * differing past the default 6 significant digits. */
uint64_t
doubleBits(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

} // namespace

uint64_t
deviceModelKey(const gpu::DeviceModel &device)
{
    uint64_t key = fnv1a(device.name);
    key = hashCombine(key, fnv1a(device.vendor));
    key = hashCombine(key, static_cast<uint64_t>(device.id));
    key = hashCombine(key, static_cast<uint64_t>(device.isa));
    for (double v :
         {device.clockGhz, device.baseOverheadCycles, device.costAddMul,
          device.costDiv, device.costSqrt, device.costTranscendental,
          device.costMov, device.costBranch, device.divergencePenalty,
          device.texIssueCost, device.texLatency, device.wavesToHideTex,
          device.regBudget, device.spillThreshold, device.spillCost,
          device.maxWaves, device.icacheInstrs, device.icachePenalty,
          device.slpEfficiency, device.noiseSigma,
          device.timerQuantumNs}) {
        key = hashCombine(key, doubleBits(v));
    }
    key = hashCombine(key, static_cast<uint64_t>(device.shaderUnits));
    key = hashCombine(key,
                      static_cast<uint64_t>(device.trianglesPerFrame));
    key = hashCombine(key, device.jitFlags.mask());
    key = hashCombine(key,
                      static_cast<uint64_t>(device.jitUnrollTrips));
    key = hashCombine(key,
                      static_cast<uint64_t>(device.jitUnrollInstrs));
    key = hashCombine(key,
                      static_cast<uint64_t>(device.jitHoistArmInstrs));
    key = hashCombine(key,
                      static_cast<uint64_t>(device.schedulerWindow));
    return key;
}

uint64_t
deviceSetKey()
{
    uint64_t key = kSchemaVersion;
    key = hashCombine(key, passes::PassRegistry::instance().signature());
    for (gpu::DeviceId id : gpu::allDevices())
        key = hashCombine(key, deviceModelKey(gpu::deviceModel(id)));
    return key;
}

uint64_t
shardKey(const corpus::CorpusShader &shader, uint64_t setKey)
{
    uint64_t key = setKey;
    key = hashCombine(key, fnv1a(shader.name));
    key = hashCombine(key, fnv1a(shader.source));
    for (const auto &[k, v] : shader.defines) {
        key = hashCombine(key, fnv1a(k));
        key = hashCombine(key, fnv1a(v));
    }
    return key;
}

double
DeviceMeasurement::speedupOf(int variant_index) const
{
    if (variant_index < 0 ||
        static_cast<size_t>(variant_index) >= variantMeanNs.size()) {
        throw std::out_of_range(
            "variant index " + std::to_string(variant_index) +
            " out of range (have " +
            std::to_string(variantMeanNs.size()) + " variants)");
    }
    if (originalMeanNs <= 0.0)
        return 0.0;
    const double v = variantMeanNs[static_cast<size_t>(variant_index)];
    return (originalMeanNs - v) / originalMeanNs * 100.0;
}

double
ShaderResult::bestSpeedup(gpu::DeviceId dev) const
{
    const auto &m = byDevice.at(dev);
    double best = -1e30;
    for (size_t v = 0; v < m.variantMeanNs.size(); ++v)
        best = std::max(best, m.speedupOf(static_cast<int>(v)));
    return best;
}

FlagSet
ShaderResult::bestFlags(gpu::DeviceId dev) const
{
    const auto &m = byDevice.at(dev);
    int best_variant = 0;
    double best = -1e30;
    for (size_t v = 0; v < m.variantMeanNs.size(); ++v) {
        double s = m.speedupOf(static_cast<int>(v));
        if (s > best) {
            best = s;
            best_variant = static_cast<int>(v);
        }
    }
    // Prefer the smallest flag set among producers (minimal set).
    return minimalProducer(
        exploration.variants[static_cast<size_t>(best_variant)]
            .producers);
}

double
ShaderResult::isolatedFlagSpeedup(gpu::DeviceId dev, int bit) const
{
    const auto &m = byDevice.at(dev);
    const size_t with = static_cast<size_t>(
        exploration.variantOf(FlagSet(1ull << bit)));
    const size_t base =
        static_cast<size_t>(exploration.passthroughVariant);
    const double t_with = m.variantMeanNs.at(with);
    const double t_base = m.variantMeanNs.at(base);
    return (t_base - t_with) / t_base * 100.0;
}

ExperimentEngine::ExperimentEngine(
    const std::vector<corpus::CorpusShader> &shaders, unsigned threads)
{
    results_.resize(shaders.size());
    std::vector<size_t> all(shaders.size());
    for (size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    runShaders(shaders, all, threads);
}

const ExperimentEngine &
ExperimentEngine::instance()
{
    static const ExperimentEngine engine = [] {
        namespace fs = std::filesystem;
        ExperimentEngine e;
        const auto &shaders = corpus::corpus();
        e.results_.resize(shaders.size());

        const bool no_cache = std::getenv("GSOPT_NO_CACHE") != nullptr;
        const uint64_t set_key = deviceSetKey();
        const std::string dir = "experiment_cache";

        auto shard_path = [&](size_t i, uint64_t key) {
            std::string name = shaders[i].name;
            std::replace(name.begin(), name.end(), '/', '_');
            char hex[17];
            std::snprintf(hex, sizeof(hex), "%016llx",
                          static_cast<unsigned long long>(key));
            return dir + "/" + name + "-" + hex + ".bin";
        };

        // Retire every shard no current shader claims (old keys from
        // prior schemas / device sets / registries / source
        // revisions, and shaders dropped from the corpus) so the
        // cache never accretes.
        auto sweep_orphans = [&] {
            std::set<std::string> live;
            for (size_t i = 0; i < shaders.size(); ++i)
                live.insert(
                    shard_path(i, shardKey(shaders[i], set_key)));
            std::error_code iter_ec;
            for (const auto &entry :
                 fs::directory_iterator(dir, iter_ec)) {
                const std::string path = entry.path().string();
                if (path.size() > 4 &&
                    path.compare(path.size() - 4, 4, ".bin") == 0 &&
                    !live.count(dir + "/" +
                                entry.path().filename().string()))
                    fs::remove(entry.path(), iter_ec);
            }
        };

        std::vector<size_t> missing;
        for (size_t i = 0; i < shaders.size(); ++i) {
            const uint64_t key = shardKey(shaders[i], set_key);
            if (no_cache ||
                !loadShard(shard_path(i, key), key, e.results_[i]))
                missing.push_back(i);
        }
        if (missing.empty()) {
            sweep_orphans();
            return e;
        }

        e.runShaders(shaders, missing, 0);
        if (!no_cache) {
            std::error_code ec;
            fs::create_directories(dir, ec);
            if (!ec) {
                for (size_t i : missing) {
                    const uint64_t key = shardKey(shaders[i], set_key);
                    saveShard(shard_path(i, key), key, e.results_[i]);
                }
                sweep_orphans();
            }
        }
        return e;
    }();
    return engine;
}

void
ExperimentEngine::runShaders(
    const std::vector<corpus::CorpusShader> &shaders,
    const std::vector<size_t> &indices, unsigned threads)
{
    const std::vector<gpu::DeviceId> devices = gpu::allDevices();
    const size_t n_dev = devices.size();

    // One exploration per shader, triggered by the first (shader x
    // device) item scheduled for it; later items for the same shader
    // block on the same once_flag instead of re-exploring.
    std::unique_ptr<std::once_flag[]> explored(
        new std::once_flag[indices.size()]);

    // Per-item result slots: workers never append to shared state, so
    // the campaign output is identical for any thread count and any
    // item completion order.
    std::vector<DeviceMeasurement> slots(indices.size() * n_dev);

    parallelFor(
        indices.size() * n_dev, threads, [&](size_t item) {
            const size_t si = item / n_dev;
            const size_t di = item % n_dev;
            const corpus::CorpusShader &shader = shaders[indices[si]];
            ShaderResult &r = results_[indices[si]];

            std::call_once(explored[si], [&] {
                r.exploration = exploreShader(shader);
            });

            // Drivers receive what an application would ship: the
            // original preprocessed text (real engines preprocess
            // übershaders before glShaderSource).
            const std::string &original =
                r.exploration.preprocessedOriginal;
            const gpu::DeviceModel &device =
                gpu::deviceModel(devices[di]);

            DeviceMeasurement &m = slots[item];
            m.originalMeanNs =
                runtime::measureShader(original, device,
                                       shader.name + "/original")
                    .meanNs;
            m.variantMeanNs.reserve(r.exploration.variants.size());
            for (size_t v = 0; v < r.exploration.variants.size();
                 ++v) {
                const auto &variant = r.exploration.variants[v];
                m.variantMeanNs.push_back(
                    runtime::measureShader(
                        variant.source, device,
                        shader.name + "/v" + std::to_string(v))
                        .meanNs);
            }
        });

    for (size_t si = 0; si < indices.size(); ++si) {
        ShaderResult &r = results_[indices[si]];
        for (size_t di = 0; di < n_dev; ++di)
            r.byDevice.emplace(devices[di],
                               std::move(slots[si * n_dev + di]));
    }
}

const ShaderResult &
ExperimentEngine::result(const std::string &shaderName) const
{
    for (const auto &r : results_) {
        if (r.exploration.shaderName == shaderName)
            return r;
    }
    std::string known;
    for (const auto &r : results_) {
        known += known.empty() ? " " : ", ";
        known += r.exploration.shaderName;
    }
    throw std::out_of_range("no result for shader '" + shaderName +
                            "'; known shaders:" + known);
}

double
ExperimentEngine::meanSpeedup(gpu::DeviceId dev, FlagSet flags) const
{
    std::vector<double> speedups;
    speedups.reserve(results_.size());
    for (const auto &r : results_)
        speedups.push_back(r.speedupFor(dev, flags));
    return mean(speedups);
}

double
ExperimentEngine::meanBestSpeedup(gpu::DeviceId dev) const
{
    std::vector<double> speedups;
    speedups.reserve(results_.size());
    for (const auto &r : results_)
        speedups.push_back(r.bestSpeedup(dev));
    return mean(speedups);
}

FlagSet
ExperimentEngine::bestStaticFlags(gpu::DeviceId dev) const
{
    FlagSet best;
    double best_mean = -1e30;
    for (const FlagSet &flags : allFlagSets()) {
        const double m = meanSpeedup(dev, flags);
        const bool better =
            m > best_mean + 1e-12 ||
            (m > best_mean - 1e-12 && flags.count() < best.count());
        if (better) {
            best_mean = m;
            best = flags;
        }
    }
    return best;
}

FlagSet
ExperimentEngine::bestStaticFlagsOverall() const
{
    FlagSet best;
    double best_mean = -1e30;
    for (const FlagSet &flags : allFlagSets()) {
        double sum = 0;
        for (gpu::DeviceId dev : gpu::allDevices())
            sum += meanSpeedup(dev, flags);
        if (sum > best_mean) {
            best_mean = sum;
            best = flags;
        }
    }
    return best;
}

std::vector<double>
ExperimentEngine::perShaderSpeedups(gpu::DeviceId dev,
                                    FlagSet flags) const
{
    std::vector<double> out;
    out.reserve(results_.size());
    for (const auto &r : results_)
        out.push_back(r.speedupFor(dev, flags));
    return out;
}

std::vector<double>
ExperimentEngine::perShaderBestSpeedups(gpu::DeviceId dev) const
{
    std::vector<double> out;
    out.reserve(results_.size());
    for (const auto &r : results_)
        out.push_back(r.bestSpeedup(dev));
    return out;
}

FamilyPrior
ExperimentEngine::familyPrior() const
{
    FamilyPrior prior;
    for (const auto &r : results_) {
        for (const auto &[dev, m] : r.byDevice) {
            (void)m;
            prior.add(r.exploration.family, dev,
                      r.exploration.shaderName, r.bestFlags(dev));
        }
    }
    return prior;
}

// ---------------------------------------------------------------- cache

namespace {

void
writeString(std::ostream &os, const std::string &s)
{
    const uint64_t n = s.size();
    os.write(reinterpret_cast<const char *>(&n), sizeof(n));
    os.write(s.data(), static_cast<std::streamsize>(n));
}

bool
readString(std::istream &is, std::string &s)
{
    uint64_t n = 0;
    if (!is.read(reinterpret_cast<char *>(&n), sizeof(n)))
        return false;
    if (n > (1ull << 30))
        return false;
    s.resize(n);
    return static_cast<bool>(
        is.read(s.data(), static_cast<std::streamsize>(n)));
}

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
readPod(std::istream &is, T &v)
{
    return static_cast<bool>(
        is.read(reinterpret_cast<char *>(&v), sizeof(T)));
}

} // namespace

std::string
serializeShardBody(const ShaderResult &r)
{
    std::ostringstream os(std::ios::binary);
    writeString(os, r.exploration.shaderName);
    writeString(os, r.exploration.family);
    writeString(os, r.exploration.preprocessedOriginal);
    writeString(os, r.exploration.originalSource);
    writePod(os,
             static_cast<uint64_t>(r.exploration.exploredFlagCount));
    writePod(os, static_cast<uint64_t>(r.exploration.variants.size()));
    for (const auto &v : r.exploration.variants) {
        writeString(os, v.source);
        writePod(os, v.sourceHash);
        writePod(os, static_cast<uint64_t>(v.producers.size()));
        for (const FlagSet &f : v.producers)
            writePod(os, f.bits);
    }
    writePod(os,
             static_cast<uint64_t>(r.exploration.variantOfCombo.size()));
    // Deterministic order keeps shard bytes reproducible.
    std::vector<std::pair<uint64_t, int>> combos(
        r.exploration.variantOfCombo.begin(),
        r.exploration.variantOfCombo.end());
    std::sort(combos.begin(), combos.end());
    for (const auto &[combo, index] : combos) {
        writePod(os, combo);
        writePod(os, static_cast<int64_t>(index));
    }
    writePod(os, r.exploration.passthroughVariant);
    writePod(os, static_cast<uint64_t>(r.byDevice.size()));
    for (const auto &[dev, m] : r.byDevice) {
        writePod(os, static_cast<int>(dev));
        writePod(os, m.originalMeanNs);
        writePod(os, static_cast<uint64_t>(m.variantMeanNs.size()));
        for (double t : m.variantMeanNs)
            writePod(os, t);
    }
    return os.str();
}

void
ExperimentEngine::saveShard(const std::string &path, uint64_t key,
                            const ShaderResult &r)
{
    // Serialise the body first so a content hash can front it: the
    // structural caps in loadShard cannot catch a flipped byte inside
    // stored shader text, and a silently wrong variant is worse than
    // a re-run shard.
    const std::string body = serializeShardBody(r);
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        return;
    writePod(file, key);
    writePod(file, fnv1a(body));
    file.write(body.data(), static_cast<std::streamsize>(body.size()));
}

bool
ExperimentEngine::loadShard(const std::string &path, uint64_t key,
                            ShaderResult &out)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return false;
    uint64_t file_key = 0, body_hash = 0;
    if (!readPod(file, file_key) || file_key != key ||
        !readPod(file, body_hash))
        return false;
    const std::streamoff body_start = file.tellg();
    file.seekg(0, std::ios::end);
    const std::streamoff body_size = file.tellg() - body_start;
    if (body_size < 0 || body_size > (1ll << 31))
        return false;
    file.seekg(body_start);
    std::string body(static_cast<size_t>(body_size), '\0');
    if (!file.read(body.data(), body_size))
        return false;
    if (fnv1a(body) != body_hash)
        return false;
    std::istringstream is(body, std::ios::binary);
    ShaderResult r;
    if (!readString(is, r.exploration.shaderName) ||
        !readString(is, r.exploration.family) ||
        !readString(is, r.exploration.preprocessedOriginal) ||
        !readString(is, r.exploration.originalSource))
        return false;
    uint64_t flag_count = 0;
    if (!readPod(is, flag_count) || flag_count > 63)
        return false;
    r.exploration.exploredFlagCount = flag_count;
    uint64_t n_variants = 0;
    if (!readPod(is, n_variants) || n_variants > 100000)
        return false;
    r.exploration.variants.resize(n_variants);
    for (auto &v : r.exploration.variants) {
        if (!readString(is, v.source) || !readPod(is, v.sourceHash))
            return false;
        uint64_t n_producers = 0;
        if (!readPod(is, n_producers) || n_producers == 0 ||
            n_producers > (1ull << 24))
            return false;
        v.producers.resize(n_producers);
        for (auto &f : v.producers) {
            if (!readPod(is, f.bits))
                return false;
        }
    }
    uint64_t n_combos = 0;
    if (!readPod(is, n_combos) || n_combos > (1ull << 24))
        return false;
    r.exploration.variantOfCombo.reserve(n_combos);
    for (uint64_t c = 0; c < n_combos; ++c) {
        uint64_t combo = 0;
        int64_t index = 0;
        if (!readPod(is, combo) || !readPod(is, index))
            return false;
        if (index < 0 || static_cast<uint64_t>(index) >= n_variants)
            return false;
        r.exploration.variantOfCombo.emplace(
            combo, static_cast<int>(index));
    }
    if (!readPod(is, r.exploration.passthroughVariant) ||
        r.exploration.passthroughVariant < 0 ||
        static_cast<uint64_t>(r.exploration.passthroughVariant) >=
            n_variants)
        return false;
    uint64_t n_devices = 0;
    if (!readPod(is, n_devices) || n_devices > 16)
        return false;
    for (uint64_t d = 0; d < n_devices; ++d) {
        int dev_int = 0;
        DeviceMeasurement m;
        if (!readPod(is, dev_int) || !readPod(is, m.originalMeanNs))
            return false;
        uint64_t n_times = 0;
        if (!readPod(is, n_times) || n_times != n_variants)
            return false;
        m.variantMeanNs.resize(n_times);
        for (double &t : m.variantMeanNs) {
            if (!readPod(is, t))
                return false;
        }
        r.byDevice.emplace(static_cast<gpu::DeviceId>(dev_int),
                           std::move(m));
    }
    out = std::move(r);
    return true;
}

} // namespace gsopt::tuner
