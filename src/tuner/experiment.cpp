#include "tuner/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>

#include "passes/registry.h"
#include "runtime/framework.h"
#include "support/diag.h"
#include "support/fault.h"
#include "support/governor.h"
#include "support/retry.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/thread_pool.h"

namespace gsopt::tuner {

namespace {

/** Bump when the measurement schema, a pass, or a cost model changes:
 * anything that can alter variants or timings without touching the
 * corpus or device parameters. */
/* 13: sharded per-shader cache, N-bit flag sets (wider producer
 * serialisation), combo->variant map replaces the fixed array. */
/* 14: Exploration carries the übershader family id (cross-shader
 * transfer seeding). */
/* 15: ordered-plan annotations — bodies may carry a trailing
 * variantOfPlan section (absent for pure flag-lattice campaigns, so
 * canonical bodies are byte-identical to schema 14) and plan-only
 * variants may have zero producers. The version is part of every
 * shard key, so schema-14 shards miss cleanly and re-run. */
/* 16: tagged trailing sections — the schema-15 plan section gains a
 * 'P' tag byte and a 'Q' quarantine section (device + structured
 * reason) follows it, each written only when non-empty, so healthy
 * flag-lattice bodies stay byte-identical to 14/15. */
constexpr uint64_t kSchemaVersion = 16;

/** Exact IEEE-754 bit pattern of a double, for hashing. Decimal
 * formatting (the old ostringstream path) silently collided configs
 * differing past the default 6 significant digits. */
uint64_t
doubleBits(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

} // namespace

uint64_t
deviceModelKey(const gpu::DeviceModel &device)
{
    uint64_t key = fnv1a(device.name);
    key = hashCombine(key, fnv1a(device.vendor));
    key = hashCombine(key, static_cast<uint64_t>(device.id));
    key = hashCombine(key, static_cast<uint64_t>(device.isa));
    for (double v :
         {device.clockGhz, device.baseOverheadCycles, device.costAddMul,
          device.costDiv, device.costSqrt, device.costTranscendental,
          device.costMov, device.costBranch, device.divergencePenalty,
          device.texIssueCost, device.texLatency, device.wavesToHideTex,
          device.regBudget, device.spillThreshold, device.spillCost,
          device.maxWaves, device.icacheInstrs, device.icachePenalty,
          device.slpEfficiency, device.noiseSigma,
          device.timerQuantumNs}) {
        key = hashCombine(key, doubleBits(v));
    }
    key = hashCombine(key, static_cast<uint64_t>(device.shaderUnits));
    key = hashCombine(key,
                      static_cast<uint64_t>(device.trianglesPerFrame));
    key = hashCombine(key, device.jitFlags.mask());
    key = hashCombine(key,
                      static_cast<uint64_t>(device.jitUnrollTrips));
    key = hashCombine(key,
                      static_cast<uint64_t>(device.jitUnrollInstrs));
    key = hashCombine(key,
                      static_cast<uint64_t>(device.jitHoistArmInstrs));
    key = hashCombine(key,
                      static_cast<uint64_t>(device.schedulerWindow));
    return key;
}

uint64_t
deviceSetKey()
{
    uint64_t key = kSchemaVersion;
    key = hashCombine(key, passes::PassRegistry::instance().signature());
    for (gpu::DeviceId id : gpu::allDevices())
        key = hashCombine(key, deviceModelKey(gpu::deviceModel(id)));
    return key;
}

uint64_t
shardKey(const corpus::CorpusShader &shader, uint64_t setKey)
{
    uint64_t key = setKey;
    key = hashCombine(key, fnv1a(shader.name));
    key = hashCombine(key, fnv1a(shader.source));
    for (const auto &[k, v] : shader.defines) {
        key = hashCombine(key, fnv1a(k));
        key = hashCombine(key, fnv1a(v));
    }
    return key;
}

std::string
shardFileName(const corpus::CorpusShader &shader, uint64_t key)
{
    std::string name = shader.name;
    std::replace(name.begin(), name.end(), '/', '_');
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(key));
    return name + "-" + hex + ".bin";
}

const DeviceMeasurement &
ShaderResult::measurement(gpu::DeviceId dev) const
{
    auto it = byDevice.find(dev);
    if (it != byDevice.end())
        return it->second;
    const std::string name = exploration.shaderName.empty()
                                 ? "<unexplored>"
                                 : exploration.shaderName;
    if (quarantined.count(dev)) {
        std::string msg =
            "measurement for '" + name + "' on device " +
            std::to_string(static_cast<int>(dev)) +
            " was quarantined by the fault-tolerant campaign";
        auto why = quarantineReason.find(dev);
        if (why != quarantineReason.end())
            msg += ": " + why->second;
        msg += " (see ExperimentEngine::health())";
        throw std::out_of_range(msg);
    }
    throw std::out_of_range("no measurement for '" + name +
                            "' on device " +
                            std::to_string(static_cast<int>(dev)));
}

std::string
CampaignHealth::summary() const
{
    std::string out = "campaign health: " +
                      std::to_string(itemsCompleted) + " items ok, " +
                      std::to_string(itemsQuarantined) +
                      " quarantined, " + std::to_string(itemRetries) +
                      " item retries\n";
    for (const QuarantinedItem &q : quarantined) {
        out += "  quarantined " + q.shader + " on device " +
               std::to_string(static_cast<int>(q.device)) + " after " +
               std::to_string(q.attempts) + " attempt(s): " + q.error +
               "\n";
    }
    return out;
}

double
DeviceMeasurement::speedupOf(int variant_index) const
{
    if (variant_index < 0 ||
        static_cast<size_t>(variant_index) >= variantMeanNs.size()) {
        throw std::out_of_range(
            "variant index " + std::to_string(variant_index) +
            " out of range (have " +
            std::to_string(variantMeanNs.size()) + " variants)");
    }
    if (originalMeanNs <= 0.0)
        return 0.0;
    const double v = variantMeanNs[static_cast<size_t>(variant_index)];
    return (originalMeanNs - v) / originalMeanNs * 100.0;
}

double
ShaderResult::bestSpeedup(gpu::DeviceId dev) const
{
    const auto &m = measurement(dev);
    double best = -1e30;
    for (size_t v = 0; v < m.variantMeanNs.size(); ++v)
        best = std::max(best, m.speedupOf(static_cast<int>(v)));
    return best;
}

FlagSet
ShaderResult::bestFlags(gpu::DeviceId dev) const
{
    const auto &m = measurement(dev);
    int best_variant = 0;
    double best = -1e30;
    for (size_t v = 0; v < m.variantMeanNs.size(); ++v) {
        // Plan-only variants have no producers — no flag set reaches
        // them, so they cannot answer a best-*flags* query.
        if (exploration.variants[v].producers.empty())
            continue;
        double s = m.speedupOf(static_cast<int>(v));
        if (s > best) {
            best = s;
            best_variant = static_cast<int>(v);
        }
    }
    // Prefer the smallest flag set among producers (minimal set).
    return minimalProducer(
        exploration.variants[static_cast<size_t>(best_variant)]
            .producers);
}

double
ShaderResult::isolatedFlagSpeedup(gpu::DeviceId dev, int bit) const
{
    const auto &m = measurement(dev);
    const size_t with = static_cast<size_t>(
        exploration.variantOf(FlagSet(1ull << bit)));
    const size_t base =
        static_cast<size_t>(exploration.passthroughVariant);
    const double t_with = m.variantMeanNs.at(with);
    const double t_base = m.variantMeanNs.at(base);
    return (t_base - t_with) / t_base * 100.0;
}

ExperimentEngine::ExperimentEngine(
    const std::vector<corpus::CorpusShader> &shaders, unsigned threads)
{
    results_.resize(shaders.size());
    std::vector<size_t> all(shaders.size());
    for (size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    runShaders(shaders, all, threads);
}

ExperimentEngine::ExperimentEngine(
    const std::vector<corpus::CorpusShader> &shaders, unsigned threads,
    const std::string &cacheDir)
{
    namespace fs = std::filesystem;
    results_.resize(shaders.size());

    const uint64_t set_key = deviceSetKey();

    auto shard_path = [&](size_t i, uint64_t key) {
        return cacheDir + "/" + shardFileName(shaders[i], key);
    };

    // Retire every shard no current shader claims (old keys from
    // prior schemas / device sets / registries / source revisions,
    // and shaders dropped from the corpus) so the cache never
    // accretes. In-flight `.tmp` checkpoints are never reaped while
    // their key is live; a `.tmp` whose key died is an orphan too.
    auto sweep_orphans = [&] {
        std::set<std::string> live;
        for (size_t i = 0; i < shaders.size(); ++i)
            live.insert(shard_path(i, shardKey(shaders[i], set_key)));
        auto ends_with = [](const std::string &s,
                            const std::string &suffix) {
            return s.size() >= suffix.size() &&
                   s.compare(s.size() - suffix.size(), suffix.size(),
                             suffix) == 0;
        };
        std::error_code iter_ec;
        for (const auto &entry :
             fs::directory_iterator(cacheDir, iter_ec)) {
            const std::string name = entry.path().filename().string();
            if (ends_with(name, ".bin")) {
                if (!live.count(cacheDir + "/" + name))
                    fs::remove(entry.path(), iter_ec);
            } else if (ends_with(name, ".bin.tmp")) {
                const std::string base =
                    name.substr(0, name.size() - 4);
                if (!live.count(cacheDir + "/" + base))
                    fs::remove(entry.path(), iter_ec);
            }
        }
    };

    std::vector<size_t> missing;
    for (size_t i = 0; i < shaders.size(); ++i) {
        const uint64_t key = shardKey(shaders[i], set_key);
        if (!loadShard(shard_path(i, key), key, results_[i]))
            missing.push_back(i);
    }
    if (missing.empty()) {
        sweep_orphans();
        return;
    }

    std::error_code dir_ec;
    fs::create_directories(cacheDir, dir_ec);

    // Checkpoint each shard the moment its last device item completes
    // (called from worker threads; each shader writes a distinct
    // file), so a killed campaign resumes from the shards it finished
    // instead of re-running everything.
    auto checkpoint = [&](size_t i) {
        if (dir_ec)
            return;
        const uint64_t key = shardKey(shaders[i], set_key);
        saveShard(shard_path(i, key), key, results_[i]);
    };

    runShaders(shaders, missing, threads, checkpoint);
    sweep_orphans();
}

const ExperimentEngine &
ExperimentEngine::instance()
{
    static const ExperimentEngine engine = [] {
        const auto &shaders = corpus::corpus();
        if (std::getenv("GSOPT_NO_CACHE") != nullptr)
            return ExperimentEngine(shaders, 0);
        return ExperimentEngine(shaders, 0, "experiment_cache");
    }();
    return engine;
}

void
ExperimentEngine::runShaders(
    const std::vector<corpus::CorpusShader> &shaders,
    const std::vector<size_t> &indices, unsigned threads,
    const std::function<void(size_t)> &checkpoint)
{
    const std::vector<gpu::DeviceId> devices = gpu::allDevices();
    const size_t n_dev = devices.size();
    const size_t n_items = indices.size() * n_dev;

    // One exploration per shader, triggered by the first (shader x
    // device) item scheduled for it; later items for the same shader
    // block on the same once_flag instead of re-exploring.
    std::unique_ptr<std::once_flag[]> explored(
        new std::once_flag[indices.size()]);

    // Per-item result slots: workers never append to shared state, so
    // the campaign output is identical for any thread count and any
    // item completion order.
    std::vector<DeviceMeasurement> slots(n_items);

    // Per-shader completion countdown (drives the incremental
    // checkpoint) and a quarantine-free flag: only a shader whose
    // items all completed cleanly is checkpointed.
    std::unique_ptr<std::atomic<size_t>[]> remaining(
        new std::atomic<size_t>[indices.size()]);
    std::unique_ptr<std::atomic<bool>[]> clean(
        new std::atomic<bool>[indices.size()]);
    for (size_t si = 0; si < indices.size(); ++si) {
        remaining[si].store(n_dev, std::memory_order_relaxed);
        clean[si].store(true, std::memory_order_relaxed);
    }

    // GSOPT_STRICT=1 restores fail-fast: the first item error aborts
    // the campaign (CI wants a loud failure, not a quarantine).
    const char *strict_env = std::getenv("GSOPT_STRICT");
    const bool strict = strict_env && *strict_env && *strict_env != '0';
    const RetryPolicy policy = defaultRetryPolicy();

    std::mutex health_mutex;

    auto run_item = [&](size_t item) {
        const size_t si = item / n_dev;
        const size_t di = item % n_dev;
        const corpus::CorpusShader &shader = shaders[indices[si]];
        ShaderResult &r = results_[indices[si]];

        // Admission control: one (shader, device) item is one governed
        // unit of work — under an ambient GSOPT_DEADLINE_MS each item
        // gets its own deadline, so one pathological item is
        // quarantined instead of starving the rest of the campaign.
        // Installed here (worker thread) rather than at the campaign
        // entry because budgets are thread-local. A retry of the item
        // gets a fresh budget, like any other request.
        governor::ScopedRequestBudget admission;

        fault::point("worker.item", shader.name);

        std::call_once(explored[si], [&] {
            r.exploration = exploreShader(shader);
        });

        // Drivers receive what an application would ship: the
        // original preprocessed text (real engines preprocess
        // übershaders before glShaderSource).
        const std::string &original =
            r.exploration.preprocessedOriginal;
        const gpu::DeviceModel &device = gpu::deviceModel(devices[di]);

        // Reset the slot: this may be the retry of a partially filled
        // attempt, and the measurement protocol is deterministic, so a
        // clean re-run reproduces the same values.
        DeviceMeasurement &m = slots[item];
        m = DeviceMeasurement{};
        m.originalMeanNs =
            runtime::measureShader(original, device,
                                   shader.name + "/original")
                .meanNs;
        m.variantMeanNs.reserve(r.exploration.variants.size());
        for (size_t v = 0; v < r.exploration.variants.size(); ++v) {
            const auto &variant = r.exploration.variants[v];
            m.variantMeanNs.push_back(
                runtime::measureShader(
                    variant.source, device,
                    shader.name + "/v" + std::to_string(v))
                    .meanNs);
        }
    };

    auto quarantine_item = [&](size_t item, const char *what,
                               int attempts) {
        const size_t si = item / n_dev;
        const size_t di = item % n_dev;
        slots[item] = DeviceMeasurement{};
        clean[si].store(false, std::memory_order_relaxed);

        std::lock_guard<std::mutex> lock(health_mutex);
        ShaderResult &r = results_[indices[si]];
        // Exploration itself may have failed; keep the result
        // addressable by name either way.
        if (r.exploration.shaderName.empty())
            r.exploration.shaderName = shaders[indices[si]].name;
        r.quarantined.insert(devices[di]);
        // The structured reason rides with the result (and, through
        // the schema-16 'Q' section, with any shard serialised from
        // it): for a budget kill this is the ResourceExhausted message
        // naming the dimension and stage.
        r.quarantineReason[devices[di]] = what;
        QuarantinedItem q;
        q.shader = shaders[indices[si]].name;
        q.device = devices[di];
        q.error = what;
        q.attempts = attempts;

        Diagnostic d;
        d.severity = Severity::Warning;
        d.message = "quarantined campaign item " + q.shader + " x " +
                    gpu::deviceModel(devices[di]).vendor + " after " +
                    std::to_string(attempts) + " attempt(s): " + what;
        std::fprintf(stderr, "%s\n", d.str().c_str());

        health_.quarantined.push_back(std::move(q));
    };

    uint64_t item_retries = 0;
    std::atomic<uint64_t> retries{0};

    parallelFor(
        n_items, threads,
        [&](size_t item) {
            if (strict) {
                run_item(item);
                return;
            }
            int attempts = 0;
            try {
                retryTransient(
                    policy,
                    shaders[indices[item / n_dev]].name + "/item",
                    [&] { run_item(item); }, &attempts);
            } catch (const std::exception &e) {
                quarantine_item(item, e.what(), attempts);
            }
            if (attempts > 1)
                retries.fetch_add(
                    static_cast<uint64_t>(attempts - 1),
                    std::memory_order_relaxed);
        },
        [&](size_t item) {
            // Per-item completion hook (also runs after a quarantine
            // — the countdown must drain either way). When the last
            // device item of a shader finishes, every other item of
            // that shader has fully completed (the hook runs after
            // the item body, and the countdown is sequenced after
            // both), so assembling the result here is race-free.
            const size_t si = item / n_dev;
            if (remaining[si].fetch_sub(1) != 1)
                return;
            ShaderResult &r = results_[indices[si]];
            for (size_t di = 0; di < n_dev; ++di) {
                if (!r.quarantined.count(devices[di]))
                    r.byDevice.emplace(
                        devices[di],
                        std::move(slots[si * n_dev + di]));
            }
            if (clean[si].load(std::memory_order_relaxed) &&
                checkpoint)
                checkpoint(indices[si]);
        });

    item_retries = retries.load(std::memory_order_relaxed);
    health_.itemRetries += item_retries;
    health_.itemsQuarantined =
        static_cast<uint64_t>(health_.quarantined.size());
    health_.itemsCompleted +=
        static_cast<uint64_t>(n_items) - health_.itemsQuarantined;

    if (!health_.healthy())
        std::fprintf(stderr, "%s", health_.summary().c_str());
}

const ShaderResult &
ExperimentEngine::result(const std::string &shaderName) const
{
    for (const auto &r : results_) {
        if (r.exploration.shaderName == shaderName)
            return r;
    }
    std::string known;
    for (const auto &r : results_) {
        known += known.empty() ? " " : ", ";
        known += r.exploration.shaderName;
    }
    throw std::out_of_range("no result for shader '" + shaderName +
                            "'; known shaders:" + known);
}

double
ExperimentEngine::meanSpeedup(gpu::DeviceId dev, FlagSet flags) const
{
    std::vector<double> speedups;
    speedups.reserve(results_.size());
    for (const auto &r : results_)
        speedups.push_back(r.speedupFor(dev, flags));
    return mean(speedups);
}

double
ExperimentEngine::meanBestSpeedup(gpu::DeviceId dev) const
{
    std::vector<double> speedups;
    speedups.reserve(results_.size());
    for (const auto &r : results_)
        speedups.push_back(r.bestSpeedup(dev));
    return mean(speedups);
}

FlagSet
ExperimentEngine::bestStaticFlags(gpu::DeviceId dev) const
{
    FlagSet best;
    double best_mean = -1e30;
    for (const FlagSet &flags : allFlagSets()) {
        const double m = meanSpeedup(dev, flags);
        const bool better =
            m > best_mean + 1e-12 ||
            (m > best_mean - 1e-12 && flags.count() < best.count());
        if (better) {
            best_mean = m;
            best = flags;
        }
    }
    return best;
}

FlagSet
ExperimentEngine::bestStaticFlagsOverall() const
{
    FlagSet best;
    double best_mean = -1e30;
    for (const FlagSet &flags : allFlagSets()) {
        double sum = 0;
        for (gpu::DeviceId dev : gpu::allDevices())
            sum += meanSpeedup(dev, flags);
        if (sum > best_mean) {
            best_mean = sum;
            best = flags;
        }
    }
    return best;
}

std::vector<double>
ExperimentEngine::perShaderSpeedups(gpu::DeviceId dev,
                                    FlagSet flags) const
{
    std::vector<double> out;
    out.reserve(results_.size());
    for (const auto &r : results_)
        out.push_back(r.speedupFor(dev, flags));
    return out;
}

std::vector<double>
ExperimentEngine::perShaderBestSpeedups(gpu::DeviceId dev) const
{
    std::vector<double> out;
    out.reserve(results_.size());
    for (const auto &r : results_)
        out.push_back(r.bestSpeedup(dev));
    return out;
}

FamilyPrior
ExperimentEngine::familyPrior() const
{
    FamilyPrior prior;
    for (const auto &r : results_) {
        for (const auto &[dev, m] : r.byDevice) {
            (void)m;
            prior.add(r.exploration.family, dev,
                      r.exploration.shaderName, r.bestFlags(dev));
        }
    }
    return prior;
}

// ---------------------------------------------------------------- cache

namespace {

void
writeString(std::ostream &os, const std::string &s)
{
    const uint64_t n = s.size();
    os.write(reinterpret_cast<const char *>(&n), sizeof(n));
    os.write(s.data(), static_cast<std::streamsize>(n));
}

bool
readString(std::istream &is, std::string &s)
{
    uint64_t n = 0;
    if (!is.read(reinterpret_cast<char *>(&n), sizeof(n)))
        return false;
    // Bound the length by the bytes actually remaining in the body: a
    // flipped length byte must fail cleanly here, not allocate ~1 GB
    // before the read fails.
    const std::streamoff here = is.tellg();
    if (here < 0)
        return false;
    is.seekg(0, std::ios::end);
    const std::streamoff end = is.tellg();
    is.seekg(here);
    if (end < here || n > static_cast<uint64_t>(end - here))
        return false;
    s.resize(n);
    return static_cast<bool>(
        is.read(s.data(), static_cast<std::streamsize>(n)));
}

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
readPod(std::istream &is, T &v)
{
    return static_cast<bool>(
        is.read(reinterpret_cast<char *>(&v), sizeof(T)));
}

} // namespace

std::string
serializeShardBody(const ShaderResult &r)
{
    std::ostringstream os(std::ios::binary);
    writeString(os, r.exploration.shaderName);
    writeString(os, r.exploration.family);
    writeString(os, r.exploration.preprocessedOriginal);
    writeString(os, r.exploration.originalSource);
    writePod(os,
             static_cast<uint64_t>(r.exploration.exploredFlagCount));
    writePod(os, static_cast<uint64_t>(r.exploration.variants.size()));
    for (const auto &v : r.exploration.variants) {
        writeString(os, v.source);
        writePod(os, v.sourceHash);
        writePod(os, static_cast<uint64_t>(v.producers.size()));
        for (const FlagSet &f : v.producers)
            writePod(os, f.bits);
    }
    writePod(os,
             static_cast<uint64_t>(r.exploration.variantOfCombo.size()));
    // Deterministic order keeps shard bytes reproducible.
    std::vector<std::pair<uint64_t, int>> combos(
        r.exploration.variantOfCombo.begin(),
        r.exploration.variantOfCombo.end());
    std::sort(combos.begin(), combos.end());
    for (const auto &[combo, index] : combos) {
        writePod(os, combo);
        writePod(os, static_cast<int64_t>(index));
    }
    writePod(os, r.exploration.passthroughVariant);
    writePod(os, static_cast<uint64_t>(r.byDevice.size()));
    for (const auto &[dev, m] : r.byDevice) {
        writePod(os, static_cast<int>(dev));
        writePod(os, m.originalMeanNs);
        writePod(os, static_cast<uint64_t>(m.variantMeanNs.size()));
        for (double t : m.variantMeanNs)
            writePod(os, t);
    }
    // Tagged trailing sections (schema 16), each written only when
    // non-empty, so a healthy pure flag-lattice campaign — the paper's
    // canonical 2^N sweep — serialises byte-identically to schema
    // 14/15 and the golden md5 pins hold. Both source maps are ordered;
    // iteration order is deterministic.
    if (!r.exploration.variantOfPlan.empty()) {
        writePod(os, static_cast<char>('P'));
        writePod(os, static_cast<uint64_t>(
                         r.exploration.variantOfPlan.size()));
        for (const auto &[plan, index] : r.exploration.variantOfPlan) {
            writeString(os, plan);
            writePod(os, static_cast<int64_t>(index));
        }
    }
    if (!r.quarantined.empty()) {
        writePod(os, static_cast<char>('Q'));
        writePod(os, static_cast<uint64_t>(r.quarantined.size()));
        for (gpu::DeviceId dev : r.quarantined) {
            writePod(os, static_cast<int>(dev));
            auto why = r.quarantineReason.find(dev);
            writeString(os, why == r.quarantineReason.end()
                                ? std::string()
                                : why->second);
        }
    }
    return os.str();
}

namespace {

void
warnShard(const std::string &path, const std::string &what)
{
    Diagnostic d;
    d.severity = Severity::Warning;
    d.message = "shard checkpoint '" + path + "': " + what;
    std::fprintf(stderr, "%s\n", d.str().c_str());
}

} // namespace

void
ExperimentEngine::saveShard(const std::string &path, uint64_t key,
                            const ShaderResult &r)
{
    namespace fs = std::filesystem;
    // Serialise the body first so a content hash can front it: the
    // structural caps in loadShard cannot catch a flipped byte inside
    // stored shader text, and a silently wrong variant is worse than
    // a re-run shard.
    const std::string body = serializeShardBody(r);

    // Tmp-rename protocol: build the whole file beside the target,
    // publish it with one atomic rename. A crash (or injected tear)
    // mid-write leaves only the .tmp — readers never see a torn
    // shard, and a previous complete shard stays intact.
    const std::string tmp = path + ".tmp";
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
        warnShard(path, "cannot open temporary file for writing");
        return;
    }
    writePod(file, key);
    writePod(file, fnv1a(body));
    const size_t n = fault::tearPoint("shard.write", body.size());
    file.write(body.data(), static_cast<std::streamsize>(n));
    file.flush();
    if (n != body.size()) {
        // Injected torn write: simulate the process dying mid-write —
        // abandon the .tmp without publishing it.
        warnShard(path, "torn write injected; checkpoint abandoned");
        return;
    }
    if (!file) {
        warnShard(path, "write failed; checkpoint abandoned");
        std::error_code ec;
        fs::remove(tmp, ec);
        return;
    }
    file.close();
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        warnShard(path, "rename failed: " + ec.message());
}

bool
ExperimentEngine::loadShard(const std::string &path, uint64_t key,
                            ShaderResult &out)
{
    // An injected read fault is a cache miss: the shard re-runs.
    if (fault::triggered("shard.read"))
        return false;
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return false;
    uint64_t file_key = 0, body_hash = 0;
    if (!readPod(file, file_key))
        return false;
    if (file_key != key) {
        // A present-but-differently-keyed shard is stale, not corrupt:
        // the key covers the schema version, registry signature,
        // device set, and shader source, so this is what an old-schema
        // (or otherwise outdated) shard looks like. Miss cleanly — the
        // shard re-runs — but say so: a silent wrong-key hit here
        // would poison every figure downstream.
        warnShard(path, "key mismatch (stale schema, registry, device "
                        "set, or shader source); treating as a cache "
                        "miss");
        return false;
    }
    if (!readPod(file, body_hash))
        return false;
    const std::streamoff body_start = file.tellg();
    file.seekg(0, std::ios::end);
    const std::streamoff body_size = file.tellg() - body_start;
    if (body_size < 0 || body_size > (1ll << 31))
        return false;
    file.seekg(body_start);
    std::string body(static_cast<size_t>(body_size), '\0');
    if (!file.read(body.data(), body_size))
        return false;
    if (fnv1a(body) != body_hash)
        return false;
    std::istringstream is(body, std::ios::binary);
    ShaderResult r;
    if (!readString(is, r.exploration.shaderName) ||
        !readString(is, r.exploration.family) ||
        !readString(is, r.exploration.preprocessedOriginal) ||
        !readString(is, r.exploration.originalSource))
        return false;
    uint64_t flag_count = 0;
    if (!readPod(is, flag_count) || flag_count > 63)
        return false;
    r.exploration.exploredFlagCount = flag_count;
    uint64_t n_variants = 0;
    if (!readPod(is, n_variants) || n_variants > 100000)
        return false;
    r.exploration.variants.resize(n_variants);
    // Plan-only variants (schema 15) legitimately have zero producers
    // — no flag combination reaches their text. Anything else with
    // zero producers is structural corruption; checked once the plan
    // section below says which variants plans actually reference.
    std::vector<size_t> producerless;
    for (size_t vi = 0; vi < n_variants; ++vi) {
        auto &v = r.exploration.variants[vi];
        if (!readString(is, v.source) || !readPod(is, v.sourceHash))
            return false;
        uint64_t n_producers = 0;
        if (!readPod(is, n_producers) || n_producers > (1ull << 24))
            return false;
        if (n_producers == 0)
            producerless.push_back(vi);
        v.producers.resize(n_producers);
        for (auto &f : v.producers) {
            if (!readPod(is, f.bits))
                return false;
        }
    }
    uint64_t n_combos = 0;
    if (!readPod(is, n_combos) || n_combos > (1ull << 24))
        return false;
    r.exploration.variantOfCombo.reserve(n_combos);
    for (uint64_t c = 0; c < n_combos; ++c) {
        uint64_t combo = 0;
        int64_t index = 0;
        if (!readPod(is, combo) || !readPod(is, index))
            return false;
        if (index < 0 || static_cast<uint64_t>(index) >= n_variants)
            return false;
        r.exploration.variantOfCombo.emplace(
            combo, static_cast<int>(index));
    }
    if (!readPod(is, r.exploration.passthroughVariant) ||
        r.exploration.passthroughVariant < 0 ||
        static_cast<uint64_t>(r.exploration.passthroughVariant) >=
            n_variants)
        return false;
    uint64_t n_devices = 0;
    if (!readPod(is, n_devices) || n_devices > 16)
        return false;
    for (uint64_t d = 0; d < n_devices; ++d) {
        int dev_int = 0;
        DeviceMeasurement m;
        if (!readPod(is, dev_int) || !readPod(is, m.originalMeanNs))
            return false;
        uint64_t n_times = 0;
        if (!readPod(is, n_times) || n_times != n_variants)
            return false;
        m.variantMeanNs.resize(n_times);
        for (double &t : m.variantMeanNs) {
            if (!readPod(is, t))
                return false;
        }
        r.byDevice.emplace(static_cast<gpu::DeviceId>(dev_int),
                           std::move(m));
    }
    // Optional tagged trailing sections (schema 16): 'P' plans then
    // 'Q' quarantine, each at most once, in that order. Absent for a
    // healthy flag-lattice campaign — then the body ends exactly here.
    bool seen_plans = false, seen_quarantine = false;
    while (is.peek() != std::char_traits<char>::eof()) {
        char tag = 0;
        if (!readPod(is, tag))
            return false;
        if (tag == 'P') {
            if (seen_plans || seen_quarantine)
                return false; // duplicate or out-of-order section
            seen_plans = true;
            uint64_t n_plans = 0;
            if (!readPod(is, n_plans) || n_plans == 0 ||
                n_plans > (1ull << 24))
                return false;
            for (uint64_t p = 0; p < n_plans; ++p) {
                std::string plan;
                int64_t index = 0;
                if (!readString(is, plan) || plan.empty() ||
                    !readPod(is, index))
                    return false;
                if (index < 0 ||
                    static_cast<uint64_t>(index) >= n_variants)
                    return false;
                if (!r.exploration.variantOfPlan
                         .emplace(std::move(plan),
                                  static_cast<int>(index))
                         .second)
                    return false; // duplicate plan key
            }
        } else if (tag == 'Q') {
            if (seen_quarantine)
                return false;
            seen_quarantine = true;
            uint64_t n_q = 0;
            if (!readPod(is, n_q) || n_q == 0 || n_q > 1024)
                return false;
            for (uint64_t q = 0; q < n_q; ++q) {
                int dev_int = 0;
                std::string reason;
                if (!readPod(is, dev_int) || !readString(is, reason))
                    return false;
                const auto dev = static_cast<gpu::DeviceId>(dev_int);
                // A quarantined device has no measurement, and the
                // set itself must be duplicate-free.
                if (r.byDevice.count(dev) ||
                    !r.quarantined.insert(dev).second)
                    return false;
                if (!reason.empty())
                    r.quarantineReason.emplace(dev, std::move(reason));
            }
        } else {
            return false; // unknown tag: garbled body
        }
    }
    // Every producer-less variant must be reachable through some plan
    // annotation; otherwise the body is structurally corrupt.
    for (size_t vi : producerless) {
        bool referenced = false;
        for (const auto &[plan, index] : r.exploration.variantOfPlan) {
            if (static_cast<size_t>(index) == vi) {
                referenced = true;
                break;
            }
        }
        if (!referenced)
            return false;
    }
    out = std::move(r);
    return true;
}

} // namespace gsopt::tuner
