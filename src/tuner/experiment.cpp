#include "tuner/experiment.h"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "runtime/framework.h"
#include "support/rng.h"
#include "support/stats.h"

namespace gsopt::tuner {

namespace {

/** Bump when the measurement schema, a pass, or a cost model changes:
 * anything that can alter variants or timings without touching the
 * corpus or device parameters. */
/* 12: compile-once exploration (fingerprint dedup can reorder variant
 * discovery) + content-addressed driver cache changed measurement
 * counts/ordering. */
constexpr uint64_t kSchemaVersion = 12;

uint64_t
campaignKey(const std::vector<corpus::CorpusShader> &shaders)
{
    uint64_t key = kSchemaVersion;
    for (const auto &s : shaders) {
        key = hashCombine(key, fnv1a(s.name));
        key = hashCombine(key, fnv1a(s.source));
        for (const auto &[k, v] : s.defines) {
            key = hashCombine(key, fnv1a(k));
            key = hashCombine(key, fnv1a(v));
        }
    }
    for (gpu::DeviceId id : gpu::allDevices()) {
        const gpu::DeviceModel &d = gpu::deviceModel(id);
        std::ostringstream os;
        os << d.name << d.clockGhz << d.shaderUnits << d.costAddMul
           << d.costDiv << d.costSqrt << d.costTranscendental
           << d.costMov << d.costBranch << d.divergencePenalty
           << d.texIssueCost << d.texLatency << d.wavesToHideTex
           << d.regBudget << d.spillThreshold << d.spillCost
           << d.maxWaves << d.icacheInstrs << d.icachePenalty
           << d.slpEfficiency << d.noiseSigma << d.trianglesPerFrame
           << static_cast<int>(d.isa) << d.jitFlags.adce
           << d.jitFlags.coalesce << d.jitFlags.gvn
           << d.jitFlags.reassociate << d.jitFlags.unroll
           << d.jitFlags.hoist << d.jitFlags.fpReassociate
           << d.jitFlags.divToMul << d.jitUnrollTrips
           << d.jitUnrollInstrs << d.jitHoistArmInstrs
           << d.baseOverheadCycles << d.schedulerWindow;
        key = hashCombine(key, fnv1a(os.str()));
    }
    return key;
}

} // namespace

double
ShaderResult::bestSpeedup(gpu::DeviceId dev) const
{
    const auto &m = byDevice.at(dev);
    double best = -1e30;
    for (size_t v = 0; v < m.variantMeanNs.size(); ++v)
        best = std::max(best, m.speedupOf(static_cast<int>(v)));
    return best;
}

FlagSet
ShaderResult::bestFlags(gpu::DeviceId dev) const
{
    const auto &m = byDevice.at(dev);
    int best_variant = 0;
    double best = -1e30;
    for (size_t v = 0; v < m.variantMeanNs.size(); ++v) {
        double s = m.speedupOf(static_cast<int>(v));
        if (s > best) {
            best = s;
            best_variant = static_cast<int>(v);
        }
    }
    // Prefer the smallest flag set among producers (minimal set).
    const auto &producers =
        exploration.variants[static_cast<size_t>(best_variant)]
            .producers;
    FlagSet minimal = producers.front();
    int min_bits = 9;
    for (const FlagSet &f : producers) {
        int n = __builtin_popcount(f.bits);
        if (n < min_bits) {
            min_bits = n;
            minimal = f;
        }
    }
    return minimal;
}

double
ShaderResult::isolatedFlagSpeedup(gpu::DeviceId dev, int bit) const
{
    const auto &m = byDevice.at(dev);
    const int with = exploration.variantOfFlags[1 << bit];
    const int base = exploration.passthroughVariant;
    const double t_with =
        m.variantMeanNs[static_cast<size_t>(with)];
    const double t_base =
        m.variantMeanNs[static_cast<size_t>(base)];
    return (t_base - t_with) / t_base * 100.0;
}

ExperimentEngine::ExperimentEngine(
    const std::vector<corpus::CorpusShader> &shaders)
{
    run(shaders);
}

const ExperimentEngine &
ExperimentEngine::instance()
{
    static const ExperimentEngine engine = [] {
        ExperimentEngine e;
        const auto &shaders = corpus::corpus();
        const uint64_t key = campaignKey(shaders);
        const std::string path = "experiment_cache.bin";
        const bool no_cache = std::getenv("GSOPT_NO_CACHE") != nullptr;
        if (!no_cache && e.loadCache(path, key))
            return e;
        e.run(shaders);
        if (!no_cache)
            e.saveCache(path, key);
        return e;
    }();
    return engine;
}

void
ExperimentEngine::run(const std::vector<corpus::CorpusShader> &shaders)
{
    results_.resize(shaders.size());

    // Shaders are independent: explore + measure in parallel.
    std::atomic<size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const size_t idx = next.fetch_add(1);
            if (idx >= shaders.size())
                return;
            const corpus::CorpusShader &shader = shaders[idx];
            ShaderResult r;
            r.exploration = exploreShader(shader);

            // Drivers receive what an application would ship: the
            // original preprocessed text (real engines preprocess
            // übershaders before glShaderSource).
            const std::string &original =
                r.exploration.preprocessedOriginal;

            for (gpu::DeviceId id : gpu::allDevices()) {
                const gpu::DeviceModel &device = gpu::deviceModel(id);
                DeviceMeasurement m;
                m.originalMeanNs =
                    runtime::measureShader(
                        original, device, shader.name + "/original")
                        .meanNs;
                m.variantMeanNs.reserve(r.exploration.variants.size());
                for (size_t v = 0; v < r.exploration.variants.size();
                     ++v) {
                    const auto &variant = r.exploration.variants[v];
                    m.variantMeanNs.push_back(
                        runtime::measureShader(
                            variant.source, device,
                            shader.name + "/v" + std::to_string(v))
                            .meanNs);
                }
                r.byDevice.emplace(id, std::move(m));
            }
            results_[idx] = std::move(r);
        }
    };

    const unsigned n_threads =
        std::max(1u, std::thread::hardware_concurrency());
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < n_threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
}

const ShaderResult &
ExperimentEngine::result(const std::string &shaderName) const
{
    for (const auto &r : results_) {
        if (r.exploration.shaderName == shaderName)
            return r;
    }
    throw std::out_of_range("no result for shader " + shaderName);
}

double
ExperimentEngine::meanSpeedup(gpu::DeviceId dev, FlagSet flags) const
{
    std::vector<double> speedups;
    speedups.reserve(results_.size());
    for (const auto &r : results_)
        speedups.push_back(r.speedupFor(dev, flags));
    return mean(speedups);
}

double
ExperimentEngine::meanBestSpeedup(gpu::DeviceId dev) const
{
    std::vector<double> speedups;
    speedups.reserve(results_.size());
    for (const auto &r : results_)
        speedups.push_back(r.bestSpeedup(dev));
    return mean(speedups);
}

FlagSet
ExperimentEngine::bestStaticFlags(gpu::DeviceId dev) const
{
    FlagSet best;
    double best_mean = -1e30;
    for (const FlagSet &flags : allFlagSets()) {
        const double m = meanSpeedup(dev, flags);
        const bool better =
            m > best_mean + 1e-12 ||
            (m > best_mean - 1e-12 &&
             __builtin_popcount(flags.bits) <
                 __builtin_popcount(best.bits));
        if (better) {
            best_mean = m;
            best = flags;
        }
    }
    return best;
}

FlagSet
ExperimentEngine::bestStaticFlagsOverall() const
{
    FlagSet best;
    double best_mean = -1e30;
    for (const FlagSet &flags : allFlagSets()) {
        double sum = 0;
        for (gpu::DeviceId dev : gpu::allDevices())
            sum += meanSpeedup(dev, flags);
        if (sum > best_mean) {
            best_mean = sum;
            best = flags;
        }
    }
    return best;
}

std::vector<double>
ExperimentEngine::perShaderSpeedups(gpu::DeviceId dev,
                                    FlagSet flags) const
{
    std::vector<double> out;
    out.reserve(results_.size());
    for (const auto &r : results_)
        out.push_back(r.speedupFor(dev, flags));
    return out;
}

std::vector<double>
ExperimentEngine::perShaderBestSpeedups(gpu::DeviceId dev) const
{
    std::vector<double> out;
    out.reserve(results_.size());
    for (const auto &r : results_)
        out.push_back(r.bestSpeedup(dev));
    return out;
}

// ---------------------------------------------------------------- cache

namespace {

void
writeString(std::ofstream &os, const std::string &s)
{
    const uint64_t n = s.size();
    os.write(reinterpret_cast<const char *>(&n), sizeof(n));
    os.write(s.data(), static_cast<std::streamsize>(n));
}

bool
readString(std::ifstream &is, std::string &s)
{
    uint64_t n = 0;
    if (!is.read(reinterpret_cast<char *>(&n), sizeof(n)))
        return false;
    if (n > (1ull << 30))
        return false;
    s.resize(n);
    return static_cast<bool>(
        is.read(s.data(), static_cast<std::streamsize>(n)));
}

template <typename T>
void
writePod(std::ofstream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
readPod(std::ifstream &is, T &v)
{
    return static_cast<bool>(
        is.read(reinterpret_cast<char *>(&v), sizeof(T)));
}

} // namespace

void
ExperimentEngine::saveCache(const std::string &path, uint64_t key) const
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return;
    writePod(os, key);
    writePod(os, static_cast<uint64_t>(results_.size()));
    for (const auto &r : results_) {
        writeString(os, r.exploration.shaderName);
        writeString(os, r.exploration.preprocessedOriginal);
        writeString(os, r.exploration.originalSource);
        writePod(os,
                 static_cast<uint64_t>(r.exploration.variants.size()));
        for (const auto &v : r.exploration.variants) {
            writeString(os, v.source);
            writePod(os, v.sourceHash);
            writePod(os, static_cast<uint64_t>(v.producers.size()));
            for (const FlagSet &f : v.producers)
                writePod(os, f.bits);
        }
        os.write(reinterpret_cast<const char *>(
                     r.exploration.variantOfFlags),
                 sizeof(r.exploration.variantOfFlags));
        writePod(os, r.exploration.passthroughVariant);
        writePod(os, static_cast<uint64_t>(r.byDevice.size()));
        for (const auto &[dev, m] : r.byDevice) {
            writePod(os, static_cast<int>(dev));
            writePod(os, m.originalMeanNs);
            writePod(os,
                     static_cast<uint64_t>(m.variantMeanNs.size()));
            for (double t : m.variantMeanNs)
                writePod(os, t);
        }
    }
}

bool
ExperimentEngine::loadCache(const std::string &path, uint64_t key)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    uint64_t file_key = 0;
    if (!readPod(is, file_key) || file_key != key)
        return false;
    uint64_t n_shaders = 0;
    if (!readPod(is, n_shaders))
        return false;
    std::vector<ShaderResult> loaded;
    loaded.resize(n_shaders);
    for (auto &r : loaded) {
        if (!readString(is, r.exploration.shaderName) ||
            !readString(is, r.exploration.preprocessedOriginal) ||
            !readString(is, r.exploration.originalSource))
            return false;
        uint64_t n_variants = 0;
        if (!readPod(is, n_variants) || n_variants > 100000)
            return false;
        r.exploration.variants.resize(n_variants);
        for (auto &v : r.exploration.variants) {
            if (!readString(is, v.source) ||
                !readPod(is, v.sourceHash))
                return false;
            uint64_t n_producers = 0;
            if (!readPod(is, n_producers) || n_producers > 256)
                return false;
            v.producers.resize(n_producers);
            for (auto &f : v.producers) {
                if (!readPod(is, f.bits))
                    return false;
            }
        }
        if (!is.read(reinterpret_cast<char *>(
                         r.exploration.variantOfFlags),
                     sizeof(r.exploration.variantOfFlags)))
            return false;
        if (!readPod(is, r.exploration.passthroughVariant))
            return false;
        uint64_t n_devices = 0;
        if (!readPod(is, n_devices) || n_devices > 16)
            return false;
        for (uint64_t d = 0; d < n_devices; ++d) {
            int dev_int = 0;
            DeviceMeasurement m;
            if (!readPod(is, dev_int) ||
                !readPod(is, m.originalMeanNs))
                return false;
            uint64_t n_times = 0;
            if (!readPod(is, n_times) || n_times > 100000)
                return false;
            m.variantMeanNs.resize(n_times);
            for (double &t : m.variantMeanNs) {
                if (!readPod(is, t))
                    return false;
            }
            r.byDevice.emplace(static_cast<gpu::DeviceId>(dev_int),
                               std::move(m));
        }
    }
    results_ = std::move(loaded);
    return true;
}

} // namespace gsopt::tuner
