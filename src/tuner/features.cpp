#include "tuner/features.h"

#include <algorithm>
#include <mutex>

#include "emit/offline.h"
#include "ir/walk.h"
#include "passes/passes.h"

namespace gsopt::tuner {

ShaderFeatures
computeFeatures(const std::string &preprocessed)
{
    ShaderFeatures f;
    auto module = emit::compileToIr(preprocessed);
    passes::canonicalize(*module);
    f.instrs = module->instructionCount();
    ir::forEachNode(module->body, [&](ir::Node &n) {
        if (auto *l = ir::dyn_cast<ir::LoopNode>(&n)) {
            if (l->canonical) {
                f.hasConstLoop = true;
                f.maxTripCount =
                    std::max(f.maxTripCount, l->tripCount());
                f.loopBodyInstrs = std::max(
                    f.loopBodyInstrs, l->body.instructionCount());
            }
        } else if (n.kind() == ir::NodeKind::If) {
            ++f.branches;
        }
    });
    ir::forEachInstr(module->body, [&](const ir::Instr &i) {
        switch (i.op) {
          case ir::Opcode::Texture:
          case ir::Opcode::TextureBias:
          case ir::Opcode::TextureLod:
            ++f.textures;
            break;
          case ir::Opcode::Div:
            if (i.operands[1]->op == ir::Opcode::Const)
                f.hasConstDiv = true;
            break;
          default:
            break;
        }
    });
    return f;
}

const ShaderFeatures &
featuresOf(const Exploration &exploration)
{
    // One global mutex: computation is a single front-end run (~ms)
    // and happens at most once per exploration, so contention is not a
    // concern; what matters is that concurrent strategies on the same
    // exploration never race the cache fill.
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    if (!exploration.featureCache) {
        exploration.featureCache = std::make_shared<ShaderFeatures>(
            computeFeatures(exploration.preprocessedOriginal));
    }
    return *exploration.featureCache;
}

} // namespace gsopt::tuner
