#include "tuner/features.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <string>
#include <unordered_map>

#include "emit/offline.h"
#include "ir/walk.h"
#include "passes/passes.h"
#include "passes/util.h"

namespace gsopt::tuner {

ShaderFeatures
computeFeatures(const std::string &preprocessed)
{
    ShaderFeatures f;
    auto module = emit::compileToIr(preprocessed);
    passes::canonicalize(*module);
    f.instrs = module->instructionCount();
    ir::forEachNode(module->body, [&](ir::Node &n) {
        if (auto *l = ir::dyn_cast<ir::LoopNode>(&n)) {
            if (l->canonical) {
                f.hasConstLoop = true;
                f.maxTripCount =
                    std::max(f.maxTripCount, l->tripCount());
                f.loopBodyInstrs = std::max(
                    f.loopBodyInstrs, l->body.instructionCount());
            }
        } else if (n.kind() == ir::NodeKind::If) {
            ++f.branches;
        }
    });
    std::unordered_map<std::string, int> fetchShapes;
    ir::forEachInstr(module->body, [&](const ir::Instr &i) {
        switch (i.op) {
          case ir::Opcode::Texture:
          case ir::Opcode::TextureBias:
          case ir::Opcode::TextureLod:
            ++f.textures;
            break;
          case ir::Opcode::Div:
            if (i.operands[1]->op == ir::Opcode::Const)
                f.hasConstDiv = true;
            break;
          case ir::Opcode::Pow:
            if (auto e = passes::splatConstValue(i.operands[1])) {
                if (*e == std::nearbyint(*e) && *e >= 0.0 && *e <= 4.0)
                    ++f.powConstChains;
            }
            break;
          case ir::Opcode::Mul:
            if (i.type.isInt() && i.type.isScalar()) {
                for (const ir::Instr *op : i.operands) {
                    auto c = passes::splatConstValue(op);
                    if (c && (*c == 2.0 || *c == 4.0 || *c == 8.0)) {
                        ++f.intMulPow2;
                        break;
                    }
                }
            }
            break;
          default:
            break;
        }
        // Same fetch class and identity key as tex_batch itself, so
        // the profitability signal cannot drift from the pass.
        if (passes::isFetchOp(i))
            f.dupFetches += fetchShapes[passes::fetchKey(i)]++ > 0;
    });
    f.loopInvariantInstrs = passes::licmHoistableCount(*module);
    return f;
}

const ShaderFeatures &
featuresOf(const Exploration &exploration)
{
    // One global mutex: computation is a single front-end run (~ms)
    // and happens at most once per exploration, so contention is not a
    // concern; what matters is that concurrent strategies on the same
    // exploration never race the cache fill.
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    if (!exploration.featureCache) {
        exploration.featureCache = std::make_shared<ShaderFeatures>(
            computeFeatures(exploration.preprocessedOriginal));
    }
    return *exploration.featureCache;
}

} // namespace gsopt::tuner
