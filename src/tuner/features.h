/**
 * @file
 * Static shader features for profitability analysis (the paper's
 * Section VIII follow-on): a handful of cheap properties computed from
 * the unoptimised IR — constant-trip loops, texture ops, branches,
 * constant divisions, size — that the per-device prediction rules
 * (tuner/predict.h) consume to pick a flag set without measuring
 * anything.
 *
 * Features are a pure function of the preprocessed source; for an
 * Exploration they are computed at most once and cached on the
 * exploration (featuresOf), so a campaign over many devices pays one
 * front-end run per shader, not one per (shader, device) query.
 */
#ifndef GSOPT_TUNER_FEATURES_H
#define GSOPT_TUNER_FEATURES_H

#include <cstddef>
#include <string>

#include "tuner/explore.h"

namespace gsopt::tuner {

/** Cheap static features, computed from the unoptimised IR (front end
 * + lowering + the always-on canonicalisation only — no gated pass has
 * run, so the features describe what the optimiser *could* act on). */
struct ShaderFeatures
{
    bool hasConstLoop = false; ///< any canonical constant-trip loop
    long maxTripCount = 0;     ///< largest canonical trip count
    size_t loopBodyInstrs = 0; ///< largest canonical loop body
    int textures = 0;          ///< texture/textureBias/textureLod ops
    int branches = 0;          ///< structured if nodes
    bool hasConstDiv = false;  ///< any divide by a constant
    size_t instrs = 0;         ///< whole-body instruction count

    // -- fodder for the catalog passes (passes/registry.h) -------------
    /** Instructions licm would hoist out of constant-trip loops. */
    size_t loopInvariantInstrs = 0;
    /** pow(x, k) sites with a small constant integer exponent
     * (strength_reduce's multiply-chain fodder). */
    int powConstChains = 0;
    /** Integer multiplies by power-of-two constants (2/4/8). */
    int intMulPow2 = 0;
    /** Fetch ops (texture / read-only load) whose
     * (op, var, operands) shape repeats elsewhere in the body —
     * tex_batch's batching fodder. Counted module-wide, so it bounds
     * (rather than equals) what dominance-scoped batching removes. */
    int dupFetches = 0;
};

/** Compute features of preprocessed GLSL text (übershader predefines
 * must already be applied). Throws gsopt::CompileError on malformed
 * input. */
ShaderFeatures computeFeatures(const std::string &preprocessed);

/** Features of an exploration's shader, computed on first use and
 * cached on the exploration. Concurrent featuresOf calls on the same
 * exploration are serialised; copies made after the fill share the
 * cached value. Copying an Exploration *while* another thread's first
 * featuresOf call is filling the cache is not synchronised (the
 * default copy constructor reads featureCache without the features
 * mutex) — snapshot explorations before handing them to concurrent
 * searches. */
const ShaderFeatures &featuresOf(const Exploration &exploration);

} // namespace gsopt::tuner

#endif // GSOPT_TUNER_FEATURES_H
