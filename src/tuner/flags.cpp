#include "tuner/flags.h"

#include <stdexcept>

#include "passes/registry.h"

namespace gsopt::tuner {

size_t
flagCount()
{
    return passes::PassRegistry::instance().count();
}

uint64_t
comboCount()
{
    return passes::PassRegistry::instance().comboCount();
}

const char *
flagName(int bit)
{
    const passes::PassRegistry &reg = passes::PassRegistry::instance();
    if (bit < 0 || static_cast<size_t>(bit) >= reg.count())
        return "?";
    return reg.pass(bit).name.c_str();
}

passes::OptFlags
FlagSet::toOptFlags() const
{
    return passes::OptFlags::fromMask(bits);
}

FlagSet
FlagSet::fromOptFlags(const passes::OptFlags &flags)
{
    return FlagSet(flags.mask());
}

FlagSet
FlagSet::lunarGlassDefaults()
{
    return fromOptFlags(passes::OptFlags::lunarGlassDefaults());
}

FlagSet
FlagSet::all()
{
    return fromOptFlags(passes::OptFlags::all());
}

std::string
FlagSet::str() const
{
    if (bits == 0)
        return "{none}";
    std::string out = "{";
    bool first = true;
    const int n = static_cast<int>(flagCount());
    for (int b = 0; b < n; ++b) {
        if (!has(b))
            continue;
        if (!first)
            out += ",";
        out += flagName(b);
        first = false;
    }
    return out + "}";
}

std::vector<FlagSet>
allFlagSets()
{
    checkExhaustiveFeasible("allFlagSets");
    const uint64_t n = comboCount();
    std::vector<FlagSet> out;
    out.reserve(n);
    for (uint64_t b = 0; b < n; ++b)
        out.push_back(FlagSet(b));
    return out;
}

void
checkExhaustiveFeasible(const char *who)
{
    const size_t n = flagCount();
    if (n > 20) {
        throw std::length_error(
            std::string(who) + ": exhaustive enumeration over " +
            std::to_string(n) +
            " registered passes is infeasible; the exhaustive "
            "pipeline supports at most 20 (a sparse explorer is a "
            "ROADMAP follow-on)");
    }
}

FlagSet
minimalProducer(const std::vector<FlagSet> &producers)
{
    FlagSet minimal = producers.front();
    for (const FlagSet &f : producers) {
        if (f.count() < minimal.count())
            minimal = f;
    }
    return minimal;
}

} // namespace gsopt::tuner
