#include "tuner/flags.h"

namespace gsopt::tuner {

const char *
flagName(int bit)
{
    switch (bit) {
      case kAdce: return "ADCE";
      case kCoalesce: return "Coalesce";
      case kGvn: return "GVN";
      case kReassociate: return "Reassociate";
      case kUnroll: return "Unroll";
      case kHoist: return "Hoist";
      case kFpReassociate: return "FP Reassociate";
      case kDivToMul: return "Div to Mul";
    }
    return "?";
}

passes::OptFlags
FlagSet::toOptFlags() const
{
    passes::OptFlags f;
    f.adce = has(kAdce);
    f.coalesce = has(kCoalesce);
    f.gvn = has(kGvn);
    f.reassociate = has(kReassociate);
    f.unroll = has(kUnroll);
    f.hoist = has(kHoist);
    f.fpReassociate = has(kFpReassociate);
    f.divToMul = has(kDivToMul);
    return f;
}

FlagSet
FlagSet::fromOptFlags(const passes::OptFlags &flags)
{
    FlagSet s;
    if (flags.adce)
        s = s.with(kAdce);
    if (flags.coalesce)
        s = s.with(kCoalesce);
    if (flags.gvn)
        s = s.with(kGvn);
    if (flags.reassociate)
        s = s.with(kReassociate);
    if (flags.unroll)
        s = s.with(kUnroll);
    if (flags.hoist)
        s = s.with(kHoist);
    if (flags.fpReassociate)
        s = s.with(kFpReassociate);
    if (flags.divToMul)
        s = s.with(kDivToMul);
    return s;
}

FlagSet
FlagSet::lunarGlassDefaults()
{
    return fromOptFlags(passes::OptFlags::lunarGlassDefaults());
}

std::string
FlagSet::str() const
{
    if (bits == 0)
        return "{none}";
    std::string out = "{";
    bool first = true;
    for (int b = 0; b < kFlagCount; ++b) {
        if (!has(b))
            continue;
        if (!first)
            out += ",";
        out += flagName(b);
        first = false;
    }
    return out + "}";
}

std::vector<FlagSet>
allFlagSets()
{
    std::vector<FlagSet> out;
    out.reserve(256);
    for (int b = 0; b < 256; ++b)
        out.push_back(FlagSet(static_cast<uint8_t>(b)));
    return out;
}

} // namespace gsopt::tuner
