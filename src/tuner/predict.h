/**
 * @file
 * Measurement-free flag selection: the paper's closing "sophisticated
 * profitability analysis" direction (Section VIII) as two concrete
 * models the search strategies can start from.
 *
 *  - predictFlags: transparent per-device rules over static features
 *    (tuner/features.h). No measurements; PredictedSearch refines the
 *    prediction with a small measured neighbourhood.
 *  - FamilyPrior: übershader family members share most code (paper
 *    Section IV-A), so a completed campaign's per-shader best flags
 *    transfer across a family. Built by ExperimentEngine::familyPrior;
 *    TransferSeededSearch seeds from it (leave-one-out, so a shader
 *    never seeds itself with its own campaign verdict).
 */
#ifndef GSOPT_TUNER_PREDICT_H
#define GSOPT_TUNER_PREDICT_H

#include <map>
#include <string>
#include <vector>

#include "gpu/device.h"
#include "passes/registry.h"
#include "tuner/features.h"
#include "tuner/flags.h"

namespace gsopt::tuner {

/** Per-device profitability rules: pick a flag set for a shader from
 * its static features alone. */
FlagSet predictFlags(gpu::DeviceId device, const ShaderFeatures &f);

/**
 * Ranked flag-set candidates for a measured strategy to probe before
 * refining. The first entry is always predictFlags' measurement-free
 * pick; later entries cover known multi-flag interactions that a
 * single prediction cannot express and single-flag refinement cannot
 * reach (e.g. Adreno's unroll+reassociate pairing for big loops).
 */
std::vector<FlagSet> predictCandidates(gpu::DeviceId device,
                                       const ShaderFeatures &f);

/**
 * Ranked ordered-plan candidates for SequenceSearch to probe before
 * its random restarts. Entries 0..k are the canonical plans of
 * predictCandidates (the flag-lattice picks); later entries fold in
 * the per-device *ordering* wins measured by bench/micro_order — e.g.
 * hoisting invariants with licm *before* unroll shrinks an over-budget
 * loop body under unroll's instruction cap, reaching a full unroll the
 * canonical order (unroll first) never sees. Deduplicated; every entry
 * is valid against the live registry.
 */
std::vector<passes::PassPlan> predictPlanCandidates(
    gpu::DeviceId device, const ShaderFeatures &f);

/**
 * Per-(family, device) table of best-known flag sets, built from a
 * completed campaign. seedFor majority-votes each flag bit over the
 * family's members' per-shader best flags, excluding the queried
 * shader itself.
 */
class FamilyPrior
{
  public:
    /** Record one member's campaign-best flags. */
    void add(const std::string &family, gpu::DeviceId device,
             const std::string &shaderName, FlagSet bestFlags);

    /**
     * Majority-vote flag set over the family's members on @p device,
     * excluding @p excludeShader (leave-one-out: a member is seeded
     * only by its siblings). Unknown families — or a family emptied by
     * the exclusion — fall back to FlagSet::none(), degrading the
     * transfer search to a plain greedy refinement from the empty set.
     */
    FlagSet seedFor(const std::string &family, gpu::DeviceId device,
                    const std::string &excludeShader = {}) const;

    /** Number of distinct families recorded. */
    size_t familyCount() const { return table_.size(); }
    bool empty() const { return table_.empty(); }

  private:
    struct Entry
    {
        std::string shader;
        FlagSet flags;
    };
    std::map<std::string, std::map<gpu::DeviceId, std::vector<Entry>>>
        table_;
};

} // namespace gsopt::tuner

#endif // GSOPT_TUNER_PREDICT_H
