#include "tuner/predict.h"

#include <algorithm>

#include "passes/registry.h"

namespace gsopt::tuner {

namespace {

/** Unrolled-size (trip count x body instructions) above which the
 * i-cache-limited Adreno stops profiting from lone unrolling. The
 * prediction withholds kUnroll past this bound and the candidate list
 * offers the {Unroll, Reassociate} pair instead — the two sites must
 * stay exact complements, so they share this constant. */
constexpr size_t kAdrenoUnrollSizeLimit = 150;

size_t
unrolledSize(const ShaderFeatures &f)
{
    return static_cast<size_t>(f.maxTripCount) * f.loopBodyInstrs;
}

} // namespace

FlagSet
predictFlags(gpu::DeviceId device, const ShaderFeatures &f)
{
    FlagSet flags;
    // The unsafe FP passes pay on every platform except ARM's vec4
    // machine, where scalar grouping fights the vectoriser.
    if (device != gpu::DeviceId::Arm)
        flags = flags.with(kFpReassociate);
    // Constant divisions fold everywhere once turned into multiplies.
    if (f.hasConstDiv)
        flags = flags.with(kDivToMul);
    // Unrolling: on weak-JIT platforms (AMD, ARM) it pays directly; on
    // strong-JIT desktops it still pays *as an enabler* — the offline
    // unsafe passes can only see through a loop the offline tool has
    // unrolled, even if the driver would unroll it later anyway. Only
    // the i-cache-limited Adreno needs a size guard.
    if (f.hasConstLoop) {
        if (device != gpu::DeviceId::Qualcomm ||
            unrolledSize(f) < kAdrenoUnrollSizeLimit)
            flags = flags.with(kUnroll);
    }
    // Hoisting pays only on ARM, and only for small branchy shaders
    // (big flattened blocks blow the register file).
    if (device == gpu::DeviceId::Arm && f.branches > 0 &&
        f.instrs < 120)
        flags = flags.with(kHoist);
    // Coalesce is near-free and helps the vec4 machine.
    flags = flags.with(kCoalesce);

    // -- catalog passes, when registered (bits beyond the paper's 8) --
    // The rules read the device's JIT model rather than hard-coding
    // vendors: what a driver already does offline work cannot improve.
    const passes::PassRegistry &reg = passes::PassRegistry::instance();
    const gpu::DeviceModel &dm = gpu::deviceModel(device);
    // LICM pays where the loop actually survives to execution: the
    // driver never unrolls it (no JIT unroll, or over its budget), so
    // the invariant subtree really recomputes every trip.
    const int licmBit = reg.bitOf("licm");
    if (licmBit >= 0 && f.loopInvariantInstrs > 0 &&
        (!dm.jitFlags.unroll ||
         unrolledSize(f) > dm.jitUnrollInstrs))
        flags = flags.with(licmBit);
    // Strength reduction: a pow->multiply chain trades a
    // transcendental-unit op for add/mul-class ops on every model;
    // integer multiply chains only matter where no JIT reassociation
    // cleans up index arithmetic anyway.
    const int srBit = reg.bitOf("strength_reduce");
    if (srBit >= 0 &&
        (f.powConstChains > 0 ||
         (f.intMulPow2 > 0 && !dm.jitFlags.reassociate)))
        flags = flags.with(srBit);
    // Fetch batching is the mobile win: the tile-based parts run no
    // JIT GVN, so a cross-block duplicate fetch really issues twice.
    const int tbBit = reg.bitOf("tex_batch");
    if (tbBit >= 0 && f.dupFetches > 0 && !dm.jitFlags.gvn)
        flags = flags.with(tbBit);
    return flags;
}

std::vector<FlagSet>
predictCandidates(gpu::DeviceId device, const ShaderFeatures &f)
{
    std::vector<FlagSet> out;
    out.push_back(predictFlags(device, f));
    // Known two-flag interaction the single prediction cannot express
    // and single-flag refinement cannot reach: on the i-cache-limited
    // Adreno, unrolling a big constant loop hurts on its own, but the
    // {Unroll, Reassociate} pair pays — integer reassociation folds
    // the replicated induction arithmetic back down. Offer the pair
    // both on top of the prediction (when the predicted passes keep
    // their value alongside it) and bare (when their code growth
    // would squander the i-cache win).
    if (device == gpu::DeviceId::Qualcomm && f.hasConstLoop &&
        unrolledSize(f) >= kAdrenoUnrollSizeLimit) {
        out.push_back(out.front().with(kUnroll).with(kReassociate));
        out.push_back(
            FlagSet::none().with(kUnroll).with(kReassociate));
    }
    return out;
}

namespace {

/** Append @p plan unless an equal plan is already listed. */
void
pushUnique(std::vector<passes::PassPlan> &out, passes::PassPlan plan)
{
    if (std::find(out.begin(), out.end(), plan) == out.end())
        out.push_back(std::move(plan));
}

/** @p plan with pass @p bit moved to the front (added if absent). */
passes::PassPlan
withPassFirst(passes::PassPlan plan, int bit)
{
    auto it = std::find(plan.bits.begin(), plan.bits.end(), bit);
    if (it != plan.bits.end())
        plan.bits.erase(it);
    plan.bits.insert(plan.bits.begin(), bit);
    return plan;
}

} // namespace

std::vector<passes::PassPlan>
predictPlanCandidates(gpu::DeviceId device, const ShaderFeatures &f)
{
    using passes::PassPlan;
    std::vector<PassPlan> out;
    const std::vector<FlagSet> lattice = predictCandidates(device, f);
    for (const FlagSet &fs : lattice)
        pushUnique(out, PassPlan::canonicalOf(fs.bits));

    const passes::PassRegistry &reg = passes::PassRegistry::instance();
    const gpu::DeviceModel &dm = gpu::deviceModel(device);

    // Ordering win measured by bench/micro_order: licm *before* unroll
    // hoists the invariant subtrees out first, which can shrink an
    // over-budget loop body under unroll's instruction cap — the
    // canonical order (unroll leads the pipeline) never sees the
    // smaller body, so no flag subset reaches the fully unrolled,
    // invariant-free code. Worth probing wherever a constant loop
    // carries invariants and the unrolled result would actually run
    // (the JIT won't redo the work on the weak-JIT mobile parts).
    const int licmBit = reg.bitOf("licm");
    if (licmBit >= 0 && f.hasConstLoop && f.loopInvariantInstrs > 0) {
        // The bare pair first: it isolates the ordering effect, where
        // a full candidate set can dilute it (e.g. post-unroll FP
        // reassociation raising pressure on spill-sensitive parts).
        pushUnique(out, PassPlan{{licmBit, kUnroll}});
        for (const FlagSet &fs : lattice) {
            const FlagSet want =
                fs.with(licmBit).with(kUnroll);
            pushUnique(out, withPassFirst(
                                PassPlan::canonicalOf(want.bits),
                                licmBit));
        }
    }
    // tex_batch early on the no-GVN mobile parts: batching duplicate
    // fetches while the loop is still rolled keeps the dedup window
    // one body long; after unroll the replicas sit in distinct
    // iterations where the dominance-scoped pass must prove a lot more
    // to collapse them.
    const int tbBit = reg.bitOf("tex_batch");
    if (tbBit >= 0 && f.dupFetches > 0 && !dm.jitFlags.gvn) {
        pushUnique(out,
                   withPassFirst(PassPlan::canonicalOf(
                                     lattice.front().with(tbBit).bits),
                                 tbBit));
    }
    return out;
}

void
FamilyPrior::add(const std::string &family, gpu::DeviceId device,
                 const std::string &shaderName, FlagSet bestFlags)
{
    table_[family][device].push_back({shaderName, bestFlags});
}

FlagSet
FamilyPrior::seedFor(const std::string &family, gpu::DeviceId device,
                     const std::string &excludeShader) const
{
    auto fam = table_.find(family);
    if (fam == table_.end())
        return FlagSet::none();
    auto dev = fam->second.find(device);
    if (dev == fam->second.end())
        return FlagSet::none();

    std::vector<size_t> votes(flagCount(), 0);
    size_t members = 0;
    for (const Entry &e : dev->second) {
        if (e.shader == excludeShader)
            continue;
        ++members;
        for (size_t bit = 0; bit < votes.size(); ++bit)
            votes[bit] += e.flags.has(static_cast<int>(bit));
    }
    FlagSet seed;
    if (members == 0)
        return seed;
    for (size_t bit = 0; bit < votes.size(); ++bit) {
        // Strict majority: a flag only half the siblings want is as
        // likely to hurt the specialisation being seeded as to help.
        if (votes[bit] * 2 > members)
            seed = seed.with(static_cast<int>(bit));
    }
    return seed;
}

} // namespace gsopt::tuner
