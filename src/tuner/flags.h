/**
 * @file
 * FlagSet: the N-bit encoding of the gated pass flags, sized from the
 * pass registry. With the default built-in registration this is the
 * paper's 8-bit encoding used for the exhaustive 256-combination
 * search (paper Section III-A), bit-for-bit; registering more passes
 * widens the space transparently.
 */
#ifndef GSOPT_TUNER_FLAGS_H
#define GSOPT_TUNER_FLAGS_H

#include <cstdint>
#include <string>
#include <vector>

#include "passes/passes.h"

namespace gsopt::tuner {

/** Bit positions of the built-in passes, in the order used throughout
 * the experiments (mirrors passes::BuiltinPassBit). */
enum FlagBit {
    kAdce = 0,
    kCoalesce = 1,
    kGvn = 2,
    kReassociate = 3,
    kUnroll = 4,
    kHoist = 5,
    kFpReassociate = 6,
    kDivToMul = 7,
    kFlagCount = 8, ///< the built-in eight; see flagCount() for all
};

/** Number of registered gated passes (N bits of the flag space). */
size_t flagCount();

/** 2^flagCount(): size of the combination space (256 by default). */
uint64_t comboCount();

/** Display name of a flag bit (registry display name; paper Table I
 * column spellings for the built-in eight). The pointer stays valid
 * while the owning pass remains registered — built-in names live for
 * the process, but don't cache a ScopedPass name past its scope. */
const char *flagName(int bit);

/** One of the 2^N flag combinations. */
struct FlagSet
{
    uint64_t bits = 0;

    constexpr FlagSet() = default;
    constexpr explicit FlagSet(uint64_t b) : bits(b) {}

    bool has(int bit) const { return (bits >> bit) & 1; }
    FlagSet with(int bit) const
    {
        return FlagSet(bits | (1ull << bit));
    }
    FlagSet without(int bit) const
    {
        return FlagSet(bits & ~(1ull << bit));
    }

    /** Number of set flags. */
    int count() const { return __builtin_popcountll(bits); }

    bool operator==(const FlagSet &o) const { return bits == o.bits; }
    bool operator!=(const FlagSet &o) const { return bits != o.bits; }

    /** Convert to the pass pipeline's flag struct. */
    passes::OptFlags toOptFlags() const;

    /** Inverse of toOptFlags(). */
    static FlagSet fromOptFlags(const passes::OptFlags &flags);

    /** The LunarGlass default set (defaults on, custom passes off). */
    static FlagSet lunarGlassDefaults();
    /** Every registered pass on. */
    static FlagSet all();
    /** Everything off (passthrough baseline). */
    static FlagSet none() { return FlagSet(0); }

    /** Compact spelling like "{Coalesce,Unroll,FPReassoc,DivToMul}". */
    std::string str() const;
};

/** All 2^N combinations in numeric order (256 by default). Throws
 * std::length_error when the registered pass count makes exhaustive
 * enumeration infeasible (see checkExhaustiveFeasible). */
std::vector<FlagSet> allFlagSets();

/**
 * Guard for every 2^N surface (exhaustive exploration, combination
 * enumeration, best-static scans): throws std::length_error naming
 * @p who when more than 20 passes are registered, keeping per-shader
 * allocations bounded (2^20 combos ≈ 8 MB of combo bookkeeping per
 * worker) instead of dying on a multi-GB attempt.
 */
void checkExhaustiveFeasible(const char *who);

/** The producing combination with the fewest flags (ties keep the
 * earliest). The shared tie-break rule of ShaderResult::bestFlags,
 * ExhaustiveSearch, and the examples. @p producers must be
 * non-empty. */
FlagSet minimalProducer(const std::vector<FlagSet> &producers);

} // namespace gsopt::tuner

#endif // GSOPT_TUNER_FLAGS_H
