/**
 * @file
 * FlagSet: the 8-bit encoding of the LunarGlass pass flags used for the
 * exhaustive 256-combination search (paper Section III-A).
 */
#ifndef GSOPT_TUNER_FLAGS_H
#define GSOPT_TUNER_FLAGS_H

#include <cstdint>
#include <string>
#include <vector>

#include "passes/passes.h"

namespace gsopt::tuner {

/** Bit positions, in the order used throughout the experiments. */
enum FlagBit {
    kAdce = 0,
    kCoalesce = 1,
    kGvn = 2,
    kReassociate = 3,
    kUnroll = 4,
    kHoist = 5,
    kFpReassociate = 6,
    kDivToMul = 7,
    kFlagCount = 8,
};

/** Display names, indexed by FlagBit (paper Table I column order). */
const char *flagName(int bit);

/** One of the 256 flag combinations. */
struct FlagSet
{
    uint8_t bits = 0;

    constexpr FlagSet() = default;
    constexpr explicit FlagSet(uint8_t b) : bits(b) {}

    bool has(int bit) const { return (bits >> bit) & 1; }
    FlagSet with(int bit) const
    {
        return FlagSet(static_cast<uint8_t>(bits | (1u << bit)));
    }
    FlagSet without(int bit) const
    {
        return FlagSet(static_cast<uint8_t>(bits & ~(1u << bit)));
    }

    bool operator==(const FlagSet &o) const { return bits == o.bits; }

    /** Convert to the pass pipeline's flag struct. */
    passes::OptFlags toOptFlags() const;

    /** Inverse of toOptFlags(). */
    static FlagSet fromOptFlags(const passes::OptFlags &flags);

    /** The LunarGlass default set (defaults on, custom passes off). */
    static FlagSet lunarGlassDefaults();
    /** Everything on. */
    static FlagSet all() { return FlagSet(0xff); }
    /** Everything off (passthrough baseline). */
    static FlagSet none() { return FlagSet(0); }

    /** Compact spelling like "{Coalesce,Unroll,FPReassoc,DivToMul}". */
    std::string str() const;
};

/** All 256 combinations in numeric order. */
std::vector<FlagSet> allFlagSets();

} // namespace gsopt::tuner

#endif // GSOPT_TUNER_FLAGS_H
