/**
 * @file
 * The experiment engine: runs the paper's full measurement campaign —
 * every corpus shader x 2^N flag combinations (deduped) x 5 devices x
 * the 100-frame/5-repetition timing protocol — and exposes the derived
 * quantities every figure and table needs.
 *
 * The campaign is scheduled as a work queue of (shader x device) items
 * over a std::thread pool (GSOPT_THREADS workers, default
 * hardware_concurrency); results are written to per-item slots, so the
 * output is bit-identical for any thread count.
 *
 * Because all the benches share this campaign, the engine caches its
 * results under ./experiment_cache/ as one shard file per shader,
 * keyed by (shader hash, device-set hash, pass-registry signature,
 * schema). Editing one corpus shader re-runs only that shard. Delete
 * the directory (or set GSOPT_NO_CACHE=1) to force a full re-run.
 */
#ifndef GSOPT_TUNER_EXPERIMENT_H
#define GSOPT_TUNER_EXPERIMENT_H

#include <map>
#include <string>
#include <vector>

#include "gpu/device.h"
#include "tuner/explore.h"
#include "tuner/predict.h"

namespace gsopt::tuner {

/** Timing of every variant of one shader on one device. */
struct DeviceMeasurement
{
    double originalMeanNs = 0;  ///< unmodified shader via the driver
    std::vector<double> variantMeanNs; ///< per unique variant

    /** Percent speed-up of a variant against the original shader.
     * Degenerate baselines (zero/negative mean) report 0, matching
     * runtime::speedupPercent. Throws std::out_of_range for an
     * invalid variant index. */
    double speedupOf(int variant_index) const;

    bool operator==(const DeviceMeasurement &o) const
    {
        return originalMeanNs == o.originalMeanNs &&
               variantMeanNs == o.variantMeanNs;
    }
};

/** Everything measured for one shader. */
struct ShaderResult
{
    Exploration exploration;
    std::map<gpu::DeviceId, DeviceMeasurement> byDevice;

    double speedupFor(gpu::DeviceId dev, FlagSet flags) const
    {
        const auto &m = byDevice.at(dev);
        return m.speedupOf(exploration.variantOf(flags));
    }

    /** Best speed-up over all combinations (green line, Fig 7). */
    double bestSpeedup(gpu::DeviceId dev) const;
    /** Combination achieving bestSpeedup. */
    FlagSet bestFlags(gpu::DeviceId dev) const;
    /** Speed-up of a single-flag variant vs the all-off passthrough
     * variant (Fig 9's baseline convention). */
    double isolatedFlagSpeedup(gpu::DeviceId dev, int bit) const;
};

// ---- campaign cache keys -------------------------------------------------

/**
 * Exact-bit hash of one device model: every double is hashed through
 * its IEEE-754 bit pattern (not decimal formatting), so a 1-ulp
 * parameter change changes the key.
 */
uint64_t deviceModelKey(const gpu::DeviceModel &device);

/** Combined key of all configured devices plus the pass-registry
 * signature and the engine schema version. */
uint64_t deviceSetKey();

/** Shard cache key for one shader under @p setKey (from
 * deviceSetKey()). */
uint64_t shardKey(const corpus::CorpusShader &shader, uint64_t setKey);

/**
 * The canonical byte serialisation of one shader's campaign result —
 * the body of a shard cache file (everything after the key and content
 * hash). Deterministic for a deterministic campaign; the golden
 * regression tests md5 these bytes against the values captured before
 * the arena/memoization refactor.
 */
std::string serializeShardBody(const ShaderResult &r);

/** The full campaign. */
class ExperimentEngine
{
  public:
    /** Run (or load from the shard cache) the complete campaign. */
    static const ExperimentEngine &instance();

    /**
     * Run fresh with explicit options (no caching). Used by tests and
     * benches with a reduced corpus. @p threads sizes the worker pool
     * (0 = GSOPT_THREADS / hardware_concurrency).
     */
    explicit ExperimentEngine(
        const std::vector<corpus::CorpusShader> &shaders,
        unsigned threads = 0);

    const std::vector<ShaderResult> &results() const { return results_; }
    /** Result by shader name. Throws std::out_of_range listing the
     * known shader names on a miss. */
    const ShaderResult &result(const std::string &shaderName) const;

    // ---- derived analyses ------------------------------------------------
    /** Static flag set maximising mean speed-up on a device (Table I). */
    FlagSet bestStaticFlags(gpu::DeviceId dev) const;
    /** Static flag set maximising the mean across *all* devices. */
    FlagSet bestStaticFlagsOverall() const;
    /** Mean speed-up across shaders for a fixed flag set. */
    double meanSpeedup(gpu::DeviceId dev, FlagSet flags) const;
    /** Mean of per-shader best speed-ups ("iterative" line, Fig 5). */
    double meanBestSpeedup(gpu::DeviceId dev) const;
    /** Per-shader speed-ups for a fixed flag set (Fig 7 series). */
    std::vector<double> perShaderSpeedups(gpu::DeviceId dev,
                                          FlagSet flags) const;
    /** Per-shader best speed-ups (Fig 7 green series). */
    std::vector<double> perShaderBestSpeedups(gpu::DeviceId dev) const;

    /**
     * Build the cross-shader transfer table: every shader's
     * campaign-best flags, grouped by übershader family and device.
     * TransferSeededSearch seeds new searches from it (leave-one-out
     * happens at query time, in FamilyPrior::seedFor).
     */
    FamilyPrior familyPrior() const;

  private:
    ExperimentEngine() = default;

    /**
     * Work-queue campaign over (shader x device) items for the listed
     * shader indices; exploration runs once per shader (first item to
     * need it), measurements fill per-item slots.
     */
    void runShaders(const std::vector<corpus::CorpusShader> &shaders,
                    const std::vector<size_t> &indices,
                    unsigned threads);

    static bool loadShard(const std::string &path, uint64_t key,
                          ShaderResult &out);
    static void saveShard(const std::string &path, uint64_t key,
                          const ShaderResult &r);

    std::vector<ShaderResult> results_;
};

} // namespace gsopt::tuner

#endif // GSOPT_TUNER_EXPERIMENT_H
