/**
 * @file
 * The experiment engine: runs the paper's full measurement campaign —
 * every corpus shader x 2^N flag combinations (deduped) x 5 devices x
 * the 100-frame/5-repetition timing protocol — and exposes the derived
 * quantities every figure and table needs.
 *
 * The campaign is scheduled as a work queue of (shader x device) items
 * over a std::thread pool (GSOPT_THREADS workers, default
 * hardware_concurrency); results are written to per-item slots, so the
 * output is bit-identical for any thread count.
 *
 * Because all the benches share this campaign, the engine caches its
 * results under ./experiment_cache/ as one shard file per shader,
 * keyed by (shader hash, device-set hash, pass-registry signature,
 * schema). Editing one corpus shader re-runs only that shard. Delete
 * the directory (or set GSOPT_NO_CACHE=1) to force a full re-run.
 *
 * Fault tolerance: per-item transient failures (support/fault sites on
 * the driver, the timing harness, and the work items themselves) are
 * retried with bounded backoff; items that still fail are quarantined
 * into the CampaignHealth report and the campaign completes with
 * partial results. GSOPT_STRICT=1 restores fail-fast (first error
 * aborts the run). Shards are checkpointed *incrementally* — each one
 * is written the moment its shader's last device item completes — so a
 * killed campaign resumes from completed shards.
 */
#ifndef GSOPT_TUNER_EXPERIMENT_H
#define GSOPT_TUNER_EXPERIMENT_H

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gpu/device.h"
#include "tuner/explore.h"
#include "tuner/predict.h"

namespace gsopt::tuner {

/** Timing of every variant of one shader on one device. */
struct DeviceMeasurement
{
    double originalMeanNs = 0;  ///< unmodified shader via the driver
    std::vector<double> variantMeanNs; ///< per unique variant

    /** Percent speed-up of a variant against the original shader.
     * Degenerate baselines (zero/negative mean) report 0, matching
     * runtime::speedupPercent. Throws std::out_of_range for an
     * invalid variant index. */
    double speedupOf(int variant_index) const;

    bool operator==(const DeviceMeasurement &o) const
    {
        return originalMeanNs == o.originalMeanNs &&
               variantMeanNs == o.variantMeanNs;
    }
};

/** Everything measured for one shader. */
struct ShaderResult
{
    Exploration exploration;
    std::map<gpu::DeviceId, DeviceMeasurement> byDevice;

    /** Devices whose (shader, device) item was quarantined by the
     * fault-tolerant campaign (no measurement available). The campaign
     * itself only checkpoints clean shards — a quarantined shader
     * re-runs on resume — but saveShard/loadShard round-trip the set
     * (with reasons) faithfully via the schema-16 'Q' section, for the
     * coordinator/worker split. */
    std::set<gpu::DeviceId> quarantined;

    /** Structured reason each device was quarantined: what() of the
     * final failure — for a budget-exhausted item this is the
     * governor::ResourceExhausted message naming the dimension and
     * stage (e.g. "resource exhausted: deadline ..."). Keyed subset of
     * `quarantined`; items quarantined before this field existed (or
     * through older shards) simply have no entry. */
    std::map<gpu::DeviceId, std::string> quarantineReason;

    /** Measurement for @p dev. Throws std::out_of_range with a
     * quarantine-aware message when the device item was quarantined or
     * never measured. */
    const DeviceMeasurement &measurement(gpu::DeviceId dev) const;

    double speedupFor(gpu::DeviceId dev, FlagSet flags) const
    {
        const auto &m = measurement(dev);
        return m.speedupOf(exploration.variantOf(flags));
    }

    /** Best speed-up over all combinations (green line, Fig 7). */
    double bestSpeedup(gpu::DeviceId dev) const;
    /** Combination achieving bestSpeedup. */
    FlagSet bestFlags(gpu::DeviceId dev) const;
    /** Speed-up of a single-flag variant vs the all-off passthrough
     * variant (Fig 9's baseline convention). */
    double isolatedFlagSpeedup(gpu::DeviceId dev, int bit) const;
};

// ---- campaign cache keys -------------------------------------------------

/**
 * Exact-bit hash of one device model: every double is hashed through
 * its IEEE-754 bit pattern (not decimal formatting), so a 1-ulp
 * parameter change changes the key.
 */
uint64_t deviceModelKey(const gpu::DeviceModel &device);

/** Combined key of all configured devices plus the pass-registry
 * signature and the engine schema version. */
uint64_t deviceSetKey();

/** Shard cache key for one shader under @p setKey (from
 * deviceSetKey()). */
uint64_t shardKey(const corpus::CorpusShader &shader, uint64_t setKey);

/**
 * Canonical file name of @p shader's shard under @p key:
 * "<name with '/' replaced by '_'>-<016x key>.bin". The engine's cache
 * loader and the distributed-campaign coordinator (tuner/distrib) must
 * agree on this spelling — a directory a coordinator merged is a valid
 * engine cache and vice versa.
 */
std::string shardFileName(const corpus::CorpusShader &shader,
                          uint64_t key);

/**
 * The canonical byte serialisation of one shader's campaign result —
 * the body of a shard cache file (everything after the key and content
 * hash). Deterministic for a deterministic campaign; the golden
 * regression tests md5 these bytes against the values captured before
 * the arena/memoization refactor.
 *
 * Shard file format: [shard key u64][fnv1a(body) u64][body bytes].
 * This file format is also the *wire format* of the distributed
 * campaign: a worker ships exactly these bytes back over the
 * support/ipc frame protocol, and the coordinator validates them with
 * the same loadShard path before publishing — checkpoint unit and
 * transfer unit are one representation (see tuner/distrib.h).
 * Shards are published with a tmp-rename protocol: saveShard writes
 * the whole file to a `<path>.tmp` sibling first and only then
 * atomically renames it onto `<path>`, so readers never observe a
 * half-written shard — a crash mid-checkpoint leaves at worst a stale
 * `.tmp` (overwritten by the next checkpoint, reaped by the orphan
 * sweep once its key dies) and the previous complete shard, if any,
 * stays intact. loadShard additionally verifies the key and the body
 * content hash, so any residual corruption is a cache miss (re-run),
 * never bad data. A shard whose key does not match — the key covers
 * the schema version, pass-registry signature, device set, and shader
 * source, so this is what an old-schema shard looks like — is a clean
 * miss with a support/diag warning, never a silent wrong-key hit.
 *
 * Schema 16 (tagged trailing sections): the body may end with optional
 * sections, each introduced by a one-byte tag, in this order, each at
 * most once and only when non-empty:
 *
 *  - 'P' ordered-plan annotations: `[u64 count]` then `count` x
 *    `[string plan][i64 variant]`, mapping each explored non-canonical
 *    plan to its variant. Plan strings are PassPlan::str spellings:
 *    registered pass ids joined by '>' in application order, e.g.
 *    "licm>unroll>gvn". Plan-only variants (zero producers) are valid
 *    exactly when a plan annotation references them.
 *  - 'Q' quarantine: `[u64 count]` then `count` x
 *    `[i32 device][string reason]` — the devices the fault-tolerant
 *    campaign quarantined, with the structured failure reason (a
 *    governor::ResourceExhausted message for budget/deadline kills).
 *    A quarantined device must not also carry a measurement.
 *
 * A healthy pure flag-lattice campaign body — the paper's canonical
 * 2^N sweep — has neither section and stays byte-identical to schema
 * 14/15, so the golden md5 pins hold. The schema version is part of
 * every shard key, so older shards miss cleanly and re-run.
 */
std::string serializeShardBody(const ShaderResult &r);

/** One quarantined (shader, device) campaign item. */
struct QuarantinedItem
{
    std::string shader;
    gpu::DeviceId device;
    std::string error; ///< what() of the final failure
    int attempts = 0;  ///< item-level attempts consumed
};

/**
 * Fault report of one campaign run: what was retried away, what had to
 * be quarantined. A healthy campaign has an empty quarantine list and
 * every derived figure sees complete data; an unhealthy one still
 * completes, with quarantined items surfaced here and on the affected
 * ShaderResult::quarantined sets.
 */
struct CampaignHealth
{
    std::vector<QuarantinedItem> quarantined;
    uint64_t itemsCompleted = 0;   ///< items measured successfully
    uint64_t itemsQuarantined = 0; ///< == quarantined.size()
    uint64_t itemRetries = 0;      ///< extra item-level attempts used

    bool healthy() const { return quarantined.empty(); }
    /** One line per quarantined item, for logs. */
    std::string summary() const;
};

/** The full campaign. */
class ExperimentEngine
{
  public:
    /** Run (or load from the shard cache) the complete campaign. */
    static const ExperimentEngine &instance();

    /**
     * Run fresh with explicit options (no caching). Used by tests and
     * benches with a reduced corpus. @p threads sizes the worker pool
     * (0 = GSOPT_THREADS / hardware_concurrency).
     */
    explicit ExperimentEngine(
        const std::vector<corpus::CorpusShader> &shaders,
        unsigned threads = 0);

    /**
     * Run with shard caching under @p cacheDir: existing valid shards
     * are loaded, missing ones run and are checkpointed the moment
     * their last device item completes — a campaign killed mid-run
     * resumes from every shard it finished. instance() uses this with
     * ./experiment_cache; tests use it for kill-resume coverage.
     */
    ExperimentEngine(const std::vector<corpus::CorpusShader> &shaders,
                     unsigned threads, const std::string &cacheDir);

    const std::vector<ShaderResult> &results() const { return results_; }
    /** Result by shader name. Throws std::out_of_range listing the
     * known shader names on a miss. The returned result surfaces any
     * quarantined devices via ShaderResult::quarantined. */
    const ShaderResult &result(const std::string &shaderName) const;

    /** Fault report of the run that built this engine (empty quarantine
     * list when everything — including cache loads — succeeded). */
    const CampaignHealth &health() const { return health_; }

    // ---- derived analyses ------------------------------------------------
    /** Static flag set maximising mean speed-up on a device (Table I). */
    FlagSet bestStaticFlags(gpu::DeviceId dev) const;
    /** Static flag set maximising the mean across *all* devices. */
    FlagSet bestStaticFlagsOverall() const;
    /** Mean speed-up across shaders for a fixed flag set. */
    double meanSpeedup(gpu::DeviceId dev, FlagSet flags) const;
    /** Mean of per-shader best speed-ups ("iterative" line, Fig 5). */
    double meanBestSpeedup(gpu::DeviceId dev) const;
    /** Per-shader speed-ups for a fixed flag set (Fig 7 series). */
    std::vector<double> perShaderSpeedups(gpu::DeviceId dev,
                                          FlagSet flags) const;
    /** Per-shader best speed-ups (Fig 7 green series). */
    std::vector<double> perShaderBestSpeedups(gpu::DeviceId dev) const;

    /**
     * Build the cross-shader transfer table: every shader's
     * campaign-best flags, grouped by übershader family and device.
     * TransferSeededSearch seeds new searches from it (leave-one-out
     * happens at query time, in FamilyPrior::seedFor).
     */
    FamilyPrior familyPrior() const;

    // ---- shard IO (public for the torture tests and the coordinator/
    // worker split: a shard file is the campaign's checkpoint and
    // transfer unit) ------------------------------------------------------

    /** Load and validate one shard. Returns false — never throws — on
     * any mismatch or corruption (missing file, wrong key, bad content
     * hash, truncated or garbled body): the caller re-runs the shard. */
    static bool loadShard(const std::string &path, uint64_t key,
                          ShaderResult &out);

    /** Crash-safe checkpoint of one shard: writes `path + ".tmp"`,
     * then atomically renames onto @p path. Failures (unopenable file,
     * failed write, injected torn write) emit a support/diag warning
     * and leave any previous shard at @p path untouched. */
    static void saveShard(const std::string &path, uint64_t key,
                          const ShaderResult &r);

  private:
    ExperimentEngine() = default;

    /**
     * Work-queue campaign over (shader x device) items for the listed
     * shader indices; exploration runs once per shader (first item to
     * need it), measurements fill per-item slots. Transient per-item
     * failures retry with backoff; exhausted or non-transient ones are
     * quarantined (or rethrown under GSOPT_STRICT=1). @p checkpoint,
     * when set, is invoked with a shader index the moment all of its
     * device items completed cleanly.
     */
    void runShaders(const std::vector<corpus::CorpusShader> &shaders,
                    const std::vector<size_t> &indices, unsigned threads,
                    const std::function<void(size_t)> &checkpoint = {});

    std::vector<ShaderResult> results_;
    CampaignHealth health_;
};

} // namespace gsopt::tuner

#endif // GSOPT_TUNER_EXPERIMENT_H
