/**
 * @file
 * The experiment engine: runs the paper's full measurement campaign —
 * every corpus shader x 256 flag combinations (deduped) x 5 devices x
 * the 100-frame/5-repetition timing protocol — and exposes the derived
 * quantities every figure and table needs.
 *
 * Because all the benches share this campaign, the engine caches its
 * results under build/experiment_cache/ keyed by a hash of the corpus,
 * the device models, and the engine schema. Delete the cache (or set
 * GSOPT_NO_CACHE=1) to force a re-run.
 */
#ifndef GSOPT_TUNER_EXPERIMENT_H
#define GSOPT_TUNER_EXPERIMENT_H

#include <map>
#include <string>
#include <vector>

#include "gpu/device.h"
#include "tuner/explore.h"

namespace gsopt::tuner {

/** Timing of every variant of one shader on one device. */
struct DeviceMeasurement
{
    double originalMeanNs = 0;  ///< unmodified shader via the driver
    std::vector<double> variantMeanNs; ///< per unique variant

    /** Percent speed-up of a variant against the original shader.
     * Degenerate baselines (zero/negative mean) report 0, matching
     * runtime::speedupPercent. */
    double speedupOf(int variant_index) const
    {
        if (originalMeanNs <= 0.0)
            return 0.0;
        const double v =
            variantMeanNs[static_cast<size_t>(variant_index)];
        return (originalMeanNs - v) / originalMeanNs * 100.0;
    }
};

/** Everything measured for one shader. */
struct ShaderResult
{
    Exploration exploration;
    std::map<gpu::DeviceId, DeviceMeasurement> byDevice;

    double speedupFor(gpu::DeviceId dev, FlagSet flags) const
    {
        const auto &m = byDevice.at(dev);
        return m.speedupOf(exploration.variantOfFlags[flags.bits]);
    }

    /** Best speed-up over all 256 combinations (green line, Fig 7). */
    double bestSpeedup(gpu::DeviceId dev) const;
    /** Combination achieving bestSpeedup. */
    FlagSet bestFlags(gpu::DeviceId dev) const;
    /** Speed-up of a single-flag variant vs the all-off passthrough
     * variant (Fig 9's baseline convention). */
    double isolatedFlagSpeedup(gpu::DeviceId dev, int bit) const;
};

/** The full campaign. */
class ExperimentEngine
{
  public:
    /** Run (or load from cache) the complete campaign. */
    static const ExperimentEngine &instance();

    /** Run fresh with explicit options (no caching). Used by tests with
     * a reduced corpus. */
    explicit ExperimentEngine(
        const std::vector<corpus::CorpusShader> &shaders);

    const std::vector<ShaderResult> &results() const { return results_; }
    const ShaderResult &result(const std::string &shaderName) const;

    // ---- derived analyses ------------------------------------------------
    /** Static flag set maximising mean speed-up on a device (Table I). */
    FlagSet bestStaticFlags(gpu::DeviceId dev) const;
    /** Static flag set maximising the mean across *all* devices. */
    FlagSet bestStaticFlagsOverall() const;
    /** Mean speed-up across shaders for a fixed flag set. */
    double meanSpeedup(gpu::DeviceId dev, FlagSet flags) const;
    /** Mean of per-shader best speed-ups ("iterative" line, Fig 5). */
    double meanBestSpeedup(gpu::DeviceId dev) const;
    /** Per-shader speed-ups for a fixed flag set (Fig 7 series). */
    std::vector<double> perShaderSpeedups(gpu::DeviceId dev,
                                          FlagSet flags) const;
    /** Per-shader best speed-ups (Fig 7 green series). */
    std::vector<double> perShaderBestSpeedups(gpu::DeviceId dev) const;

  private:
    ExperimentEngine() = default;
    void run(const std::vector<corpus::CorpusShader> &shaders);
    bool loadCache(const std::string &path, uint64_t key);
    void saveCache(const std::string &path, uint64_t key) const;

    std::vector<ShaderResult> results_;
};

} // namespace gsopt::tuner

#endif // GSOPT_TUNER_EXPERIMENT_H
