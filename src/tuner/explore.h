/**
 * @file
 * Exhaustive variant exploration: compile one shader under all 256 flag
 * combinations and dedup the outputs by source text (paper Fig 4c —
 * most combinations produce identical code, so every shader has only a
 * handful of unique variants; the maximum the paper observed was 48).
 */
#ifndef GSOPT_TUNER_EXPLORE_H
#define GSOPT_TUNER_EXPLORE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/corpus.h"
#include "passes/passes.h"
#include "passes/registry.h"
#include "tuner/flags.h"

namespace gsopt::tuner {

struct ShaderFeatures; // tuner/features.h

/**
 * Process-wide phase accounting for exploreShader. The compile-once
 * pipeline promises exactly one front-end (preprocess/lex/parse/sema)
 * and one lowering per shader regardless of the 256 flag combinations;
 * these counters make that verifiable and give the perf benches their
 * per-phase breakdown. Thread-safe (the experiment engine explores
 * shaders from a worker pool); times are cumulative nanoseconds.
 */
struct ExploreCounters
{
    std::atomic<uint64_t> frontEndRuns{0};  ///< compileShader calls
    std::atomic<uint64_t> lowerRuns{0};     ///< lowerShader calls
    std::atomic<uint64_t> pipelineRuns{0};  ///< combos delivered
    std::atomic<uint64_t> passRuns{0};      ///< passes actually executed
    std::atomic<uint64_t> passMemoHits{0};  ///< apply edges memo-shared
    std::atomic<uint64_t> printRuns{0};     ///< emitGlsl calls
    std::atomic<uint64_t> fingerprintRuns{0}; ///< fingerprints computed
    std::atomic<uint64_t> fingerprintHits{0}; ///< combos deduped pre-print
    std::atomic<uint64_t> arenaBytes{0}; ///< IR arena bytes, all tree modules
    std::atomic<uint64_t> plansWalked{0}; ///< ordered plans explored

    std::atomic<uint64_t> frontEndNs{0};
    std::atomic<uint64_t> lowerNs{0};
    std::atomic<uint64_t> pipelineNs{0};   ///< clone + pass pipeline
    std::atomic<uint64_t> fingerprintNs{0};
    std::atomic<uint64_t> printNs{0};

    void reset();
};

/** The process-wide counters (never reset implicitly). */
ExploreCounters &exploreCounters();

/** One unique optimised shader text plus the flag sets producing it. */
struct Variant
{
    std::string source;
    uint64_t sourceHash = 0;
    std::vector<FlagSet> producers; ///< every combo mapping here

    /** Does at least half of the producing combos set this flag?
     * False when no producers are recorded (nothing to vote). */
    bool mostlyHasFlag(int bit) const;
};

/** The full exploration of one shader. */
struct Exploration
{
    std::string shaderName;
    std::string family;               ///< übershader family id
    std::string preprocessedOriginal; ///< for the LoC metric
    std::string originalSource;       ///< what the app would ship
    std::vector<Variant> variants;    ///< unique outputs
    /** Combination bits -> variant index. Strategy-agnostic: an
     * exhaustive exploration maps every combination; a sparse
     * explorer (ROADMAP follow-on) would map only the combinations it
     * compiled. */
    std::unordered_map<uint64_t, int> variantOfCombo;
    /** Ordered-plan annotations: stable plan string (PassPlan::str)
     * -> variant index, for the *non-canonical* plans a PlanExplorer
     * walked (canonical plans are flag subsets and live in
     * variantOfCombo). Ordered map so shard serialization is
     * deterministic. Plan-only variants may have no producers — no
     * flag combination reaches their text. */
    std::map<std::string, int> variantOfPlan;
    size_t exploredFlagCount = 0; ///< N at exploration time
    int passthroughVariant = 0;   ///< index of flags-none output

    size_t uniqueCount() const { return variants.size(); }

    /** Variant index for a flag combination. Throws std::out_of_range
     * (naming the shader and combination) if it was never explored. */
    int variantOf(FlagSet flags) const;

    /** Variant index for an ordered plan (canonical plans route
     * through variantOfCombo). Throws std::out_of_range if the plan
     * was never explored — use PlanExplorer::ensure to explore. */
    int variantOf(const passes::PassPlan &plan) const;

    /** Does toggling @p bit ever change the output text? (Fig 8 red) */
    bool flagChangesOutput(int bit) const;

    /** Static features, filled lazily by tuner::featuresOf (at most
     * one computation per exploration; copies made afterwards share
     * it). Opaque here so explore.h does not depend on features.h. */
    mutable std::shared_ptr<const ShaderFeatures> featureCache;
};

/** Run the exhaustive 2^N-combination exploration for one corpus
 * shader (N from the pass registry; the paper's 256 by default). */
Exploration exploreShader(const corpus::CorpusShader &shader);

/**
 * Incremental ordered-plan exploration layered over an Exploration.
 * Where exploreShader walks the whole flag lattice up front, a
 * PlanExplorer explores plans on demand: `ensure(plan)` returns the
 * plan's variant index, walking the pass sequence only the first time
 * (canonical plans resolve straight from variantOfCombo with no pass
 * work, and repeated or text-converging plans dedup against the
 * existing variants). One persistent passes::PlanApplier serves every
 * ensure() call, so all plans explored through one PlanExplorer share
 * the content-addressed (fingerprint, pass) memo — executed pass runs
 * stay far below walked-plan count (ExploreCounters::plansWalked vs
 * passRuns). New variants are appended to the Exploration with the
 * plan recorded in variantOfPlan; front end and lowering run once, at
 * construction. Not thread-safe; confine to one search thread.
 */
class PlanExplorer
{
  public:
    /** @p shader must be the shader @p ex was explored from. */
    PlanExplorer(const corpus::CorpusShader &shader, Exploration &ex);
    ~PlanExplorer();
    PlanExplorer(const PlanExplorer &) = delete;
    PlanExplorer &operator=(const PlanExplorer &) = delete;

    /** Variant index of @p plan, exploring it first if needed. Throws
     * std::invalid_argument on invalid plans. */
    int ensure(const passes::PassPlan &plan);

    Exploration &exploration() { return ex_; }

    /** Plans this explorer actually walked (cache-missing ensures). */
    uint64_t plansWalked() const { return plansWalked_; }

  private:
    void foldStats();

    Exploration &ex_;
    std::unique_ptr<ir::Module> base_;
    passes::PlanApplier applier_;
    passes::PlanApplier::Node root_;
    std::unordered_map<uint64_t, int> byTextHash_;
    passes::FlagTreeStats folded_; ///< applier stats already counted
    uint64_t plansWalked_ = 0;
};

} // namespace gsopt::tuner

#endif // GSOPT_TUNER_EXPLORE_H
