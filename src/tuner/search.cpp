#include "tuner/search.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "runtime/framework.h"
#include "support/diag.h"
#include "support/rng.h"
#include "tuner/features.h"

namespace gsopt::tuner {

MeasurementOracle::MeasurementOracle(const Exploration &exploration,
                                     const gpu::DeviceModel &device,
                                     PlanExplorer *planner)
    : exploration_(exploration), device_(device), planner_(planner),
      variantMeanNs_(exploration.variants.size(),
                     std::numeric_limits<double>::quiet_NaN())
{
    if (planner_ && &planner_->exploration() != &exploration_) {
        throw std::logic_error(
            "MeasurementOracle: planner explores a different "
            "Exploration than the oracle measures");
    }
}

double
MeasurementOracle::originalMeanNs()
{
    // An explicit flag, not a `< 0` sentinel: a legitimate zero or
    // degenerate mean must still be measured exactly once, not
    // re-measured on every query.
    if (!measuredOriginal_) {
        measuredOriginal_ = true;
        originalMeanNs_ =
            runtime::measureShader(exploration_.preprocessedOriginal,
                                   device_,
                                   exploration_.shaderName +
                                       "/original")
                .meanNs;
    }
    return originalMeanNs_;
}

double
MeasurementOracle::measureVariant(size_t v)
{
    // Plan exploration appends variants after construction; late
    // arrivals start unmeasured like everyone else.
    if (v >= variantMeanNs_.size()) {
        variantMeanNs_.resize(exploration_.variants.size(),
                              std::numeric_limits<double>::quiet_NaN());
    }
    if (std::isnan(variantMeanNs_[v])) {
        variantMeanNs_[v] =
            runtime::measureShader(exploration_.variants[v].source,
                                   device_,
                                   exploration_.shaderName + "/v" +
                                       std::to_string(v))
                .meanNs;
        ++measured_;
    }
    return variantMeanNs_[v];
}

double
MeasurementOracle::measure(FlagSet flags)
{
    return measureVariant(
        static_cast<size_t>(exploration_.variantOf(flags)));
}

double
MeasurementOracle::measure(const passes::PassPlan &plan)
{
    const int v = planner_ ? planner_->ensure(plan)
                           : exploration_.variantOf(plan);
    return measureVariant(static_cast<size_t>(v));
}

double
MeasurementOracle::baselineOrWarn()
{
    const double base = originalMeanNs();
    if (base <= 0.0 && !warnedBaseline_) {
        warnedBaseline_ = true;
        Diagnostic d;
        d.severity = Severity::Warning;
        d.message = "non-positive baseline mean (" +
                    std::to_string(base) + " ns) for '" +
                    exploration_.shaderName + "' on " +
                    device_.vendor + "; all speed-ups report 0";
        std::fprintf(stderr, "%s\n", d.str().c_str());
    }
    return base;
}

double
MeasurementOracle::speedupOf(FlagSet flags)
{
    const double base = baselineOrWarn();
    if (base <= 0.0)
        return 0.0;
    return (base - measure(flags)) / base * 100.0;
}

double
MeasurementOracle::speedupOf(const passes::PassPlan &plan)
{
    const double base = baselineOrWarn();
    if (base <= 0.0)
        return 0.0;
    return (base - measure(plan)) / base * 100.0;
}

namespace {

/** Shared bookkeeping: probe a combination, maintain the incumbent
 * and the budget curve. Ties keep the earlier (or smaller) set. */
struct Tracker
{
    MeasurementOracle &oracle;
    SearchOutcome out;
    size_t startMeasurements; ///< oracle spend before this strategy

    explicit Tracker(MeasurementOracle &o)
        : oracle(o), startMeasurements(o.measurementsTaken())
    {
        out.bestSpeedupPercent = -1e30;
    }

    /** Distinct measurements this strategy has paid for (oracle delta,
     * so a pre-warmed or shared oracle never inflates the count). */
    size_t spent() const
    {
        return oracle.measurementsTaken() - startMeasurements;
    }

    double probe(FlagSet flags)
    {
        const size_t before = oracle.measurementsTaken();
        const double speedup = oracle.speedupOf(flags);
        const bool better =
            speedup > out.bestSpeedupPercent + 1e-12 ||
            (speedup > out.bestSpeedupPercent - 1e-12 &&
             flags.count() < out.bestFlags.count());
        if (better) {
            out.bestSpeedupPercent = speedup;
            out.bestFlags = flags;
            out.bestPlan = passes::PassPlan::canonicalOf(flags.bits);
        }
        recordBudget(before, better);
        return speedup;
    }

    /** Plan-space probe: same incumbent/curve bookkeeping, ties kept
     * by the shorter plan. The flag incumbent tracks the plan's member
     * set so lattice-only consumers stay coherent. */
    double probePlan(const passes::PassPlan &plan)
    {
        const size_t before = oracle.measurementsTaken();
        const double speedup = oracle.speedupOf(plan);
        const bool better =
            speedup > out.bestSpeedupPercent + 1e-12 ||
            (speedup > out.bestSpeedupPercent - 1e-12 &&
             plan.length() < out.bestPlan.length());
        if (better) {
            out.bestSpeedupPercent = speedup;
            out.bestFlags = FlagSet(plan.mask());
            out.bestPlan = plan;
        }
        recordBudget(before, better);
        return speedup;
    }

    void recordBudget(size_t beforeMeasurements, bool improved)
    {
        if (oracle.measurementsTaken() > beforeMeasurements) {
            out.bestByBudget.push_back(out.bestSpeedupPercent);
        } else if (improved && !out.bestByBudget.empty()) {
            // Free probe (variant-cache hit) that still improved the
            // incumbent — possible via the minimal-flag-set tie-break
            // or on a pre-warmed oracle. Record it at the current
            // budget index instead of leaving it invisible until the
            // next paid measurement.
            out.bestByBudget.back() = out.bestSpeedupPercent;
        }
    }

    SearchOutcome finish()
    {
        out.measurementsUsed = spent();
        return std::move(out);
    }
};

/**
 * Single-flag-flip hill climb from @p start: each round probes every
 * one-bit neighbour of the incumbent (adding unset flags *and*
 * dropping set ones — predictions can over-shoot as well as
 * under-shoot) and moves to the best strictly-improving one. Probes
 * stop once the tracker has paid @p budget distinct measurements.
 */
void
refineByFlips(Tracker &t, FlagSet start, double startSpeedup,
              size_t budget)
{
    const int n = static_cast<int>(t.oracle.flagCount());
    FlagSet incumbent = start;
    double incumbent_speedup = startSpeedup;
    for (;;) {
        int best_bit = -1;
        double best_speedup = incumbent_speedup;
        for (int bit = 0; bit < n; ++bit) {
            if (t.spent() >= budget)
                break;
            const FlagSet cand = incumbent.has(bit)
                                     ? incumbent.without(bit)
                                     : incumbent.with(bit);
            const double s = t.probe(cand);
            if (s > best_speedup + 1e-12) {
                best_speedup = s;
                best_bit = bit;
            }
        }
        if (best_bit < 0)
            break;
        incumbent = incumbent.has(best_bit)
                        ? incumbent.without(best_bit)
                        : incumbent.with(best_bit);
        incumbent_speedup = best_speedup;
    }
}

} // namespace

SearchOutcome
ExhaustiveSearch::run(MeasurementOracle &oracle) const
{
    Tracker t(oracle);
    const uint64_t n = oracle.comboCount();
    for (uint64_t combo = 0; combo < n; ++combo)
        t.probe(FlagSet(combo));
    SearchOutcome out = t.finish();

    // Report the winner under ShaderResult::bestFlags' exact rule
    // (first variant index on strict ties, then minimal producer) so
    // the exhaustive strategy reproduces the campaign verdict even
    // when quantised timers make distinct variants tie exactly.
    const Exploration &ex = oracle.exploration();
    int best_variant = 0;
    double best = -1e30;
    for (size_t v = 0; v < ex.variants.size(); ++v) {
        // Plan-only variants (no producing flag set) are outside the
        // lattice this strategy sweeps.
        if (ex.variants[v].producers.empty())
            continue;
        const double s =
            oracle.speedupOf(ex.variants[v].producers.front());
        if (s > best) {
            best = s;
            best_variant = static_cast<int>(v);
        }
    }
    out.bestSpeedupPercent = best;
    out.bestFlags = minimalProducer(
        ex.variants[static_cast<size_t>(best_variant)].producers);
    out.bestPlan = passes::PassPlan::canonicalOf(out.bestFlags.bits);
    return out;
}

SearchOutcome
GreedyFlagSearch::run(MeasurementOracle &oracle) const
{
    Tracker t(oracle);
    const int n = static_cast<int>(oracle.flagCount());
    FlagSet incumbent = FlagSet::none();
    double incumbent_speedup = t.probe(incumbent);

    for (;;) {
        int best_bit = -1;
        double best_speedup = incumbent_speedup;
        for (int bit = 0; bit < n; ++bit) {
            if (incumbent.has(bit))
                continue;
            const double s = t.probe(incumbent.with(bit));
            if (s > best_speedup + 1e-12) {
                best_speedup = s;
                best_bit = bit;
            }
        }
        if (best_bit < 0)
            break;
        incumbent = incumbent.with(best_bit);
        incumbent_speedup = best_speedup;
    }
    return t.finish();
}

std::string
RandomSearch::name() const
{
    return "random(" + std::to_string(budget_) + ")";
}

SearchOutcome
RandomSearch::run(MeasurementOracle &oracle) const
{
    Tracker t(oracle);
    Rng rng(hashCombine(seed_, fnv1a(oracle.exploration().shaderName)));
    t.probe(FlagSet::none());
    // A degenerate baseline (zero/negative mean) makes every speedup
    // query return 0 without spending a measurement; sampling could
    // then never reach the budget, so stop at the baseline probe.
    if (oracle.originalMeanNs() <= 0.0)
        return t.finish();
    while (t.spent() < budget_) {
        const size_t before = oracle.measurementsTaken();
        t.probe(FlagSet(rng.below(oracle.comboCount())));
        if (oracle.measurementsTaken() == before) {
            // Duplicate draw: the combo mapped to an already-measured
            // variant, so the probe was free and the budget unspent.
            // Once every unique variant is measured no future draw
            // can pay — stop instead of spinning forever.
            if (oracle.measurementsTaken() >=
                oracle.exploration().uniqueCount())
                break;
        }
    }
    return t.finish();
}

SearchOutcome
PredictedSearch::run(MeasurementOracle &oracle) const
{
    Tracker t(oracle);
    const ShaderFeatures &f = featuresOf(oracle.exploration());
    const std::vector<FlagSet> candidates =
        predictCandidates(oracle.device().id, f);

    FlagSet best = candidates.front();
    double best_speedup = t.probe(best);
    if (oracle.originalMeanNs() <= 0.0)
        return t.finish();
    for (size_t i = 1; i < candidates.size(); ++i) {
        if (t.spent() >= refineBudget_)
            break;
        const double s = t.probe(candidates[i]);
        if (s > best_speedup + 1e-12) {
            best_speedup = s;
            best = candidates[i];
        }
    }
    refineByFlips(t, best, best_speedup, refineBudget_);
    return t.finish();
}

SearchOutcome
TransferSeededSearch::run(MeasurementOracle &oracle) const
{
    Tracker t(oracle);
    const Exploration &ex = oracle.exploration();
    FlagSet seed;
    if (prior_) {
        // Leave-one-out: the shader being searched never seeds itself
        // with its own campaign verdict.
        seed = prior_->seedFor(ex.family, oracle.device().id,
                               ex.shaderName);
    }
    const double s = t.probe(seed);
    if (oracle.originalMeanNs() <= 0.0)
        return t.finish();
    refineByFlips(t, seed, s, refineBudget_);
    return t.finish();
}

std::string
SequenceSearch::name() const
{
    return "sequence(" + std::to_string(budget_) + ")";
}

SearchOutcome
SequenceSearch::run(MeasurementOracle &oracle) const
{
    using passes::PassPlan;
    Tracker t(oracle);
    const bool ordered = oracle.canExplorePlans();

    // Passthrough baseline first, like every budgeted strategy.
    t.probePlan(PassPlan{});
    if (oracle.originalMeanNs() <= 0.0)
        return t.finish();

    // Ranked measurement-free candidates: the lattice prediction plus
    // the per-device ordering rules micro_order validated.
    const ShaderFeatures &f = featuresOf(oracle.exploration());
    for (const PassPlan &plan :
         predictPlanCandidates(oracle.device().id, f)) {
        if (t.spent() >= budget_)
            break;
        if (!ordered && !plan.isCanonical())
            continue;
        t.probePlan(plan);
    }

    // Random restarts: a random pass subset in a random order, each
    // refined by local adjacent swaps over the restart's incumbent
    // (first-improvement, so one cheap swap can redirect the whole
    // descent). Deterministic: the stream is keyed by (seed, shader).
    Rng rng(
        hashCombine(seed_, fnv1a(oracle.exploration().shaderName)));
    for (size_t restart = 0;
         restart < restarts_ && t.spent() < budget_; ++restart) {
        PassPlan incumbent =
            PassPlan::canonicalOf(rng.below(oracle.comboCount()));
        if (ordered) {
            // Fisher-Yates over the drawn subset.
            for (size_t i = incumbent.bits.size(); i > 1; --i) {
                std::swap(incumbent.bits[i - 1],
                          incumbent.bits[rng.below(i)]);
            }
        }
        double incumbent_speedup = t.probePlan(incumbent);
        if (!ordered)
            continue;
        bool improved = true;
        while (improved && t.spent() < budget_) {
            improved = false;
            for (size_t i = 0; i + 1 < incumbent.bits.size() &&
                               t.spent() < budget_;
                 ++i) {
                PassPlan cand = incumbent;
                std::swap(cand.bits[i], cand.bits[i + 1]);
                const double s = t.probePlan(cand);
                if (s > incumbent_speedup + 1e-12) {
                    incumbent = std::move(cand);
                    incumbent_speedup = s;
                    improved = true;
                    break;
                }
            }
        }
    }
    return t.finish();
}

std::vector<std::unique_ptr<SearchStrategy>>
defaultStrategies(size_t randomBudget, uint64_t randomSeed,
                  std::shared_ptr<const FamilyPrior> prior,
                  size_t refineBudget)
{
    std::vector<std::unique_ptr<SearchStrategy>> out;
    out.push_back(std::make_unique<ExhaustiveSearch>());
    out.push_back(std::make_unique<GreedyFlagSearch>());
    out.push_back(
        std::make_unique<RandomSearch>(randomBudget, randomSeed));
    out.push_back(std::make_unique<PredictedSearch>(refineBudget));
    if (prior) {
        out.push_back(std::make_unique<TransferSeededSearch>(
            std::move(prior), refineBudget));
    }
    return out;
}

} // namespace gsopt::tuner
