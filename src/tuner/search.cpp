#include "tuner/search.h"

#include <cmath>
#include <limits>

#include "runtime/framework.h"
#include "support/rng.h"

namespace gsopt::tuner {

MeasurementOracle::MeasurementOracle(const Exploration &exploration,
                                     const gpu::DeviceModel &device)
    : exploration_(exploration), device_(device),
      variantMeanNs_(exploration.variants.size(),
                     std::numeric_limits<double>::quiet_NaN())
{
}

double
MeasurementOracle::originalMeanNs()
{
    if (originalMeanNs_ < 0.0) {
        originalMeanNs_ =
            runtime::measureShader(exploration_.preprocessedOriginal,
                                   device_,
                                   exploration_.shaderName +
                                       "/original")
                .meanNs;
    }
    return originalMeanNs_;
}

double
MeasurementOracle::measure(FlagSet flags)
{
    const size_t v =
        static_cast<size_t>(exploration_.variantOf(flags));
    if (std::isnan(variantMeanNs_[v])) {
        variantMeanNs_[v] =
            runtime::measureShader(exploration_.variants[v].source,
                                   device_,
                                   exploration_.shaderName + "/v" +
                                       std::to_string(v))
                .meanNs;
        ++measured_;
    }
    return variantMeanNs_[v];
}

double
MeasurementOracle::speedupOf(FlagSet flags)
{
    const double base = originalMeanNs();
    if (base <= 0.0)
        return 0.0;
    return (base - measure(flags)) / base * 100.0;
}

namespace {

/** Shared bookkeeping: probe a combination, maintain the incumbent
 * and the budget curve. Ties keep the earlier (or smaller) set. */
struct Tracker
{
    MeasurementOracle &oracle;
    SearchOutcome out;

    explicit Tracker(MeasurementOracle &o) : oracle(o)
    {
        out.bestSpeedupPercent = -1e30;
    }

    double probe(FlagSet flags)
    {
        const size_t before = oracle.measurementsTaken();
        const double speedup = oracle.speedupOf(flags);
        const bool better =
            speedup > out.bestSpeedupPercent + 1e-12 ||
            (speedup > out.bestSpeedupPercent - 1e-12 &&
             flags.count() < out.bestFlags.count());
        if (better) {
            out.bestSpeedupPercent = speedup;
            out.bestFlags = flags;
        }
        if (oracle.measurementsTaken() > before)
            out.bestByBudget.push_back(out.bestSpeedupPercent);
        return speedup;
    }

    SearchOutcome finish()
    {
        out.measurementsUsed = oracle.measurementsTaken();
        return std::move(out);
    }
};

} // namespace

SearchOutcome
ExhaustiveSearch::run(MeasurementOracle &oracle) const
{
    Tracker t(oracle);
    const uint64_t n = oracle.comboCount();
    for (uint64_t combo = 0; combo < n; ++combo)
        t.probe(FlagSet(combo));
    SearchOutcome out = t.finish();

    // Report the winner under ShaderResult::bestFlags' exact rule
    // (first variant index on strict ties, then minimal producer) so
    // the exhaustive strategy reproduces the campaign verdict even
    // when quantised timers make distinct variants tie exactly.
    const Exploration &ex = oracle.exploration();
    int best_variant = 0;
    double best = -1e30;
    for (size_t v = 0; v < ex.variants.size(); ++v) {
        const double s =
            oracle.speedupOf(ex.variants[v].producers.front());
        if (s > best) {
            best = s;
            best_variant = static_cast<int>(v);
        }
    }
    out.bestSpeedupPercent = best;
    out.bestFlags = minimalProducer(
        ex.variants[static_cast<size_t>(best_variant)].producers);
    return out;
}

SearchOutcome
GreedyFlagSearch::run(MeasurementOracle &oracle) const
{
    Tracker t(oracle);
    const int n = static_cast<int>(oracle.flagCount());
    FlagSet incumbent = FlagSet::none();
    double incumbent_speedup = t.probe(incumbent);

    for (;;) {
        int best_bit = -1;
        double best_speedup = incumbent_speedup;
        for (int bit = 0; bit < n; ++bit) {
            if (incumbent.has(bit))
                continue;
            const double s = t.probe(incumbent.with(bit));
            if (s > best_speedup + 1e-12) {
                best_speedup = s;
                best_bit = bit;
            }
        }
        if (best_bit < 0)
            break;
        incumbent = incumbent.with(best_bit);
        incumbent_speedup = best_speedup;
    }
    return t.finish();
}

std::string
RandomSearch::name() const
{
    return "random(" + std::to_string(budget_) + ")";
}

SearchOutcome
RandomSearch::run(MeasurementOracle &oracle) const
{
    Tracker t(oracle);
    Rng rng(hashCombine(seed_, fnv1a(oracle.exploration().shaderName)));
    t.probe(FlagSet::none());
    // A degenerate baseline (zero/negative mean) makes every speedup
    // query return 0 without spending a measurement; sampling could
    // then never reach the budget, so stop at the baseline probe.
    if (oracle.originalMeanNs() <= 0.0)
        return t.finish();
    while (oracle.measurementsTaken() < budget_) {
        const size_t before = oracle.measurementsTaken();
        t.probe(FlagSet(rng.below(oracle.comboCount())));
        if (oracle.measurementsTaken() == before) {
            // Combo mapped to an already-measured variant: free probe,
            // but bound the spin for tiny variant spaces.
            if (oracle.exploration().uniqueCount() <= budget_ &&
                oracle.measurementsTaken() >=
                    oracle.exploration().uniqueCount())
                break;
        }
    }
    return t.finish();
}

std::vector<std::unique_ptr<SearchStrategy>>
defaultStrategies(size_t randomBudget, uint64_t randomSeed)
{
    std::vector<std::unique_ptr<SearchStrategy>> out;
    out.push_back(std::make_unique<ExhaustiveSearch>());
    out.push_back(std::make_unique<GreedyFlagSearch>());
    out.push_back(
        std::make_unique<RandomSearch>(randomBudget, randomSeed));
    return out;
}

} // namespace gsopt::tuner
