/**
 * @file
 * Pluggable search strategies over the flag-combination space.
 *
 * The paper's campaign is exhaustive: every combination is compiled,
 * deduped, and every unique variant measured. Its Section VIII notes
 * that per-shader "iterative" search beats any static flag set (Fig
 * 5) — which raises the follow-on question this module answers: how
 * much of the iterative optimum survives when the measurement budget
 * shrinks from "every variant" to a handful of on-device timings?
 *
 * A SearchStrategy spends *measurements* (on-device timing runs of a
 * variant, the expensive resource in the paper's protocol: 5 runs x
 * 100 frames each) against a MeasurementOracle and reports the best
 * combination it found plus its budget trajectory. Repeated queries
 * for combinations that map to an already-measured variant are free —
 * exactly how a real tuner would dedup by compiled output.
 */
#ifndef GSOPT_TUNER_SEARCH_H
#define GSOPT_TUNER_SEARCH_H

#include <memory>
#include <string>
#include <vector>

#include "gpu/device.h"
#include "tuner/explore.h"
#include "tuner/predict.h"

namespace gsopt::tuner {

/**
 * Measurement oracle for one explored shader on one device. Timings
 * are cached per unique variant; measurementsTaken() counts only the
 * distinct variants actually timed (the budget strategies spend).
 */
class MeasurementOracle
{
  public:
    /**
     * With a @p planner (a PlanExplorer over the same Exploration),
     * the oracle also measures *ordered plans*: a plan probe explores
     * the plan on demand (appending any new variant) and times it
     * under the same per-variant cache, so plans converging to
     * already-measured text are free. Without a planner, plan probes
     * resolve only against what the exploration already maps
     * (canonical plans, previously annotated plans) and throw
     * std::out_of_range otherwise.
     */
    MeasurementOracle(const Exploration &exploration,
                      const gpu::DeviceModel &device,
                      PlanExplorer *planner = nullptr);

    size_t flagCount() const
    {
        return exploration_.exploredFlagCount;
    }
    uint64_t comboCount() const
    {
        return 1ull << exploration_.exploredFlagCount;
    }

    /** Can this oracle explore never-seen ordered plans? */
    bool canExplorePlans() const { return planner_ != nullptr; }

    /** Mean frame time of the shader compiled under @p flags. */
    double measure(FlagSet flags);

    /** Mean frame time under ordered plan @p plan (explored on demand
     * when a planner is attached). */
    double measure(const passes::PassPlan &plan);

    /** Mean frame time of the unmodified original (cached; does not
     * count against measurementsTaken). Measured exactly once, even
     * when the result is a degenerate zero/negative mean. */
    double originalMeanNs();

    /** Percent speed-up of @p flags vs the original shader. A
     * non-positive baseline reports 0 (and emits a one-time warning
     * diagnostic on stderr — every comparison downstream of it is
     * meaningless). */
    double speedupOf(FlagSet flags);

    /** Percent speed-up of ordered plan @p plan vs the original. */
    double speedupOf(const passes::PassPlan &plan);

    /** Distinct variant measurements performed so far. */
    size_t measurementsTaken() const { return measured_; }

    const Exploration &exploration() const { return exploration_; }
    const gpu::DeviceModel &device() const { return device_; }

  private:
    double measureVariant(size_t v);
    /** originalMeanNs(), with the one-time warning on a non-positive
     * baseline (shared by both speedupOf overloads). */
    double baselineOrWarn();

    const Exploration &exploration_;
    const gpu::DeviceModel &device_;
    PlanExplorer *planner_;             ///< optional, not owned
    std::vector<double> variantMeanNs_; ///< NaN until measured; grows
                                        ///< as plans add variants
    double originalMeanNs_ = 0.0;
    bool measuredOriginal_ = false; ///< explicit, not a sentinel value
    bool warnedBaseline_ = false;   ///< one diagnostic per oracle
    size_t measured_ = 0;
};

/** Outcome of one strategy run on one (shader, device). */
struct SearchOutcome
{
    FlagSet bestFlags;               ///< best combination found
    /** Best ordered plan found. For lattice-only strategies this is
     * the canonical plan of bestFlags; SequenceSearch can return a
     * non-canonical ordering that beats every flag subset it probed
     * (bestFlags then holds the plan's member set). */
    passes::PassPlan bestPlan;
    double bestSpeedupPercent = 0.0; ///< vs the original shader
    size_t measurementsUsed = 0;     ///< distinct variant timings
    /** Best-so-far speed-up after the (i+1)-th paid measurement (the
     * budget curve the strategy-comparison example plots). A free
     * probe — one resolved from the variant cache — that improves the
     * incumbent updates the entry for the current budget, so the
     * curve never under-reports what the strategy knew at a given
     * spend. */
    std::vector<double> bestByBudget;
};

/** Interface over the variant space: spend oracle measurements, return
 * the best combination found. Implementations must be deterministic
 * for a given (oracle, constructor arguments). */
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;
    virtual std::string name() const = 0;
    virtual SearchOutcome run(MeasurementOracle &oracle) const = 0;
};

/**
 * Today's campaign behaviour: every combination (enumerated over the
 * exhaustively explored, prefix-sharing-tree-built variant space),
 * every unique variant measured once. Finds the true optimum;
 * tie-breaks to the minimal producing flag set, matching
 * ShaderResult::bestFlags.
 */
class ExhaustiveSearch : public SearchStrategy
{
  public:
    std::string name() const override { return "exhaustive"; }
    SearchOutcome run(MeasurementOracle &oracle) const override;
};

/**
 * One-flag-at-a-time hill climb: starting from the empty set, each
 * round measures every single-flag extension of the incumbent and
 * keeps the best strictly-improving one; stops when no flag improves.
 * At most N rounds of <= N probes each: ~O(N^2) measurements.
 */
class GreedyFlagSearch : public SearchStrategy
{
  public:
    std::string name() const override { return "greedy"; }
    SearchOutcome run(MeasurementOracle &oracle) const override;
};

/** Uniform random sampling of @p budget combinations (deterministic
 * and platform-stable — all draws come from support/rng, never std
 * distributions); the passthrough baseline is always probed first.
 * Duplicate draws that map to an already-measured variant are free
 * and do not count against the budget. */
class RandomSearch : public SearchStrategy
{
  public:
    RandomSearch(size_t budget, uint64_t seed)
        : budget_(budget), seed_(seed)
    {
    }
    std::string name() const override;
    SearchOutcome run(MeasurementOracle &oracle) const override;

  private:
    size_t budget_;
    uint64_t seed_;
};

/**
 * Cost-model-guided search: predict a flag set from static features
 * (tuner/features.h + tuner/predict.h, zero measurements), then
 * refine it with a measured neighbourhood of single-flag flips —
 * hill-climbing in both directions (adding unset flags, dropping set
 * ones) from the prediction, capped at @p refineBudget distinct
 * measurements total.
 */
class PredictedSearch : public SearchStrategy
{
  public:
    explicit PredictedSearch(size_t refineBudget = 8)
        : refineBudget_(refineBudget)
    {
    }
    std::string name() const override { return "predicted"; }
    SearchOutcome run(MeasurementOracle &oracle) const override;

  private:
    size_t refineBudget_;
};

/**
 * Cross-shader transfer search: seed from the shader's übershader
 * family's best-known flags (a FamilyPrior built from a completed
 * campaign, leave-one-out), then greedy-refine with single-flag flips
 * under the same budget cap as PredictedSearch. Without a prior (or
 * for a family the prior has never seen) the seed degrades to the
 * empty set.
 */
class TransferSeededSearch : public SearchStrategy
{
  public:
    explicit TransferSeededSearch(
        std::shared_ptr<const FamilyPrior> prior,
        size_t refineBudget = 8)
        : prior_(std::move(prior)), refineBudget_(refineBudget)
    {
    }
    std::string name() const override { return "transfer"; }
    SearchOutcome run(MeasurementOracle &oracle) const override;

  private:
    std::shared_ptr<const FamilyPrior> prior_;
    size_t refineBudget_;
};

/**
 * Phase-ordering search over ordered pass plans (ROADMAP
 * "Phase-ordering search: beyond the flag lattice"). Probes the
 * ranked predictPlanCandidates first (the measurement-free ordering
 * rules), then spends the rest of its budget on random restarts —
 * a random pass subset in a random order — each refined by local
 * adjacent swaps over the incumbent plan, accepting strict
 * improvements. Hard-capped at @p budget distinct variant
 * measurements, like PredictedSearch; plans that converge to
 * already-measured text are free probes.
 *
 * Needs an oracle with a PlanExplorer attached to leave the flag
 * lattice; without one it degrades gracefully to probing canonical
 * plans only (the ordering dimension collapses, the budget cap and
 * outcome contract still hold). Deterministic for a given (oracle,
 * seed) — all randomness comes from support/rng keyed by the shader
 * name.
 */
class SequenceSearch : public SearchStrategy
{
  public:
    explicit SequenceSearch(size_t budget = 16, size_t restarts = 4,
                            uint64_t seed = 0x0de5)
        : budget_(budget), restarts_(restarts), seed_(seed)
    {
    }
    std::string name() const override;
    SearchOutcome run(MeasurementOracle &oracle) const override;

  private:
    size_t budget_;
    size_t restarts_;
    uint64_t seed_;
};

/** The built-in strategy roster the comparison example iterates:
 * exhaustive, greedy, random(@p randomBudget), predicted — plus
 * transfer when a family prior is supplied. */
std::vector<std::unique_ptr<SearchStrategy>> defaultStrategies(
    size_t randomBudget = 16, uint64_t randomSeed = 0x5eed,
    std::shared_ptr<const FamilyPrior> prior = nullptr,
    size_t refineBudget = 8);

} // namespace gsopt::tuner

#endif // GSOPT_TUNER_SEARCH_H
