#include "tuner/distrib.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/diag.h"
#include "support/fault.h"
#include "support/governor.h"
#include "support/ipc.h"
#include "support/rng.h"
#include "support/time.h"

extern char **environ;

namespace gsopt::tuner::distrib {

namespace fs = std::filesystem;

namespace {

// ---- protocol vocabulary ------------------------------------------------

constexpr uint32_t kHello = 1;     ///< W->C: {u64 pid}
constexpr uint32_t kUnit = 2;      ///< C->W: encoded WireUnit
constexpr uint32_t kResult = 3;    ///< W->C: {u64 id, str shardBytes}
constexpr uint32_t kUnitError = 4; ///< W->C: {u64 id, str message}
constexpr uint32_t kHeartbeat = 5; ///< W->C: {u64 id}
constexpr uint32_t kShutdown = 6;  ///< C->W: {}

const char *const kWorkerFdsEnv = "GSOPT_DISTRIB_WORKER_FDS";

std::string
encodeUnit(const WireUnit &u)
{
    ipc::Pack p;
    p.u64(u.id).u64(u.key).u64(u.heartbeatMs);
    p.str(u.shader.name).str(u.shader.family).str(u.shader.source);
    p.u64(u.shader.defines.size());
    for (const auto &[k, v] : u.shader.defines)
        p.str(k).str(v);
    return p.take();
}

bool
decodeUnit(std::string_view payload, WireUnit &u)
{
    ipc::Unpack up(payload);
    uint64_t ndefs = 0;
    if (!up.u64(u.id) || !up.u64(u.key) || !up.u64(u.heartbeatMs) ||
        !up.str(u.shader.name) || !up.str(u.shader.family) ||
        !up.str(u.shader.source) || !up.u64(ndefs) ||
        ndefs > (1ull << 16))
        return false;
    for (uint64_t i = 0; i < ndefs; ++i) {
        std::string k, v;
        if (!up.str(k) || !up.str(v))
            return false;
        u.shader.defines.emplace(std::move(k), std::move(v));
    }
    return up.done();
}

// ---- knobs --------------------------------------------------------------

[[noreturn]] void
badKnob(const char *name, const char *value)
{
    std::fprintf(stderr, "%s: '%s' is not a positive integer\n", name,
                 value);
    std::abort();
}

uint64_t
envPositive(const char *name, uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || v == 0)
        badKnob(name, env);
    return v;
}

unsigned
defaultWorkerCount()
{
    return static_cast<unsigned>(
        envPositive("GSOPT_DISTRIB_WORKERS", 2));
}

uint64_t
defaultLeaseMs()
{
    return envPositive("GSOPT_LEASE_MS", 30000);
}

bool
strictMode()
{
    const char *env = std::getenv("GSOPT_STRICT");
    return env && *env && *env != '0';
}

void
warnDistrib(const std::string &what)
{
    Diagnostic d;
    d.severity = Severity::Warning;
    d.message = "distrib: " + what;
    std::fprintf(stderr, "%s\n", d.str().c_str());
}

// ---- in-process transport ----------------------------------------------

/**
 * Worker threads in this process. Deterministic (no processes, no
 * pipes), but it still funnels every delivered result through the
 * `ipc.send`/`ipc.recv` fault sites — a tear truncates the delivered
 * shard bytes (the coordinator's merge validation must reject them),
 * a throw surfaces as a unit error — so the same fault plans exercise
 * the coordinator's recovery paths without any subprocess machinery.
 *
 * Threads cannot be killed: reap() abandons the running thread (its
 * eventual delivery is tagged stale — the coordinator's duplicate
 * path) and revive() spawns a replacement with a fresh mailbox.
 */
class InProcessTransport final : public WorkerTransport
{
  public:
    InProcessTransport(unsigned workers, unsigned workerThreads)
        : threads_(workerThreads == 0 ? 1 : workerThreads)
    {
        for (unsigned w = 0; w < workers; ++w)
            slots_.push_back(std::make_unique<Slot>());
        for (unsigned w = 0; w < workers; ++w)
            spawn(w);
    }

    ~InProcessTransport() override { shutdown(); }

    unsigned workerCount() const override
    {
        return static_cast<unsigned>(slots_.size());
    }

    bool live(unsigned w) const override { return slots_[w]->live; }

    bool assign(unsigned w, const WireUnit &unit) override
    {
        Slot &s = *slots_[w];
        if (!s.live)
            return false;
        {
            std::lock_guard lock(s.box->m);
            s.box->in.push_back(unit);
        }
        s.box->cv.notify_one();
        return true;
    }

    TransportEvent poll(int timeoutMs) override
    {
        std::unique_lock lock(qm_);
        if (!qcv_.wait_for(lock, std::chrono::milliseconds(timeoutMs),
                           [&] { return !events_.empty(); }))
            return {};
        TransportEvent ev = std::move(events_.front());
        events_.pop_front();
        return ev;
    }

    void reap(unsigned w) override
    {
        Slot &s = *slots_[w];
        if (!s.live)
            return;
        {
            std::lock_guard lock(s.box->m);
            s.box->quit = true;
        }
        s.box->cv.notify_all();
        s.live = false;
        {
            // Deliveries from the abandoned generation become stale.
            std::lock_guard lock(qm_);
            s.generation++;
        }
        s.abandoned.push_back(std::move(s.thread));
    }

    bool revive(unsigned w) override
    {
        Slot &s = *slots_[w];
        if (s.live)
            return true;
        spawn(w);
        return true;
    }

    void shutdown() override
    {
        for (unsigned w = 0; w < workerCount(); ++w) {
            Slot &s = *slots_[w];
            if (s.live) {
                {
                    std::lock_guard lock(s.box->m);
                    s.box->quit = true;
                }
                s.box->cv.notify_all();
                s.live = false;
            }
            if (s.thread.joinable())
                s.thread.join();
            for (std::thread &t : s.abandoned)
                if (t.joinable())
                    t.join();
            s.abandoned.clear();
        }
    }

  private:
    struct Mailbox
    {
        std::mutex m;
        std::condition_variable cv;
        std::deque<WireUnit> in;
        bool quit = false;
    };

    struct Slot
    {
        std::shared_ptr<Mailbox> box;
        std::thread thread;
        uint64_t generation = 0; ///< guarded by qm_
        bool live = false;
    std::vector<std::thread> abandoned;
    };

    void spawn(unsigned w)
    {
        Slot &s = *slots_[w];
        s.box = std::make_shared<Mailbox>();
        uint64_t gen;
        {
            std::lock_guard lock(qm_);
            gen = ++s.generation;
        }
        auto box = s.box;
        s.thread = std::thread(
            [this, w, gen, box] { workerMain(w, gen, *box); });
        s.live = true;
    }

    void workerMain(unsigned w, uint64_t gen, Mailbox &box)
    {
        for (;;) {
            WireUnit unit;
            {
                std::unique_lock lock(box.m);
                box.cv.wait(lock, [&] {
                    return box.quit || !box.in.empty();
                });
                if (box.in.empty())
                    return; // quit with nothing queued
                unit = std::move(box.in.front());
                box.in.pop_front();
            }
            TransportEvent ev;
            ev.worker = w;
            ev.unit = unit.id;
            try {
                std::string bytes =
                    executeUnit(unit.shader, unit.key, threads_);
                // Simulated wire: route the delivery through the same
                // fault sites as the pipe transport. A tear truncates
                // the shard bytes (merge validation must catch it); a
                // throw becomes a unit error.
                size_t n = fault::tearPoint("ipc.send", bytes.size());
                fault::point("ipc.send");
                if (n == bytes.size()) {
                    n = fault::tearPoint("ipc.recv", bytes.size());
                    fault::point("ipc.recv");
                }
                if (n != bytes.size())
                    bytes.resize(n);
                ev.kind = TransportEvent::Kind::Result;
                ev.bytes = std::move(bytes);
            } catch (const std::exception &e) {
                ev.kind = TransportEvent::Kind::UnitError;
                ev.bytes = e.what();
            }
            {
                std::lock_guard lock(qm_);
                ev.stale = slots_[w]->generation != gen;
                events_.push_back(std::move(ev));
            }
            qcv_.notify_one();
            {
                std::unique_lock lock(box.m);
                if (box.quit && box.in.empty())
                    return;
            }
        }
    }

    unsigned threads_;
    std::vector<std::unique_ptr<Slot>> slots_;
    std::mutex qm_;
    std::condition_variable qcv_;
    std::deque<TransportEvent> events_;
};

// ---- subprocess transport ----------------------------------------------

/** Read /proc/self/exe (Linux). */
std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        throw std::runtime_error(
            "distrib: cannot resolve /proc/self/exe");
    buf[n] = '\0';
    return std::string(buf);
}

/** Pipe writes to a dead worker must fail with EPIPE, not kill the
 * coordinator process. Installed once, first use. */
void
ignoreSigpipeOnce()
{
    static const bool done = [] {
        ::signal(SIGPIPE, SIG_IGN);
        return true;
    }();
    (void)done;
}

/**
 * fork/exec'd workers speaking the support/ipc frame protocol. Each
 * worker is a re-execution of this binary with
 * GSOPT_DISTRIB_WORKER_FDS=3,4 in its environment: commands arrive on
 * fd 3, results leave on fd 4 (the hosting main() must divert into
 * maybeRunWorker()). Workers inherit the parent environment as of
 * transport construction, so ambient GSOPT_* configuration — fault
 * plans, budgets, extra passes — governs them identically.
 */
class SubprocessTransport final : public WorkerTransport
{
  public:
    explicit SubprocessTransport(unsigned workers)
        : exe_(selfExePath())
    {
        ignoreSigpipeOnce();
        if (std::getenv(kWorkerFdsEnv)) {
            // A coordinator inside a worker would re-spawn this
            // binary recursively; the hosting main() forgot to call
            // maybeRunWorker(). Fail loudly before forking anything.
            std::fprintf(stderr,
                         "distrib: %s is set inside a coordinator — "
                         "the host binary must call "
                         "distrib::maybeRunWorker() first in main()\n",
                         kWorkerFdsEnv);
            std::abort();
        }
        buildChildEnv();
        slots_.resize(workers);
        for (unsigned w = 0; w < workers; ++w)
            if (!spawn(w)) {
                shutdown();
                throw std::runtime_error(
                    "distrib: failed to spawn worker " +
                    std::to_string(w) + " (no handshake — does the "
                    "host binary call distrib::maybeRunWorker()?)");
            }
    }

    ~SubprocessTransport() override { shutdown(); }

    unsigned workerCount() const override
    {
        return static_cast<unsigned>(slots_.size());
    }

    bool live(unsigned w) const override { return slots_[w].live; }

    bool assign(unsigned w, const WireUnit &unit) override
    {
        Proc &p = slots_[w];
        if (!p.live)
            return false;
        try {
            ipc::writeFrame(p.toChild, kUnit, encodeUnit(unit));
            return true;
        } catch (const std::exception &) {
            // Failed or torn send: the stream is unusable either way.
            markDead(w);
            return false;
        }
    }

    TransportEvent poll(int timeoutMs) override
    {
        if (queue_.empty())
            pump(timeoutMs);
        if (queue_.empty())
            return {};
        TransportEvent ev = std::move(queue_.front());
        queue_.pop_front();
        return ev;
    }

    void reap(unsigned w) override { markDead(w); }

    bool revive(unsigned w) override
    {
        if (slots_[w].live)
            return true;
        return spawn(w);
    }

    void shutdown() override
    {
        for (unsigned w = 0; w < workerCount(); ++w) {
            Proc &p = slots_[w];
            if (!p.live)
                continue;
            try {
                ipc::writeFrame(p.toChild, kShutdown, {});
            } catch (const std::exception &) {
            }
        }
        // Grace period, then force.
        const uint64_t deadline = nowNs() + 2'000'000'000ull;
        for (unsigned w = 0; w < workerCount(); ++w) {
            Proc &p = slots_[w];
            if (!p.live)
                continue;
            bool gone = false;
            while (nowNs() < deadline) {
                int status = 0;
                const pid_t r = ::waitpid(p.pid, &status, WNOHANG);
                if (r == p.pid || (r < 0 && errno == ECHILD)) {
                    gone = true;
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
            if (!gone) {
                ::kill(p.pid, SIGKILL);
                ::waitpid(p.pid, nullptr, 0);
            }
            closeFds(p);
            p.live = false;
        }
    }

  private:
    struct Proc
    {
        pid_t pid = -1;
        int toChild = -1;
        int fromChild = -1;
        bool live = false;
        ipc::FrameDecoder decoder;
    };

    void buildChildEnv()
    {
        childEnv_.clear();
        for (char **e = environ; e && *e; ++e) {
            if (std::strncmp(*e, kWorkerFdsEnv,
                             std::strlen(kWorkerFdsEnv)) == 0 &&
                (*e)[std::strlen(kWorkerFdsEnv)] == '=')
                continue;
            childEnv_.push_back(*e);
        }
        childEnv_.push_back(std::string(kWorkerFdsEnv) + "=3,4");
        childEnvPtrs_.clear();
        for (std::string &s : childEnv_)
            childEnvPtrs_.push_back(s.data());
        childEnvPtrs_.push_back(nullptr);
        childArgv_ = {exe_.data(),
                      const_cast<char *>("--gsopt-distrib-worker"),
                      nullptr};
    }

    static void closeFds(Proc &p)
    {
        if (p.toChild >= 0)
            ::close(p.toChild);
        if (p.fromChild >= 0)
            ::close(p.fromChild);
        p.toChild = p.fromChild = -1;
        p.decoder = ipc::FrameDecoder();
    }

    bool spawn(unsigned w)
    {
        Proc &p = slots_[w];
        int c2w[2], w2c[2];
        if (::pipe2(c2w, O_CLOEXEC) != 0)
            return false;
        if (::pipe2(w2c, O_CLOEXEC) != 0) {
            ::close(c2w[0]);
            ::close(c2w[1]);
            return false;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(c2w[0]);
            ::close(c2w[1]);
            ::close(w2c[0]);
            ::close(w2c[1]);
            return false;
        }
        if (pid == 0) {
            // Child: only async-signal-safe calls until execve. Park
            // the pipe ends above the target range first so dup2
            // cannot collide with fds 3/4, then pin them (dup2 clears
            // CLOEXEC on the duplicate; the originals close on exec).
            const int in = ::fcntl(c2w[0], F_DUPFD, 16);
            const int out = ::fcntl(w2c[1], F_DUPFD, 16);
            if (in < 0 || out < 0 || ::dup2(in, 3) < 0 ||
                ::dup2(out, 4) < 0)
                ::_exit(126);
            ::execve(childArgv_[0], childArgv_.data(),
                     childEnvPtrs_.data());
            ::_exit(127);
        }
        ::close(c2w[0]);
        ::close(w2c[1]);
        p.pid = pid;
        p.toChild = c2w[1];
        p.fromChild = w2c[0];
        p.decoder = ipc::FrameDecoder();

        // Handshake: the worker announces itself with kHello before
        // anything else. A child that never says hello is a binary
        // that does not divert into maybeRunWorker() — kill it before
        // it does something expensive (like running a test suite).
        const uint64_t deadline = nowNs() + 10'000'000'000ull;
        while (nowNs() < deadline) {
            struct pollfd pfd = {p.fromChild, POLLIN, 0};
            const int r = ::poll(&pfd, 1, 100);
            if (r < 0 && errno != EINTR)
                break;
            if (r <= 0)
                continue;
            char buf[4096];
            const ssize_t n = ::read(p.fromChild, buf, sizeof(buf));
            if (n <= 0)
                break;
            p.decoder.feed(buf, static_cast<size_t>(n));
            ipc::Frame f;
            try {
                if (!p.decoder.next(f))
                    continue;
            } catch (const ipc::ProtocolError &) {
                break;
            }
            if (f.type != kHello)
                break;
            p.live = true;
            return true;
        }
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        closeFds(p);
        return false;
    }

    void markDead(unsigned w)
    {
        Proc &p = slots_[w];
        if (!p.live)
            return;
        ::kill(p.pid, SIGKILL);
        ::waitpid(p.pid, nullptr, 0);
        closeFds(p);
        p.live = false;
    }

    /** Drain readable worker pipes into events (at most one read per
     * worker per call; complete frames queue up). */
    void pump(int timeoutMs)
    {
        std::vector<struct pollfd> pfds;
        std::vector<unsigned> owners;
        for (unsigned w = 0; w < workerCount(); ++w) {
            if (!slots_[w].live)
                continue;
            pfds.push_back({slots_[w].fromChild, POLLIN, 0});
            owners.push_back(w);
        }
        if (pfds.empty()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(std::min(timeoutMs, 10)));
            return;
        }
        const int r = ::poll(pfds.data(),
                             static_cast<nfds_t>(pfds.size()),
                             timeoutMs);
        if (r <= 0)
            return;
        for (size_t i = 0; i < pfds.size(); ++i) {
            if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            const unsigned w = owners[i];
            Proc &p = slots_[w];
            char buf[1 << 16];
            const ssize_t n = ::read(p.fromChild, buf, sizeof(buf));
            if (n < 0) {
                if (errno == EINTR || errno == EAGAIN)
                    continue;
                streamDead(w);
                continue;
            }
            if (n == 0) {
                // EOF. Mid-frame bytes mean the worker died mid-send
                // (a short frame); either way the worker is gone.
                streamDead(w);
                continue;
            }
            p.decoder.feed(buf, static_cast<size_t>(n));
            drainFrames(w);
        }
    }

    void drainFrames(unsigned w)
    {
        Proc &p = slots_[w];
        ipc::Frame f;
        for (;;) {
            try {
                // Receiver-side fault: an injected ipc.recv failure
                // poisons this worker's stream, same as real garbage.
                fault::point("ipc.recv");
                if (!p.decoder.next(f))
                    return;
            } catch (const std::exception &) {
                streamDead(w);
                return;
            }
            TransportEvent ev;
            ev.worker = w;
            ipc::Unpack up(f.payload);
            switch (f.type) {
            case kResult:
                ev.kind = TransportEvent::Kind::Result;
                if (!up.u64(ev.unit) || !up.str(ev.bytes) ||
                    !up.done()) {
                    streamDead(w);
                    return;
                }
                break;
            case kUnitError:
                ev.kind = TransportEvent::Kind::UnitError;
                if (!up.u64(ev.unit) || !up.str(ev.bytes) ||
                    !up.done()) {
                    streamDead(w);
                    return;
                }
                break;
            case kHeartbeat:
                ev.kind = TransportEvent::Kind::Heartbeat;
                if (!up.u64(ev.unit)) {
                    streamDead(w);
                    return;
                }
                break;
            case kHello:
                continue; // benign (re-handshake noise)
            default:
                streamDead(w);
                return;
            }
            queue_.push_back(std::move(ev));
        }
    }

    void streamDead(unsigned w)
    {
        markDead(w);
        TransportEvent ev;
        ev.kind = TransportEvent::Kind::WorkerDied;
        ev.worker = w;
        queue_.push_back(std::move(ev));
    }

    std::string exe_;
    std::vector<std::string> childEnv_;
    std::vector<char *> childEnvPtrs_;
    std::vector<char *> childArgv_;
    std::vector<Proc> slots_;
    std::deque<TransportEvent> queue_;
};

// ---- subprocess worker loop --------------------------------------------

void
workerLoop(int in, int out)
{
    std::mutex writeMutex;
    {
        ipc::Pack hello;
        hello.u64(static_cast<uint64_t>(::getpid()));
        std::lock_guard lock(writeMutex);
        ipc::writeFrame(out, kHello, hello.bytes());
    }
    ipc::Frame f;
    while (ipc::readFrame(in, f)) {
        if (f.type == kShutdown)
            return;
        if (f.type != kUnit)
            throw ipc::ProtocolError(
                "distrib worker: unexpected frame type " +
                std::to_string(f.type));
        WireUnit unit;
        if (!decodeUnit(f.payload, unit))
            throw ipc::ProtocolError(
                "distrib worker: malformed unit payload");

        // Heartbeat while the unit executes, so the coordinator can
        // tell a slow unit from a dead worker.
        std::atomic<bool> done{false};
        const uint64_t hbMs =
            unit.heartbeatMs == 0 ? 1000 : unit.heartbeatMs;
        std::thread heartbeat([&] {
            uint64_t sinceBeat = 0;
            while (!done.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
                sinceBeat += 5;
                if (sinceBeat < hbMs)
                    continue;
                sinceBeat = 0;
                try {
                    ipc::Pack beat;
                    beat.u64(unit.id);
                    std::lock_guard lock(writeMutex);
                    ipc::writeFrame(out, kHeartbeat, beat.bytes());
                } catch (const std::exception &) {
                    return; // coordinator gone; result send will fail
                }
            }
        });

        std::string resultBytes, errorMsg;
        bool ok = false;
        try {
            resultBytes = executeUnit(unit.shader, unit.key, 1);
            ok = true;
        } catch (const std::exception &e) {
            errorMsg = e.what();
        }
        done.store(true, std::memory_order_relaxed);
        heartbeat.join();

        ipc::Pack reply;
        reply.u64(unit.id);
        reply.str(ok ? resultBytes : errorMsg);
        std::lock_guard lock(writeMutex);
        ipc::writeFrame(out, ok ? kResult : kUnitError, reply.bytes());
    }
}

} // namespace

bool
maybeRunWorker()
{
    const char *env = std::getenv(kWorkerFdsEnv);
    if (!env || !*env)
        return false;
    int in = -1, out = -1;
    if (std::sscanf(env, "%d,%d", &in, &out) != 2 || in < 0 ||
        out < 0) {
        std::fprintf(stderr, "%s: malformed value '%s'\n",
                     kWorkerFdsEnv, env);
        std::abort();
    }
    try {
        workerLoop(in, out);
    } catch (const std::exception &e) {
        // A dead coordinator pipe or an injected send fault: die like
        // a crashed worker would — the coordinator re-queues.
        std::fprintf(stderr, "distrib worker: %s\n", e.what());
        std::_Exit(1);
    }
    return true;
}

std::string
executeUnit(const corpus::CorpusShader &shader, uint64_t key,
            unsigned threads)
{
    const uint64_t expected = shardKey(shader, deviceSetKey());
    if (expected != key) {
        char msg[160];
        std::snprintf(msg, sizeof(msg),
                      "shard key mismatch for '%s': coordinator "
                      "%016llx vs worker %016llx (pass registry, "
                      "device set, or schema drift)",
                      shader.name.c_str(),
                      static_cast<unsigned long long>(key),
                      static_cast<unsigned long long>(expected));
        throw std::runtime_error(msg);
    }

    // One unit = one governed request: an ambient GSOPT_DEADLINE_MS /
    // GSOPT_BUDGET_* bounds each unit, and the engine's per-item
    // admission points defer to this outer budget.
    governor::ScopedRequestBudget admission;

    ExperimentEngine engine({shader},
                            threads == 0 ? 1u : threads);
    if (!engine.health().healthy()) {
        // A worker never publishes a partial shard; surface the first
        // structured reason and let the coordinator decide.
        std::string why = "unit failed";
        if (!engine.health().quarantined.empty())
            why += ": " + engine.health().quarantined.front().error;
        throw std::runtime_error(why);
    }
    const std::string body = serializeShardBody(engine.results().front());
    ipc::Pack file;
    file.u64(key).u64(fnv1a(body));
    std::string bytes = file.take();
    bytes += body;
    return bytes;
}

std::string
DistribHealth::summary() const
{
    std::string out =
        "distrib health: " + std::to_string(unitsTotal) + " units (" +
        std::to_string(unitsFromCache) + " cached, " +
        std::to_string(unitsCompleted) + " completed, " +
        std::to_string(quarantined.size()) + " quarantined), " +
        std::to_string(unitsRequeued) + " requeues, " +
        std::to_string(shardsRejected) + " shards rejected, " +
        std::to_string(duplicateDeliveries) + " duplicates, " +
        std::to_string(leaseExpiries) + " lease expiries, " +
        std::to_string(workersRestarted) + " worker restarts\n";
    for (const QuarantinedUnit &q : quarantined)
        out += "  quarantined " + q.shader + " after " +
               std::to_string(q.assignments) +
               " assignment(s): " + q.error + "\n";
    return out;
}

// ---- coordinator --------------------------------------------------------

struct CampaignCoordinator::Unit
{
    size_t shaderIndex = 0;
    uint64_t key = 0;
    std::string path;
    int assignments = 0;
    bool done = false;
};

CampaignCoordinator::CampaignCoordinator(
    std::vector<corpus::CorpusShader> shaders, std::string shardDir,
    Options opts)
    : shaders_(std::move(shaders)), shardDir_(std::move(shardDir)),
      opts_(opts)
{
    if (opts_.workers == 0)
        opts_.workers = defaultWorkerCount();
    if (opts_.leaseMs == 0)
        opts_.leaseMs = defaultLeaseMs();
    if (opts_.maxAssignments < 1)
        opts_.maxAssignments = 1;
}

const DistribHealth &
CampaignCoordinator::run()
{
    std::unique_ptr<WorkerTransport> transport =
        opts_.transport == TransportKind::Subprocess
            ? makeSubprocessTransport(opts_.workers)
            : makeInProcessTransport(opts_.workers,
                                     opts_.workerThreads);
    return run(*transport);
}

const DistribHealth &
CampaignCoordinator::run(WorkerTransport &transport)
{
    // The transport owns OS resources (children, threads); make sure
    // they are stopped on every exit path, including a strict-mode
    // throw.
    struct ShutdownGuard
    {
        WorkerTransport &t;
        ~ShutdownGuard()
        {
            try {
                t.shutdown();
            } catch (...) {
            }
        }
    } guard{transport};

    health_ = DistribHealth{};
    const bool strict = strictMode();

    std::error_code ec;
    fs::create_directories(shardDir_, ec);

    // ---- enumerate units; resume over surviving shards ------------
    const uint64_t setKey = deviceSetKey();
    std::vector<Unit> units;
    std::set<std::string> livePaths;
    for (size_t i = 0; i < shaders_.size(); ++i) {
        health_.unitsTotal++;
        Unit u;
        u.shaderIndex = i;
        u.key = shardKey(shaders_[i], setKey);
        u.path = shardDir_ + "/" + shardFileName(shaders_[i], u.key);
        livePaths.insert(u.path);
        ShaderResult existing;
        if (ExperimentEngine::loadShard(u.path, u.key, existing)) {
            health_.unitsFromCache++;
            continue; // resume: this unit is already done
        }
        units.push_back(std::move(u));
    }

    // Retire shards no current unit claims (stale keys, dropped
    // shaders) so the merged directory equals a fresh campaign's.
    for (const auto &entry : fs::directory_iterator(shardDir_, ec)) {
        const std::string name = entry.path().filename().string();
        std::string claimed = shardDir_ + "/" + name;
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".tmp") == 0)
            claimed = claimed.substr(0, claimed.size() - 4);
        if (!livePaths.count(claimed))
            fs::remove(entry.path(), ec);
    }

    // ---- schedule: family representatives first --------------------
    // Measuring one member of each übershader family before the tail
    // gets every family's prior measured early — late arrivals can be
    // seeded from it (TransferSeededSearch) instead of swept.
    std::vector<size_t> reps, tail;
    std::set<std::string> seenFamilies;
    for (size_t ui = 0; ui < units.size(); ++ui) {
        const std::string &family =
            shaders_[units[ui].shaderIndex].family;
        if (seenFamilies.insert(family).second)
            reps.push_back(ui);
        else
            tail.push_back(ui);
    }
    if (opts_.scheduleSeed != 0) {
        auto shuffle = [&](std::vector<size_t> &v, uint64_t salt) {
            Rng rng(hashCombine(opts_.scheduleSeed, salt));
            for (size_t i = v.size(); i > 1; --i)
                std::swap(v[i - 1], v[rng.below(i)]);
        };
        shuffle(reps, 0x5265u);
        shuffle(tail, 0x7461u);
    }
    std::deque<size_t> pending(reps.begin(), reps.end());
    pending.insert(pending.end(), tail.begin(), tail.end());

    // ---- merge helpers ---------------------------------------------
    enum class Merge { Published, Duplicate, Invalid };
    auto merge_shard = [&](Unit &u,
                           const std::string &bytes) -> Merge {
        if (fs::exists(u.path))
            return Merge::Duplicate; // copy only if the key is absent
        const std::string tmp = u.path + ".tmp";
        // Publish with the engine's tmp+rename protocol; injected
        // shard.write tears are local write failures (retry the
        // write), not delivery corruption.
        bool written = false;
        for (int attempt = 0; attempt < 3 && !written; ++attempt) {
            std::ofstream file(tmp,
                               std::ios::binary | std::ios::trunc);
            if (!file)
                continue;
            const size_t n =
                fault::tearPoint("shard.write", bytes.size());
            file.write(bytes.data(),
                       static_cast<std::streamsize>(n));
            file.flush();
            written = n == bytes.size() && bool(file);
        }
        if (!written) {
            fs::remove(tmp, ec);
            return Merge::Invalid;
        }
        // Verification gate: checksum + key + structural validation
        // through the exact loader every consumer uses. Nothing a
        // worker sent is trusted until it parses.
        ShaderResult parsed;
        if (!ExperimentEngine::loadShard(tmp, u.key, parsed)) {
            fs::remove(tmp, ec);
            return Merge::Invalid;
        }
        std::error_code rename_ec;
        fs::rename(tmp, u.path, rename_ec);
        if (rename_ec) {
            fs::remove(tmp, ec);
            return Merge::Invalid;
        }
        return Merge::Published;
    };

    auto requeue_or_quarantine = [&](size_t ui,
                                     const std::string &err) {
        Unit &u = units[ui];
        if (u.assignments < opts_.maxAssignments) {
            pending.push_back(ui);
            health_.unitsRequeued++;
            return;
        }
        QuarantinedUnit q;
        q.shader = shaders_[u.shaderIndex].name;
        q.error = err;
        q.assignments = u.assignments;
        u.done = true; // retired; a late valid delivery still merges
        warnDistrib("quarantined unit " + q.shader + " after " +
                    std::to_string(q.assignments) +
                    " assignment(s): " + err);
        health_.quarantined.push_back(std::move(q));
        if (strict)
            throw std::runtime_error(
                "distrib: unit '" +
                shaders_[u.shaderIndex].name +
                "' quarantined under GSOPT_STRICT=1: " + err);
    };

    // ---- main loop --------------------------------------------------
    struct Outstanding
    {
        size_t unit;
        uint64_t deadlineNs;
    };
    std::map<unsigned, Outstanding> outstanding;
    const uint64_t leaseNs = opts_.leaseMs * 1'000'000ull;
    const uint64_t heartbeatMs =
        std::max<uint64_t>(10, opts_.leaseMs / 4);
    int stuckRounds = 0;

    while (!pending.empty() || !outstanding.empty()) {
        // Assign pending units to idle workers, reviving dead slots
        // on demand while work remains.
        for (unsigned w = 0;
             w < transport.workerCount() && !pending.empty(); ++w) {
            if (outstanding.count(w))
                continue;
            if (!transport.live(w)) {
                if (!transport.revive(w))
                    continue;
                health_.workersRestarted++;
            }
            size_t ui = pending.front();
            // A re-queued unit can complete in the meantime via a
            // late (stale) delivery from its first worker; drop it.
            while (units[ui].done) {
                pending.pop_front();
                if (pending.empty())
                    break;
                ui = pending.front();
            }
            if (pending.empty() || units[ui].done)
                break;
            WireUnit wire;
            wire.id = ui;
            wire.key = units[ui].key;
            wire.heartbeatMs = heartbeatMs;
            wire.shader = shaders_[units[ui].shaderIndex];
            if (!transport.assign(w, wire))
                continue; // send failed; unit stays queued
            pending.pop_front();
            units[ui].assignments++;
            outstanding[w] = Outstanding{ui, nowNs() + leaseNs};
        }

        if (outstanding.empty()) {
            if (pending.empty())
                break;
            // Nothing assignable: every slot is dead and revival
            // failed. Give it a few rounds, then give up loudly.
            if (++stuckRounds >= 3) {
                while (!pending.empty()) {
                    const size_t ui = pending.front();
                    pending.pop_front();
                    units[ui].assignments = opts_.maxAssignments;
                    requeue_or_quarantine(
                        ui, "no live workers (spawn/revive failed)");
                }
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
            continue;
        }
        stuckRounds = 0;

        // Wait for the next event, but never past the nearest lease.
        uint64_t nearest = UINT64_MAX;
        for (const auto &[w, o] : outstanding)
            nearest = std::min(nearest, o.deadlineNs);
        const uint64_t now = nowNs();
        int timeoutMs = 50;
        if (nearest != UINT64_MAX) {
            const uint64_t untilMs =
                nearest > now ? (nearest - now) / 1'000'000ull : 0;
            timeoutMs = static_cast<int>(
                std::min<uint64_t>(untilMs + 1, 50));
        }

        TransportEvent ev = transport.poll(timeoutMs);
        switch (ev.kind) {
        case TransportEvent::Kind::Result: {
            if (ev.unit >= units.size())
                break; // nonsense id from a hostile stream
            Unit &u = units[ev.unit];
            auto it = outstanding.find(ev.worker);
            const bool current = !ev.stale &&
                                 it != outstanding.end() &&
                                 it->second.unit == ev.unit;
            if (u.done) {
                // A unit completed twice (lease reassignment raced a
                // slow worker): merge-if-absent discards the copy.
                health_.duplicateDeliveries++;
            } else {
                switch (merge_shard(u, ev.bytes)) {
                case Merge::Published:
                    u.done = true;
                    health_.unitsCompleted++;
                    break;
                case Merge::Duplicate:
                    u.done = true;
                    health_.duplicateDeliveries++;
                    break;
                case Merge::Invalid:
                    health_.shardsRejected++;
                    warnDistrib(
                        "rejected shard for '" +
                        shaders_[u.shaderIndex].name +
                        "' (checksum/structural validation failed)");
                    requeue_or_quarantine(
                        ev.unit, "delivered shard failed validation");
                    break;
                }
            }
            if (current)
                outstanding.erase(it);
            break;
        }
        case TransportEvent::Kind::UnitError: {
            if (ev.unit >= units.size())
                break;
            auto it = outstanding.find(ev.worker);
            const bool current = !ev.stale &&
                                 it != outstanding.end() &&
                                 it->second.unit == ev.unit;
            if (!units[ev.unit].done)
                requeue_or_quarantine(ev.unit, ev.bytes);
            if (current)
                outstanding.erase(it);
            break;
        }
        case TransportEvent::Kind::Heartbeat: {
            auto it = outstanding.find(ev.worker);
            if (it != outstanding.end())
                it->second.deadlineNs = nowNs() + leaseNs;
            break;
        }
        case TransportEvent::Kind::WorkerDied: {
            auto it = outstanding.find(ev.worker);
            if (it != outstanding.end()) {
                const size_t ui = it->second.unit;
                outstanding.erase(it);
                if (!units[ui].done)
                    requeue_or_quarantine(ui,
                                          "worker died mid-unit");
            }
            break;
        }
        case TransportEvent::Kind::None:
            break;
        }

        // Lease sweep: a worker that neither delivered nor beat its
        // heart inside the lease is presumed stuck — reap it and give
        // the unit to someone else (bounded by maxAssignments).
        const uint64_t sweepNow = nowNs();
        for (auto it = outstanding.begin();
             it != outstanding.end();) {
            if (it->second.deadlineNs > sweepNow) {
                ++it;
                continue;
            }
            const unsigned w = it->first;
            const size_t ui = it->second.unit;
            health_.leaseExpiries++;
            warnDistrib("lease expired for unit '" +
                        shaders_[units[ui].shaderIndex].name +
                        "' on worker " + std::to_string(w) +
                        "; reaping");
            transport.reap(w);
            it = outstanding.erase(it);
            if (!units[ui].done)
                requeue_or_quarantine(ui,
                                      "lease expired (worker stalled)");
        }
    }

    if (!health_.healthy())
        std::fprintf(stderr, "%s", health_.summary().c_str());
    return health_;
}

std::unique_ptr<WorkerTransport>
makeInProcessTransport(unsigned workers, unsigned workerThreads)
{
    return std::make_unique<InProcessTransport>(
        workers == 0 ? defaultWorkerCount() : workers, workerThreads);
}

std::unique_ptr<WorkerTransport>
makeSubprocessTransport(unsigned workers)
{
    return std::make_unique<SubprocessTransport>(
        workers == 0 ? defaultWorkerCount() : workers);
}

} // namespace gsopt::tuner::distrib
