/**
 * @file
 * Distributed campaign: a coordinator/worker fan-out of the
 * ExperimentEngine over (shader, device-set) work units.
 *
 * The campaign is embarrassingly parallel across shaders: one work
 * unit = one shader x the whole configured device set = one shard
 * file, keyed by tuner::shardKey. The CampaignCoordinator enumerates
 * the units, orders them family-representatives-first (one member of
 * each übershader family is measured before the long tail, so family
 * priors exist early and late arrivals can be seeded instead of
 * swept), and hands them to N workers behind a WorkerTransport.
 * Workers run a fresh single-shader ExperimentEngine per unit — under
 * a per-unit governor::ScopedRequestBudget, so an ambient
 * GSOPT_DEADLINE_MS bounds each unit — and ship the finished shard
 * *file bytes* back: the shard file format is the wire format (see
 * experiment.h), so merge verification is free.
 *
 * The coordinator merges with "copy if key absent": every incoming
 * shard is written to a `.tmp` sibling, re-validated through
 * ExperimentEngine::loadShard (key, content hash, structural checks),
 * and only then atomically renamed into the shard directory. A shard
 * that fails validation is rejected and its unit re-queued; a
 * duplicate delivery (a unit that was re-assigned after a lease
 * expiry and then completed twice) is discarded. The merged directory
 * is a valid ExperimentEngine cache — resuming is "construct the
 * engine over it", and a coordinator started over a partial directory
 * re-runs only the missing units.
 *
 * Fault tolerance mirrors the in-process campaign: each assignment
 * carries a lease; workers heartbeat while executing; a worker that
 * dies (pipe EOF, corrupt frame stream) or stalls past its lease is
 * reaped and its unit re-queued, bounded by Options::maxAssignments
 * before the unit is quarantined into DistribHealth. The coordinator
 * completes on partial results; GSOPT_STRICT=1 turns the first unit
 * quarantine into a thrown error.
 *
 * Two transports implement WorkerTransport:
 *  - in-process threads (makeInProcessTransport): deterministic, no
 *    processes, used by tests and the bench;
 *  - spawned subprocesses over pipes (makeSubprocessTransport): the
 *    real distribution shape — each worker is a re-execution of
 *    /proc/self/exe speaking the support/ipc frame protocol on fds
 *    3 (commands in) and 4 (results out). Any binary that uses it
 *    MUST call distrib::maybeRunWorker() first thing in main() and
 *    return when it reports true.
 *
 * Knobs: GSOPT_DISTRIB_WORKERS (default worker count when
 * Options::workers is 0), GSOPT_LEASE_MS (default lease when
 * Options::leaseMs is 0). Malformed values abort loudly, same policy
 * as GSOPT_FAULTS.
 */
#ifndef GSOPT_TUNER_DISTRIB_H
#define GSOPT_TUNER_DISTRIB_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "tuner/experiment.h"

namespace gsopt::tuner::distrib {

/** Which WorkerTransport CampaignCoordinator::run constructs. */
enum class TransportKind {
    InProcess,  ///< worker threads in this process (deterministic)
    Subprocess, ///< fork/exec'd workers over support/ipc pipes
};

/** Coordinator configuration. */
struct Options
{
    /** Worker count; 0 = GSOPT_DISTRIB_WORKERS, default 2. */
    unsigned workers = 0;
    TransportKind transport = TransportKind::InProcess;
    /** Per-assignment lease in ms; 0 = GSOPT_LEASE_MS, default
     * 30000. A worker holding a unit past its lease (no heartbeat,
     * no result) is reaped and the unit re-queued. */
    uint64_t leaseMs = 0;
    /** Times a unit may be assigned before it is quarantined. */
    int maxAssignments = 3;
    /** Thread count inside each worker's ExperimentEngine (the
     * parallelism of the distributed campaign is across workers, so
     * the default keeps each worker serial and deterministic). */
    unsigned workerThreads = 1;
    /** Non-zero: deterministically shuffle the assignment order
     * (within the family-representative group and within the tail
     * separately — representatives always go first). Merge is keyed,
     * so any order produces byte-identical shard directories; tests
     * sweep seeds to prove exactly that. */
    uint64_t scheduleSeed = 0;
};

/** One unit quarantined after exhausting its assignment bound. */
struct QuarantinedUnit
{
    std::string shader;
    std::string error; ///< the last failure observed for the unit
    int assignments = 0;
};

/** Fault report of one coordinator run. */
struct DistribHealth
{
    uint64_t unitsTotal = 0;       ///< enumerated units
    uint64_t unitsFromCache = 0;   ///< satisfied by existing shards
    uint64_t unitsCompleted = 0;   ///< shards published this run
    uint64_t unitsRequeued = 0;    ///< re-assignments after failures
    uint64_t shardsRejected = 0;   ///< deliveries failing validation
    uint64_t duplicateDeliveries = 0; ///< late/duplicate results
    uint64_t leaseExpiries = 0;    ///< assignments reaped by lease
    uint64_t workersRestarted = 0; ///< dead/reaped workers revived
    std::vector<QuarantinedUnit> quarantined;

    bool healthy() const { return quarantined.empty(); }
    /** One line per quarantined unit plus the counter summary. */
    std::string summary() const;
};

// ---- transport layer ----------------------------------------------------

/** A unit as handed to a transport: enough for a worker with no shared
 * memory to rebuild the shader and verify the shard key. */
struct WireUnit
{
    uint64_t id = 0;  ///< coordinator-local ordinal
    uint64_t key = 0; ///< expected tuner::shardKey
    /** Heartbeat period the worker should honour while executing. */
    uint64_t heartbeatMs = 0;
    corpus::CorpusShader shader;
};

/** One event surfaced by WorkerTransport::poll. */
struct TransportEvent
{
    enum class Kind {
        None,      ///< poll timed out
        Result,    ///< bytes = full shard file bytes for unit
        UnitError, ///< bytes = worker's error message for unit
        Heartbeat, ///< worker is alive and executing
        WorkerDied ///< worker is gone (EOF, corrupt stream, reaped)
    };
    Kind kind = Kind::None;
    unsigned worker = 0;
    uint64_t unit = 0;
    /** Delivery from a reaped worker generation (in-process workers
     * cannot be killed; their late results surface as stale). */
    bool stale = false;
    std::string bytes;
};

/**
 * The coordinator's view of a worker pool. Implementations must be
 * drivable from a single coordinator thread: assign() hands a unit to
 * one worker, poll() surfaces at most one event per call, reap()
 * forcibly retires a worker (kill for subprocesses; abandonment for
 * threads), revive() brings a retired slot back. Tests implement this
 * interface directly to script the fault matrix deterministically.
 */
class WorkerTransport
{
  public:
    virtual ~WorkerTransport() = default;

    virtual unsigned workerCount() const = 0;
    /** Is slot @p w currently able to take assignments? */
    virtual bool live(unsigned w) const = 0;
    /** Hand @p unit to worker @p w. False if the send failed — the
     * coordinator treats the worker as dead and keeps the unit. */
    virtual bool assign(unsigned w, const WireUnit &unit) = 0;
    /** Surface the next event, waiting up to @p timeoutMs. */
    virtual TransportEvent poll(int timeoutMs) = 0;
    /** Forcibly retire worker @p w (lease expiry, corrupt stream). */
    virtual void reap(unsigned w) = 0;
    /** Respawn slot @p w after death/reaping. False if impossible. */
    virtual bool revive(unsigned w) = 0;
    /** Orderly end: stop workers, join/reap them all. */
    virtual void shutdown() = 0;
};

std::unique_ptr<WorkerTransport>
makeInProcessTransport(unsigned workers, unsigned workerThreads);

std::unique_ptr<WorkerTransport>
makeSubprocessTransport(unsigned workers);

// ---- worker side --------------------------------------------------------

/**
 * Execute one unit exactly as a worker does: verify the shard key
 * (coordinator and worker must agree on registry/device/schema state —
 * a mismatch means environment drift and fails loudly), run a fresh
 * single-shader ExperimentEngine under a per-unit request budget, and
 * return the complete shard file bytes ([key][hash][body]). Throws on
 * any failure, including a quarantined device item (a worker has no
 * business publishing a partial shard — the coordinator re-queues).
 */
std::string executeUnit(const corpus::CorpusShader &shader,
                        uint64_t key, unsigned threads);

/**
 * Subprocess worker entry point. When GSOPT_DISTRIB_WORKER_FDS is set
 * (by makeSubprocessTransport in the parent), runs the worker frame
 * loop over the inherited pipe fds until shutdown/EOF and returns
 * true — the caller must then exit without running anything else.
 * Returns false in a normal process. Every binary that may host a
 * SubprocessTransport calls this first thing in main():
 *
 *     int main(int argc, char **argv) {
 *         if (gsopt::tuner::distrib::maybeRunWorker()) return 0;
 *         ...
 *     }
 */
bool maybeRunWorker();

// ---- coordinator --------------------------------------------------------

class CampaignCoordinator
{
  public:
    /** Plan a distributed campaign over @p shaders whose merged shard
     * directory is @p shardDir (created if absent; surviving shards
     * in it are loaded and their units skipped — resume). */
    CampaignCoordinator(std::vector<corpus::CorpusShader> shaders,
                        std::string shardDir, Options opts = {});

    /** Run to completion with a transport built from the options.
     * Returns the health report (also kept on the coordinator). Under
     * GSOPT_STRICT=1 the first quarantined unit throws instead. */
    const DistribHealth &run();

    /** Run over an externally supplied transport (tests script the
     * fault matrix through this). */
    const DistribHealth &run(WorkerTransport &transport);

    const DistribHealth &health() const { return health_; }
    const Options &options() const { return opts_; }

  private:
    struct Unit; // internal scheduling state

    std::vector<corpus::CorpusShader> shaders_;
    std::string shardDir_;
    Options opts_;
    DistribHealth health_;
};

} // namespace gsopt::tuner::distrib

#endif // GSOPT_TUNER_DISTRIB_H
