/**
 * @file
 * AST -> IR lowering. This stage plays the role of LunarGlass's GLSL
 * front end (glslang -> LLVM IR translation), and deliberately reproduces
 * its documented compilation artefacts (paper Section III-C):
 *
 *  a) *Scalarised matrix multiplications*: there are no matrix values in
 *     the IR; every matrix expression is decomposed into per-component
 *     scalar arithmetic (a mat4*mat4 becomes 64 multiplies + 48 adds).
 *  b) *Unnecessary vectorisation*: scalar-times-vector becomes a splat
 *     Construct followed by a full vector multiply, because — as in
 *     LLVM — both operands of a vector op must have the same type.
 *
 * All user functions are inlined at their call sites (functions with
 * early returns are rejected; shaders in the corpus use tail returns
 * only). After lowering, the module is a single structured main body.
 */
#ifndef GSOPT_LOWER_LOWER_H
#define GSOPT_LOWER_LOWER_H

#include <memory>

#include "glsl/frontend.h"
#include "ir/ir.h"

namespace gsopt::lower {

/**
 * Lower a checked shader to IR. Throws gsopt::CompileError on constructs
 * outside the supported subset (early returns, recursion, dynamic
 * indexing of local matrices).
 */
std::unique_ptr<ir::Module> lowerShader(const glsl::CompiledShader &cs);

} // namespace gsopt::lower

#endif // GSOPT_LOWER_LOWER_H
