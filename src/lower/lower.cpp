#include "lower/lower.h"

#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "ir/builder.h"
#include "ir/verifier.h"

namespace gsopt::lower {

using glsl::AssignOp;
using glsl::BinaryOp;
using glsl::Expr;
using glsl::ExprKind;
using glsl::Qualifier;
using glsl::Stmt;
using glsl::StmtKind;
using glsl::UnaryOp;
using ir::Instr;
using ir::IrBuilder;
using ir::Opcode;
using ir::Type;
using ir::Var;
using ir::VarKind;

namespace {

/** A scalarised matrix value: cols*rows scalar SSA values, column-major. */
struct MatValue
{
    int cols = 0;
    int rows = 0;
    std::vector<Instr *> scalars; ///< scalars[c * rows + r]

    Instr *&at(int c, int r) { return scalars[c * rows + r]; }
    Instr *at(int c, int r) const { return scalars[c * rows + r]; }
};

/** The result of evaluating an expression. */
struct Value
{
    Instr *v = nullptr; ///< scalar/vector value (null for matrices)
    std::optional<MatValue> mat;

    bool isMatrix() const { return mat.has_value(); }
};

[[noreturn]] void
fail(SourceLoc loc, const std::string &msg)
{
    throw CompileError({{Severity::Error, loc, msg}});
}

class Lowerer
{
  public:
    explicit Lowerer(const glsl::CompiledShader &cs)
        : cs_(cs), module_(std::make_unique<ir::Module>()),
          builder_(*module_)
    {
    }

    std::unique_ptr<ir::Module> run()
    {
        for (const auto &g : cs_.ast.globals)
            lowerGlobal(g);
        const glsl::FunctionDecl *main = cs_.ast.findFunction("main");
        if (!main)
            fail({}, "no main function");
        for (const auto &s : main->body->body)
            lowerStmt(*s);
        ir::verifyOrDie(*module_, "after lowering");
        return std::move(module_);
    }

  private:
    // ================= constant evaluation (for const arrays) ==========

    /** Flattened constant value of an expression, if fully constant. */
    std::optional<std::vector<double>> tryEvalConst(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
            return std::vector<double>{static_cast<double>(e.intValue)};
          case ExprKind::FloatLit:
            return std::vector<double>{e.floatValue};
          case ExprKind::BoolLit:
            return std::vector<double>{e.boolValue ? 1.0 : 0.0};
          case ExprKind::VarRef: {
            auto it = constValues_.find(e.name);
            if (it != constValues_.end())
                return it->second;
            return std::nullopt;
          }
          case ExprKind::Unary: {
            auto a = tryEvalConst(*e.args[0]);
            if (!a)
                return std::nullopt;
            for (double &d : *a)
                d = e.unaryOp == UnaryOp::Not ? (d == 0.0 ? 1.0 : 0.0)
                                              : -d;
            return a;
          }
          case ExprKind::Binary: {
            auto a = tryEvalConst(*e.args[0]);
            auto b = tryEvalConst(*e.args[1]);
            if (!a || !b)
                return std::nullopt;
            // Broadcast scalars.
            if (a->size() == 1 && b->size() > 1)
                a->assign(b->size(), (*a)[0]);
            if (b->size() == 1 && a->size() > 1)
                b->assign(a->size(), (*b)[0]);
            if (a->size() != b->size())
                return std::nullopt;
            for (size_t i = 0; i < a->size(); ++i) {
                double x = (*a)[i], y = (*b)[i];
                switch (e.binaryOp) {
                  case BinaryOp::Add: (*a)[i] = x + y; break;
                  case BinaryOp::Sub: (*a)[i] = x - y; break;
                  case BinaryOp::Mul: (*a)[i] = x * y; break;
                  case BinaryOp::Div:
                    (*a)[i] = y != 0.0 ? x / y : 0.0;
                    break;
                  default:
                    return std::nullopt;
                }
            }
            return a;
          }
          case ExprKind::Construct: {
            if (e.ctorType.isMatrix())
                return std::nullopt;
            std::vector<double> out;
            for (const auto &arg : e.args) {
                auto v = tryEvalConst(*arg);
                if (!v)
                    return std::nullopt;
                out.insert(out.end(), v->begin(), v->end());
            }
            if (!e.ctorType.isArray()) {
                const size_t want =
                    static_cast<size_t>(e.ctorType.componentCount());
                if (out.size() == 1 && want > 1)
                    out.assign(want, out[0]); // splat
                if (out.size() > want)
                    out.resize(want); // vec3(v4) truncation
                if (out.size() != want)
                    return std::nullopt;
            }
            return out;
          }
          case ExprKind::Index: {
            auto base = tryEvalConst(*e.args[0]);
            auto idx = tryEvalConst(*e.args[1]);
            if (!base || !idx)
                return std::nullopt;
            const Type &bt = e.args[0]->type;
            int comp = bt.isArray() ? bt.elementType().componentCount()
                                    : 1;
            size_t offset =
                static_cast<size_t>((*idx)[0]) * static_cast<size_t>(comp);
            if (offset + static_cast<size_t>(comp) > base->size())
                return std::nullopt;
            return std::vector<double>(base->begin() + offset,
                                       base->begin() + offset + comp);
          }
          case ExprKind::Member: {
            auto base = tryEvalConst(*e.args[0]);
            if (!base)
                return std::nullopt;
            std::vector<double> out;
            for (char c : e.name) {
                int i = c == 'x' || c == 'r' || c == 's'   ? 0
                        : c == 'y' || c == 'g' || c == 't' ? 1
                        : c == 'z' || c == 'b' || c == 'p' ? 2
                                                           : 3;
                if (static_cast<size_t>(i) >= base->size())
                    return std::nullopt;
                out.push_back((*base)[static_cast<size_t>(i)]);
            }
            return out;
          }
          default:
            return std::nullopt;
        }
    }

    // ========================== globals ================================

    void lowerGlobal(const glsl::GlobalDecl &g)
    {
        VarKind kind = VarKind::Local;
        switch (g.qual) {
          case Qualifier::In:
            kind = VarKind::Input;
            break;
          case Qualifier::Out:
            kind = VarKind::Output;
            break;
          case Qualifier::Uniform:
            kind = g.type.isSampler() ? VarKind::Sampler
                                      : VarKind::Uniform;
            break;
          case Qualifier::Const:
          case Qualifier::Global:
            kind = VarKind::Local;
            break;
        }

        if (kind != VarKind::Local) {
            if (g.type.isMatrix()) {
                // Uniform matrices stay whole; columns are loaded via
                // LoadElem and scalarised at each use.
                module_->newVar(g.name, g.type, kind);
            } else {
                module_->newVar(g.name, g.type, kind);
            }
            return;
        }

        // const globals: try full constant evaluation. Mutable globals
        // must keep real storage (main may overwrite them).
        if (g.init && g.qual == Qualifier::Const) {
            auto cv = tryEvalConst(*g.init);
            if (cv) {
                constValues_[g.name] = *cv;
                if (g.type.isArray()) {
                    Var *var = module_->newVar(g.name, g.type,
                                               VarKind::ConstArray);
                    var->constInit = *cv;
                    return;
                }
                // Constant scalar/vector: materialise as a module-entry
                // store (forwarding will propagate it).
                declareLocal(g.name, g.type, g.loc);
                storeTo(g.name, g.type,
                        makeConst(g.type, *cv));
                return;
            }
        }
        declareLocal(g.name, g.type, g.loc);
        if (g.init) {
            Value v = lowerExpr(*g.init);
            storeValue(g.name, g.type, v, g.loc);
        }
    }

    // ===================== var management ==============================

    /**
     * Make a module-unique variable name. Source names are unique after
     * sema's alpha-renaming, but inlining the same function at several
     * sites re-declares its locals; those get a numeric suffix here.
     */
    std::string uniqueVarName(const std::string &name)
    {
        if (!module_->findVar(name) && !matrixVars_.count(name))
            return name;
        int n = 1;
        std::string candidate;
        do {
            candidate = name + "_d" + std::to_string(n++);
        } while (module_->findVar(candidate) ||
                 matrixVars_.count(candidate));
        return candidate;
    }

    /** Create the storage for a local of any type (matrix-aware). */
    void declareLocal(const std::string &name, Type type, SourceLoc loc)
    {
        if (type.isMatrix()) {
            // Scalarised storage: one float var per component.
            std::vector<Var *> comps;
            for (int c = 0; c < type.cols; ++c) {
                for (int r = 0; r < type.rows; ++r) {
                    comps.push_back(module_->newVar(
                        name + "_m" + std::to_string(c) +
                            std::to_string(r),
                        Type::floatTy(), VarKind::Local));
                }
            }
            matrixVars_[name] = {type.cols, type.rows, comps};
            return;
        }
        if (type.isArray() && type.arraySize < 0)
            fail(loc, "array '" + name + "' has unresolved size");
        module_->newVar(name, type, VarKind::Local);
    }

    Var *varFor(const std::string &name, SourceLoc loc)
    {
        Var *v = module_->findVar(name);
        if (!v && name == "gl_FragCoord") {
            // The fragment-coordinate builtin materialises on first use.
            return module_->newVar("gl_FragCoord", Type::vec(4),
                                   VarKind::Input);
        }
        if (!v)
            fail(loc, "lowering: unknown variable '" + name + "'");
        return v;
    }

    Instr *makeConst(Type type, const std::vector<double> &lanes)
    {
        if (lanes.size() == 1 && type.componentCount() > 1)
            return builder_.constSplat(type, lanes[0]);
        return builder_.constVec(type, lanes);
    }

    // ================= scalar<->vector shape handling ===================

    /**
     * Splat a scalar to a vector type via Construct — the deliberate
     * "unnecessary vectorisation" artefact (III-C.b).
     */
    Instr *splat(Instr *scalar, Type vec_type)
    {
        return builder_.construct(vec_type, {scalar});
    }

    /** Promote operands of a componentwise binary op to a common shape. */
    void matchShapes(Instr *&a, Instr *&b)
    {
        if (a->type.rows == b->type.rows)
            return;
        if (a->type.isScalar())
            a = splat(a, b->type);
        else if (b->type.isScalar())
            b = splat(b, a->type);
    }

    // =========================== expressions ==========================

    Value lowerExpr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
            return {builder_.constInt(e.intValue), std::nullopt};
          case ExprKind::FloatLit:
            return {builder_.constFloat(e.floatValue), std::nullopt};
          case ExprKind::BoolLit:
            return {builder_.constBool(e.boolValue), std::nullopt};
          case ExprKind::VarRef:
            return lowerVarRef(e);
          case ExprKind::Unary:
            return lowerUnary(e);
          case ExprKind::Binary:
            return lowerBinary(e);
          case ExprKind::Ternary:
            return lowerTernary(e);
          case ExprKind::Call:
            return lowerCall(e);
          case ExprKind::Construct:
            return lowerConstruct(e);
          case ExprKind::Index:
            return lowerIndex(e);
          case ExprKind::Member:
            return lowerMember(e);
        }
        fail(e.loc, "unhandled expression kind");
    }

    /** Evaluate an expression expecting a non-matrix value. */
    Instr *lowerScalarOrVector(const Expr &e)
    {
        Value v = lowerExpr(e);
        if (v.isMatrix())
            fail(e.loc, "matrix value used where scalar/vector expected");
        return v.v;
    }

    Value lowerVarRef(const Expr &e)
    {
        // Inlined-function parameter substitution.
        auto pit = paramSubst_.find(e.name);
        const std::string &name =
            pit != paramSubst_.end() ? pit->second : e.name;

        if (e.type.isMatrix()) {
            auto mit = matrixVars_.find(name);
            if (mit != matrixVars_.end()) {
                MatValue mv;
                mv.cols = mit->second.cols;
                mv.rows = mit->second.rows;
                for (Var *comp : mit->second.comps)
                    mv.scalars.push_back(builder_.load(comp));
                return {nullptr, mv};
            }
            // Uniform matrix: load columns, scalarise.
            Var *var = varFor(name, e.loc);
            MatValue mv;
            mv.cols = e.type.cols;
            mv.rows = e.type.rows;
            for (int c = 0; c < mv.cols; ++c) {
                Instr *col =
                    builder_.loadElem(var, builder_.constInt(c));
                col->type = Type::vec(mv.rows);
                for (int r = 0; r < mv.rows; ++r)
                    mv.scalars.push_back(builder_.extract(col, r));
            }
            return {nullptr, mv};
        }
        Var *var = varFor(name, e.loc);
        if (var->type.isArray())
            fail(e.loc, "array '" + name +
                            "' can only be used with an index");
        return {builder_.load(var), std::nullopt};
    }

    Value lowerUnary(const Expr &e)
    {
        Value a = lowerExpr(*e.args[0]);
        if (a.isMatrix()) {
            MatValue out = *a.mat;
            for (auto &s : out.scalars)
                s = builder_.unary(Opcode::Neg, s);
            return {nullptr, out};
        }
        Opcode op = e.unaryOp == UnaryOp::Not ? Opcode::Not : Opcode::Neg;
        return {builder_.unary(op, a.v), std::nullopt};
    }

    Value lowerBinary(const Expr &e)
    {
        const BinaryOp op = e.binaryOp;
        Value av = lowerExpr(*e.args[0]);
        Value bv = lowerExpr(*e.args[1]);

        if (av.isMatrix() || bv.isMatrix())
            return lowerMatrixBinary(e, av, bv);

        Instr *a = av.v;
        Instr *b = bv.v;
        switch (op) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
          case BinaryOp::Mul:
          case BinaryOp::Div: {
            matchShapes(a, b);
            Opcode o = op == BinaryOp::Add   ? Opcode::Add
                       : op == BinaryOp::Sub ? Opcode::Sub
                       : op == BinaryOp::Mul ? Opcode::Mul
                                             : Opcode::Div;
            return {builder_.binary(o, a, b), std::nullopt};
          }
          case BinaryOp::Mod:
            return {builder_.binary(Opcode::Mod, a, b), std::nullopt};
          case BinaryOp::Lt:
            return {builder_.binary(Opcode::Lt, a, b), std::nullopt};
          case BinaryOp::Le:
            return {builder_.binary(Opcode::Le, a, b), std::nullopt};
          case BinaryOp::Gt:
            return {builder_.binary(Opcode::Gt, a, b), std::nullopt};
          case BinaryOp::Ge:
            return {builder_.binary(Opcode::Ge, a, b), std::nullopt};
          case BinaryOp::Eq:
            return {builder_.binary(Opcode::Eq, a, b), std::nullopt};
          case BinaryOp::Ne:
            return {builder_.binary(Opcode::Ne, a, b), std::nullopt};
          case BinaryOp::LogicalAnd:
            return {builder_.binary(Opcode::LogicalAnd, a, b),
                    std::nullopt};
          case BinaryOp::LogicalOr:
            return {builder_.binary(Opcode::LogicalOr, a, b),
                    std::nullopt};
        }
        fail(e.loc, "unhandled binary op");
    }

    Value lowerMatrixBinary(const Expr &e, Value &av, Value &bv)
    {
        const BinaryOp op = e.binaryOp;
        // mat * vec
        if (op == BinaryOp::Mul && av.isMatrix() && !bv.isMatrix() &&
            bv.v->type.isVector()) {
            const MatValue &m = *av.mat;
            std::vector<Instr *> vcomp;
            for (int c = 0; c < m.cols; ++c)
                vcomp.push_back(builder_.extract(bv.v, c));
            std::vector<Instr *> rows;
            for (int r = 0; r < m.rows; ++r) {
                Instr *sum = nullptr;
                for (int c = 0; c < m.cols; ++c) {
                    Instr *prod = builder_.binary(Opcode::Mul,
                                                  m.at(c, r), vcomp[c]);
                    sum = sum ? builder_.binary(Opcode::Add, sum, prod)
                              : prod;
                }
                rows.push_back(sum);
            }
            return {builder_.construct(Type::vec(m.rows), rows),
                    std::nullopt};
        }
        // vec * mat
        if (op == BinaryOp::Mul && !av.isMatrix() && bv.isMatrix() &&
            av.v->type.isVector()) {
            const MatValue &m = *bv.mat;
            std::vector<Instr *> vcomp;
            for (int r = 0; r < m.rows; ++r)
                vcomp.push_back(builder_.extract(av.v, r));
            std::vector<Instr *> cols;
            for (int c = 0; c < m.cols; ++c) {
                Instr *sum = nullptr;
                for (int r = 0; r < m.rows; ++r) {
                    Instr *prod = builder_.binary(Opcode::Mul, vcomp[r],
                                                  m.at(c, r));
                    sum = sum ? builder_.binary(Opcode::Add, sum, prod)
                              : prod;
                }
                cols.push_back(sum);
            }
            return {builder_.construct(Type::vec(m.cols), cols),
                    std::nullopt};
        }
        // mat * mat
        if (op == BinaryOp::Mul && av.isMatrix() && bv.isMatrix()) {
            const MatValue &a = *av.mat;
            const MatValue &b = *bv.mat;
            MatValue out;
            out.cols = b.cols;
            out.rows = a.rows;
            out.scalars.resize(
                static_cast<size_t>(out.cols * out.rows));
            for (int c = 0; c < out.cols; ++c) {
                for (int r = 0; r < out.rows; ++r) {
                    Instr *sum = nullptr;
                    for (int k = 0; k < a.cols; ++k) {
                        Instr *prod = builder_.binary(
                            Opcode::Mul, a.at(k, r), b.at(c, k));
                        sum = sum ? builder_.binary(Opcode::Add, sum,
                                                    prod)
                                  : prod;
                    }
                    out.at(c, r) = sum;
                }
            }
            return {nullptr, out};
        }
        // mat +- mat (componentwise)
        if ((op == BinaryOp::Add || op == BinaryOp::Sub) &&
            av.isMatrix() && bv.isMatrix()) {
            MatValue out = *av.mat;
            for (size_t i = 0; i < out.scalars.size(); ++i) {
                out.scalars[i] = builder_.binary(
                    op == BinaryOp::Add ? Opcode::Add : Opcode::Sub,
                    out.scalars[i], bv.mat->scalars[i]);
            }
            return {nullptr, out};
        }
        // mat *or/ scalar (componentwise)
        if (av.isMatrix() && bv.v && bv.v->type.isScalar()) {
            MatValue out = *av.mat;
            Opcode o = op == BinaryOp::Mul   ? Opcode::Mul
                       : op == BinaryOp::Div ? Opcode::Div
                       : op == BinaryOp::Add ? Opcode::Add
                                             : Opcode::Sub;
            for (auto &s : out.scalars)
                s = builder_.binary(o, s, bv.v);
            return {nullptr, out};
        }
        if (bv.isMatrix() && av.v && av.v->type.isScalar()) {
            MatValue out = *bv.mat;
            Opcode o = op == BinaryOp::Mul ? Opcode::Mul : Opcode::Add;
            if (op != BinaryOp::Mul && op != BinaryOp::Add)
                fail(e.loc, "unsupported scalar-matrix operation");
            for (auto &s : out.scalars)
                s = builder_.binary(o, av.v, s);
            return {nullptr, out};
        }
        fail(e.loc, "unsupported matrix operation");
    }

    Value lowerTernary(const Expr &e)
    {
        // Both arms are evaluated and combined with a select — exactly
        // what an if-flattened LunarGlass shader looks like.
        Instr *cond = lowerScalarOrVector(*e.args[0]);
        Value t = lowerExpr(*e.args[1]);
        Value f = lowerExpr(*e.args[2]);
        if (t.isMatrix() || f.isMatrix()) {
            MatValue out = *t.mat;
            for (size_t i = 0; i < out.scalars.size(); ++i) {
                out.scalars[i] = builder_.select(
                    cond, out.scalars[i], f.mat->scalars[i]);
            }
            return {nullptr, out};
        }
        return {builder_.select(cond, t.v, f.v), std::nullopt};
    }

    Value lowerConstruct(const Expr &e)
    {
        const Type ty = e.ctorType;
        if (ty.isArray())
            fail(e.loc, "array constructors are only supported as "
                        "variable initialisers");
        if (ty.isMatrix())
            return lowerMatrixConstruct(e);

        if (ty.isScalar()) {
            Instr *a = lowerScalarOrVector(*e.args[0]);
            Instr *src =
                a->type.isVector() ? builder_.extract(a, 0) : a;
            return {convertScalar(src, ty), std::nullopt};
        }

        // Vector constructor.
        std::vector<Instr *> parts;
        int have = 0;
        for (const auto &arg : e.args) {
            Instr *v = lowerScalarOrVector(*arg);
            // Component base conversion (int literals in vec ctor, ...).
            if (v->type.isScalar() && v->type.base != ty.base)
                v = convertScalar(v, ty.scalarType());
            if (have >= ty.rows)
                break; // extra args (vec3(v4)) are truncated below
            parts.push_back(v);
            have += v->type.componentCount();
        }
        if (parts.size() == 1 && parts[0]->type.isScalar())
            return {builder_.construct(ty, parts), std::nullopt}; // splat
        if (parts.size() == 1 && parts[0]->type.isVector() &&
            parts[0]->type.rows > ty.rows) {
            // vec3(v4): truncating swizzle
            std::vector<int> idx;
            for (int i = 0; i < ty.rows; ++i)
                idx.push_back(i);
            return {builder_.swizzle(parts[0], idx), std::nullopt};
        }
        // Multi-component constructors lower to insertelement chains,
        // exactly as LLVM (and therefore LunarGlass) builds vectors.
        // This is why the Coalesce pass "applies to almost every
        // shader" in the paper (Fig 8a): it rewrites these chains back
        // into single swizzled constructions.
        std::vector<Instr *> scalars;
        for (Instr *p : parts) {
            if (p->type.isScalar()) {
                scalars.push_back(p);
            } else {
                for (int i = 0; i < p->type.rows; ++i)
                    scalars.push_back(builder_.extract(p, i));
            }
        }
        scalars.resize(static_cast<size_t>(ty.rows),
                       scalars.empty() ? nullptr : scalars.back());
        Instr *acc = builder_.constSplat(ty, 0.0);
        for (int lane = 0; lane < ty.rows; ++lane)
            acc = builder_.insert(acc, scalars[static_cast<size_t>(lane)],
                                  lane);
        return {acc, std::nullopt};
    }

    Instr *convertScalar(Instr *v, Type to)
    {
        if (v->type == to)
            return v;
        // Represent conversions as a Construct of one scalar.
        return builder_.construct(to, {v});
    }

    Value lowerMatrixConstruct(const Expr &e)
    {
        const Type ty = e.ctorType;
        MatValue out;
        out.cols = ty.cols;
        out.rows = ty.rows;
        out.scalars.assign(static_cast<size_t>(ty.cols * ty.rows),
                           nullptr);

        if (e.args.size() == 1 && e.args[0]->type.isScalar()) {
            Instr *d = lowerScalarOrVector(*e.args[0]);
            Instr *zero = builder_.constFloat(0.0);
            for (int c = 0; c < ty.cols; ++c) {
                for (int r = 0; r < ty.rows; ++r)
                    out.at(c, r) = c == r ? d : zero;
            }
            return {nullptr, out};
        }
        if (e.args.size() == 1 && e.args[0]->type.isMatrix()) {
            Value src = lowerExpr(*e.args[0]);
            Instr *zero = builder_.constFloat(0.0);
            Instr *one = builder_.constFloat(1.0);
            for (int c = 0; c < ty.cols; ++c) {
                for (int r = 0; r < ty.rows; ++r) {
                    if (c < src.mat->cols && r < src.mat->rows)
                        out.at(c, r) = src.mat->at(c, r);
                    else
                        out.at(c, r) = c == r ? one : zero;
                }
            }
            return {nullptr, out};
        }
        // Flatten all args to scalars, column-major fill.
        std::vector<Instr *> scalars;
        for (const auto &arg : e.args) {
            Instr *v = lowerScalarOrVector(*arg);
            if (v->type.isScalar()) {
                scalars.push_back(v);
            } else {
                for (int i = 0; i < v->type.rows; ++i)
                    scalars.push_back(builder_.extract(v, i));
            }
        }
        if (scalars.size() <
            static_cast<size_t>(ty.cols) * static_cast<size_t>(ty.rows))
            fail(e.loc, "not enough components in matrix constructor");
        for (int c = 0; c < ty.cols; ++c) {
            for (int r = 0; r < ty.rows; ++r)
                out.at(c, r) =
                    scalars[static_cast<size_t>(c * ty.rows + r)];
        }
        return {nullptr, out};
    }

    Value lowerIndex(const Expr &e)
    {
        const Expr &base = *e.args[0];
        const Expr &idx = *e.args[1];

        // Array element access goes straight to the var.
        if (base.kind == ExprKind::VarRef && base.type.isArray()) {
            std::string name = substName(base.name);
            Var *var = varFor(name, base.loc);
            Instr *i = lowerScalarOrVector(idx);
            Instr *elem = builder_.loadElem(var, i);
            return {elem, std::nullopt};
        }
        // Matrix column access.
        if (base.type.isMatrix()) {
            Value m = lowerExpr(base);
            auto ci = constIntOf(idx);
            if (!ci)
                fail(e.loc, "dynamic matrix column index is not "
                            "supported on scalarised matrices");
            int c = static_cast<int>(*ci);
            std::vector<Instr *> comps;
            for (int r = 0; r < m.mat->rows; ++r)
                comps.push_back(m.mat->at(c, r));
            return {builder_.construct(Type::vec(m.mat->rows), comps),
                    std::nullopt};
        }
        // Vector component access.
        Instr *vec = lowerScalarOrVector(base);
        auto ci = constIntOf(idx);
        if (ci)
            return {builder_.extract(vec, static_cast<int>(*ci)),
                    std::nullopt};
        // Dynamic vector index: select chain (v[i]).
        Instr *index = lowerScalarOrVector(idx);
        Instr *result = builder_.extract(vec, 0);
        for (int lane = 1; lane < vec->type.rows; ++lane) {
            Instr *is_lane = builder_.binary(Opcode::Eq, index,
                                             builder_.constInt(lane));
            result = builder_.select(is_lane,
                                     builder_.extract(vec, lane),
                                     result);
        }
        return {result, std::nullopt};
    }

    /** Literal int value of an expression, if it is one. */
    std::optional<long> constIntOf(const Expr &e)
    {
        if (e.kind == ExprKind::IntLit)
            return e.intValue;
        if (e.kind == ExprKind::Unary && e.unaryOp == UnaryOp::Neg) {
            auto inner = constIntOf(*e.args[0]);
            if (inner)
                return -*inner;
        }
        return std::nullopt;
    }

    Value lowerMember(const Expr &e)
    {
        Instr *base = lowerScalarOrVector(*e.args[0]);
        std::vector<int> idx = swizzleIndices(e.name);
        if (idx.size() == 1)
            return {builder_.extract(base, idx[0]), std::nullopt};
        return {builder_.swizzle(base, idx), std::nullopt};
    }

    static std::vector<int> swizzleIndices(const std::string &name)
    {
        std::vector<int> idx;
        for (char c : name) {
            switch (c) {
              case 'x': case 'r': case 's': idx.push_back(0); break;
              case 'y': case 'g': case 't': idx.push_back(1); break;
              case 'z': case 'b': case 'p': idx.push_back(2); break;
              default: idx.push_back(3); break;
            }
        }
        return idx;
    }

    // ========================= calls ===================================

    Value lowerCall(const Expr &e)
    {
        const std::string &name = e.name;
        if (glsl::isBuiltinFunction(name))
            return lowerBuiltin(e);

        const glsl::FunctionDecl *fn = cs_.ast.findFunction(name);
        if (!fn)
            fail(e.loc, "call to unknown function '" + name + "'");
        if (inlineStack_.count(name))
            fail(e.loc, "recursive call to '" + name +
                            "' cannot be inlined");

        // Inline: bind arguments to fresh locals.
        const int site = inlineCounter_++;
        std::map<std::string, std::string> subst_save = paramSubst_;
        std::map<std::string, std::string> new_subst = paramSubst_;
        for (size_t i = 0; i < fn->params.size(); ++i) {
            const auto &p = fn->params[i];
            std::string local_name = uniqueVarName(
                p.name + "_inl" + std::to_string(site));
            Value arg = lowerExpr(*e.args[i]);
            declareLocal(local_name, p.type, e.loc);
            storeValue(local_name, p.type, arg, e.loc);
            new_subst[p.name] = local_name;
        }
        // Return slot.
        std::string ret_name;
        if (!fn->returnType.isVoid()) {
            ret_name = uniqueVarName(name + "_ret" +
                                     std::to_string(site));
            declareLocal(ret_name, fn->returnType, e.loc);
        }

        inlineStack_.insert(name);
        paramSubst_ = new_subst;
        returnSlots_.push_back(ret_name);
        for (const auto &s : fn->body->body)
            lowerStmt(*s);
        returnSlots_.pop_back();
        paramSubst_ = subst_save;
        inlineStack_.erase(name);

        if (fn->returnType.isVoid())
            return {nullptr, std::nullopt};
        if (fn->returnType.isMatrix()) {
            Expr ref;
            ref.kind = ExprKind::VarRef;
            ref.name = ret_name;
            ref.type = fn->returnType;
            return lowerVarRef(ref);
        }
        return {builder_.load(varFor(ret_name, e.loc)), std::nullopt};
    }

    Value lowerBuiltin(const Expr &e)
    {
        const std::string &name = e.name;

        if (name == "texture" || name == "texture2D" ||
            name == "textureLod") {
            Var *sampler = samplerOf(*e.args[0]);
            Instr *coord = lowerScalarOrVector(*e.args[1]);
            if (name == "textureLod") {
                Instr *lod = lowerScalarOrVector(*e.args[2]);
                return {builder_.emit(Opcode::TextureLod, Type::vec(4),
                                      {coord, lod}, sampler),
                        std::nullopt};
            }
            if (e.args.size() == 3) {
                Instr *bias = lowerScalarOrVector(*e.args[2]);
                return {builder_.emit(Opcode::TextureBias, Type::vec(4),
                                      {coord, bias}, sampler),
                        std::nullopt};
            }
            return {builder_.emit(Opcode::Texture, Type::vec(4), {coord},
                                  sampler),
                    std::nullopt};
        }

        std::vector<Instr *> args;
        for (const auto &a : e.args)
            args.push_back(lowerScalarOrVector(*a));

        auto splat_to_first = [&](size_t from) {
            for (size_t i = from; i < args.size(); ++i) {
                if (args[i]->type.isScalar() && args[0]->type.isVector())
                    args[i] = splat(args[i], args[0]->type);
            }
        };

        struct UnaryMap { const char *name; Opcode op; };
        static const UnaryMap unary_map[] = {
            {"sin", Opcode::Sin}, {"cos", Opcode::Cos},
            {"tan", Opcode::Tan}, {"asin", Opcode::Asin},
            {"acos", Opcode::Acos}, {"exp", Opcode::Exp},
            {"log", Opcode::Log}, {"exp2", Opcode::Exp2},
            {"log2", Opcode::Log2}, {"sqrt", Opcode::Sqrt},
            {"inversesqrt", Opcode::InvSqrt}, {"abs", Opcode::Abs},
            {"sign", Opcode::Sign}, {"floor", Opcode::Floor},
            {"ceil", Opcode::Ceil}, {"fract", Opcode::Fract},
            {"radians", Opcode::Radians},
            {"degrees", Opcode::Degrees},
            {"normalize", Opcode::Normalize},
            {"length", Opcode::Length},
        };
        for (const auto &[n, op] : unary_map) {
            if (name == n)
                return {builder_.unary(op, args[0]), std::nullopt};
        }
        if (name == "atan") {
            if (args.size() == 1)
                return {builder_.unary(Opcode::Atan, args[0]),
                        std::nullopt};
            return {builder_.binary(Opcode::Atan2, args[0], args[1]),
                    std::nullopt};
        }

        struct BinaryMap { const char *name; Opcode op; };
        static const BinaryMap binary_map[] = {
            {"pow", Opcode::Pow},   {"min", Opcode::Min},
            {"max", Opcode::Max},   {"mod", Opcode::Mod},
            {"dot", Opcode::Dot},   {"cross", Opcode::Cross},
            {"distance", Opcode::Distance},
            {"reflect", Opcode::Reflect},
        };
        for (const auto &[n, op] : binary_map) {
            if (name == n) {
                splat_to_first(1);
                return {builder_.binary(op, args[0], args[1]),
                        std::nullopt};
            }
        }
        if (name == "step") {
            // step(edge, x): result has x's shape.
            if (args[0]->type.isScalar() && args[1]->type.isVector())
                args[0] = splat(args[0], args[1]->type);
            return {builder_.emit(Opcode::Step, args[1]->type,
                                  {args[0], args[1]}),
                    std::nullopt};
        }
        if (name == "clamp" || name == "mix") {
            splat_to_first(1);
            Opcode op =
                name == "clamp" ? Opcode::Clamp : Opcode::Mix;
            return {builder_.emit(op, args[0]->type,
                                  {args[0], args[1], args[2]}),
                    std::nullopt};
        }
        if (name == "smoothstep") {
            // smoothstep(e0, e1, x): result has x's shape.
            if (args[2]->type.isVector()) {
                for (int i = 0; i < 2; ++i) {
                    if (args[i]->type.isScalar())
                        args[i] = splat(args[i], args[2]->type);
                }
            }
            return {builder_.emit(Opcode::Smoothstep, args[2]->type,
                                  {args[0], args[1], args[2]}),
                    std::nullopt};
        }
        if (name == "refract") {
            return {builder_.emit(Opcode::Refract, args[0]->type,
                                  {args[0], args[1], args[2]}),
                    std::nullopt};
        }
        fail(e.loc, "builtin '" + name + "' not lowered");
    }

    Var *samplerOf(const Expr &e)
    {
        if (e.kind != ExprKind::VarRef)
            fail(e.loc, "sampler argument must be a uniform name");
        Var *v = varFor(substName(e.name), e.loc);
        if (v->kind != VarKind::Sampler)
            fail(e.loc, "'" + e.name + "' is not a sampler");
        return v;
    }

    std::string substName(const std::string &name) const
    {
        auto it = paramSubst_.find(name);
        return it != paramSubst_.end() ? it->second : name;
    }

    // ========================== statements ============================

    void lowerStmt(const Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::Block:
            for (const auto &b : s.body)
                lowerStmt(*b);
            break;
          case StmtKind::Decl:
            lowerDecl(s);
            break;
          case StmtKind::Assign:
            lowerAssign(s);
            break;
          case StmtKind::ExprStmt:
            lowerExpr(*s.rhs); // evaluate for (nonexistent) effects
            break;
          case StmtKind::If:
            lowerIf(s);
            break;
          case StmtKind::For:
            lowerFor(s);
            break;
          case StmtKind::While:
            lowerWhile(s);
            break;
          case StmtKind::Return:
            lowerReturn(s);
            break;
          case StmtKind::Discard:
            builder_.emit(Opcode::Discard, Type::voidTy());
            break;
        }
    }

    void lowerDecl(const Stmt &s)
    {
        const std::string actual = uniqueVarName(s.name);
        if (actual != s.name)
            paramSubst_[s.name] = actual;

        // const with fully constant initialiser: keep as data.
        if (s.rhs && s.isConst) {
            auto cv = tryEvalConst(*s.rhs);
            if (cv && s.declType.isArray()) {
                constValues_[s.name] = *cv;
                Var *var = module_->newVar(actual, s.declType,
                                           VarKind::ConstArray);
                var->constInit = *cv;
                return;
            }
            if (cv && s.isConst)
                constValues_[s.name] = *cv;
        }
        declareLocal(actual, s.declType, s.loc);
        if (!s.rhs)
            return;
        if (s.declType.isArray()) {
            // Element-wise stores from the array constructor.
            if (s.rhs->kind != ExprKind::Construct)
                fail(s.loc, "array initialiser must be a constructor");
            Var *var = varFor(actual, s.loc);
            for (size_t i = 0; i < s.rhs->args.size(); ++i) {
                Instr *v = lowerScalarOrVector(*s.rhs->args[i]);
                builder_.storeElem(var,
                                   builder_.constInt(
                                       static_cast<long>(i)),
                                   v);
            }
            return;
        }
        Value v = lowerExpr(*s.rhs);
        storeValue(actual, s.declType, v, s.loc);
    }

    /** Store a Value (matrix-aware) into a named variable. */
    void storeValue(const std::string &name, Type type, Value &v,
                    SourceLoc loc)
    {
        if (type.isMatrix()) {
            auto mit = matrixVars_.find(name);
            if (mit == matrixVars_.end())
                fail(loc, "matrix variable '" + name + "' not lowered");
            if (!v.isMatrix())
                fail(loc, "expected matrix value for '" + name + "'");
            for (size_t i = 0; i < mit->second.comps.size(); ++i)
                builder_.store(mit->second.comps[i], v.mat->scalars[i]);
            return;
        }
        builder_.store(varFor(name, loc), v.v);
    }

    void storeTo(const std::string &name, Type type, Instr *v)
    {
        Value val{v, std::nullopt};
        storeValue(name, type, val, {});
    }

    void lowerAssign(const Stmt &s)
    {
        // Compute the rvalue, applying compound ops against the loaded
        // current value of the lhs.
        Value rhs = lowerExpr(*s.rhs);
        if (s.assignOp != AssignOp::Assign) {
            Value cur = lowerExpr(*s.lhs);
            Opcode op = s.assignOp == AssignOp::AddAssign   ? Opcode::Add
                        : s.assignOp == AssignOp::SubAssign ? Opcode::Sub
                        : s.assignOp == AssignOp::MulAssign ? Opcode::Mul
                                                            : Opcode::Div;
            if (cur.isMatrix()) {
                MatValue out = *cur.mat;
                if (rhs.isMatrix()) {
                    if (op == Opcode::Mul) {
                        Expr dummy;
                        dummy.binaryOp = BinaryOp::Mul;
                        rhs = lowerMatrixBinary(dummy, cur, rhs);
                    } else {
                        for (size_t i = 0; i < out.scalars.size(); ++i)
                            out.scalars[i] = builder_.binary(
                                op, out.scalars[i],
                                rhs.mat->scalars[i]);
                        rhs = {nullptr, out};
                    }
                } else {
                    for (auto &sc : out.scalars)
                        sc = builder_.binary(op, sc, rhs.v);
                    rhs = {nullptr, out};
                }
            } else {
                Instr *a = cur.v;
                Instr *b = rhs.v;
                matchShapes(a, b);
                rhs = {builder_.binary(op, a, b), std::nullopt};
            }
        }
        storeLValue(*s.lhs, rhs, s.loc);
    }

    void storeLValue(const Expr &lhs, Value &v, SourceLoc loc)
    {
        switch (lhs.kind) {
          case ExprKind::VarRef: {
            std::string name = substName(lhs.name);
            if (lhs.type.isMatrix()) {
                storeValue(name, lhs.type, v, loc);
                return;
            }
            Instr *val = v.v;
            Var *var = varFor(name, loc);
            // Implicit shape fix: storing a scalar into a vector slot
            // cannot happen post-sema; but int->float components can.
            builder_.store(var, val);
            return;
          }
          case ExprKind::Index: {
            const Expr &base = *lhs.args[0];
            if (base.kind == ExprKind::VarRef && base.type.isArray()) {
                Var *var = varFor(substName(base.name), loc);
                Instr *idx = lowerScalarOrVector(*lhs.args[1]);
                builder_.storeElem(var, idx, v.v);
                return;
            }
            if (base.kind == ExprKind::VarRef && base.type.isVector()) {
                auto ci = constIntOf(*lhs.args[1]);
                if (!ci)
                    fail(loc, "dynamic vector component stores are not "
                              "supported");
                Var *var = varFor(substName(base.name), loc);
                Instr *cur = builder_.load(var);
                Instr *ins = builder_.insert(
                    cur, v.v, static_cast<int>(*ci));
                builder_.store(var, ins);
                return;
            }
            if (base.kind == ExprKind::VarRef && base.type.isMatrix()) {
                auto ci = constIntOf(*lhs.args[1]);
                if (!ci)
                    fail(loc, "dynamic matrix column stores are not "
                              "supported");
                auto mit = matrixVars_.find(substName(base.name));
                if (mit == matrixVars_.end())
                    fail(loc, "cannot store column of a non-local "
                              "matrix");
                int c = static_cast<int>(*ci);
                for (int r = 0; r < mit->second.rows; ++r) {
                    Instr *comp = builder_.extract(v.v, r);
                    builder_.store(
                        mit->second
                            .comps[static_cast<size_t>(
                                c * mit->second.rows + r)],
                        comp);
                }
                return;
            }
            fail(loc, "unsupported indexed store");
          }
          case ExprKind::Member: {
            const Expr &base = *lhs.args[0];
            std::vector<int> idx = swizzleIndices(lhs.name);
            if (base.kind == ExprKind::VarRef && base.type.isVector()) {
                Var *var = varFor(substName(base.name), loc);
                Instr *cur = builder_.load(var);
                if (idx.size() == 1) {
                    cur = builder_.insert(cur, v.v, idx[0]);
                } else {
                    for (size_t i = 0; i < idx.size(); ++i) {
                        Instr *lane = builder_.extract(
                            v.v, static_cast<int>(i));
                        cur = builder_.insert(cur, lane, idx[i]);
                    }
                }
                builder_.store(var, cur);
                return;
            }
            if (base.kind == ExprKind::Index) {
                // arr[i].x = v
                const Expr &arr = *base.args[0];
                if (arr.kind == ExprKind::VarRef &&
                    arr.type.isArray()) {
                    Var *var = varFor(substName(arr.name), loc);
                    Instr *index =
                        lowerScalarOrVector(*base.args[1]);
                    Instr *cur = builder_.loadElem(var, index);
                    if (idx.size() == 1) {
                        cur = builder_.insert(cur, v.v, idx[0]);
                    } else {
                        for (size_t i = 0; i < idx.size(); ++i) {
                            Instr *lane = builder_.extract(
                                v.v, static_cast<int>(i));
                            cur = builder_.insert(cur, lane, idx[i]);
                        }
                    }
                    builder_.storeElem(var, index, cur);
                    return;
                }
            }
            fail(loc, "unsupported swizzled store");
          }
          default:
            fail(loc, "expression is not a supported lvalue");
        }
    }

    void lowerIf(const Stmt &s)
    {
        Instr *cond = lowerScalarOrVector(*s.cond);
        ir::IfNode *node = builder_.createIf(cond);
        builder_.pushRegion(&node->thenRegion);
        for (const auto &b : s.body)
            lowerStmt(*b);
        builder_.popRegion();
        builder_.pushRegion(&node->elseRegion);
        for (const auto &b : s.elseBody)
            lowerStmt(*b);
        builder_.popRegion();
    }

    /**
     * Canonical loop recognition: `for (int i = C0; i < C1; i += C2)`
     * (also `<=`, `i++`, `i = i + C2`) with a body that never writes i.
     */
    bool tryCanonicalFor(const Stmt &s)
    {
        if (!s.init || !s.cond || !s.step)
            return false;
        // init: Decl int name = IntLit
        const Stmt *init = s.init.get();
        if (init->kind != StmtKind::Decl ||
            init->declType != Type::intTy() || !init->rhs)
            return false;
        auto init_val = constIntOf(*init->rhs);
        if (!init_val)
            return false;
        const std::string &iv = init->name;
        // cond: iv < IntLit  |  iv <= IntLit
        const Expr &cond = *s.cond;
        if (cond.kind != ExprKind::Binary)
            return false;
        if (cond.binaryOp != BinaryOp::Lt &&
            cond.binaryOp != BinaryOp::Le)
            return false;
        if (cond.args[0]->kind != ExprKind::VarRef ||
            cond.args[0]->name != iv)
            return false;
        auto limit = constIntOf(*cond.args[1]);
        if (!limit)
            return false;
        long lim = *limit + (cond.binaryOp == BinaryOp::Le ? 1 : 0);
        // step: iv += C  |  iv = iv + C
        const Stmt &step = *s.step;
        if (step.kind != StmtKind::Assign ||
            step.lhs->kind != ExprKind::VarRef || step.lhs->name != iv)
            return false;
        long step_val = 0;
        if (step.assignOp == AssignOp::AddAssign) {
            auto c = constIntOf(*step.rhs);
            if (!c)
                return false;
            step_val = *c;
        } else if (step.assignOp == AssignOp::Assign &&
                   step.rhs->kind == ExprKind::Binary &&
                   step.rhs->binaryOp == BinaryOp::Add &&
                   step.rhs->args[0]->kind == ExprKind::VarRef &&
                   step.rhs->args[0]->name == iv) {
            auto c = constIntOf(*step.rhs->args[1]);
            if (!c)
                return false;
            step_val = *c;
        } else {
            return false;
        }
        if (step_val <= 0)
            return false;
        // Body must not write the counter.
        if (writesVar(s.body, iv))
            return false;

        const std::string counter_name = uniqueVarName(iv);
        Var *counter = module_->newVar(counter_name, Type::intTy(),
                                       VarKind::Local);
        ir::LoopNode *loop = builder_.createLoop();
        loop->canonical = true;
        loop->counter = counter;
        loop->init = *init_val;
        loop->limit = lim;
        loop->step = step_val;
        auto subst_save = paramSubst_;
        if (counter_name != iv)
            paramSubst_[iv] = counter_name;
        builder_.pushRegion(&loop->body);
        for (const auto &b : s.body)
            lowerStmt(*b);
        builder_.popRegion();
        paramSubst_ = std::move(subst_save);
        return true;
    }

    static bool writesVar(const std::vector<glsl::StmtPtr> &body,
                          const std::string &name)
    {
        for (const auto &s : body) {
            if (s->kind == StmtKind::Assign &&
                s->lhs->kind == ExprKind::VarRef && s->lhs->name == name)
                return true;
            if (writesVar(s->body, name) || writesVar(s->elseBody, name))
                return true;
            if (s->init && writesVar0(*s->init, name))
                return true;
            if (s->step && writesVar0(*s->step, name))
                return true;
        }
        return false;
    }

    static bool writesVar0(const Stmt &s, const std::string &name)
    {
        std::vector<glsl::StmtPtr> tmp;
        if (s.kind == StmtKind::Assign &&
            s.lhs->kind == ExprKind::VarRef && s.lhs->name == name)
            return true;
        return writesVar(s.body, name) || writesVar(s.elseBody, name);
    }

    void lowerFor(const Stmt &s)
    {
        if (tryCanonicalFor(s))
            return;
        // Generic fallback: init before, cond in condRegion, step at the
        // end of the body.
        if (s.init)
            lowerStmt(*s.init);
        ir::LoopNode *loop = builder_.createLoop();
        loop->canonical = false;
        builder_.pushRegion(&loop->condRegion);
        loop->condValue = s.cond ? lowerScalarOrVector(*s.cond)
                                 : builder_.constBool(true);
        builder_.popRegion();
        builder_.pushRegion(&loop->body);
        for (const auto &b : s.body)
            lowerStmt(*b);
        if (s.step)
            lowerStmt(*s.step);
        builder_.popRegion();
    }

    void lowerWhile(const Stmt &s)
    {
        ir::LoopNode *loop = builder_.createLoop();
        loop->canonical = false;
        builder_.pushRegion(&loop->condRegion);
        loop->condValue = lowerScalarOrVector(*s.cond);
        builder_.popRegion();
        builder_.pushRegion(&loop->body);
        for (const auto &b : s.body)
            lowerStmt(*b);
        builder_.popRegion();
    }

    void lowerReturn(const Stmt &s)
    {
        if (returnSlots_.empty()) {
            // Return from main.
            if (s.rhs)
                fail(s.loc, "main() cannot return a value");
            // A bare tail `return;` is a no-op; anything else would be
            // an early return which the subset forbids. We cannot easily
            // tell the difference here; accept it (corpus uses tail
            // position only).
            return;
        }
        // Copy, not reference: lowering the return expression may inline
        // further calls, growing returnSlots_ and invalidating refs.
        const std::string slot = returnSlots_.back();
        if (!s.rhs) {
            if (!slot.empty())
                fail(s.loc, "missing return value");
            return;
        }
        Value v = lowerExpr(*s.rhs);
        Type t = v.isMatrix() ? Type::mat(v.mat->cols) : v.v->type;
        storeValue(slot, t, v, s.loc);
    }

    // ------------------------------------------------------------------
    const glsl::CompiledShader &cs_;
    std::unique_ptr<ir::Module> module_;
    IrBuilder builder_;

    /** Scalarised storage for local matrix variables. */
    struct MatrixStorage
    {
        int cols = 0;
        int rows = 0;
        std::vector<Var *> comps;
    };
    std::map<std::string, MatrixStorage> matrixVars_;

    /** Known constant values (const globals/locals, const arrays). */
    std::map<std::string, std::vector<double>> constValues_;

    /** Active parameter substitutions while inlining. */
    std::map<std::string, std::string> paramSubst_;
    std::set<std::string> inlineStack_;
    std::vector<std::string> returnSlots_;
    int inlineCounter_ = 0;
};

} // namespace

std::unique_ptr<ir::Module>
lowerShader(const glsl::CompiledShader &cs)
{
    Lowerer lowerer(cs);
    return lowerer.run();
}

} // namespace gsopt::lower
