/**
 * @file
 * Vendor code generation cost model: walks an IR module the way a
 * vendor back end would schedule it and produces the per-fragment cost
 * summary the timing model consumes.
 *
 * Two machine shapes are modelled (see DeviceModel::isa):
 *  - Scalar SIMT: a vecN operation costs N scalar slots; data movement
 *    (swizzles/constructs) costs cheap mov slots.
 *  - Vec4 VLIW (Mali Midgard): an op covering up to 4 float lanes costs
 *    one slot; *consecutive independent scalar ops of the same kind*
 *    can be packed into shared slots with DeviceModel::slpEfficiency —
 *    so code that keeps its vector structure is cheaper than scalarised
 *    or reorder-scrambled code.
 *
 * Register pressure is measured by real backwards liveness over the
 * structured IR (branch arms overlap by max, not sum), weighted in
 * scalar lanes (Scalar) or vec4 registers with poor scalar packing
 * (Vec4). Control flow costs per-branch issue plus a divergence term.
 */
#ifndef GSOPT_GPU_CODEGEN_H
#define GSOPT_GPU_CODEGEN_H

#include "gpu/device.h"
#include "ir/ir.h"

namespace gsopt::gpu {

/** Per-fragment cost breakdown for one compiled shader. */
struct CostSummary
{
    double aluCycles = 0;      ///< arithmetic slots (longest path)
    double movCycles = 0;      ///< data movement slots
    double loadStoreCycles = 0;///< varying/attribute/array/spill traffic
    double branchCycles = 0;   ///< control-flow issue + divergence
    double texIssueCycles = 0; ///< texture instruction issue
    int textureCount = 0;      ///< samples on the longest path
    size_t instructionCount = 0; ///< static instruction estimate
    double maxLiveRegs = 0;    ///< peak live registers (ISA units)

    /** Total issue cycles, excluding texture stall (timing adds it). */
    double issueCycles() const
    {
        return aluCycles + movCycles + loadStoreCycles + branchCycles +
               texIssueCycles;
    }
};

/** Compile (cost out) a module for the given device. */
CostSummary analyzeModule(const ir::Module &module,
                          const DeviceModel &device);

/**
 * The ARM static shader analyser surface (paper Fig 4b): arithmetic,
 * load/store, and texture cycles on the longest execution path, as
 * reported by ARM's offline Mali compiler.
 */
struct MaliStaticCycles
{
    double arithmetic = 0;
    double loadStore = 0;
    double texture = 0;

    double total() const { return arithmetic + loadStore + texture; }
};

/** Run the Mali static analysis (uses the ARM device model). */
MaliStaticCycles maliStaticAnalysis(const ir::Module &module);

} // namespace gsopt::gpu

#endif // GSOPT_GPU_CODEGEN_H
