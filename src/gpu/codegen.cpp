#include "gpu/codegen.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "ir/walk.h"

namespace gsopt::gpu {

using ir::Block;
using ir::dyn_cast;
using ir::IfNode;
using ir::Instr;
using ir::LoopNode;
using ir::Module;
using ir::Opcode;
using ir::Region;
using ir::Var;
using ir::VarKind;

namespace {

/** Assumed iterations for loops whose trip count is unknown. */
constexpr double kGenericLoopTrips = 8.0;

/** Lane count of an instruction's result (1 for void ops). */
int
lanesOf(const Instr &i)
{
    if (ir::isVoidOp(i.op))
        return 1;
    return std::max(1, i.type.componentCount());
}

/** Cost category of one instruction on a scalar SIMT machine. */
void
scalarCost(const Instr &i, const DeviceModel &d, CostSummary &out)
{
    const int lanes = lanesOf(i);
    switch (i.op) {
      case Opcode::Const:
        return; // immediates
      case Opcode::Neg:
      case Opcode::Not:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Abs:
      case Opcode::Sign:
      case Opcode::Floor:
      case Opcode::Ceil:
      case Opcode::Fract:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::Step:
      case Opcode::Radians:
      case Opcode::Degrees:
        out.aluCycles += lanes * d.costAddMul;
        out.instructionCount += static_cast<size_t>(lanes);
        return;
      case Opcode::Lt:
      case Opcode::Le:
      case Opcode::Gt:
      case Opcode::Ge:
      case Opcode::Eq:
      case Opcode::Ne:
      case Opcode::LogicalAnd:
      case Opcode::LogicalOr:
      case Opcode::Select:
        out.aluCycles += lanes * d.costAddMul;
        out.instructionCount += static_cast<size_t>(lanes);
        return;
      case Opcode::Clamp:
        out.aluCycles += 2.0 * lanes * d.costAddMul;
        out.instructionCount += static_cast<size_t>(2 * lanes);
        return;
      case Opcode::Mix:
        out.aluCycles += 2.0 * lanes * d.costAddMul; // sub + mad
        out.instructionCount += static_cast<size_t>(2 * lanes);
        return;
      case Opcode::Smoothstep:
        out.aluCycles += 5.0 * lanes * d.costAddMul;
        out.instructionCount += static_cast<size_t>(5 * lanes);
        return;
      case Opcode::Div:
      case Opcode::Mod:
        out.aluCycles += lanes * d.costDiv;
        out.instructionCount += static_cast<size_t>(lanes);
        return;
      case Opcode::Sqrt:
      case Opcode::InvSqrt:
        out.aluCycles += lanes * d.costSqrt;
        out.instructionCount += static_cast<size_t>(lanes);
        return;
      case Opcode::Sin:
      case Opcode::Cos:
      case Opcode::Tan:
      case Opcode::Asin:
      case Opcode::Acos:
      case Opcode::Atan:
      case Opcode::Atan2:
      case Opcode::Exp:
      case Opcode::Log:
      case Opcode::Exp2:
      case Opcode::Log2:
      case Opcode::Pow:
        out.aluCycles += lanes * d.costTranscendental;
        out.instructionCount += static_cast<size_t>(lanes);
        return;
      case Opcode::Dot: {
        const int n = std::max(1, i.operands[0]->type.rows);
        out.aluCycles += (2.0 * n - 1.0) * d.costAddMul;
        out.instructionCount += static_cast<size_t>(n);
        return;
      }
      case Opcode::Distance: {
        const int n = std::max(1, i.operands[0]->type.rows);
        out.aluCycles += (3.0 * n - 1.0) * d.costAddMul + d.costSqrt;
        out.instructionCount += static_cast<size_t>(n + 1);
        return;
      }
      case Opcode::Length: {
        const int n = std::max(1, i.operands[0]->type.rows);
        out.aluCycles += (2.0 * n - 1.0) * d.costAddMul + d.costSqrt;
        out.instructionCount += static_cast<size_t>(n + 1);
        return;
      }
      case Opcode::Normalize: {
        const int n = std::max(1, i.operands[0]->type.rows);
        out.aluCycles +=
            (2.0 * n - 1.0 + n) * d.costAddMul + d.costSqrt;
        out.instructionCount += static_cast<size_t>(2 * n);
        return;
      }
      case Opcode::Cross:
        out.aluCycles += 9.0 * d.costAddMul;
        out.instructionCount += 9;
        return;
      case Opcode::Reflect: {
        const int n = std::max(1, i.type.rows);
        out.aluCycles += (4.0 * n) * d.costAddMul;
        out.instructionCount += static_cast<size_t>(4 * n);
        return;
      }
      case Opcode::Refract: {
        const int n = std::max(1, i.type.rows);
        out.aluCycles += (6.0 * n) * d.costAddMul + d.costSqrt;
        out.instructionCount += static_cast<size_t>(6 * n);
        return;
      }
      case Opcode::Construct:
      case Opcode::Extract:
      case Opcode::Insert:
      case Opcode::Swizzle:
        out.movCycles += lanes * d.costMov;
        out.instructionCount += 1;
        return;
      case Opcode::Texture:
      case Opcode::TextureBias:
      case Opcode::TextureLod:
        out.texIssueCycles += d.texIssueCost;
        out.textureCount += 1;
        out.instructionCount += 1;
        return;
      case Opcode::LoadVar:
        if (i.var->kind == VarKind::Input) {
            out.loadStoreCycles += 0.5; // interpolated varying read
            out.instructionCount += 1;
        } else if (i.var->kind == VarKind::Uniform) {
            out.loadStoreCycles += 0.25; // constant-buffer read
        }
        return; // locals live in registers
      case Opcode::StoreVar:
        if (i.var->kind == VarKind::Output) {
            out.loadStoreCycles += 0.5;
            out.instructionCount += 1;
        }
        return;
      case Opcode::LoadElem:
      case Opcode::StoreElem:
        // Indexed access: constant-buffer or scratch traffic.
        out.loadStoreCycles += 1.2;
        out.instructionCount += 1;
        return;
      case Opcode::Discard:
        out.aluCycles += 1.0;
        out.instructionCount += 1;
        return;
    }
}

/**
 * Vec4 machine: block-level costing with SLP-style packing. Ops
 * covering <=4 float lanes take one slot; runs of consecutive
 * *independent, same-opcode* scalar ops pack up to 4 per slot at
 * slpEfficiency. Swizzles are free.
 */
void
vec4BlockCost(const Block &b, const DeviceModel &d, CostSummary &out)
{
    Opcode run_op = Opcode::Const;
    int run_len = 0;
    std::unordered_set<const Instr *> run_members;

    auto flush_run = [&]() {
        if (run_len == 0)
            return;
        // Packed cost: ideal would be ceil(len/4); achieved depends on
        // the packer efficiency (regular code packs, scrambled doesn't).
        const double ideal = std::ceil(run_len / 4.0);
        const double unpacked = run_len;
        out.aluCycles +=
            d.slpEfficiency * ideal + (1.0 - d.slpEfficiency) * unpacked;
        run_len = 0;
        run_members.clear();
    };

    auto costable_scalar = [](const Instr &i) {
        if (!i.type.isScalar() || !i.type.isFloat())
            return false;
        switch (i.op) {
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::Neg:
          case Opcode::Min:
          case Opcode::Max:
          case Opcode::Abs:
          case Opcode::Floor:
          case Opcode::Fract:
            return true;
          default:
            return false;
        }
    };

    for (const auto &ip : b.instrs) {
        const Instr &i = *ip;
        if (costable_scalar(i)) {
            bool depends = false;
            for (const Instr *op : i.operands)
                depends |= run_members.count(op) > 0;
            if (run_len > 0 && (i.op != run_op || depends))
                flush_run();
            run_op = i.op;
            ++run_len;
            run_members.insert(&i);
            out.instructionCount += 1;
            continue;
        }
        flush_run();

        const int lanes = lanesOf(i);
        const double bundles = std::ceil(lanes / 4.0);
        switch (i.op) {
          case Opcode::Const:
            break;
          case Opcode::Neg:
          case Opcode::Not:
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::Abs:
          case Opcode::Sign:
          case Opcode::Floor:
          case Opcode::Ceil:
          case Opcode::Fract:
          case Opcode::Min:
          case Opcode::Max:
          case Opcode::Step:
          case Opcode::Radians:
          case Opcode::Degrees:
          case Opcode::Lt:
          case Opcode::Le:
          case Opcode::Gt:
          case Opcode::Ge:
          case Opcode::Eq:
          case Opcode::Ne:
          case Opcode::LogicalAnd:
          case Opcode::LogicalOr:
          case Opcode::Select:
            out.aluCycles += bundles * d.costAddMul;
            out.instructionCount += 1;
            break;
          case Opcode::Clamp:
          case Opcode::Mix:
            out.aluCycles += 2.0 * bundles * d.costAddMul;
            out.instructionCount += 2;
            break;
          case Opcode::Smoothstep:
            out.aluCycles += 4.0 * bundles * d.costAddMul;
            out.instructionCount += 4;
            break;
          case Opcode::Div:
          case Opcode::Mod:
            out.aluCycles += bundles * d.costDiv;
            out.instructionCount += 1;
            break;
          case Opcode::Sqrt:
          case Opcode::InvSqrt:
            out.aluCycles += bundles * d.costSqrt;
            out.instructionCount += 1;
            break;
          case Opcode::Sin:
          case Opcode::Cos:
          case Opcode::Tan:
          case Opcode::Asin:
          case Opcode::Acos:
          case Opcode::Atan:
          case Opcode::Atan2:
          case Opcode::Exp:
          case Opcode::Log:
          case Opcode::Exp2:
          case Opcode::Log2:
          case Opcode::Pow:
            // Transcendentals are per-lane on the special-function pipe.
            out.aluCycles += lanes * d.costTranscendental / 2.0;
            out.instructionCount += 1;
            break;
          case Opcode::Dot:
          case Opcode::Length:
          case Opcode::Normalize:
            out.aluCycles +=
                (i.op == Opcode::Dot ? 1.0
                 : i.op == Opcode::Length
                     ? 1.0 + d.costSqrt / 2.0
                     : 2.0 + d.costSqrt / 2.0) *
                d.costAddMul;
            out.instructionCount += 1;
            break;
          case Opcode::Distance:
            out.aluCycles += 2.0 + d.costSqrt / 2.0;
            out.instructionCount += 2;
            break;
          case Opcode::Cross:
            out.aluCycles += 3.0;
            out.instructionCount += 3;
            break;
          case Opcode::Reflect:
          case Opcode::Refract:
            out.aluCycles += 4.0;
            out.instructionCount += 4;
            break;
          case Opcode::Construct:
            // Gathering scalars into a vector costs a mov bundle; pure
            // splats are cheap.
            out.movCycles +=
                i.operands.size() == 1 ? 0.25 : 0.5 * bundles;
            out.instructionCount += 1;
            break;
          case Opcode::Extract:
          case Opcode::Swizzle:
            out.movCycles += lanes * d.costMov; // free when costMov==0
            break;
          case Opcode::Insert:
            out.movCycles += 0.25;
            out.instructionCount += 1;
            break;
          case Opcode::Texture:
          case Opcode::TextureBias:
          case Opcode::TextureLod:
            out.texIssueCycles += d.texIssueCost;
            out.textureCount += 1;
            out.instructionCount += 1;
            break;
          case Opcode::LoadVar:
            if (i.var->kind == VarKind::Input) {
                out.loadStoreCycles += 0.5;
                out.instructionCount += 1;
            } else if (i.var->kind == VarKind::Uniform) {
                out.loadStoreCycles += 0.25;
            }
            break;
          case Opcode::StoreVar:
            if (i.var->kind == VarKind::Output) {
                out.loadStoreCycles += 0.5;
                out.instructionCount += 1;
            }
            break;
          case Opcode::LoadElem:
          case Opcode::StoreElem:
            out.loadStoreCycles += 1.2;
            out.instructionCount += 1;
            break;
          case Opcode::Discard:
            out.aluCycles += 1.0;
            out.instructionCount += 1;
            break;
        }
    }
    flush_run();
}

/** Longest-path cost accumulation over a region. */
void
costRegion(const Region &region, const DeviceModel &d, CostSummary &out)
{
    for (const auto &node : region.nodes) {
        if (const auto *b = dyn_cast<Block>(node.get())) {
            if (d.isa == IsaKind::Vec4) {
                vec4BlockCost(*b, d, out);
            } else {
                for (const auto &i : b->instrs)
                    scalarCost(*i, d, out);
            }
        } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
            CostSummary then_c, else_c;
            costRegion(f->thenRegion, d, then_c);
            costRegion(f->elseRegion, d, else_c);
            const CostSummary &longer =
                then_c.issueCycles() >= else_c.issueCycles() ? then_c
                                                             : else_c;
            const CostSummary &shorter =
                then_c.issueCycles() >= else_c.issueCycles() ? else_c
                                                             : then_c;
            out.aluCycles += longer.aluCycles +
                             d.divergencePenalty * shorter.aluCycles;
            out.movCycles += longer.movCycles +
                             d.divergencePenalty * shorter.movCycles;
            out.loadStoreCycles +=
                longer.loadStoreCycles +
                d.divergencePenalty * shorter.loadStoreCycles;
            out.texIssueCycles +=
                longer.texIssueCycles +
                d.divergencePenalty * shorter.texIssueCycles;
            out.textureCount += longer.textureCount;
            out.branchCycles += longer.branchCycles +
                                else_c.branchCycles * 0 + d.costBranch;
            out.instructionCount +=
                longer.instructionCount + shorter.instructionCount + 1;
        } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
            CostSummary body_c, cond_c;
            costRegion(l->body, d, body_c);
            costRegion(l->condRegion, d, cond_c);
            const double trips = l->canonical
                                     ? static_cast<double>(l->tripCount())
                                     : kGenericLoopTrips;
            auto scale = [&](const CostSummary &c, double k) {
                out.aluCycles += c.aluCycles * k;
                out.movCycles += c.movCycles * k;
                out.loadStoreCycles += c.loadStoreCycles * k;
                out.texIssueCycles += c.texIssueCycles * k;
                out.branchCycles += c.branchCycles * k;
                out.textureCount += static_cast<int>(
                    std::lround(c.textureCount * k));
            };
            scale(body_c, trips);
            scale(cond_c, l->canonical ? trips : trips + 1.0);
            // Loop overhead: compare + branch per iteration.
            out.branchCycles += (d.costBranch + 0.5) * trips;
            out.instructionCount += body_c.instructionCount +
                                    cond_c.instructionCount + 2;
        }
    }
}

// ------------------------------------------------------------------
// Backwards liveness for register pressure.
// ------------------------------------------------------------------
struct LivenessCtx
{
    const DeviceModel &device;
    double maxLive = 0;

    double weightOf(const ir::Type &t) const
    {
        const int lanes = std::max(1, t.componentCount());
        if (device.isa == IsaKind::Vec4) {
            // vec4 registers. Scalars pack imperfectly: the Midgard
            // allocator gets roughly two scalars per register in
            // practice, not four.
            if (lanes == 1)
                return 0.5;
            return std::ceil(lanes / 4.0);
        }
        return lanes;
    }

    double weight(const std::unordered_map<const void *, double> &live)
    {
        double sum = 0;
        for (const auto &[k, w] : live)
            sum += w;
        return sum;
    }
};

using LiveSet = std::unordered_map<const void *, double>;

void
scanRegionLive(const Region &region, LivenessCtx &ctx, LiveSet &live);

void
scanBlockLive(const Block &b, LivenessCtx &ctx, LiveSet &live)
{
    for (auto it = b.instrs.rbegin(); it != b.instrs.rend(); ++it) {
        const Instr &i = **it;
        // The definition dies above this point.
        live.erase(&i);
        // Whole-var stores kill the var's range (walking backwards).
        if (i.op == Opcode::StoreVar &&
            i.var->kind == VarKind::Local)
            live.erase(i.var);
        // Operands become live.
        for (const Instr *op : i.operands) {
            if (op->op != Opcode::Const)
                live[op] = ctx.weightOf(op->type);
        }
        // Loads keep local vars alive.
        if (i.op == Opcode::LoadVar && i.var->kind == VarKind::Local)
            live[i.var] = ctx.weightOf(i.var->type);
        if ((i.op == Opcode::LoadElem || i.op == Opcode::StoreElem) &&
            i.var->kind == VarKind::Local) {
            live[i.var] = ctx.weightOf(i.var->type.elementType()) *
                          std::max(1, i.var->type.arraySize);
        }
        ctx.maxLive = std::max(ctx.maxLive, ctx.weight(live));
    }
}

void
scanRegionLive(const Region &region, LivenessCtx &ctx, LiveSet &live)
{
    for (auto it = region.nodes.rbegin(); it != region.nodes.rend();
         ++it) {
        const ir::Node *node = it->get();
        if (const auto *b = dyn_cast<Block>(node)) {
            scanBlockLive(*b, ctx, live);
        } else if (const auto *f = dyn_cast<IfNode>(node)) {
            LiveSet then_live = live;
            LiveSet else_live = live;
            scanRegionLive(f->thenRegion, ctx, then_live);
            scanRegionLive(f->elseRegion, ctx, else_live);
            // Arms are alternatives: union of live-ins.
            live = std::move(then_live);
            for (const auto &[k, w] : else_live)
                live[k] = w;
            if (f->cond && f->cond->op != Opcode::Const)
                live[f->cond] = ctx.weightOf(f->cond->type);
        } else if (const auto *l = dyn_cast<LoopNode>(node)) {
            // Everything live after the loop stays live through it;
            // body-internal values add on top.
            LiveSet body_live = live;
            scanRegionLive(l->body, ctx, body_live);
            scanRegionLive(l->condRegion, ctx, body_live);
            live = std::move(body_live);
            if (l->counter)
                live[l->counter] = 1.0;
        }
    }
}

} // namespace

CostSummary
analyzeModule(const Module &module, const DeviceModel &device)
{
    CostSummary out;
    costRegion(module.body, device, out);

    LivenessCtx ctx{device};
    LiveSet live;
    scanRegionLive(module.body, ctx, live);
    out.maxLiveRegs = ctx.maxLive;
    return out;
}

MaliStaticCycles
maliStaticAnalysis(const Module &module)
{
    CostSummary c = analyzeModule(module, deviceModel(DeviceId::Arm));
    MaliStaticCycles out;
    out.arithmetic = c.aluCycles + c.movCycles + c.branchCycles;
    out.loadStore = c.loadStoreCycles;
    out.texture = c.texIssueCycles;
    return out;
}

} // namespace gsopt::gpu
