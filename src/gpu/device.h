/**
 * @file
 * The five GPU device models of the paper's testbed (Section IV-C).
 *
 * Each model captures the four mechanisms that drive the paper's
 * cross-platform variance:
 *
 *  1. *What the vendor JIT already optimises* — expressed as a set of
 *     our own pass flags that the driver applies to whatever source it
 *     receives. If the JIT unrolls, offline unrolling becomes a near
 *     no-op on that platform; if it cannot reassociate floats (a
 *     conformant driver may not), the offline unsafe passes keep their
 *     value.
 *  2. *ISA shape* — scalar SIMT machines (NVIDIA Pascal, AMD GCN4,
 *     Intel Gen9, Adreno 5xx) pay one slot per scalar lane; the vec4
 *     VLIW machine (Mali Midgard) pays per 4-wide bundle and relies on
 *     packing scalar work into bundles, which LunarGlass-style
 *     scalarisation disrupts.
 *  3. *Register pressure / occupancy* — more live values means fewer
 *     threads in flight, which exposes texture latency; past the
 *     spill threshold, spill traffic is added directly. Mali's small
 *     register file gives it the paper's spill cliffs (hoist: -35%).
 *  4. *Instruction-cache pressure* — Adreno's small i-cache penalises
 *     the code growth of aggressive unrolling (the -8% unroll case).
 *
 * All constants live here so that the calibration is visible and
 * auditable in one place. Absolute times are not meant to match the
 * paper's hardware; the *shape* of the optimization response is.
 */
#ifndef GSOPT_GPU_DEVICE_H
#define GSOPT_GPU_DEVICE_H

#include <string>
#include <vector>

#include "passes/passes.h"

namespace gsopt::gpu {

/** ISA execution style. */
enum class IsaKind {
    Scalar, ///< scalar SIMT: vecN op costs N slots
    Vec4,   ///< vec4 VLIW: up to 4 lanes per slot, packing-sensitive
};

/** Stable identifiers for the paper's five platforms. */
enum class DeviceId { Intel, Amd, Nvidia, Arm, Qualcomm };

/** All five, in the paper's table order. */
std::vector<DeviceId> allDevices();

/** Per-device cost and capacity parameters. */
struct DeviceModel
{
    DeviceId id{};
    std::string name;     ///< marketing name (e.g. "GeForce GTX 1080")
    std::string vendor;   ///< vendor string used in reports
    IsaKind isa = IsaKind::Scalar;

    // -- throughput -----------------------------------------------------
    double clockGhz = 1.0;    ///< shader clock
    int shaderUnits = 256;    ///< scalar lanes (or vec4 units for Vec4)

    // -- fixed pipeline cost per fragment --------------------------------
    /** Varying interpolation setup, depth/ROP export, scheduling: work
     * every fragment pays regardless of the shader body. */
    double baseOverheadCycles = 16.0;

    // -- instruction costs (cycles per slot) ----------------------------
    double costAddMul = 1.0;
    double costDiv = 4.0;     ///< native divide / reciprocal chain
    double costSqrt = 4.0;
    double costTranscendental = 8.0; ///< sin/cos/exp/log/pow
    double costMov = 0.25;    ///< swizzle/extract/construct shuffling
    double costBranch = 2.0;  ///< per structured branch node
    double divergencePenalty = 0.5; ///< extra fraction of the cheaper arm

    // -- texturing --------------------------------------------------------
    double texIssueCost = 1.0;   ///< pipeline issue cost per sample
    double texLatency = 100.0;   ///< raw latency to hide (cycles)
    double wavesToHideTex = 6.0; ///< waves in flight for full hiding

    // -- registers / occupancy -------------------------------------------
    /** Register budget per thread before occupancy degrades (scalar
     * registers, or vec4 registers for Vec4 machines). */
    double regBudget = 64.0;
    /** Hard spill threshold: live values beyond this spill to memory. */
    double spillThreshold = 128.0;
    double spillCost = 8.0;     ///< cycles per spilled value access
    double maxWaves = 16.0;     ///< scheduler limit on waves in flight

    // -- instruction cache --------------------------------------------------
    double icacheInstrs = 1e9;  ///< instructions fitting the i-cache
    double icachePenalty = 0.0; ///< extra cycles per instr beyond that

    // -- vec4 packing (Vec4 machines only) -------------------------------
    /** Fraction of scalar ops the driver manages to pack into bundles
     * when the code still has regular structure (see gpu::codegen). */
    double slpEfficiency = 0.75;

    // -- measurement ------------------------------------------------------
    double noiseSigma = 0.01;     ///< relative gaussian noise per sample
    double timerQuantumNs = 1000; ///< GL_TIME_ELAPSED quantisation
    int trianglesPerFrame = 1000; ///< paper: 1000 desktop, 100 mobile

    /** What the vendor's in-driver compiler does on its own. */
    passes::OptFlags jitFlags;

    /**
     * The JIT's transformation heuristics. Real drivers unroll and
     * if-convert selectively (bounded trip counts, bounded arm sizes);
     * offline tools transform unconditionally. This asymmetry is what
     * lets pre-transformed input end up *worse* than the driver's own
     * choice — the paper's "default LunarGlass flags give average
     * slow-downs" effect.
     */
    long jitUnrollTrips = 0;       ///< max trip count the JIT unrolls
    size_t jitUnrollInstrs = 0;    ///< max unrolled size the JIT allows
    size_t jitHoistArmInstrs = 0;  ///< max if-arm size the JIT flattens

    /**
     * List-scheduler reach: def-use spans longer than this get sunk to
     * the use site before register accounting. Out-of-order desktop
     * compilers reorder aggressively (small window value = more
     * sinking); the in-order VLIW Mali compiler reorders much less, so
     * pressure introduced by offline reassociation tends to stick
     * there.
     */
    size_t schedulerWindow = 48;

    bool isMobile() const
    {
        return id == DeviceId::Arm || id == DeviceId::Qualcomm;
    }
};

/** The configured model for one of the paper's devices. */
const DeviceModel &deviceModel(DeviceId id);

/** Short vendor tag ("NVIDIA", "ARM", ...) used in tables. */
const char *deviceVendor(DeviceId id);

} // namespace gsopt::gpu

#endif // GSOPT_GPU_DEVICE_H
