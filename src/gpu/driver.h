/**
 * @file
 * The vendor driver compiler model ("the JIT"). A real GL driver
 * receives GLSL *text* — including all the artefacts an offline
 * source-to-source optimizer baked into it — compiles it with whatever
 * optimizations that vendor ships, allocates registers, and produces a
 * machine binary. This module reproduces that contract:
 *
 *   text -> front end -> vendor pass set (DeviceModel::jitFlags)
 *        -> code generation cost model -> occupancy/spill accounting
 *        -> per-fragment cycle estimate
 *
 * Because the vendor pass set is built from the same pass library as
 * the offline tool, "the JIT already does X" falls out naturally: if
 * the device unrolls on its own, offline unrolling converges to the
 * same IR and measures as a no-op on that device.
 */
#ifndef GSOPT_GPU_DRIVER_H
#define GSOPT_GPU_DRIVER_H

#include <string>

#include "gpu/codegen.h"
#include "gpu/device.h"

namespace gsopt::gpu {

/** The driver's compiled artefact: everything timing needs. */
struct ShaderBinary
{
    CostSummary cost;
    double spilledRegs = 0;     ///< registers beyond the spill threshold
    double occupancyWaves = 0;  ///< waves in flight given live registers
    double texStallCycles = 0;  ///< unhidden texture latency per fragment
    double icacheStallCycles = 0; ///< i-cache pressure penalty
    double cyclesPerFragment = 0; ///< grand total the timer model uses
};

/**
 * Compile GLSL source exactly as the vendor driver would. Throws
 * gsopt::CompileError on invalid source.
 *
 * Compilations are memoised in a process-wide content-addressed cache
 * keyed by (source-text hash, device-configuration hash): across a
 * whole measurement campaign each unique variant text is compiled once
 * per device instead of once per measurement — the real-driver analogue
 * of the GL shader binary cache. The key covers every compilation- and
 * cost-relevant device parameter, so ablation studies that tweak a
 * model (e.g. disabling its JIT passes) never alias with the stock
 * model. Thread-safe.
 */
ShaderBinary driverCompile(const std::string &glslSource,
                           const DeviceModel &device);

/** The raw uncached compile path (the cache's fill function). Exposed
 * for benchmarks that need to price a cold compile. */
ShaderBinary driverCompileUncached(const std::string &glslSource,
                                   const DeviceModel &device);

/** Cumulative cache statistics since process start (or last reset). */
struct DriverCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;
    uint64_t compileNs = 0;  ///< time spent in uncached fills
    uint64_t evictions = 0;  ///< entries LRU-evicted over the cap
    uint64_t capacity = 0;   ///< current cap (0 = unbounded)
};

DriverCacheStats driverCacheStats();

/**
 * Bound the binary cache to at most @p cap entries, evicting least-
 * recently-used entries beyond it (0 restores the default unbounded
 * behaviour). A campaign never needs a cap — it tops out at a few
 * hundred unique texts x 5 devices — but a long-lived tuner daemon
 * serving open-ended traffic does; this is its pressure valve (ROADMAP
 * daemon item). Also settable at start-up via GSOPT_DRIVER_CACHE_CAP.
 * Shrinking below the current entry count evicts immediately.
 * Thread-safe.
 */
void setDriverCacheCap(size_t cap);

/** Drop all cached binaries and zero the stats (benchmarks only).
 * The configured capacity is config, not a stat: it survives. */
void clearDriverCache();

/** Timing: nanoseconds to shade one full-screen draw (noise-free). */
double drawTimeNs(const ShaderBinary &binary, const DeviceModel &device,
                  long fragments);

} // namespace gsopt::gpu

#endif // GSOPT_GPU_DRIVER_H
