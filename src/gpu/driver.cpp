#include "gpu/driver.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <list>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "emit/offline.h"
#include "passes/passes.h"
#include "support/fault.h"
#include "support/rng.h"
#include "support/time.h"

namespace gsopt::gpu {

namespace {

/** Hash every device parameter that can influence the compiled binary
 * or its cost accounting. Over-keying is harmless (a distinct entry);
 * under-keying would let tweaked ablation models alias stock ones. */
uint64_t
deviceConfigHash(const DeviceModel &d)
{
    auto mixDouble = [](uint64_t h, double v) {
        uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        return hashCombine(h, bits);
    };
    uint64_t h = fnv1a(d.name);
    h = hashCombine(h, static_cast<uint64_t>(d.id));
    h = hashCombine(h, static_cast<uint64_t>(d.isa));
    for (double v :
         {d.clockGhz, static_cast<double>(d.shaderUnits),
          d.baseOverheadCycles, d.costAddMul, d.costDiv, d.costSqrt,
          d.costTranscendental, d.costMov, d.costBranch,
          d.divergencePenalty, d.texIssueCost, d.texLatency,
          d.wavesToHideTex, d.regBudget, d.spillThreshold, d.spillCost,
          d.maxWaves, d.icacheInstrs, d.icachePenalty, d.slpEfficiency})
        h = mixDouble(h, v);
    h = hashCombine(h, d.jitFlags.mask());
    h = hashCombine(h, static_cast<uint64_t>(d.jitUnrollTrips));
    h = hashCombine(h, d.jitUnrollInstrs);
    h = hashCombine(h, d.jitHoistArmInstrs);
    h = hashCombine(h, d.schedulerWindow);
    return h;
}

/** One cached binary plus its position in the LRU order list. */
struct CacheEntry
{
    ShaderBinary bin;
    std::list<uint64_t>::iterator lru;
};

std::shared_mutex cacheMutex;
std::unordered_map<uint64_t, CacheEntry> cache;
/** Cache keys, front = most recently used. Guarded by cacheMutex. */
std::list<uint64_t> lruOrder;
std::atomic<uint64_t> cacheHits{0};
std::atomic<uint64_t> cacheMisses{0};
std::atomic<uint64_t> cacheCompileNs{0};
std::atomic<uint64_t> cacheEvictions{0};

/** Max entries, 0 = unbounded (the historical default). Seeded from
 * GSOPT_DRIVER_CACHE_CAP once at start-up; setDriverCacheCap after. */
std::atomic<size_t> cacheCap{[] {
    const char *env = std::getenv("GSOPT_DRIVER_CACHE_CAP");
    return env ? static_cast<size_t>(std::strtoull(env, nullptr, 10))
               : size_t{0};
}()};

/** Evict LRU entries beyond the cap. Caller holds cacheMutex unique. */
void
evictOverCapLocked()
{
    const size_t cap = cacheCap.load(std::memory_order_relaxed);
    if (cap == 0)
        return;
    while (cache.size() > cap) {
        const uint64_t victim = lruOrder.back();
        lruOrder.pop_back();
        cache.erase(victim);
        cacheEvictions.fetch_add(1, std::memory_order_relaxed);
    }
}

/** Front-end sharing across devices: the driver's parse+lower of a
 * given text is device-independent, so a campaign compiling one
 * variant on five devices parses it once and clones the IR per device
 * for the vendor pass set. Entries are immutable once inserted (vendor
 * passes always run on a clone). Unbounded by default — a full
 * campaign tops out at a few hundred unique texts x 5 devices. For
 * longer-lived processes the binary cache above is LRU-boundable
 * (setDriverCacheCap / GSOPT_DRIVER_CACHE_CAP) and clearDriverCache()
 * drops both. */
std::mutex irCacheMutex;
std::unordered_map<uint64_t, std::unique_ptr<ir::Module>> irCache;

std::unique_ptr<ir::Module>
frontEndIr(const std::string &glslSource)
{
    const uint64_t key = fnv1a(glslSource);
    {
        std::lock_guard lock(irCacheMutex);
        auto it = irCache.find(key);
        if (it != irCache.end())
            return it->second->clone();
    }
    auto module = emit::compileToIr(glslSource);
    auto result = module->clone();
    {
        std::lock_guard lock(irCacheMutex);
        irCache.try_emplace(key, std::move(module));
    }
    return result;
}

/** Vendor pass set + cost model over an already-parsed module. */
ShaderBinary compileIr(ir::Module &module, const DeviceModel &device);

} // namespace

ShaderBinary
driverCompile(const std::string &glslSource, const DeviceModel &device)
{
    const uint64_t key =
        hashCombine(fnv1a(glslSource), deviceConfigHash(device));
    if (cacheCap.load(std::memory_order_relaxed) == 0) {
        // Unbounded (default): lock-shared read path, no recency
        // maintenance needed — nothing is ever evicted.
        std::shared_lock lock(cacheMutex);
        auto it = cache.find(key);
        if (it != cache.end()) {
            cacheHits.fetch_add(1, std::memory_order_relaxed);
            return it->second.bin;
        }
    } else {
        // Capped: a hit must refresh recency, which mutates the LRU
        // list — the hit path pays for the exclusive lock only when a
        // cap is actually configured.
        std::unique_lock lock(cacheMutex);
        auto it = cache.find(key);
        if (it != cache.end()) {
            cacheHits.fetch_add(1, std::memory_order_relaxed);
            lruOrder.splice(lruOrder.begin(), lruOrder,
                            it->second.lru);
            return it->second.bin;
        }
    }
    // Miss: front end via the cross-device IR cache (parse each unique
    // text once, vendor passes on a clone), then the vendor pipeline.
    // Flaky real drivers fail here, on actual compiles — never on a
    // binary-cache hit — so the fault site guards only the fill path.
    fault::point("driver.compile", device.name);
    const uint64_t t0 = nowNs();
    auto module = frontEndIr(glslSource);
    ShaderBinary bin = compileIr(*module, device);
    cacheCompileNs.fetch_add(nowNs() - t0, std::memory_order_relaxed);
    {
        std::unique_lock lock(cacheMutex);
        cacheMisses.fetch_add(1, std::memory_order_relaxed);
        auto [it, inserted] = cache.try_emplace(key);
        if (inserted) {
            lruOrder.push_front(key);
            it->second.bin = bin;
            it->second.lru = lruOrder.begin();
            evictOverCapLocked();
        } else {
            // Another thread filled this key while we compiled; its
            // entry is identical (deterministic compile) — just touch.
            lruOrder.splice(lruOrder.begin(), lruOrder,
                            it->second.lru);
        }
    }
    return bin;
}

DriverCacheStats
driverCacheStats()
{
    std::shared_lock lock(cacheMutex);
    return {cacheHits,      cacheMisses,
            cache.size(),   cacheCompileNs,
            cacheEvictions, cacheCap.load(std::memory_order_relaxed)};
}

void
setDriverCacheCap(size_t cap)
{
    std::unique_lock lock(cacheMutex);
    cacheCap.store(cap, std::memory_order_relaxed);
    evictOverCapLocked();
}

void
clearDriverCache()
{
    {
        std::lock_guard lock(irCacheMutex);
        irCache.clear();
    }
    std::unique_lock lock(cacheMutex);
    cache.clear();
    lruOrder.clear();
    cacheHits = 0;
    cacheMisses = 0;
    cacheCompileNs = 0;
    cacheEvictions = 0;
}

ShaderBinary
driverCompileUncached(const std::string &glslSource,
                      const DeviceModel &device)
{
    // Front end: the driver parses whatever text it is given.
    auto module = emit::compileToIr(glslSource);
    return compileIr(*module, device);
}

namespace {

ShaderBinary
compileIr(ir::Module &moduleRef, const DeviceModel &device)
{
    ir::Module *module = &moduleRef;

    // Vendor optimization set. Every real driver folds constants and
    // CSEs (canonicalize); the flags encode what else this vendor's
    // stack can do. Structural transforms (unroll, hoist) apply the
    // vendor's own heuristics' budgets — unlike the offline tool's
    // unconditional versions.
    passes::canonicalize(*module);
    if (device.jitFlags.unroll && device.jitUnrollTrips > 0) {
        passes::unroll(*module, device.jitUnrollTrips,
                       device.jitUnrollInstrs);
        passes::canonicalize(*module);
    }
    if (device.jitFlags.hoist && device.jitHoistArmInstrs > 0) {
        passes::hoist(*module, device.jitHoistArmInstrs);
        passes::canonicalize(*module);
    }
    if (device.jitFlags.coalesce) {
        passes::coalesce(*module);
        passes::canonicalize(*module);
    }
    if (device.jitFlags.reassociate) {
        passes::reassociate(*module);
        passes::canonicalize(*module);
    }
    if (device.jitFlags.gvn) {
        passes::gvn(*module);
        passes::canonicalize(*module);
    }

    // Every vendor back end list-schedules for register pressure before
    // allocation; without this, offline reassociation's end-of-block
    // reduction chains would look impossibly expensive.
    passes::scheduleForPressure(*module, device.schedulerWindow);

    ShaderBinary bin;
    bin.cost = analyzeModule(*module, device);

    // Register allocation: spill anything over the hard threshold.
    bin.spilledRegs =
        std::max(0.0, bin.cost.maxLiveRegs - device.spillThreshold);
    const double spill_cycles = bin.spilledRegs * device.spillCost;

    // Occupancy: the register file supports regBudget live registers
    // per thread at full occupancy; heavier shaders run fewer waves.
    // The allocator spills anything beyond spillThreshold precisely to
    // keep occupancy from collapsing, so the occupancy calculation uses
    // the post-spill register count (the spill traffic is charged
    // above).
    const double resident =
        std::min(bin.cost.maxLiveRegs, device.spillThreshold);
    const double capacity = device.regBudget * device.maxWaves;
    bin.occupancyWaves = std::clamp(
        capacity / std::max(1.0, resident), 1.0, device.maxWaves);

    // Texture latency hiding degrades with occupancy.
    const double hide =
        std::min(1.0, bin.occupancyWaves / device.wavesToHideTex);
    bin.texStallCycles = bin.cost.textureCount * device.texLatency *
                         (1.0 - hide);

    // Instruction-cache pressure (Adreno-style) on code growth.
    const double excess =
        std::max(0.0, static_cast<double>(bin.cost.instructionCount) -
                          device.icacheInstrs);
    bin.icacheStallCycles = excess * device.icachePenalty;

    bin.cyclesPerFragment = device.baseOverheadCycles +
                            bin.cost.issueCycles() + spill_cycles +
                            bin.texStallCycles + bin.icacheStallCycles;
    return bin;
}

} // namespace

double
drawTimeNs(const ShaderBinary &binary, const DeviceModel &device,
           long fragments)
{
    const double throughput =
        static_cast<double>(device.shaderUnits) * device.clockGhz;
    // fragments * cycles / (units * GHz) yields nanoseconds directly.
    return static_cast<double>(fragments) * binary.cyclesPerFragment /
           throughput;
}

} // namespace gsopt::gpu
