#include "gpu/driver.h"

#include <algorithm>
#include <cmath>

#include "emit/offline.h"
#include "passes/passes.h"

namespace gsopt::gpu {

ShaderBinary
driverCompile(const std::string &glslSource, const DeviceModel &device)
{
    // Front end: the driver parses whatever text it is given.
    auto module = emit::compileToIr(glslSource);

    // Vendor optimization set. Every real driver folds constants and
    // CSEs (canonicalize); the flags encode what else this vendor's
    // stack can do. Structural transforms (unroll, hoist) apply the
    // vendor's own heuristics' budgets — unlike the offline tool's
    // unconditional versions.
    passes::canonicalize(*module);
    if (device.jitFlags.unroll && device.jitUnrollTrips > 0) {
        passes::unroll(*module, device.jitUnrollTrips,
                       device.jitUnrollInstrs);
        passes::canonicalize(*module);
    }
    if (device.jitFlags.hoist && device.jitHoistArmInstrs > 0) {
        passes::hoist(*module, device.jitHoistArmInstrs);
        passes::canonicalize(*module);
    }
    if (device.jitFlags.coalesce) {
        passes::coalesce(*module);
        passes::canonicalize(*module);
    }
    if (device.jitFlags.reassociate) {
        passes::reassociate(*module);
        passes::canonicalize(*module);
    }
    if (device.jitFlags.gvn) {
        passes::gvn(*module);
        passes::canonicalize(*module);
    }

    // Every vendor back end list-schedules for register pressure before
    // allocation; without this, offline reassociation's end-of-block
    // reduction chains would look impossibly expensive.
    passes::scheduleForPressure(*module, device.schedulerWindow);

    ShaderBinary bin;
    bin.cost = analyzeModule(*module, device);

    // Register allocation: spill anything over the hard threshold.
    bin.spilledRegs =
        std::max(0.0, bin.cost.maxLiveRegs - device.spillThreshold);
    const double spill_cycles = bin.spilledRegs * device.spillCost;

    // Occupancy: the register file supports regBudget live registers
    // per thread at full occupancy; heavier shaders run fewer waves.
    // The allocator spills anything beyond spillThreshold precisely to
    // keep occupancy from collapsing, so the occupancy calculation uses
    // the post-spill register count (the spill traffic is charged
    // above).
    const double resident =
        std::min(bin.cost.maxLiveRegs, device.spillThreshold);
    const double capacity = device.regBudget * device.maxWaves;
    bin.occupancyWaves = std::clamp(
        capacity / std::max(1.0, resident), 1.0, device.maxWaves);

    // Texture latency hiding degrades with occupancy.
    const double hide =
        std::min(1.0, bin.occupancyWaves / device.wavesToHideTex);
    bin.texStallCycles = bin.cost.textureCount * device.texLatency *
                         (1.0 - hide);

    // Instruction-cache pressure (Adreno-style) on code growth.
    const double excess =
        std::max(0.0, static_cast<double>(bin.cost.instructionCount) -
                          device.icacheInstrs);
    bin.icacheStallCycles = excess * device.icachePenalty;

    bin.cyclesPerFragment = device.baseOverheadCycles +
                            bin.cost.issueCycles() + spill_cycles +
                            bin.texStallCycles + bin.icacheStallCycles;
    return bin;
}

double
drawTimeNs(const ShaderBinary &binary, const DeviceModel &device,
           long fragments)
{
    const double throughput =
        static_cast<double>(device.shaderUnits) * device.clockGhz;
    // fragments * cycles / (units * GHz) yields nanoseconds directly.
    return static_cast<double>(fragments) * binary.cyclesPerFragment /
           throughput;
}

} // namespace gsopt::gpu
