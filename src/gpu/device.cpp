#include "gpu/device.h"

#include <stdexcept>

namespace gsopt::gpu {

std::vector<DeviceId>
allDevices()
{
    return {DeviceId::Intel, DeviceId::Amd, DeviceId::Nvidia,
            DeviceId::Arm, DeviceId::Qualcomm};
}

const char *
deviceVendor(DeviceId id)
{
    switch (id) {
      case DeviceId::Intel: return "Intel";
      case DeviceId::Amd: return "AMD";
      case DeviceId::Nvidia: return "NVIDIA";
      case DeviceId::Arm: return "ARM";
      case DeviceId::Qualcomm: return "Qualcomm";
    }
    return "?";
}

namespace {

DeviceModel
makeIntel()
{
    // HD Graphics 530 (Skylake GT2), Mesa i965. 24 EUs x SIMD8 at
    // ~1.05 GHz. The i965 compiler of the Mesa 17 era unrolled constant
    // loops and flattened small ifs, but performed no unsafe FP math.
    // 128 GRF per thread makes it moderately pressure-sensitive. The
    // paper singles Intel out as the least noisy platform.
    DeviceModel d;
    d.id = DeviceId::Intel;
    d.name = "HD Graphics 530 (Skylake GT2)";
    d.vendor = "Intel";
    d.isa = IsaKind::Scalar;
    d.clockGhz = 1.05;
    d.shaderUnits = 192;
    d.baseOverheadCycles = 22.0;
    d.texIssueCost = 4.0;
    d.costTranscendental = 8.0;
    d.texLatency = 120.0;
    d.wavesToHideTex = 5.0;
    d.regBudget = 40.0;
    d.spillThreshold = 100.0;
    d.spillCost = 10.0;
    d.maxWaves = 10.0;
    d.noiseSigma = 0.003;
    d.trianglesPerFrame = 1000;
    d.jitFlags = passes::OptFlags{};
    d.jitFlags.unroll = true;
    d.jitFlags.gvn = true;
    d.jitFlags.hoist = true;
    d.jitFlags.reassociate = true;
    d.jitUnrollTrips = 32;
    d.jitUnrollInstrs = 1200;
    d.jitHoistArmInstrs = 10;
    return d;
}

DeviceModel
makeAmd()
{
    // RX 480 (Polaris10), Mesa 17 + LLVM 3.9 "radeonsi". 2304 scalar
    // lanes at 1.27 GHz, 64-wide waves. The Mesa/LLVM stack of that era
    // folded and value-numbered well but did *not* unroll GLSL loops —
    // which is why offline unrolling always pays on AMD in the paper
    // (peaks around +35%).
    DeviceModel d;
    d.id = DeviceId::Amd;
    d.name = "Radeon RX 480 (POLARIS10)";
    d.vendor = "AMD";
    d.isa = IsaKind::Scalar;
    d.clockGhz = 1.27;
    d.shaderUnits = 2304;
    d.baseOverheadCycles = 20.0;
    d.texIssueCost = 4.0;
    d.costTranscendental = 8.0;
    d.texLatency = 140.0;
    d.wavesToHideTex = 6.0;
    d.regBudget = 48.0;
    d.spillThreshold = 110.0;
    d.spillCost = 9.0;
    d.maxWaves = 10.0;
    d.noiseSigma = 0.008;
    d.trianglesPerFrame = 1000;
    d.jitFlags = passes::OptFlags{};
    d.jitFlags.gvn = true;
    d.jitFlags.reassociate = true;
    return d;
}

DeviceModel
makeNvidia()
{
    // GeForce GTX 1080 (Pascal), proprietary driver 375.39. 2560 CUDA
    // cores at ~1.7 GHz. The proprietary JIT is the strongest of the
    // five: it unrolls, value-numbers, reassociates integers, and
    // if-converts on its own, leaving offline passes mostly redundant
    // (the paper's near-zero NVIDIA violins). A huge register file
    // keeps occupancy high until shaders get very large.
    DeviceModel d;
    d.id = DeviceId::Nvidia;
    d.name = "GeForce GTX 1080";
    d.vendor = "NVIDIA";
    d.isa = IsaKind::Scalar;
    d.clockGhz = 1.73;
    d.shaderUnits = 2560;
    d.baseOverheadCycles = 24.0;
    d.texIssueCost = 4.0;
    d.costTranscendental = 4.0; // SFU-assisted
    d.texLatency = 120.0;
    d.wavesToHideTex = 5.0;
    d.regBudget = 64.0;
    d.spillThreshold = 160.0;
    d.spillCost = 8.0;
    d.maxWaves = 16.0;
    d.noiseSigma = 0.008;
    d.trianglesPerFrame = 1000;
    d.jitFlags = passes::OptFlags{};
    d.jitFlags.unroll = true;
    d.jitFlags.gvn = true;
    d.jitFlags.hoist = true;
    d.jitFlags.reassociate = true;
    d.jitUnrollTrips = 32;
    d.jitUnrollInstrs = 1500;
    d.jitHoistArmInstrs = 14;
    return d;
}

DeviceModel
makeArm()
{
    // Mali-T880 MP12 (Midgard), Galaxy S7. A vec4 VLIW machine: up to
    // four float lanes per arithmetic slot, free swizzles, but scalar
    // work wastes lanes unless the compiler packs it (slpEfficiency).
    // The register file is small and spilling falls off a cliff — the
    // mechanism behind the paper's -35% hoist case and the -30% tail in
    // Fig 3. The in-driver compiler re-vectorises insert chains but
    // neither unrolls nor value-numbers aggressively, so the offline
    // default flags all help (ARM's best static set == the defaults).
    DeviceModel d;
    d.id = DeviceId::Arm;
    d.name = "Mali-T880 MP12";
    d.vendor = "ARM";
    d.isa = IsaKind::Vec4;
    d.clockGhz = 0.65;
    d.shaderUnits = 24; // 12 cores x 2 vec4 arithmetic pipes
    d.baseOverheadCycles = 8.0; // vec4-slot units
    d.texIssueCost = 2.0;
    d.costTranscendental = 6.0;
    d.costMov = 0.0; // free swizzles on Midgard
    d.texLatency = 130.0;
    d.wavesToHideTex = 3.0;
    d.regBudget = 8.0;       // vec4 work registers at full occupancy
    d.spillThreshold = 20.0; // vec4 registers before spilling
    d.spillCost = 10.0;
    d.maxWaves = 8.0;
    d.slpEfficiency = 0.75;
    d.schedulerWindow = 120; // in-order VLIW: limited reordering
    d.noiseSigma = 0.015;
    d.trianglesPerFrame = 100; // paper: 100 triangles on mobile
    d.jitFlags = passes::OptFlags{};
    d.jitFlags.coalesce = true;
    return d;
}

DeviceModel
makeQualcomm()
{
    // Adreno 530 (HTC 10). Scalar ISA at ~0.624 GHz. The driver
    // compiler of this era folded constants but did not reassociate —
    // which is why the paper's unsafe FP passes peak at +25% here. A
    // small instruction cache penalises unrolled code growth (the -8%
    // unroll case), so unrolling stays out of its best static flags.
    DeviceModel d;
    d.id = DeviceId::Qualcomm;
    d.name = "Adreno 530";
    d.vendor = "Qualcomm";
    d.isa = IsaKind::Scalar;
    d.clockGhz = 0.624;
    d.shaderUnits = 256;
    d.baseOverheadCycles = 18.0;
    d.texIssueCost = 5.0;
    d.costTranscendental = 8.0;
    d.texLatency = 160.0;
    d.wavesToHideTex = 5.0;
    d.regBudget = 32.0;
    d.spillThreshold = 90.0;
    d.spillCost = 10.0;
    d.maxWaves = 8.0;
    d.costBranch = 0.75; // hardware loop support: cheap branches
    d.icacheInstrs = 140.0;
    d.icachePenalty = 0.45;
    d.noiseSigma = 0.02;
    d.trianglesPerFrame = 100;
    d.jitFlags = passes::OptFlags{};
    // Adreno's compiler unrolls small loops itself but refuses large
    // ones (code growth risks its small i-cache). Offline unrolling
    // therefore only *adds* the big loops — which is exactly where it
    // backfires (the paper's -8% case and its exclusion from the
    // Qualcomm best static flags).
    d.jitFlags.unroll = true;
    d.jitUnrollTrips = 16;
    d.jitUnrollInstrs = 800;
    return d;
}

} // namespace

const DeviceModel &
deviceModel(DeviceId id)
{
    static const DeviceModel intel = makeIntel();
    static const DeviceModel amd = makeAmd();
    static const DeviceModel nvidia = makeNvidia();
    static const DeviceModel arm = makeArm();
    static const DeviceModel qualcomm = makeQualcomm();
    switch (id) {
      case DeviceId::Intel: return intel;
      case DeviceId::Amd: return amd;
      case DeviceId::Nvidia: return nvidia;
      case DeviceId::Arm: return arm;
      case DeviceId::Qualcomm: return qualcomm;
    }
    throw std::logic_error("unknown device id");
}

} // namespace gsopt::gpu
